#include "envs/grid_env.h"

#include <cassert>

#include "plan/astar.h"

namespace ebs::envs {

GridEnvironment::GridEnvironment(env::GridMap grid)
    : env::Environment(std::move(grid))
{
}

double
GridEnvironment::motionCost(const env::Vec2i &from, const env::Vec2i &to,
                            std::vector<env::Vec2i> *path) const
{
    // Other agents' bodies are temporary obstacles; the requesting agent
    // is identified by standing at `from`. Positions come from the raw
    // body table rather than logged agent reads — logging a read of every
    // agent would conflict a path query with *any* mover. Instead A*
    // reports the cells whose blocked status it consulted and those are
    // logged as per-cell occupancy reads: the search result can only
    // change if one of them changes.
    const env::World &w = world();
    std::vector<env::Vec2i> blocked;
    for (const env::AgentBody &body : w.bodies())
        if (!(body.pos == from))
            blocked.push_back(body.pos);
    env::spec::AccessLog *log = w.accessLog();
    std::vector<env::Vec2i> queried;
    const auto result =
        plan::aStar(w.grid(), from, to,
                    /*adjacent_ok=*/true, &blocked,
                    log != nullptr ? &queried : nullptr);
    if (log != nullptr)
        for (const env::Vec2i &cell : queried)
            log->read(env::spec::cellKey(cell));
    if (!result)
        return -1.0;
    if (path != nullptr)
        *path = result->cells;
    return result->cost;
}

env::ActionResult
GridEnvironment::applyDomain(int, const env::Primitive &prim)
{
    return env::ActionResult::failure(
        std::string("domain op not supported here: ") +
        env::primOpName(prim.op));
}

env::Vec2i
GridEnvironment::randomFreeCellInRoom(int room, sim::Rng &rng) const
{
    const env::GridMap &grid = world_.grid();
    std::vector<env::Vec2i> cells;
    for (int y = 0; y < grid.height(); ++y)
        for (int x = 0; x < grid.width(); ++x)
            if (grid.walkable({x, y}) && grid.room({x, y}) == room)
                cells.push_back({x, y});
    assert(!cells.empty() && "room has no free cell");
    return rng.pick(cells);
}

env::Vec2i
GridEnvironment::randomFreeCell(sim::Rng &rng) const
{
    const env::GridMap &grid = world_.grid();
    for (int attempts = 0; attempts < 10000; ++attempts) {
        const env::Vec2i p{rng.uniformInt(0, grid.width() - 1),
                           rng.uniformInt(0, grid.height() - 1)};
        if (grid.walkable(p))
            return p;
    }
    assert(false && "no free cell found");
    return {0, 0};
}

std::vector<env::ObjectId>
GridEnvironment::looseItemsOfKind(int kind) const
{
    std::vector<env::ObjectId> out;
    for (const auto &obj : world_.objects())
        if (obj.cls == env::ObjectClass::Item && obj.kind == kind &&
            obj.loose())
            out.push_back(obj.id);
    return out;
}

env::ObjectId
GridEnvironment::nearestLooseItem(const env::Vec2i &from, int kind) const
{
    env::ObjectId best = env::kNoObject;
    int best_dist = 0;
    for (const auto &obj : world_.objects()) {
        if (obj.cls != env::ObjectClass::Item || obj.kind != kind ||
            !obj.loose())
            continue;
        const int d = env::manhattan(from, obj.pos);
        if (best == env::kNoObject || d < best_dist) {
            best = obj.id;
            best_dist = d;
        }
    }
    return best;
}

env::ObjectId
GridEnvironment::findObject(env::ObjectClass cls, int kind) const
{
    for (const auto &obj : world_.objects())
        if (obj.cls == cls && obj.kind == kind)
            return obj.id;
    return env::kNoObject;
}

std::vector<env::ObjectId>
GridEnvironment::objectsOfClass(env::ObjectClass cls) const
{
    std::vector<env::ObjectId> out;
    for (const auto &obj : world_.objects())
        if (obj.cls == cls)
            out.push_back(obj.id);
    return out;
}

void
GridEnvironment::spawnAgents(int count, sim::Rng &rng)
{
    for (int i = 0; i < count; ++i) {
        env::Vec2i cell = randomFreeCell(rng);
        for (int tries = 0; tries < 100 && world_.occupiedByOther(-1, cell);
             ++tries)
            cell = randomFreeCell(rng);
        world_.addAgent(cell);
    }
}

} // namespace ebs::envs
