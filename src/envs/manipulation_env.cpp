#include "envs/manipulation_env.h"

#include <memory>

#include "envs/predicate_task.h"

namespace ebs::envs {

namespace {

struct Layout
{
    int blocks;
    int obstacles;
    int max_steps;
};

Layout
layoutFor(env::Difficulty difficulty)
{
    switch (difficulty) {
      case env::Difficulty::Easy:
        return {4, 2, 60};
      case env::Difficulty::Medium:
        return {7, 3, 110};
      case env::Difficulty::Hard:
        return {10, 4, 160};
    }
    return {4, 2, 60};
}

constexpr int kTableW = 15;
constexpr int kTableH = 15;

} // namespace

ManipulationEnv::ManipulationEnv(env::Difficulty difficulty, int n_agents,
                                 sim::Rng rng)
    : GridEnvironment(env::GridMap::apartment(1, 1, kTableW, kTableH)),
      rrt_rng_(rng.fork(77))
{
    const Layout layout = layoutFor(difficulty);

    // Continuous workspace over the grid, with circular obstacles; mark the
    // covered cells unwalkable so A* and RRT agree about free space.
    workspace_.min_x = 0.0;
    workspace_.min_y = 0.0;
    workspace_.max_x = world_.grid().width();
    workspace_.max_y = world_.grid().height();
    for (int i = 0; i < layout.obstacles; ++i) {
        plan::CircleObstacle obs;
        obs.radius = 1.4;
        const env::Vec2i cell = randomFreeCellInRoom(0, rng);
        obs.center = {cell.x + 0.5, cell.y + 0.5};
        workspace_.obstacles.push_back(obs);
        for (int y = 0; y < world_.grid().height(); ++y) {
            for (int x = 0; x < world_.grid().width(); ++x) {
                const env::Vec2d center{x + 0.5, y + 0.5};
                if (env::dist(center, obs.center) < obs.radius)
                    world_.grid().setWalkable({x, y}, false);
            }
        }
    }

    for (int i = 0; i < layout.blocks; ++i) {
        env::Object zone;
        zone.name = "goal zone " + std::to_string(i);
        zone.cls = env::ObjectClass::Target;
        zone.kind = i;
        zone.pos = randomFreeCellInRoom(0, rng);
        const env::ObjectId target = world_.addObject(zone);

        env::Object block;
        block.name = "block " + std::to_string(i);
        block.cls = env::ObjectClass::Item;
        block.kind = i;
        block.pos = randomFreeCellInRoom(0, rng);
        const env::ObjectId block_id = world_.addObject(block);

        goals_.emplace_back(block_id, target);
    }

    spawnAgents(n_agents, rng);

    const auto goals = goals_;
    setTask(std::make_unique<PredicateTask>(
        "Sort all " + std::to_string(goals.size()) +
            " blocks into their goal zones",
        difficulty, layout.max_steps,
        [goals](const env::World &world) {
            int placed = 0;
            for (const auto &[block, target] : goals)
                if (world.object(block).inside == target)
                    ++placed;
            return static_cast<double>(placed) /
                   static_cast<double>(goals.size());
        }));
}

double
ManipulationEnv::motionCost(const env::Vec2i &from, const env::Vec2i &to,
                            std::vector<env::Vec2i> *path) const
{
    // Discrete body path from A* (shared GridEnvironment logic).
    const double grid_cost = GridEnvironment::motionCost(from, to, path);
    if (grid_cost < 0.0)
        return grid_cost;
    if (grid_cost == 0.0)
        return 0.0;

    // Price the motion with a real RRT query in the continuous workspace.
    const env::Vec2d start{from.x + 0.5, from.y + 0.5};
    const env::Vec2d goal{to.x + 0.5, to.y + 0.5};
    plan::RrtParams params;
    params.step_size = 0.8;
    params.goal_tolerance = 1.2; // arm interacts from adjacent cells
    const auto rrt = plan::rrtPlan(workspace_, start, goal, rrt_rng_, params);
    if (rrt) {
        rrt_iterations_ += rrt->iterations;
        // Continuous length, floored by the grid cost for consistency.
        return std::max(grid_cost, rrt->length);
    }
    // RRT failed within budget; fall back to the A* cost.
    return grid_cost;
}

env::ObjectId
ManipulationEnv::targetOf(env::ObjectId block) const
{
    for (const auto &[b, t] : goals_)
        if (b == block)
            return t;
    return env::kNoObject;
}

int
ManipulationEnv::placedCount() const
{
    int placed = 0;
    for (const auto &[block, target] : goals_)
        if (world_.object(block).inside == target)
            ++placed;
    return placed;
}

std::vector<env::Subgoal>
ManipulationEnv::usefulSubgoals(int agent_id) const
{
    std::vector<env::Subgoal> out;
    const env::AgentBody &body = world_.agent(agent_id);

    if (body.carrying != env::kNoObject) {
        env::Subgoal sg;
        const env::ObjectId target = targetOf(body.carrying);
        if (target != env::kNoObject) {
            sg.kind = env::SubgoalKind::PutInto;
            sg.target = body.carrying;
            sg.dest_obj = target;
        } else {
            sg.kind = env::SubgoalKind::PlaceAt;
            sg.dest = body.pos;
        }
        out.push_back(sg);
        return out;
    }

    for (const auto &[block, target] : goals_) {
        const env::Object &obj = world_.object(block);
        if (obj.inside == target || obj.held_by >= 0)
            continue;
        env::Subgoal sg;
        sg.kind = env::SubgoalKind::PickUp;
        sg.target = block;
        out.push_back(sg);
    }
    return out;
}

std::vector<env::Subgoal>
ManipulationEnv::validSubgoals(int agent_id) const
{
    std::vector<env::Subgoal> out = usefulSubgoals(agent_id);
    const env::AgentBody &body = world_.agent(agent_id);

    if (body.carrying != env::kNoObject) {
        env::Subgoal drop;
        drop.kind = env::SubgoalKind::PlaceAt;
        drop.dest = body.pos;
        out.push_back(drop);
        for (const auto &[block, target] : goals_) {
            if (block == body.carrying)
                continue;
            env::Subgoal wrong;
            wrong.kind = env::SubgoalKind::PutInto;
            wrong.target = body.carrying;
            wrong.dest_obj = target;
            out.push_back(wrong);
            break;
        }
    }
    env::Subgoal wait;
    wait.kind = env::SubgoalKind::Wait;
    out.push_back(wait);
    return out;
}

} // namespace ebs::envs
