#include "envs/kitchen_env.h"

#include <memory>

#include "envs/predicate_task.h"

namespace ebs::envs {

namespace {

struct Layout
{
    int dishes;
    int spare_ingredients;
    int max_steps;
};

Layout
layoutFor(env::Difficulty difficulty)
{
    switch (difficulty) {
      case env::Difficulty::Easy:
        return {4, 1, 60};
      case env::Difficulty::Medium:
        return {8, 2, 110};
      case env::Difficulty::Hard:
        return {14, 3, 170};
    }
    return {4, 1, 60};
}

} // namespace

KitchenEnv::KitchenEnv(env::Difficulty difficulty, int n_agents, sim::Rng rng)
    : GridEnvironment(env::GridMap::apartment(2, 1, 9, 9))
{
    const Layout layout = layoutFor(difficulty);
    orders_ = layout.dishes;

    auto add_station = [&](const char *name, env::ObjectClass cls,
                           int room) {
        env::Object station;
        station.name = name;
        station.cls = cls;
        station.pos = randomFreeCellInRoom(room, rng);
        return world_.addObject(station);
    };
    board_ = add_station("cutting board", env::ObjectClass::Station, 0);
    stove_ = add_station("stove", env::ObjectClass::Station, 0);
    counter_ = add_station("serving counter", env::ObjectClass::Target, 0);

    const int total_ingredients = layout.dishes + layout.spare_ingredients;
    for (int i = 0; i < total_ingredients; ++i) {
        env::Object ing;
        ing.name = "ingredient " + std::to_string(i);
        ing.cls = env::ObjectClass::Item;
        ing.kind = 10 + i % 4; // four ingredient families
        ing.state = kRaw;
        const int room = rng.uniformInt(0, world_.grid().roomCount() - 1);
        ing.pos = randomFreeCellInRoom(room, rng);
        world_.addObject(ing);
    }

    spawnAgents(n_agents, rng);

    const env::ObjectId counter = counter_;
    const int orders = orders_;
    setTask(std::make_unique<PredicateTask>(
        "Prepare and serve " + std::to_string(orders) + " dishes",
        difficulty, layout.max_steps,
        [counter, orders](const env::World &world) {
            int served = 0;
            for (const auto &obj : world.objects())
                if (obj.inside == counter && obj.state == kCooked)
                    ++served;
            return static_cast<double>(std::min(served, orders)) / orders;
        }));
}

int
KitchenEnv::servedCount() const
{
    int served = 0;
    for (const auto &obj : world_.objects())
        if (obj.inside == counter_ && obj.state == kCooked)
            ++served;
    return served;
}

env::ActionResult
KitchenEnv::applyDomain(int agent_id, const env::Primitive &prim)
{
    // Chop/Cook mutate only world() entities (ingredient state) — no
    // env-local bookkeeping — so kitchen keeps GridEnvironment's
    // domainOpsSpeculationSafe()==true and must route every access
    // through world() for the speculative snapshot + log to see it.
    const env::AgentBody &body = world().agent(agent_id);
    if (prim.op != env::PrimOp::Chop && prim.op != env::PrimOp::Cook)
        return GridEnvironment::applyDomain(agent_id, prim);

    if (prim.target == env::kNoObject)
        return env::ActionResult::failure("no ingredient given");
    env::Object &ing = world().object(prim.target);
    if (ing.cls != env::ObjectClass::Item)
        return env::ActionResult::failure("target is not an ingredient");
    const bool in_hand = ing.held_by == agent_id;
    const bool adjacent =
        env::chebyshev(body.pos, world().effectivePos(ing.id)) <= 1;
    if (!in_hand && !adjacent)
        return env::ActionResult::failure("ingredient out of reach");

    const env::ObjectId station =
        prim.op == env::PrimOp::Chop ? board_ : stove_;
    if (env::chebyshev(body.pos, world().object(station).pos) > 1)
        return env::ActionResult::failure(
            prim.op == env::PrimOp::Chop ? "not at the cutting board"
                                         : "not at the stove");

    if (prim.op == env::PrimOp::Chop) {
        if (ing.state != kRaw)
            return env::ActionResult::failure("ingredient not raw");
        ing.state = kChopped;
    } else {
        if (ing.state != kChopped)
            return env::ActionResult::failure("ingredient not chopped yet");
        ing.state = kCooked;
    }
    return env::ActionResult::success();
}

std::vector<env::Subgoal>
KitchenEnv::usefulSubgoals(int agent_id) const
{
    std::vector<env::Subgoal> out;
    const env::AgentBody &body = world_.agent(agent_id);
    const int needed = orders_ - servedCount();
    if (needed <= 0)
        return out;

    if (body.carrying != env::kNoObject) {
        const env::Object &ing = world_.object(body.carrying);
        env::Subgoal sg;
        sg.target = ing.id;
        switch (ing.state) {
          case kRaw:
            sg.kind = env::SubgoalKind::Chop;
            sg.dest_obj = board_;
            break;
          case kChopped:
            sg.kind = env::SubgoalKind::Cook;
            sg.dest_obj = stove_;
            break;
          default:
            sg.kind = env::SubgoalKind::PutInto;
            sg.dest_obj = counter_;
            break;
        }
        out.push_back(sg);
        return out;
    }

    // Not carrying: pick up any unfinished ingredient; uncooked items
    // mistakenly "served" at the counter can be taken back out.
    for (const auto &obj : world_.objects()) {
        if (obj.cls != env::ObjectClass::Item || obj.held_by >= 0)
            continue;
        if (obj.inside == counter_ && obj.state == kCooked)
            continue; // a served dish stays served
        env::Subgoal sg;
        if (obj.inside != env::kNoObject) {
            sg.kind = env::SubgoalKind::TakeFrom;
            sg.target = obj.id;
            sg.dest_obj = obj.inside;
        } else {
            sg.kind = env::SubgoalKind::PickUp;
            sg.target = obj.id;
        }
        out.push_back(sg);
    }
    return out;
}

std::vector<env::Subgoal>
KitchenEnv::validSubgoals(int agent_id) const
{
    std::vector<env::Subgoal> out = usefulSubgoals(agent_id);
    const env::AgentBody &body = world_.agent(agent_id);

    if (body.carrying != env::kNoObject) {
        // Wasteful but valid alternatives: drop it, or serve it unfinished.
        env::Subgoal drop;
        drop.kind = env::SubgoalKind::PlaceAt;
        drop.dest = body.pos;
        out.push_back(drop);
        env::Subgoal serve;
        serve.kind = env::SubgoalKind::PutInto;
        serve.target = body.carrying;
        serve.dest_obj = counter_;
        out.push_back(serve);
    }

    for (int room = 0; room < world_.grid().roomCount(); ++room) {
        env::Subgoal sg;
        sg.kind = env::SubgoalKind::Explore;
        sg.dest = roomAnchor(room);
        sg.param = room;
        out.push_back(sg);
    }
    env::Subgoal wait;
    wait.kind = env::SubgoalKind::Wait;
    out.push_back(wait);
    return out;
}

} // namespace ebs::envs
