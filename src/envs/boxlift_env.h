#ifndef EBS_ENVS_BOXLIFT_ENV_H
#define EBS_ENVS_BOXLIFT_ENV_H

#include <map>
#include <set>
#include <string>
#include <vector>

#include "envs/grid_env.h"

namespace ebs::envs {

/**
 * BoxLift (HMAS benchmark): heavy boxes each require `weight` agents to
 * lift simultaneously. Within one global step, agents adjacent to the same
 * box who all issue Lift deliver it onto the truck; uncoordinated lifts
 * are wasted effort. This is the domain where agent *coordination* (not
 * just division of labor) is mandatory.
 */
class BoxLiftEnv : public GridEnvironment
{
  public:
    /** easy: 2 boxes (weight 2); medium: 3 (2,2,3); hard: 4 (2,3,3,3).
     * Box weights are clamped to the agent count so tasks stay feasible. */
    BoxLiftEnv(env::Difficulty difficulty, int n_agents, sim::Rng rng);

    std::string domainName() const override { return "boxlift"; }

    void beginStep() override { lift_votes_.clear(); }

    std::vector<env::Subgoal> usefulSubgoals(int agent_id) const override;
    std::vector<env::Subgoal> validSubgoals(int agent_id) const override;

    env::ObjectId truck() const { return truck_; }
    int liftedCount() const;
    int boxCount() const { return static_cast<int>(boxes_.size()); }

    /** Current lift votes on a box (for tests). */
    int votesOn(env::ObjectId box) const;

  protected:
    env::ActionResult applyDomain(int agent_id,
                                  const env::Primitive &prim) override;

    /** Lift is a genuine same-step cross-agent dependency (votes tallied
     * in lift_votes_), so a speculative turn aborts on it and re-runs
     * serially, observing earlier agents' committed votes. */
    bool domainOpsSpeculationSafe() const override { return false; }

  private:
    env::ObjectId truck_ = env::kNoObject;
    std::vector<env::ObjectId> boxes_;
    std::map<env::ObjectId, std::set<int>> lift_votes_;
};

} // namespace ebs::envs

#endif // EBS_ENVS_BOXLIFT_ENV_H
