#include "envs/craft_env.h"

#include <algorithm>
#include <functional>
#include <cassert>
#include <memory>

#include "envs/predicate_task.h"

namespace ebs::envs {

namespace {

/** Node counts per resource kind and zone gating. */
struct ResourceSpec
{
    int kind;
    int nodes;
    int min_zone; ///< nodes only spawn in zones >= this index
    int units;    ///< units per node before depletion
};

const ResourceSpec kResources[] = {
    {CraftEnv::kWood, 6, 0, 3},
    {CraftEnv::kStone, 4, 3, 3},
    {CraftEnv::kIronOre, 3, 5, 3},
    {CraftEnv::kDiamond, 2, 8, 2},
};

const char *
kindName(int kind)
{
    switch (kind) {
      case CraftEnv::kWood:
        return "tree";
      case CraftEnv::kStone:
        return "stone vein";
      case CraftEnv::kIronOre:
        return "iron vein";
      case CraftEnv::kDiamond:
        return "diamond vein";
      default:
        return "node";
    }
}

int
maxStepsFor(env::Difficulty difficulty)
{
    switch (difficulty) {
      case env::Difficulty::Easy:
        return 60;
      case env::Difficulty::Medium:
        return 110;
      case env::Difficulty::Hard:
        return 160;
    }
    return 60;
}

} // namespace

const std::vector<CraftEnv::Recipe> &
CraftEnv::recipes()
{
    static const std::vector<Recipe> kRecipes = {
        {1, {{kWood, 1}}, kPlank, 2, false},
        {2, {{kPlank, 1}}, kStick, 2, false},
        {3, {{kPlank, 2}, {kStick, 1}}, kWoodenPick, 1, false},
        {4, {{kStone, 2}, {kStick, 1}}, kStonePick, 1, false},
        {5, {{kIronOre, 1}}, kIronIngot, 1, true},
        {6, {{kIronIngot, 2}, {kStick, 1}}, kIronPick, 1, false},
        {7, {{kDiamond, 2}, {kStick, 1}}, kDiamondPick, 1, false},
    };
    return kRecipes;
}

CraftEnv::CraftEnv(env::Difficulty difficulty, int n_agents, sim::Rng rng)
    : GridEnvironment(env::GridMap::apartment(3, 3, 8, 8))
{
    switch (difficulty) {
      case env::Difficulty::Easy:
        goal_kind_ = kWoodenPick;
        milestones_ = {kWood, kPlank, kStick, kWoodenPick};
        break;
      case env::Difficulty::Medium:
        goal_kind_ = kIronPick;
        milestones_ = {kWood, kPlank, kStick, kWoodenPick, kStone,
                       kStonePick, kIronOre, kIronIngot, kIronPick};
        break;
      case env::Difficulty::Hard:
        goal_kind_ = kDiamondPick;
        milestones_ = {kWood, kPlank, kStick, kWoodenPick,
                       kStone, kStonePick, kIronOre, kIronIngot,
                       kIronPick, kDiamond, kDiamondPick};
        break;
    }

    // Stations in the starting zone.
    {
        env::Object table;
        table.name = "crafting table";
        table.cls = env::ObjectClass::Station;
        table.kind = 0;
        table.pos = randomFreeCellInRoom(0, rng);
        table_ = world_.addObject(table);

        env::Object furnace;
        furnace.name = "furnace";
        furnace.cls = env::ObjectClass::Station;
        furnace.kind = 1;
        furnace.pos = randomFreeCellInRoom(0, rng);
        furnace_ = world_.addObject(furnace);
    }

    // Resource nodes, gated by zone.
    const int zones = world_.grid().roomCount();
    for (const auto &spec : kResources) {
        for (int i = 0; i < spec.nodes; ++i) {
            env::Object node;
            node.name = std::string(kindName(spec.kind)) + " " +
                        std::to_string(i);
            node.cls = env::ObjectClass::Resource;
            node.kind = spec.kind;
            node.state = spec.units;
            const int zone =
                rng.uniformInt(std::min(spec.min_zone, zones - 1),
                               zones - 1);
            node.pos = randomFreeCellInRoom(zone, rng);
            world_.addObject(node);
        }
    }

    spawnAgents(n_agents, rng);
    inventories_.resize(static_cast<std::size_t>(world_.agentCount()));

    const std::set<int> *achieved = &achieved_;
    const auto milestones = milestones_;
    setTask(std::make_unique<PredicateTask>(
        std::string("Obtain a ") +
            (goal_kind_ == kWoodenPick  ? "wooden"
             : goal_kind_ == kIronPick ? "iron"
                                       : "diamond") +
            " pickaxe",
        difficulty, maxStepsFor(difficulty),
        [achieved, milestones](const env::World &) {
            int done = 0;
            for (int kind : milestones)
                if (achieved->count(kind) > 0)
                    ++done;
            return static_cast<double>(done) /
                   static_cast<double>(milestones.size());
        }));
}

int
CraftEnv::inventory(int agent_id, int kind) const
{
    const auto &inv = inventories_[static_cast<std::size_t>(agent_id)];
    const auto it = inv.find(kind);
    return it == inv.end() ? 0 : it->second;
}

int
CraftEnv::toolTier(int agent_id) const
{
    if (inventory(agent_id, kIronPick) > 0 ||
        inventory(agent_id, kDiamondPick) > 0)
        return 3;
    if (inventory(agent_id, kStonePick) > 0)
        return 2;
    if (inventory(agent_id, kWoodenPick) > 0)
        return 1;
    return 0;
}

int
CraftEnv::requiredTier(int resource_kind)
{
    switch (resource_kind) {
      case kWood:
        return 0;
      case kStone:
        return 1;
      case kIronOre:
        return 2;
      case kDiamond:
        return 3;
      default:
        return 0;
    }
}

env::ActionResult
CraftEnv::applyDomain(int agent_id, const env::Primitive &prim)
{
    switch (prim.op) {
      case env::PrimOp::Mine:
        return doMine(agent_id, prim);
      case env::PrimOp::Craft:
        return doCraft(agent_id, prim);
      default:
        return GridEnvironment::applyDomain(agent_id, prim);
    }
}

env::ActionResult
CraftEnv::doMine(int agent_id, const env::Primitive &prim)
{
    if (prim.target == env::kNoObject)
        return env::ActionResult::failure("mine without target");
    env::Object &node = world_.object(prim.target);
    if (node.cls != env::ObjectClass::Resource)
        return env::ActionResult::failure("target is not a resource node");
    if (node.state <= 0)
        return env::ActionResult::failure("node depleted");
    const env::AgentBody &body = world_.agent(agent_id);
    if (env::chebyshev(body.pos, node.pos) > 1)
        return env::ActionResult::failure("node out of reach");
    if (toolTier(agent_id) < requiredTier(node.kind))
        return env::ActionResult::failure("tool tier too low");

    node.state -= 1;
    ++inventories_[static_cast<std::size_t>(agent_id)][node.kind];
    achieved_.insert(node.kind);
    return env::ActionResult::success();
}

env::ActionResult
CraftEnv::doCraft(int agent_id, const env::Primitive &prim)
{
    const Recipe *recipe = nullptr;
    for (const auto &r : recipes())
        if (r.id == prim.param)
            recipe = &r;
    if (recipe == nullptr)
        return env::ActionResult::failure("unknown recipe");

    const env::ObjectId station = recipe->at_furnace ? furnace_ : table_;
    const env::AgentBody &body = world_.agent(agent_id);
    if (env::chebyshev(body.pos, world_.object(station).pos) > 1)
        return env::ActionResult::failure(
            recipe->at_furnace ? "not at the furnace"
                               : "not at the crafting table");

    auto &inv = inventories_[static_cast<std::size_t>(agent_id)];
    for (const auto &[kind, count] : recipe->inputs)
        if (inventory(agent_id, kind) < count)
            return env::ActionResult::failure("missing ingredients");

    for (const auto &[kind, count] : recipe->inputs)
        inv[kind] -= count;
    inv[recipe->output] += recipe->output_count;
    achieved_.insert(recipe->output);
    return env::ActionResult::success();
}

std::vector<env::Subgoal>
CraftEnv::usefulSubgoals(int agent_id) const
{
    std::vector<env::Subgoal> out;
    if (inventory(agent_id, goal_kind_) > 0)
        return out; // done

    // Quantity-aware demand propagation from the goal item through the
    // recipe DAG. Tool gating is part of the dependency structure: a
    // resource needing a better pickaxe pulls that pickaxe into the
    // demand set. Shared intermediates may be counted more than once,
    // which only makes the agent gather slightly conservatively.
    const int tier = toolTier(agent_id);
    auto pick_for_tier = [](int t) {
        return t >= 3 ? kIronPick : t == 2 ? kStonePick : kWoodenPick;
    };
    std::map<int, int> demand;
    std::function<void(int, int)> require = [&](int kind, int count) {
        const int shortfall = count - inventory(agent_id, kind);
        if (shortfall <= 0)
            return;
        demand[kind] += shortfall;
        const int req_tier = requiredTier(kind);
        if (kind >= kWood && kind <= kDiamond && req_tier > tier)
            require(pick_for_tier(req_tier), 1);
        for (const auto &recipe : recipes()) {
            if (recipe.output != kind)
                continue;
            const int crafts =
                (shortfall + recipe.output_count - 1) / recipe.output_count;
            for (const auto &[input, in_count] : recipe.inputs)
                require(input, in_count * crafts);
            break; // one recipe per output in this book
        }
    };
    require(goal_kind_, 1);

    // Craftable now? (crafting beats mining when both are possible)
    for (const auto &recipe : recipes()) {
        const auto it = demand.find(recipe.output);
        if (it == demand.end() || it->second <= 0)
            continue;
        bool ready = true;
        for (const auto &[input, count] : recipe.inputs)
            if (inventory(agent_id, input) < count)
                ready = false;
        if (!ready)
            continue;
        env::Subgoal sg;
        sg.kind = env::SubgoalKind::Craft;
        sg.dest_obj = recipe.at_furnace ? furnace_ : table_;
        sg.param = recipe.id;
        out.push_back(sg);
    }
    if (!out.empty())
        return out;

    // Mine a demanded raw resource the agent's tool can break.
    const env::AgentBody &body = world_.agent(agent_id);
    env::ObjectId best = env::kNoObject;
    int best_dist = 0;
    for (const auto &obj : world_.objects()) {
        if (obj.cls != env::ObjectClass::Resource || obj.state <= 0)
            continue;
        const auto it = demand.find(obj.kind);
        if (it == demand.end() || it->second <= 0)
            continue;
        if (requiredTier(obj.kind) > tier)
            continue;
        const int d = env::manhattan(body.pos, obj.pos);
        if (best == env::kNoObject || d < best_dist) {
            best = obj.id;
            best_dist = d;
        }
    }
    if (best != env::kNoObject) {
        env::Subgoal sg;
        sg.kind = env::SubgoalKind::Mine;
        sg.target = best;
        out.push_back(sg);
    }
    return out;
}

std::vector<env::Subgoal>
CraftEnv::validSubgoals(int agent_id) const
{
    std::vector<env::Subgoal> out = usefulSubgoals(agent_id);
    const env::AgentBody &body = world_.agent(agent_id);
    (void)body;

    // Any live resource node may be attempted.
    for (const auto &obj : world_.objects()) {
        if (obj.cls != env::ObjectClass::Resource || obj.state <= 0)
            continue;
        env::Subgoal sg;
        sg.kind = env::SubgoalKind::Mine;
        sg.target = obj.id;
        if (std::find(out.begin(), out.end(), sg) == out.end())
            out.push_back(sg);
    }
    // Any recipe may be attempted.
    for (const auto &recipe : recipes()) {
        env::Subgoal sg;
        sg.kind = env::SubgoalKind::Craft;
        sg.dest_obj = recipe.at_furnace ? furnace_ : table_;
        sg.param = recipe.id;
        if (std::find(out.begin(), out.end(), sg) == out.end())
            out.push_back(sg);
    }
    for (int room = 0; room < world_.grid().roomCount(); ++room) {
        env::Subgoal sg;
        sg.kind = env::SubgoalKind::Explore;
        sg.dest = roomAnchor(room);
        sg.param = room;
        out.push_back(sg);
    }
    env::Subgoal wait;
    wait.kind = env::SubgoalKind::Wait;
    out.push_back(wait);
    return out;
}

} // namespace ebs::envs
