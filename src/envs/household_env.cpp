#include "envs/household_env.h"

#include <memory>

#include "envs/predicate_task.h"

namespace ebs::envs {

namespace {

struct Layout
{
    int rooms_x;
    int rooms_y;
    int goal_items;
    int hidden_items;
    int cabinets;
    int max_steps;
};

Layout
layoutFor(env::Difficulty difficulty)
{
    switch (difficulty) {
      case env::Difficulty::Easy:
        return {2, 2, 4, 0, 2, 70};
      case env::Difficulty::Medium:
        return {3, 2, 8, 3, 3, 130};
      case env::Difficulty::Hard:
        return {3, 3, 12, 6, 5, 190};
    }
    return {2, 2, 4, 0, 2, 70};
}

} // namespace

HouseholdEnv::HouseholdEnv(env::Difficulty difficulty, int n_agents,
                           sim::Rng rng)
    : GridEnvironment(env::GridMap::apartment(
          layoutFor(difficulty).rooms_x, layoutFor(difficulty).rooms_y, 7, 7))
{
    const Layout layout = layoutFor(difficulty);

    // The dining table (zone) in room 0 and the fridge in room 1.
    {
        env::Object table;
        table.name = "dining table";
        table.cls = env::ObjectClass::Target;
        table.pos = randomFreeCellInRoom(0, rng);
        table_ = world_.addObject(table);

        env::Object fridge;
        fridge.name = "fridge";
        fridge.cls = env::ObjectClass::Container;
        fridge.openable = true;
        fridge.open = false;
        fridge.pos = randomFreeCellInRoom(
            std::min(1, world_.grid().roomCount() - 1), rng);
        fridge_ = world_.addObject(fridge);
    }

    // Cabinets that may hide goal items.
    std::vector<env::ObjectId> cabinets;
    for (int i = 0; i < layout.cabinets; ++i) {
        env::Object cab;
        cab.name = "cabinet " + std::to_string(i);
        cab.cls = env::ObjectClass::Container;
        cab.openable = true;
        cab.open = false;
        const int room = rng.uniformInt(0, world_.grid().roomCount() - 1);
        cab.pos = randomFreeCellInRoom(room, rng);
        cabinets.push_back(world_.addObject(cab));
    }

    // Goal items: tableware goes to the table, groceries to the fridge.
    for (int i = 0; i < layout.goal_items; ++i) {
        const bool grocery = i % 2 == 1;
        env::Object item;
        item.name = grocery ? "grocery " + std::to_string(i)
                            : "tableware " + std::to_string(i);
        item.cls = env::ObjectClass::Item;
        item.kind = grocery ? 2 : 1;
        if (i < layout.hidden_items && !cabinets.empty()) {
            const env::ObjectId host = rng.pick(cabinets);
            item.pos = world_.object(host).pos;
            item.inside = host;
        } else {
            const int room =
                rng.uniformInt(0, world_.grid().roomCount() - 1);
            item.pos = randomFreeCellInRoom(room, rng);
        }
        const env::ObjectId id = world_.addObject(item);
        goals_.emplace_back(id, grocery ? fridge_ : table_);
    }

    spawnAgents(n_agents, rng);

    const auto goals = goals_;
    setTask(std::make_unique<PredicateTask>(
        "Set the table and put the groceries away (" +
            std::to_string(goals.size()) + " items)",
        difficulty, layout.max_steps,
        [goals](const env::World &world) {
            int placed = 0;
            for (const auto &[item, dest] : goals)
                if (world.object(item).inside == dest)
                    ++placed;
            return static_cast<double>(placed) /
                   static_cast<double>(goals.size());
        }));
}

int
HouseholdEnv::placedCount() const
{
    int placed = 0;
    for (const auto &[item, dest] : goals_)
        if (world_.object(item).inside == dest)
            ++placed;
    return placed;
}

env::ObjectId
HouseholdEnv::destinationOf(env::ObjectId item) const
{
    for (const auto &[goal_item, dest] : goals_)
        if (goal_item == item)
            return dest;
    return env::kNoObject;
}

std::vector<env::Subgoal>
HouseholdEnv::usefulSubgoals(int agent_id) const
{
    std::vector<env::Subgoal> out;
    const env::AgentBody &body = world_.agent(agent_id);

    if (body.carrying != env::kNoObject) {
        const env::ObjectId dest = destinationOf(body.carrying);
        env::Subgoal sg;
        if (dest != env::kNoObject) {
            sg.kind = env::SubgoalKind::PutInto;
            sg.target = body.carrying;
            sg.dest_obj = dest;
        } else {
            sg.kind = env::SubgoalKind::PlaceAt;
            sg.dest = body.pos;
        }
        out.push_back(sg);
        return out;
    }

    for (const auto &[item, dest] : goals_) {
        const env::Object &obj = world_.object(item);
        if (obj.inside == dest || obj.held_by >= 0)
            continue;
        env::Subgoal sg;
        if (obj.inside != env::kNoObject) {
            sg.kind = env::SubgoalKind::TakeFrom;
            sg.target = item;
            sg.dest_obj = obj.inside;
        } else {
            sg.kind = env::SubgoalKind::PickUp;
            sg.target = item;
        }
        out.push_back(sg);
    }
    return out;
}

std::vector<env::Subgoal>
HouseholdEnv::validSubgoals(int agent_id) const
{
    std::vector<env::Subgoal> out = usefulSubgoals(agent_id);
    const env::AgentBody &body = world_.agent(agent_id);

    if (body.carrying != env::kNoObject) {
        env::Subgoal drop;
        drop.kind = env::SubgoalKind::PlaceAt;
        drop.dest = body.pos;
        out.push_back(drop);
        // Wrong destination (valid, wasteful).
        env::Subgoal wrong;
        wrong.kind = env::SubgoalKind::PutInto;
        wrong.target = body.carrying;
        wrong.dest_obj =
            destinationOf(body.carrying) == table_ ? fridge_ : table_;
        out.push_back(wrong);
    } else {
        for (const auto cid : objectsOfClass(env::ObjectClass::Container)) {
            env::Subgoal sg;
            sg.kind = env::SubgoalKind::OpenObj;
            sg.target = cid;
            out.push_back(sg);
        }
    }

    for (int room = 0; room < world_.grid().roomCount(); ++room) {
        env::Subgoal sg;
        sg.kind = env::SubgoalKind::Explore;
        sg.dest = roomAnchor(room);
        sg.param = room;
        out.push_back(sg);
    }
    env::Subgoal wait;
    wait.kind = env::SubgoalKind::Wait;
    out.push_back(wait);
    return out;
}

} // namespace ebs::envs
