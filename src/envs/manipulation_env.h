#ifndef EBS_ENVS_MANIPULATION_ENV_H
#define EBS_ENVS_MANIPULATION_ENV_H

#include <string>
#include <vector>

#include "envs/grid_env.h"
#include "plan/rrt.h"

namespace ebs::envs {

/**
 * Multi-arm tabletop manipulation, modeled on RoCoBench (RoCo): blocks on a
 * shared workspace must each be moved to a per-block goal zone while
 * avoiding fixed obstacles.
 *
 * Low-level motion is priced by a *real RRT* in the continuous workspace
 * (collision circles for the obstacles); the discrete body path comes from
 * A* over the rasterized obstacle map. This keeps execution latency tied
 * to actual sampling-based motion-planning effort — the paper reports
 * RoCo's execution module at ~49% of step latency largely because of RRT.
 */
class ManipulationEnv : public GridEnvironment
{
  public:
    /** easy: 3 blocks; medium: 5; hard: 8 (more obstacles) */
    ManipulationEnv(env::Difficulty difficulty, int n_agents, sim::Rng rng);

    std::string domainName() const override { return "manipulation"; }

    /** A* path + RRT pricing; cost reflects continuous path length and
     * sampling effort. */
    double motionCost(const env::Vec2i &from, const env::Vec2i &to,
                      std::vector<env::Vec2i> *path) const override;

    /** Motion pricing consumes the shared RRT stream (rrt_rng_,
     * rrt_iterations_) in query order — racing it across threads, or
     * replaying it after a discarded run, would diverge from serial — so
     * this environment's execute phase always runs serially. */
    bool speculativeExecuteSafe() const override { return false; }

    std::vector<env::Subgoal> usefulSubgoals(int agent_id) const override;
    std::vector<env::Subgoal> validSubgoals(int agent_id) const override;

    env::ObjectId targetOf(env::ObjectId block) const;
    int placedCount() const;
    int blockCount() const { return static_cast<int>(goals_.size()); }

    /** RRT tree extensions accumulated across motion queries. */
    long rrtIterations() const { return rrt_iterations_; }

    const plan::Workspace &workspace() const { return workspace_; }

  private:
    std::vector<std::pair<env::ObjectId, env::ObjectId>> goals_;
    plan::Workspace workspace_;
    mutable sim::Rng rrt_rng_;
    mutable long rrt_iterations_ = 0;
};

} // namespace ebs::envs

#endif // EBS_ENVS_MANIPULATION_ENV_H
