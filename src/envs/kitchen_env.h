#ifndef EBS_ENVS_KITCHEN_ENV_H
#define EBS_ENVS_KITCHEN_ENV_H

#include <string>
#include <vector>

#include "envs/grid_env.h"

namespace ebs::envs {

/**
 * Collaborative cooking, modeled on CuisineWorld (MindAgent) and TDW-Cook
 * (COMBO): ingredients must be chopped at a board, cooked on a stove, and
 * served at the counter. Each dish is one ingredient driven through the
 * chop -> cook -> serve chain; the task is to serve all ordered dishes.
 *
 * Ingredient `state`: 0 = raw, 1 = chopped, 2 = cooked.
 */
class KitchenEnv : public GridEnvironment
{
  public:
    /**
     * @param difficulty easy: 3 dishes; medium: 6; hard: 10
     * @param n_agents   cooks to spawn
     */
    KitchenEnv(env::Difficulty difficulty, int n_agents, sim::Rng rng);

    std::string domainName() const override { return "kitchen"; }

    std::vector<env::Subgoal> usefulSubgoals(int agent_id) const override;
    std::vector<env::Subgoal> validSubgoals(int agent_id) const override;

    /** Dishes served so far. */
    int servedCount() const;

    /** Dishes ordered. */
    int orderCount() const { return orders_; }

    env::ObjectId board() const { return board_; }
    env::ObjectId stove() const { return stove_; }
    env::ObjectId counter() const { return counter_; }

    /** Ingredient states. */
    static constexpr int kRaw = 0;
    static constexpr int kChopped = 1;
    static constexpr int kCooked = 2;

  protected:
    env::ActionResult applyDomain(int agent_id,
                                  const env::Primitive &prim) override;

  private:
    env::ObjectId board_ = env::kNoObject;
    env::ObjectId stove_ = env::kNoObject;
    env::ObjectId counter_ = env::kNoObject;
    int orders_ = 0;
};

} // namespace ebs::envs

#endif // EBS_ENVS_KITCHEN_ENV_H
