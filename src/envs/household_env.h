#ifndef EBS_ENVS_HOUSEHOLD_ENV_H
#define EBS_ENVS_HOUSEHOLD_ENV_H

#include <string>
#include <utility>
#include <vector>

#include "envs/grid_env.h"

namespace ebs::envs {

/**
 * Household rearrangement, modeled on Communicative Watch-And-Help (C-WAH)
 * and VirtualHome tasks used by OLA, CoELA, COHERENT, and EmbodiedGPT:
 * "set the table" / "put groceries away". Every goal item has a designated
 * destination (the dining table or the fridge); several goal items start
 * hidden inside closed cabinets, so agents must search.
 */
class HouseholdEnv : public GridEnvironment
{
  public:
    /**
     * @param difficulty easy: 3 items, none hidden; medium: 5 items, 2
     *                   hidden; hard: 8 items, 4 hidden, larger flat
     */
    HouseholdEnv(env::Difficulty difficulty, int n_agents, sim::Rng rng);

    std::string domainName() const override { return "household"; }

    std::vector<env::Subgoal> usefulSubgoals(int agent_id) const override;
    std::vector<env::Subgoal> validSubgoals(int agent_id) const override;

    /** Number of goal items currently at their destination. */
    int placedCount() const;

    /** Total goal items. */
    int goalCount() const { return static_cast<int>(goals_.size()); }

    /** Destination for a goal item (kNoObject if not a goal item). */
    env::ObjectId destinationOf(env::ObjectId item) const;

  private:
    /** (goal item, destination container/zone) pairs. */
    std::vector<std::pair<env::ObjectId, env::ObjectId>> goals_;
    env::ObjectId table_ = env::kNoObject;
    env::ObjectId fridge_ = env::kNoObject;
};

} // namespace ebs::envs

#endif // EBS_ENVS_HOUSEHOLD_ENV_H
