#ifndef EBS_ENVS_BOXNET_ENV_H
#define EBS_ENVS_BOXNET_ENV_H

#include <string>
#include <vector>

#include "envs/grid_env.h"

namespace ebs::envs {

/**
 * BoxNet-style collaborative box rearrangement (CMAS / DMAS / HMAS
 * benchmarks): boxes start scattered across a zoned floor and each must be
 * routed to its own colored target zone. Boxes far from their target must
 * pass through intermediate zones, so work naturally partitions across
 * agents and mis-assignment wastes steps.
 */
class BoxNetEnv : public GridEnvironment
{
  public:
    /**
     * @param difficulty easy: 2x2 zones / 2 boxes; medium: 3x2 / 4;
     *                   hard: 3x3 / 6
     */
    BoxNetEnv(env::Difficulty difficulty, int n_agents, sim::Rng rng);

    std::string domainName() const override { return "boxnet"; }

    std::vector<env::Subgoal> usefulSubgoals(int agent_id) const override;
    std::vector<env::Subgoal> validSubgoals(int agent_id) const override;

    /** Target zone object for a box (kNoObject if not a box). */
    env::ObjectId targetOf(env::ObjectId box) const;

    int placedCount() const;
    int boxCount() const { return static_cast<int>(goals_.size()); }

  private:
    std::vector<std::pair<env::ObjectId, env::ObjectId>> goals_;
};

} // namespace ebs::envs

#endif // EBS_ENVS_BOXNET_ENV_H
