#ifndef EBS_ENVS_WAREHOUSE_ENV_H
#define EBS_ENVS_WAREHOUSE_ENV_H

#include <string>
#include <vector>

#include "envs/grid_env.h"

namespace ebs::envs {

/**
 * Warehouse order fulfilment (the CMAS/DMAS Warehouse benchmark): mobile
 * robots fetch packages from shelf aisles and deliver them to a depot.
 * Narrow aisles make agents physically interfere — a key multi-agent
 * congestion effect at higher agent counts.
 */
class WarehouseEnv : public GridEnvironment
{
  public:
    /** easy: 3 packages; medium: 6; hard: 10 (bigger floor) */
    WarehouseEnv(env::Difficulty difficulty, int n_agents, sim::Rng rng);

    std::string domainName() const override { return "warehouse"; }

    std::vector<env::Subgoal> usefulSubgoals(int agent_id) const override;
    std::vector<env::Subgoal> validSubgoals(int agent_id) const override;

    env::ObjectId depot() const { return depot_; }
    int deliveredCount() const;
    int packageCount() const { return packages_; }

    static constexpr int kPackage = 1;

  private:
    env::ObjectId depot_ = env::kNoObject;
    int packages_ = 0;
};

} // namespace ebs::envs

#endif // EBS_ENVS_WAREHOUSE_ENV_H
