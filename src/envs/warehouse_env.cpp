#include "envs/warehouse_env.h"

#include <memory>

#include "envs/predicate_task.h"

namespace ebs::envs {

namespace {

struct Layout
{
    int width;
    int height;
    int packages;
    int max_steps;
};

Layout
layoutFor(env::Difficulty difficulty)
{
    switch (difficulty) {
      case env::Difficulty::Easy:
        return {15, 11, 3, 50};
      case env::Difficulty::Medium:
        return {19, 13, 6, 90};
      case env::Difficulty::Hard:
        return {25, 15, 10, 130};
    }
    return {15, 11, 3, 50};
}

/** Open floor with shelf rows: walls every other column band. */
env::GridMap
warehouseFloor(const Layout &layout)
{
    env::GridMap map(layout.width, layout.height);
    // Border walls.
    for (int x = 0; x < layout.width; ++x) {
        map.setWalkable({x, 0}, false);
        map.setWalkable({x, layout.height - 1}, false);
    }
    for (int y = 0; y < layout.height; ++y) {
        map.setWalkable({0, y}, false);
        map.setWalkable({layout.width - 1, y}, false);
    }
    // Shelf rows: horizontal shelving with aisle gaps, leaving the top and
    // bottom lanes plus a central cross-aisle free.
    const int mid_x = layout.width / 2;
    for (int y = 3; y < layout.height - 3; y += 3) {
        for (int x = 2; x < layout.width - 2; ++x) {
            if (x == mid_x || x == mid_x + 1)
                continue; // central cross-aisle
            map.setWalkable({x, y}, false);
        }
    }
    return map;
}

} // namespace

WarehouseEnv::WarehouseEnv(env::Difficulty difficulty, int n_agents,
                           sim::Rng rng)
    : GridEnvironment(warehouseFloor(layoutFor(difficulty)))
{
    const Layout layout = layoutFor(difficulty);
    packages_ = layout.packages;

    env::Object depot;
    depot.name = "depot";
    depot.cls = env::ObjectClass::Target;
    depot.pos = {1, 1};
    depot_ = world_.addObject(depot);

    // Packages sit next to shelves.
    for (int i = 0; i < layout.packages; ++i) {
        env::Object pkg;
        pkg.name = "package " + std::to_string(i);
        pkg.cls = env::ObjectClass::Item;
        pkg.kind = kPackage;
        pkg.pos = randomFreeCell(rng);
        world_.addObject(pkg);
    }

    spawnAgents(n_agents, rng);

    const env::ObjectId dep = depot_;
    const int total = packages_;
    setTask(std::make_unique<PredicateTask>(
        "Deliver all " + std::to_string(total) + " packages to the depot",
        difficulty, layout.max_steps,
        [dep, total](const env::World &world) {
            int delivered = 0;
            for (const auto &obj : world.objects())
                if (obj.kind == kPackage && obj.inside == dep)
                    ++delivered;
            return static_cast<double>(delivered) / total;
        }));
}

int
WarehouseEnv::deliveredCount() const
{
    int delivered = 0;
    for (const auto &obj : world_.objects())
        if (obj.kind == kPackage && obj.inside == depot_)
            ++delivered;
    return delivered;
}

std::vector<env::Subgoal>
WarehouseEnv::usefulSubgoals(int agent_id) const
{
    std::vector<env::Subgoal> out;
    const env::AgentBody &body = world_.agent(agent_id);

    if (body.carrying != env::kNoObject) {
        env::Subgoal sg;
        sg.kind = env::SubgoalKind::PutInto;
        sg.target = body.carrying;
        sg.dest_obj = depot_;
        out.push_back(sg);
        return out;
    }

    for (const auto &obj : world_.objects()) {
        if (obj.kind != kPackage || obj.inside == depot_ || obj.held_by >= 0)
            continue;
        env::Subgoal sg;
        sg.kind = env::SubgoalKind::PickUp;
        sg.target = obj.id;
        out.push_back(sg);
    }
    return out;
}

std::vector<env::Subgoal>
WarehouseEnv::validSubgoals(int agent_id) const
{
    std::vector<env::Subgoal> out = usefulSubgoals(agent_id);
    const env::AgentBody &body = world_.agent(agent_id);

    if (body.carrying != env::kNoObject) {
        env::Subgoal drop;
        drop.kind = env::SubgoalKind::PlaceAt;
        drop.dest = body.pos;
        out.push_back(drop);
    }
    env::Subgoal wait;
    wait.kind = env::SubgoalKind::Wait;
    out.push_back(wait);
    return out;
}

} // namespace ebs::envs
