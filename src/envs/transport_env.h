#ifndef EBS_ENVS_TRANSPORT_ENV_H
#define EBS_ENVS_TRANSPORT_ENV_H

#include <string>
#include <vector>

#include "envs/grid_env.h"

namespace ebs::envs {

/**
 * Multi-room object transport, modeled on the ThreeDWorld Multi-Agent
 * Transport (TDW-MAT) challenge used by CoELA and the object-transport
 * tasks of DaDu-E.
 *
 * A multi-room apartment contains goal items scattered across rooms (some
 * hidden inside closed containers) and a single goal zone. The task is to
 * deliver every goal item into the zone. Partial observability makes
 * exploration and memory matter: an agent only sees the room it stands in.
 */
class TransportEnv : public GridEnvironment
{
  public:
    /**
     * @param difficulty easy: 2x2 rooms / 4 items; medium: 3x2 / 8;
     *                   hard: 3x3 / 12 (some items in closed containers)
     * @param n_agents   number of embodied agents to spawn
     * @param rng        layout randomness (fork of the episode seed)
     */
    TransportEnv(env::Difficulty difficulty, int n_agents, sim::Rng rng);

    std::string domainName() const override { return "transport"; }

    std::vector<env::Subgoal> usefulSubgoals(int agent_id) const override;
    std::vector<env::Subgoal> validSubgoals(int agent_id) const override;

    /** The delivery zone object. */
    env::ObjectId goalZone() const { return zone_; }

    /** Items delivered so far. */
    int deliveredCount() const;

    /** Total goal items. */
    int goalCount() const { return goal_count_; }

    /** Kind code of goal items. */
    static constexpr int kGoalItem = 1;
    /** Kind code of distractor items. */
    static constexpr int kDistractor = 0;

  private:
    env::ObjectId zone_ = env::kNoObject;
    int goal_count_ = 0;
};

} // namespace ebs::envs

#endif // EBS_ENVS_TRANSPORT_ENV_H
