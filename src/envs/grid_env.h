#ifndef EBS_ENVS_GRID_ENV_H
#define EBS_ENVS_GRID_ENV_H

#include <memory>
#include <vector>

#include "env/env.h"
#include "sim/rng.h"

namespace ebs::envs {

/**
 * Common base for grid-world environments: A* motion planning and shared
 * spawn/query helpers. Concrete domains add their objects, tasks, oracle
 * subgoals, and domain primitives on top.
 */
class GridEnvironment : public env::Environment
{
  public:
    /** Motion via A* (adjacent-arrival); returns -1 when unreachable. */
    double motionCost(const env::Vec2i &from, const env::Vec2i &to,
                      std::vector<env::Vec2i> *path) const override;

    /**
     * The base applyDomain rejects every domain op without mutating
     * anything, so hallucinated domain primitives are speculation-safe
     * here. Subclasses whose domain rules mutate env-local state (craft
     * inventories, lift votes) must override back to false; subclasses
     * whose domain rules only mutate world() entities (kitchen) inherit
     * true and stay speculable.
     */
    bool domainOpsSpeculationSafe() const override { return true; }

  protected:
    explicit GridEnvironment(env::GridMap grid);

    /** Domain ops are invalid unless a subclass overrides. */
    env::ActionResult applyDomain(int agent_id,
                                  const env::Primitive &prim) override;

    /** A uniformly random walkable cell of a room (asserts one exists). */
    env::Vec2i randomFreeCellInRoom(int room, sim::Rng &rng) const;

    /** A uniformly random walkable cell anywhere. */
    env::Vec2i randomFreeCell(sim::Rng &rng) const;

    /** Ids of loose Items with the given kind code. */
    std::vector<env::ObjectId> looseItemsOfKind(int kind) const;

    /** Nearest loose Item of a kind to `from` (kNoObject if none). */
    env::ObjectId nearestLooseItem(const env::Vec2i &from, int kind) const;

    /** First object of a class and kind (kNoObject if none). */
    env::ObjectId findObject(env::ObjectClass cls, int kind) const;

    /** All objects of a class. */
    std::vector<env::ObjectId> objectsOfClass(env::ObjectClass cls) const;

    /** Spawn `count` agents at random free cells (distinct where possible). */
    void spawnAgents(int count, sim::Rng &rng);
};

} // namespace ebs::envs

#endif // EBS_ENVS_GRID_ENV_H
