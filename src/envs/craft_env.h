#ifndef EBS_ENVS_CRAFT_ENV_H
#define EBS_ENVS_CRAFT_ENV_H

#include <map>
#include <set>
#include <string>
#include <vector>

#include "envs/grid_env.h"

namespace ebs::envs {

/**
 * Open-world crafting with a tech tree, modeled on the Minecraft tasks of
 * JARVIS-1 / MP5 / DEPS ("obtain diamond pickaxe"). The map is a 3x3 zone
 * wilderness; resource nodes (trees, stone, iron, diamond) are scattered
 * with rarer resources in farther zones. Agents mine resources into an
 * inventory and craft through the chain
 *
 *   wood -> planks -> sticks -> wooden pickaxe -> stone pickaxe
 *        -> iron ingot -> iron pickaxe -> diamond pickaxe
 *
 * Better pickaxes gate harder ores, producing the long-horizon dependency
 * structure that drives the paper's step counts.
 */
class CraftEnv : public GridEnvironment
{
  public:
    // Item/resource kind codes.
    static constexpr int kWood = 100;
    static constexpr int kStone = 101;
    static constexpr int kIronOre = 102;
    static constexpr int kDiamond = 103;
    static constexpr int kPlank = 110;
    static constexpr int kStick = 111;
    static constexpr int kIronIngot = 112;
    static constexpr int kWoodenPick = 120;
    static constexpr int kStonePick = 121;
    static constexpr int kIronPick = 122;
    static constexpr int kDiamondPick = 123;

    /** One crafting recipe. */
    struct Recipe
    {
        int id = 0;
        std::vector<std::pair<int, int>> inputs; ///< (kind, count)
        int output = 0;
        int output_count = 1;
        bool at_furnace = false; ///< furnace recipes (smelting)
    };

    /**
     * @param difficulty easy: wooden pickaxe; medium: iron pickaxe;
     *                   hard: diamond pickaxe
     */
    CraftEnv(env::Difficulty difficulty, int n_agents, sim::Rng rng);

    std::string domainName() const override { return "craft"; }

    std::vector<env::Subgoal> usefulSubgoals(int agent_id) const override;
    std::vector<env::Subgoal> validSubgoals(int agent_id) const override;

    /** The recipe book. */
    static const std::vector<Recipe> &recipes();

    /** Inventory count of a kind for an agent. */
    int inventory(int agent_id, int kind) const;

    /** Kind code the task requires ("goal item"). */
    int goalKind() const { return goal_kind_; }

    /** Milestone kinds ever obtained (drives task progress). */
    const std::set<int> &achieved() const { return achieved_; }

    /** Best pickaxe tier an agent owns (0 none .. 3 iron+). */
    int toolTier(int agent_id) const;

  protected:
    env::ActionResult applyDomain(int agent_id,
                                  const env::Primitive &prim) override;

    /** Mine/Craft mutate per-agent inventories and the achieved set —
     * env-local state a world snapshot cannot isolate — so a speculative
     * turn aborts on the first domain primitive and re-runs serially. */
    bool domainOpsSpeculationSafe() const override { return false; }

  private:
    env::ActionResult doMine(int agent_id, const env::Primitive &prim);
    env::ActionResult doCraft(int agent_id, const env::Primitive &prim);

    /** Tool tier needed to mine a resource kind. */
    static int requiredTier(int resource_kind);

    /** Milestone list for the goal (ordered along the chain). */
    std::vector<int> milestones_;
    std::set<int> achieved_;
    int goal_kind_ = kWoodenPick;
    env::ObjectId table_ = env::kNoObject;
    env::ObjectId furnace_ = env::kNoObject;
    std::vector<std::map<int, int>> inventories_; ///< per agent
};

} // namespace ebs::envs

#endif // EBS_ENVS_CRAFT_ENV_H
