#ifndef EBS_ENVS_PREDICATE_TASK_H
#define EBS_ENVS_PREDICATE_TASK_H

#include <functional>
#include <string>
#include <utility>

#include "env/task.h"
#include "env/world.h"

namespace ebs::envs {

/**
 * Task defined by a progress functional over the world (0..1). Satisfied
 * when progress reaches 1. Most domains express their goals this way
 * ("fraction of boxes delivered", "fraction of dishes served").
 */
class PredicateTask : public env::Task
{
  public:
    using Progress = std::function<double(const env::World &)>;

    PredicateTask(std::string description, env::Difficulty difficulty,
                  int max_steps, Progress progress)
        : description_(std::move(description)), difficulty_(difficulty),
          max_steps_(max_steps), progress_(std::move(progress))
    {
    }

    std::string description() const override { return description_; }

    bool
    satisfied(const env::World &world) const override
    {
        return progress_(world) >= 1.0 - 1e-9;
    }

    double
    progress(const env::World &world) const override
    {
        return progress_(world);
    }

    int maxSteps() const override { return max_steps_; }

    env::Difficulty difficulty() const override { return difficulty_; }

  private:
    std::string description_;
    env::Difficulty difficulty_;
    int max_steps_;
    Progress progress_;
};

} // namespace ebs::envs

#endif // EBS_ENVS_PREDICATE_TASK_H
