#include "envs/transport_env.h"

#include <memory>

#include "envs/predicate_task.h"

namespace ebs::envs {

namespace {

struct Layout
{
    int rooms_x;
    int rooms_y;
    int goal_items;
    int distractors;
    int containers;
    int hidden_items; ///< goal items that start inside closed containers
    int max_steps;
};

Layout
layoutFor(env::Difficulty difficulty)
{
    switch (difficulty) {
      case env::Difficulty::Easy:
        return {2, 2, 4, 2, 1, 0, 60};
      case env::Difficulty::Medium:
        return {3, 2, 8, 4, 2, 2, 100};
      case env::Difficulty::Hard:
        return {3, 3, 12, 6, 3, 4, 140};
    }
    return {2, 2, 4, 2, 1, 0, 60};
}

} // namespace

TransportEnv::TransportEnv(env::Difficulty difficulty, int n_agents,
                           sim::Rng rng)
    : GridEnvironment(env::GridMap::apartment(
          layoutFor(difficulty).rooms_x, layoutFor(difficulty).rooms_y, 7, 7))
{
    const Layout layout = layoutFor(difficulty);
    goal_count_ = layout.goal_items;

    // Goal zone in room 0.
    {
        env::Object zone;
        zone.name = "goal zone";
        zone.cls = env::ObjectClass::Target;
        zone.pos = randomFreeCellInRoom(0, rng);
        zone_ = world_.addObject(zone);
    }

    // Containers scattered across rooms (closed, openable).
    std::vector<env::ObjectId> containers;
    for (int i = 0; i < layout.containers; ++i) {
        env::Object box;
        box.name = "container " + std::to_string(i);
        box.cls = env::ObjectClass::Container;
        box.openable = true;
        box.open = false;
        const int room =
            rng.uniformInt(0, world_.grid().roomCount() - 1);
        box.pos = randomFreeCellInRoom(room, rng);
        containers.push_back(world_.addObject(box));
    }

    // Goal items: visible ones scattered in non-goal rooms, hidden ones
    // inside containers.
    for (int i = 0; i < layout.goal_items; ++i) {
        env::Object item;
        item.name = "target item " + std::to_string(i);
        item.cls = env::ObjectClass::Item;
        item.kind = kGoalItem;
        if (i < layout.hidden_items && !containers.empty()) {
            const env::ObjectId host = rng.pick(containers);
            item.pos = world_.object(host).pos;
            item.inside = host;
            world_.addObject(item);
        } else {
            const int room =
                rng.uniformInt(1, world_.grid().roomCount() - 1);
            item.pos = randomFreeCellInRoom(room, rng);
            world_.addObject(item);
        }
    }

    // Distractors.
    for (int i = 0; i < layout.distractors; ++i) {
        env::Object item;
        item.name = "distractor " + std::to_string(i);
        item.cls = env::ObjectClass::Item;
        item.kind = kDistractor;
        const int room = rng.uniformInt(0, world_.grid().roomCount() - 1);
        item.pos = randomFreeCellInRoom(room, rng);
        world_.addObject(item);
    }

    spawnAgents(n_agents, rng);

    const env::ObjectId zone = zone_;
    const int total = goal_count_;
    setTask(std::make_unique<PredicateTask>(
        "Transport all " + std::to_string(total) +
            " target items to the goal zone",
        difficulty, layout.max_steps,
        [zone, total](const env::World &world) {
            int delivered = 0;
            for (const auto &obj : world.objects())
                if (obj.kind == kGoalItem && obj.inside == zone)
                    ++delivered;
            return static_cast<double>(delivered) / total;
        }));
}

int
TransportEnv::deliveredCount() const
{
    int delivered = 0;
    for (const auto &obj : world_.objects())
        if (obj.kind == kGoalItem && obj.inside == zone_)
            ++delivered;
    return delivered;
}

std::vector<env::Subgoal>
TransportEnv::usefulSubgoals(int agent_id) const
{
    std::vector<env::Subgoal> out;
    const env::AgentBody &body = world_.agent(agent_id);

    if (body.carrying != env::kNoObject) {
        // Carrying a goal item: deliver it. Carrying junk: put it down.
        env::Subgoal sg;
        if (world_.object(body.carrying).kind == kGoalItem) {
            sg.kind = env::SubgoalKind::PutInto;
            sg.target = body.carrying;
            sg.dest_obj = zone_;
        } else {
            sg.kind = env::SubgoalKind::PlaceAt;
            sg.dest = body.pos;
        }
        out.push_back(sg);
        return out;
    }

    for (const auto &obj : world_.objects()) {
        if (obj.kind != kGoalItem || obj.inside == zone_ || obj.held_by >= 0)
            continue;
        env::Subgoal sg;
        if (obj.inside != env::kNoObject) {
            sg.kind = env::SubgoalKind::TakeFrom;
            sg.target = obj.id;
            sg.dest_obj = obj.inside;
        } else {
            sg.kind = env::SubgoalKind::PickUp;
            sg.target = obj.id;
        }
        out.push_back(sg);
    }
    return out;
}

std::vector<env::Subgoal>
TransportEnv::validSubgoals(int agent_id) const
{
    std::vector<env::Subgoal> out;
    const env::AgentBody &body = world_.agent(agent_id);

    if (body.carrying != env::kNoObject) {
        env::Subgoal put;
        put.kind = env::SubgoalKind::PutInto;
        put.target = body.carrying;
        put.dest_obj = zone_;
        out.push_back(put);
        env::Subgoal drop;
        drop.kind = env::SubgoalKind::PlaceAt;
        drop.dest = body.pos;
        out.push_back(drop);
    } else {
        for (const auto &obj : world_.objects()) {
            if (obj.cls != env::ObjectClass::Item || obj.held_by >= 0)
                continue;
            env::Subgoal sg;
            if (obj.inside == zone_)
                continue; // delivered items stay delivered
            if (obj.inside != env::kNoObject) {
                sg.kind = env::SubgoalKind::TakeFrom;
                sg.target = obj.id;
                sg.dest_obj = obj.inside;
            } else {
                sg.kind = env::SubgoalKind::PickUp;
                sg.target = obj.id;
            }
            out.push_back(sg);
        }
        for (const auto cid : objectsOfClass(env::ObjectClass::Container)) {
            env::Subgoal sg;
            sg.kind = env::SubgoalKind::OpenObj;
            sg.target = cid;
            out.push_back(sg);
        }
    }

    // Navigation is always available.
    for (int room = 0; room < world_.grid().roomCount(); ++room) {
        env::Subgoal sg;
        sg.kind = env::SubgoalKind::Explore;
        sg.dest = roomAnchor(room);
        sg.param = room;
        out.push_back(sg);
    }
    env::Subgoal wait;
    wait.kind = env::SubgoalKind::Wait;
    out.push_back(wait);
    return out;
}

} // namespace ebs::envs
