#include "envs/boxnet_env.h"

#include <memory>

#include "envs/predicate_task.h"

namespace ebs::envs {

namespace {

struct Layout
{
    int zones_x;
    int zones_y;
    int boxes;
    int max_steps;
};

Layout
layoutFor(env::Difficulty difficulty)
{
    switch (difficulty) {
      case env::Difficulty::Easy:
        return {2, 2, 3, 60};
      case env::Difficulty::Medium:
        return {3, 2, 6, 110};
      case env::Difficulty::Hard:
        return {3, 3, 9, 160};
    }
    return {2, 2, 3, 60};
}

} // namespace

BoxNetEnv::BoxNetEnv(env::Difficulty difficulty, int n_agents, sim::Rng rng)
    : GridEnvironment(env::GridMap::apartment(layoutFor(difficulty).zones_x,
                                              layoutFor(difficulty).zones_y,
                                              5, 5))
{
    const Layout layout = layoutFor(difficulty);
    const int zones = world_.grid().roomCount();

    for (int i = 0; i < layout.boxes; ++i) {
        const int start_zone = rng.uniformInt(0, zones - 1);
        int target_zone = rng.uniformInt(0, zones - 1);
        if (target_zone == start_zone)
            target_zone = (target_zone + 1) % zones;

        env::Object zone_marker;
        zone_marker.name = "target zone " + std::to_string(i);
        zone_marker.cls = env::ObjectClass::Target;
        zone_marker.kind = i;
        zone_marker.pos = randomFreeCellInRoom(target_zone, rng);
        const env::ObjectId target = world_.addObject(zone_marker);

        env::Object box;
        box.name = "box " + std::to_string(i);
        box.cls = env::ObjectClass::Item;
        box.kind = i;
        box.pos = randomFreeCellInRoom(start_zone, rng);
        const env::ObjectId box_id = world_.addObject(box);

        goals_.emplace_back(box_id, target);
    }

    spawnAgents(n_agents, rng);

    const auto goals = goals_;
    setTask(std::make_unique<PredicateTask>(
        "Move each of the " + std::to_string(goals.size()) +
            " boxes to its colored target zone",
        difficulty, layout.max_steps,
        [goals](const env::World &world) {
            int placed = 0;
            for (const auto &[box, target] : goals)
                if (world.object(box).inside == target)
                    ++placed;
            return static_cast<double>(placed) /
                   static_cast<double>(goals.size());
        }));
}

env::ObjectId
BoxNetEnv::targetOf(env::ObjectId box) const
{
    for (const auto &[b, t] : goals_)
        if (b == box)
            return t;
    return env::kNoObject;
}

int
BoxNetEnv::placedCount() const
{
    int placed = 0;
    for (const auto &[box, target] : goals_)
        if (world_.object(box).inside == target)
            ++placed;
    return placed;
}

std::vector<env::Subgoal>
BoxNetEnv::usefulSubgoals(int agent_id) const
{
    std::vector<env::Subgoal> out;
    const env::AgentBody &body = world_.agent(agent_id);

    if (body.carrying != env::kNoObject) {
        env::Subgoal sg;
        const env::ObjectId target = targetOf(body.carrying);
        if (target != env::kNoObject) {
            sg.kind = env::SubgoalKind::PutInto;
            sg.target = body.carrying;
            sg.dest_obj = target;
        } else {
            sg.kind = env::SubgoalKind::PlaceAt;
            sg.dest = body.pos;
        }
        out.push_back(sg);
        return out;
    }

    for (const auto &[box, target] : goals_) {
        const env::Object &obj = world_.object(box);
        if (obj.inside == target || obj.held_by >= 0)
            continue;
        env::Subgoal sg;
        sg.kind = env::SubgoalKind::PickUp;
        sg.target = box;
        out.push_back(sg);
    }
    return out;
}

std::vector<env::Subgoal>
BoxNetEnv::validSubgoals(int agent_id) const
{
    std::vector<env::Subgoal> out = usefulSubgoals(agent_id);
    const env::AgentBody &body = world_.agent(agent_id);

    if (body.carrying != env::kNoObject) {
        env::Subgoal drop;
        drop.kind = env::SubgoalKind::PlaceAt;
        drop.dest = body.pos;
        out.push_back(drop);
        // Wrong zone: valid but wasteful.
        for (const auto &[box, target] : goals_) {
            if (box == body.carrying)
                continue;
            env::Subgoal wrong;
            wrong.kind = env::SubgoalKind::PutInto;
            wrong.target = body.carrying;
            wrong.dest_obj = target;
            out.push_back(wrong);
            break;
        }
    }

    for (int room = 0; room < world_.grid().roomCount(); ++room) {
        env::Subgoal sg;
        sg.kind = env::SubgoalKind::Explore;
        sg.dest = roomAnchor(room);
        sg.param = room;
        out.push_back(sg);
    }
    env::Subgoal wait;
    wait.kind = env::SubgoalKind::Wait;
    out.push_back(wait);
    return out;
}

} // namespace ebs::envs
