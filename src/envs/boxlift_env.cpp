#include "envs/boxlift_env.h"

#include <algorithm>
#include <memory>

#include "envs/predicate_task.h"

namespace ebs::envs {

namespace {

struct Layout
{
    std::vector<int> weights;
    int max_steps;
};

Layout
layoutFor(env::Difficulty difficulty)
{
    switch (difficulty) {
      case env::Difficulty::Easy:
        return {{2, 2, 2}, 60};
      case env::Difficulty::Medium:
        return {{2, 2, 3, 3}, 90};
      case env::Difficulty::Hard:
        return {{2, 3, 3, 3, 3}, 130};
    }
    return {{2, 2, 2}, 60};
}

} // namespace

BoxLiftEnv::BoxLiftEnv(env::Difficulty difficulty, int n_agents, sim::Rng rng)
    : GridEnvironment(env::GridMap::apartment(1, 1, 13, 11))
{
    const Layout layout = layoutFor(difficulty);

    env::Object truck;
    truck.name = "truck bed";
    truck.cls = env::ObjectClass::Target;
    truck.pos = randomFreeCellInRoom(0, rng);
    truck_ = world_.addObject(truck);

    for (std::size_t i = 0; i < layout.weights.size(); ++i) {
        env::Object box;
        box.name = "crate " + std::to_string(i);
        box.cls = env::ObjectClass::Item;
        box.kind = static_cast<int>(i);
        // Never require more lifters than there are agents.
        box.weight = std::min(layout.weights[i], std::max(1, n_agents));
        box.pos = randomFreeCellInRoom(0, rng);
        boxes_.push_back(world_.addObject(box));
    }

    spawnAgents(n_agents, rng);

    const env::ObjectId truck_id = truck_;
    const auto boxes = boxes_;
    setTask(std::make_unique<PredicateTask>(
        "Jointly lift all " + std::to_string(boxes.size()) +
            " heavy crates onto the truck",
        difficulty, layout.max_steps,
        [truck_id, boxes](const env::World &world) {
            int lifted = 0;
            for (const auto box : boxes)
                if (world.object(box).inside == truck_id)
                    ++lifted;
            return static_cast<double>(lifted) /
                   static_cast<double>(boxes.size());
        }));
}

int
BoxLiftEnv::liftedCount() const
{
    int lifted = 0;
    for (const auto box : boxes_)
        if (world_.object(box).inside == truck_)
            ++lifted;
    return lifted;
}

int
BoxLiftEnv::votesOn(env::ObjectId box) const
{
    const auto it = lift_votes_.find(box);
    return it == lift_votes_.end() ? 0
                                   : static_cast<int>(it->second.size());
}

env::ActionResult
BoxLiftEnv::applyDomain(int agent_id, const env::Primitive &prim)
{
    if (prim.op != env::PrimOp::Lift)
        return GridEnvironment::applyDomain(agent_id, prim);
    if (prim.target == env::kNoObject)
        return env::ActionResult::failure("lift without target");

    env::Object &box = world_.object(prim.target);
    if (box.cls != env::ObjectClass::Item ||
        std::find(boxes_.begin(), boxes_.end(), box.id) == boxes_.end())
        return env::ActionResult::failure("target is not a liftable crate");
    if (box.inside == truck_)
        return env::ActionResult::failure("crate already on the truck");
    const env::AgentBody &body = world_.agent(agent_id);
    if (env::chebyshev(body.pos, box.pos) > 1)
        return env::ActionResult::failure("crate out of reach");

    auto &votes = lift_votes_[box.id];
    votes.insert(agent_id);
    if (static_cast<double>(votes.size()) >= box.weight) {
        // Enough lifters this step: the crate goes onto the truck.
        box.inside = truck_;
        box.pos = world_.object(truck_).pos;
        box.room = world_.object(truck_).room;
        votes.clear();
    }
    return env::ActionResult::success();
}

std::vector<env::Subgoal>
BoxLiftEnv::usefulSubgoals(int agent_id) const
{
    (void)agent_id;
    std::vector<env::Subgoal> out;
    // The coordinated plan: every agent converges on the first remaining
    // crate. Proposing the same (lowest-id) crate to all agents is what a
    // good central plan or a productive dialogue round achieves.
    for (const auto box : boxes_) {
        if (world_.object(box).inside == truck_)
            continue;
        env::Subgoal sg;
        sg.kind = env::SubgoalKind::LiftWith;
        sg.target = box;
        out.push_back(sg);
        break;
    }
    return out;
}

std::vector<env::Subgoal>
BoxLiftEnv::validSubgoals(int agent_id) const
{
    (void)agent_id;
    std::vector<env::Subgoal> out;
    for (const auto box : boxes_) {
        if (world_.object(box).inside == truck_)
            continue;
        env::Subgoal sg;
        sg.kind = env::SubgoalKind::LiftWith;
        sg.target = box;
        out.push_back(sg);
    }
    env::Subgoal wait;
    wait.kind = env::SubgoalKind::Wait;
    out.push_back(wait);
    return out;
}

} // namespace ebs::envs
