#include "memory/memory.h"

#include <algorithm>
#include <cassert>

namespace ebs::memory {

MemoryModule::MemoryModule(Config config, sim::Rng rng)
    : config_(config), rng_(rng)
{
}

bool
MemoryModule::insideWindow(int record_step) const
{
    if (config_.capacity_steps <= 0)
        return true; // unlimited
    return record_step > current_step_ - config_.capacity_steps;
}

void
MemoryModule::recordObservation(const env::Observation &obs)
{
    if (!config_.enabled)
        return;
    current_step_ = std::max(current_step_, obs.step);

    // Remember the room visit.
    bool found = false;
    for (auto &[room, step] : room_visits_) {
        if (room == obs.room) {
            step = obs.step;
            found = true;
            break;
        }
    }
    if (!found && obs.room >= 0)
        room_visits_.emplace_back(obs.room, obs.step);

    for (const auto &seen : obs.objects) {
        ObservationRecord rec;
        rec.step = obs.step;
        rec.id = seen.id;
        rec.cls = seen.cls;
        rec.kind = seen.kind;
        rec.state = seen.state;
        rec.pos = seen.pos;
        rec.room = seen.room;
        rec.inside = seen.inside;
        rec.openable = seen.openable;
        rec.open = seen.open;
        observations_.push_back(rec);

        // Dual memory: fixtures (stations, containers, targets) are
        // environment-static, so they graduate to long-term storage.
        if (config_.dual_memory && seen.cls != env::ObjectClass::Item) {
            auto it = std::find_if(long_term_.begin(), long_term_.end(),
                                   [&](const ObservationRecord &r) {
                                       return r.id == seen.id;
                                   });
            if (it == long_term_.end())
                long_term_.push_back(rec);
            else
                *it = rec;
        }
    }
}

void
MemoryModule::recordSharedBelief(int step, const ObservationRecord &record)
{
    if (!config_.enabled)
        return;
    ObservationRecord rec = record;
    rec.step = step;
    observations_.push_back(rec);
}

void
MemoryModule::recordAction(int step, std::string subgoal, bool success)
{
    if (!config_.enabled)
        return;
    actions_.push_back({step, std::move(subgoal), success});
}

void
MemoryModule::recordDialogue(const DialogueRecord &record)
{
    if (!config_.enabled)
        return;
    dialogue_.push_back(record);
}

void
MemoryModule::advanceStep(int step)
{
    current_step_ = std::max(current_step_, step);
    if (!config_.enabled || config_.capacity_steps <= 0)
        return;
    auto prune = [&](auto &store) {
        while (!store.empty() && !insideWindow(store.front().step))
            store.pop_front();
    };
    prune(observations_);
    prune(actions_);
    prune(dialogue_);
    // Room visits outside the window are forgotten too (unless dual memory
    // keeps the layout in long-term storage).
    if (!config_.dual_memory) {
        std::erase_if(room_visits_, [&](const auto &rv) {
            return !insideWindow(rv.second);
        });
    }
}

void
MemoryModule::invalidate(env::ObjectId id)
{
    std::erase_if(observations_,
                  [&](const ObservationRecord &rec) { return rec.id == id; });
    std::erase_if(long_term_,
                  [&](const ObservationRecord &rec) { return rec.id == id; });
}

std::optional<ObservationRecord>
MemoryModule::belief(env::ObjectId id) const
{
    if (!config_.enabled)
        return std::nullopt;
    // Latest record wins (stores are chronological).
    for (auto it = observations_.rbegin(); it != observations_.rend(); ++it)
        if (it->id == id)
            return *it;
    for (const auto &rec : long_term_)
        if (rec.id == id)
            return rec;
    return std::nullopt;
}

bool
MemoryModule::knowsObject(env::ObjectId id) const
{
    return belief(id).has_value();
}

std::vector<ObservationRecord>
MemoryModule::knownObjects() const
{
    std::vector<ObservationRecord> out;
    if (!config_.enabled)
        return out;
    std::set<env::ObjectId> seen;
    for (auto it = observations_.rbegin(); it != observations_.rend(); ++it) {
        if (seen.insert(it->id).second)
            out.push_back(*it);
    }
    for (const auto &rec : long_term_)
        if (seen.insert(rec.id).second)
            out.push_back(rec);
    return out;
}

std::set<int>
MemoryModule::visitedRooms() const
{
    std::set<int> out;
    if (!config_.enabled)
        return out;
    for (const auto &[room, step] : room_visits_)
        out.insert(room);
    return out;
}

int
MemoryModule::lastVisit(int room) const
{
    for (const auto &[r, step] : room_visits_)
        if (r == room)
            return step;
    return -1;
}

RetrievedContext
MemoryModule::retrieve(int current_step)
{
    RetrievedContext ctx;
    if (!config_.enabled)
        return ctx;
    current_step_ = std::max(current_step_, current_step);

    const auto known = knownObjects();
    ctx.known_objects = static_cast<int>(known.size());
    // ~9 tokens per object sighting ("apple 3 at (4,7) in kitchen, chopped")
    ctx.observation_tokens = static_cast<int>(known.size()) * 9;
    // Dual memory summarizes static fixtures much more compactly.
    if (config_.dual_memory)
        ctx.observation_tokens =
            static_cast<int>(known.size()) * 5 +
            static_cast<int>(long_term_.size()) * 2;

    ctx.action_tokens = static_cast<int>(actions_.size()) * 7;
    for (const auto &d : dialogue_)
        ctx.dialogue_tokens += d.tokens;

    // Inconsistency model: past the onset, each extra live record adds a
    // small chance that retrieval surfaces a superseded belief.
    const std::size_t live = liveRecords();
    if (live > static_cast<std::size_t>(config_.inconsistency_onset)) {
        const double excess =
            static_cast<double>(live) - config_.inconsistency_onset;
        double p = excess * config_.inconsistency_rate;
        if (!config_.multimodal_retrieval)
            p *= 2.0; // text-embedding-only retrieval confuses more easily
        if (config_.dual_memory)
            p *= 0.3;
        for (const auto &rec : known) {
            (void)rec;
            if (rng_.bernoulli(std::min(0.5, p)))
                ++ctx.stale_beliefs;
        }
    }
    return ctx;
}

double
MemoryModule::retrievalLatency() const
{
    if (!config_.enabled)
        return 0.0;
    double per_record = config_.retrieval_per_record_s;
    if (config_.dual_memory)
        per_record *= 0.5; // short-term store stays small
    return config_.retrieval_base_s +
           per_record * static_cast<double>(liveRecords());
}

std::size_t
MemoryModule::liveRecords() const
{
    return observations_.size() + actions_.size() + dialogue_.size() +
           long_term_.size();
}

int
MemoryModule::recentConsecutiveFailures() const
{
    int count = 0;
    for (auto it = actions_.rbegin(); it != actions_.rend(); ++it) {
        if (it->success)
            break;
        ++count;
    }
    return count;
}

void
MemoryModule::clear()
{
    observations_.clear();
    actions_.clear();
    dialogue_.clear();
    room_visits_.clear();
    long_term_.clear();
    current_step_ = 0;
}

} // namespace ebs::memory
