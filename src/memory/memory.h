#ifndef EBS_MEMORY_MEMORY_H
#define EBS_MEMORY_MEMORY_H

#include <deque>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "env/observation.h"
#include "sim/rng.h"

namespace ebs::memory {

/** One remembered object sighting. */
struct ObservationRecord
{
    int step = 0;
    env::ObjectId id = env::kNoObject;
    env::ObjectClass cls = env::ObjectClass::Item;
    int kind = 0;
    int state = 0;
    env::Vec2i pos;
    int room = -1;
    env::ObjectId inside = env::kNoObject;
    bool openable = false;
    bool open = true;
};

/** One remembered action outcome. */
struct ActionRecord
{
    int step = 0;
    std::string subgoal; ///< rendered subgoal description
    bool success = false;
};

/** One remembered dialogue message (content abstracted to token size). */
struct DialogueRecord
{
    int step = 0;
    int from_agent = -1;
    int to_agent = -1; ///< -1 = broadcast
    int tokens = 0;
    bool useful = false; ///< carried task-relevant information
};

/** What a retrieval returns, sized for prompt construction. */
struct RetrievedContext
{
    int observation_tokens = 0;
    int action_tokens = 0;
    int dialogue_tokens = 0;
    int known_objects = 0;
    int stale_beliefs = 0; ///< beliefs contradicted by current ground truth

    int
    totalTokens() const
    {
        return observation_tokens + action_tokens + dialogue_tokens;
    }
};

/**
 * The memory module: observation, action, and dialogue stores with a
 * capacity window measured in steps (the paper's Fig. 5 x-axis).
 *
 * Records older than `capacity_steps` are pruned, so small capacities
 * genuinely forget object locations and visited rooms — the mechanism
 * behind the paper's success-rate/steps sensitivity. Retrieval latency
 * grows with the number of live records, and very large windows return
 * stale or superseded beliefs more often (memory-inconsistency model).
 */
class MemoryModule
{
  public:
    /** Tuning knobs. */
    struct Config
    {
        bool enabled = true;        ///< ablation switch (Fig. 3 "w/o Memory")
        int capacity_steps = 40;    ///< window size; <=0 means unlimited
        bool multimodal_retrieval = true; ///< vs. text-embedding-only
        bool dual_memory = false;   ///< Rec. 5: static facts never pruned
        double retrieval_base_s = 0.03;       ///< fixed lookup latency
        double retrieval_per_record_s = 8e-4; ///< linear scan component
        /** Per-record chance that a superseded belief wins retrieval when
         * the window holds more than `inconsistency_onset` records. */
        double inconsistency_rate = 2e-4;
        int inconsistency_onset = 300;
    };

    explicit MemoryModule(Config config, sim::Rng rng);

    const Config &config() const { return config_; }

    // --- writes ---

    /** Ingest an observation produced by the sensing module. */
    void recordObservation(const env::Observation &obs);

    /** Ingest a belief received from another agent's message. */
    void recordSharedBelief(int step, const ObservationRecord &record);

    /** Log an executed subgoal and its outcome. */
    void recordAction(int step, std::string subgoal, bool success);

    /** Log a dialogue message. */
    void recordDialogue(const DialogueRecord &record);

    /** Advance to `step`, pruning records outside the capacity window. */
    void advanceStep(int step);

    /**
     * Drop every belief about an object (the agent verified it is not
     * where memory claimed — e.g., another agent moved it).
     */
    void invalidate(env::ObjectId id);

    // --- reads ---

    /** Latest surviving belief about an object, if any. */
    std::optional<ObservationRecord> belief(env::ObjectId id) const;

    /** True when some surviving record mentions the object. */
    bool knowsObject(env::ObjectId id) const;

    /** Latest belief per object (deduplicated). */
    std::vector<ObservationRecord> knownObjects() const;

    /** Rooms visited within the window (plus long-term, if dual memory). */
    std::set<int> visitedRooms() const;

    /** Step at which the agent last stood in a room (-1 if unknown). */
    int lastVisit(int room) const;

    /**
     * Perform a retrieval for prompt construction; sizes reflect what an
     * LLM prompt would carry. Pass the ground-truth world to measure
     * staleness; the inconsistency model may deliberately surface a
     * superseded record (mutating nothing).
     */
    RetrievedContext retrieve(int current_step);

    /** Latency of one retrieval at the current store size. */
    double retrievalLatency() const;

    /** Number of live records across all stores. */
    std::size_t liveRecords() const;

    /** Number of surviving dialogue records. */
    std::size_t dialogueCount() const { return dialogue_.size(); }

    /** Consecutive failures recorded for the same subgoal recently. */
    int recentConsecutiveFailures() const;

    void clear();

  private:
    bool insideWindow(int record_step) const;

    Config config_;
    sim::Rng rng_;
    int current_step_ = 0;
    std::deque<ObservationRecord> observations_;
    std::deque<ActionRecord> actions_;
    std::deque<DialogueRecord> dialogue_;
    /** room id -> last step the agent stood there (long-term in dual mode) */
    std::vector<std::pair<int, int>> room_visits_;
    /** long-term static beliefs (dual memory): station/container locations */
    std::vector<ObservationRecord> long_term_;
};

} // namespace ebs::memory

#endif // EBS_MEMORY_MEMORY_H
