#include "core/agent.h"

#include <algorithm>
#include <cassert>

#include "plan/controller.h"

namespace ebs::core {

namespace {

/** Probability that a stuck agent abandons a repeated failing intent. */
constexpr double kLoopEscapeProb = 0.15;

/** Planning-complexity penalty per corrupted action record: failures
 * logged as successes mislead subsequent planning calls, so plan quality
 * decays as the uncorrected history accumulates (the compounding error
 * the reflection module exists to stop). */
constexpr double kCorruptedRecordComplexity = 0.07;
constexpr double kMaxCorruptionComplexity = 0.45;

/** LLM-direct low-level control: per-primitive reliability multiplier.
 * Choosing among hundreds of raw primitives (instead of a curated menu)
 * is far outside the model's competence — the paper observes that systems
 * without an execution module fail outright and hit the step limit. */
constexpr double kDirectControlReliability = 0.55;

} // namespace

Agent::Agent(int id, AgentConfig config, env::Environment *environment,
             sim::Rng rng, sim::SimClock *clock,
             stats::LatencyRecorder *recorder, sim::EventTrace *trace,
             llm::EngineSession *llm_session)
    : id_(id), config_(std::move(config)), env_(environment), rng_(rng),
      clock_(clock), recorder_(recorder), trace_(trace),
      planner_engine_(llm_session, config_.planner_model, rng_.fork(1)),
      comm_engine_(llm_session, config_.comm_model, rng_.fork(2)),
      reflect_engine_(llm_session, config_.reflect_model, rng_.fork(3)),
      memory_(config_.memory, rng_.fork(4))
{
    assert(env_ != nullptr && clock_ != nullptr && recorder_ != nullptr);
    if (!config_.has_memory) {
        auto cfg = memory_.config();
        // The ablation disables the module entirely.
        cfg.enabled = false;
        memory_ = memory::MemoryModule(cfg, rng_.fork(4));
    }
}

llm::LlmUsage
Agent::llmUsage() const
{
    llm::LlmUsage usage = planner_engine_.usage();
    usage += comm_engine_.usage();
    usage += reflect_engine_.usage();
    return usage;
}

void
Agent::beginBufferedTurn(stats::LatencyRecorder *scratch,
                         llm::DeferredNotes *notes)
{
    assert(scratch != nullptr && notes != nullptr);
    assert(episode_recorder_ == nullptr && "buffered turns do not nest");
    episode_recorder_ = recorder_;
    recorder_ = scratch;
    planner_engine_.defer(notes);
    comm_engine_.defer(notes);
    reflect_engine_.defer(notes);
}

void
Agent::endBufferedTurn()
{
    assert(episode_recorder_ != nullptr && "no buffered turn is active");
    recorder_ = episode_recorder_;
    episode_recorder_ = nullptr;
    planner_engine_.defer(nullptr);
    comm_engine_.defer(nullptr);
    reflect_engine_.defer(nullptr);
}

void
Agent::charge(stats::ModuleKind kind, double seconds, const char *label)
{
    recorder_->record(kind, seconds);
    if (trace_ != nullptr && trace_->enabled())
        trace_->record(clock_->now(), std::string(moduleKindName(kind)),
                       label != nullptr ? label : "");
}

void
Agent::sense(int step)
{
    if (config_.has_sensing) {
        percept_ = env_->observe(id_, step);
        // Detector misses: some in-view objects go unseen this step. The
        // carried object is always known (proprioception).
        if (config_.lat.sensing_miss_rate > 0.0) {
            std::erase_if(percept_.objects,
                          [&](const env::ObservedObject &seen) {
                              return seen.held_by != id_ &&
                                     rng_.bernoulli(
                                         config_.lat.sensing_miss_rate);
                          });
        }
        charge(stats::ModuleKind::Sensing, config_.lat.sensing.sample(rng_),
               "observe");
    } else {
        // No sensing module: the system receives the full symbolic game
        // state directly (MindAgent/OLA style), at no perception cost.
        percept_ = env::Observation{};
        percept_.agent_id = id_;
        percept_.step = step;
        const env::AgentBody &body = env_->world().agent(id_);
        percept_.self_pos = body.pos;
        percept_.room = env_->world().grid().room(body.pos);
        percept_.carrying = body.carrying != env::kNoObject;
        percept_.carried = body.carrying;
        for (const auto &obj : env_->world().objects()) {
            env::ObservedObject seen;
            seen.id = obj.id;
            seen.cls = obj.cls;
            seen.kind = obj.kind;
            seen.state = obj.state;
            seen.pos = env_->world().effectivePos(obj.id);
            seen.room = env_->world().grid().room(seen.pos);
            seen.inside = obj.inside;
            seen.held_by = obj.held_by;
            seen.openable = obj.openable;
            seen.open = obj.open;
            percept_.objects.push_back(seen);
        }
    }

    memory_.recordObservation(percept_);
    memory_.advanceStep(step);

    // Direct observation can contradict phantom "already handled"
    // beliefs, but the agent does not always reconcile the conflict (its
    // memory still claims the object was dealt with).
    for (const auto &seen : percept_.objects) {
        if (believed_done_.count(seen.id) == 0)
            continue;
        const env::Object &obj = env_->world().object(seen.id);
        if (obj.loose() && rng_.bernoulli(0.3))
            believed_done_.erase(seen.id);
    }
}

void
Agent::receiveMessage(const Message &message, int step)
{
    memory::DialogueRecord rec;
    rec.step = step;
    rec.from_agent = message.from_agent;
    rec.to_agent = message.to_agent;
    rec.tokens = message.tokens;
    rec.useful = message.useful;
    memory_.recordDialogue(rec);

    if (message.useful) {
        for (const auto &belief : message.shared_beliefs)
            memory_.recordSharedBelief(step, belief);
    }
}

Message
Agent::generateMessage(int step, int n_agents)
{
    Message message;
    message.from_agent = id_;
    message.step = step;
    if (!config_.has_communication)
        return message;

    // The communication module retrieves context before generating.
    const auto retrieved = memory_.retrieve(step);
    charge(stats::ModuleKind::Memory, memory_.retrievalLatency(),
           "comm retrieval");

    llm::LlmRequest request;
    request.kind = llm::CallKind::Communication;
    request.tokens_in = config_.lat.comm_prompt_base +
                        retrieved.dialogue_tokens +
                        retrieved.observation_tokens +
                        (n_agents - 1) * 24;
    request.tokens_out_mean = config_.lat.comm_out_tokens;
    const auto response = comm_engine_.complete(request);
    charge(stats::ModuleKind::Communication, response.latency_s,
           "message generation");

    message.tokens = response.tokens_out;
    last_message_tokens_ = request.tokens_in + response.tokens_out;
    message.useful = response.good && rng_.bernoulli(config_.message_utility);
    if (message.useful) {
        // Share the freshest sightings and the current intent.
        auto known = memory_.knownObjects();
        const std::size_t share =
            std::min<std::size_t>(known.size(), 8);
        message.shared_beliefs.assign(known.begin(),
                                      known.begin() + share);
        if (repeat_intent_.has_value()) {
            message.intent = *repeat_intent_;
            message.has_intent = true;
        }
    }
    return message;
}

bool
Agent::knows(env::ObjectId id) const
{
    if (id == env::kNoObject)
        return true;
    for (const auto &seen : percept_.objects)
        if (seen.id == id)
            return true;
    return memory_.knowsObject(id);
}

std::optional<env::Vec2i>
Agent::believedPos(env::ObjectId id) const
{
    for (const auto &seen : percept_.objects)
        if (seen.id == id)
            return seen.pos;
    const auto belief = memory_.belief(id);
    if (belief.has_value())
        return belief->pos;
    return std::nullopt;
}

std::vector<env::Subgoal>
Agent::knownUsefulSubgoals() const
{
    std::vector<env::Subgoal> out;
    for (const auto &sg : env_->usefulSubgoals(id_)) {
        if (!knows(sg.target) || !knows(sg.dest_obj))
            continue;
        if (sg.target != env::kNoObject &&
            believed_done_.count(sg.target) > 0)
            continue;
        out.push_back(sg);
    }
    return out;
}

env::Subgoal
Agent::exploreSubgoal()
{
    const int rooms = env_->world().grid().roomCount();
    const int here = percept_.room;

    // Prefer unvisited rooms, then the least recently visited one.
    std::vector<int> unvisited;
    int oldest_room = -1;
    int oldest_step = 0;
    for (int room = 0; room < rooms; ++room) {
        if (room == here)
            continue;
        const int visited = memory_.lastVisit(room);
        if (visited < 0) {
            unvisited.push_back(room);
        } else if (oldest_room < 0 || visited < oldest_step) {
            oldest_room = room;
            oldest_step = visited;
        }
    }

    int room;
    if (!unvisited.empty())
        room = unvisited[rng_.pickIndex(unvisited.size())];
    else if (oldest_room >= 0)
        room = oldest_room;
    else
        room = rooms > 1 ? (here + 1 + rng_.uniformInt(0, rooms - 2)) % rooms
                         : here;

    env::Subgoal sg;
    sg.kind = env::SubgoalKind::Explore;
    sg.dest = env_->roomAnchor(room);
    sg.param = room;
    return sg;
}

env::Subgoal
Agent::searchOrExploreSubgoal()
{
    // Unvisited rooms take priority: cheap information gain.
    const int rooms = env_->world().grid().roomCount();
    const auto visited = memory_.visitedRooms();
    for (int room = 0; room < rooms; ++room)
        if (visited.count(room) == 0 && room != percept_.room)
            return exploreSubgoal();

    // Map covered: open the nearest known closed container — goal items
    // may be hiding inside (TDW-MAT / C-WAH style search).
    const env::Vec2i here = env_->world().agent(id_).pos;
    env::ObjectId best = env::kNoObject;
    int best_dist = 0;
    auto consider = [&](env::ObjectId id, bool openable, bool open,
                        const env::Vec2i &pos) {
        if (!openable || open || believed_done_.count(id) > 0)
            return;
        const int d = env::manhattan(here, pos);
        if (best == env::kNoObject || d < best_dist) {
            best = id;
            best_dist = d;
        }
    };
    for (const auto &seen : percept_.objects)
        consider(seen.id, seen.openable, seen.open, seen.pos);
    for (const auto &rec : memory_.knownObjects())
        consider(rec.id, rec.openable, rec.open, rec.pos);

    if (best != env::kNoObject) {
        env::Subgoal sg;
        sg.kind = env::SubgoalKind::OpenObj;
        sg.target = best;
        return sg;
    }
    return exploreSubgoal();
}

env::Subgoal
Agent::suboptimalSubgoal()
{
    const auto menu = env_->validSubgoals(id_);
    if (menu.empty())
        return env::Subgoal{};
    return menu[rng_.pickIndex(menu.size())];
}

env::Subgoal
Agent::hallucinatedSubgoal()
{
    const auto &objects = env_->world().objects();
    env::Subgoal sg;
    if (objects.empty()) {
        sg.kind = env::SubgoalKind::Wait;
        return sg;
    }
    const auto &target = objects[rng_.pickIndex(objects.size())];
    switch (rng_.uniformInt(0, 2)) {
      case 0:
        sg.kind = env::SubgoalKind::PickUp;
        break;
      case 1:
        sg.kind = env::SubgoalKind::OpenObj;
        break;
      default:
        sg.kind = env::SubgoalKind::Mine;
        break;
    }
    sg.target = target.id;
    return sg;
}

PlanDecision
Agent::plan(int step, const PlanContext &context)
{
    PlanDecision decision;

    // Memory retrieval feeding the planning prompt.
    const auto retrieved = memory_.retrieve(step);
    charge(stats::ModuleKind::Memory, memory_.retrievalLatency(),
           "plan retrieval");

    const auto menu = env_->validSubgoals(id_);
    const int menu_tokens = static_cast<int>(menu.size()) *
                            config_.lat.menu_tokens_per_option;
    const double compression =
        std::clamp(context.compression, 0.05, 1.0);

    llm::LlmRequest request;
    request.kind = llm::CallKind::Planning;
    request.tokens_in =
        config_.lat.plan_prompt_base +
        static_cast<int>(retrieved.totalTokens() * compression) +
        menu_tokens;
    request.tokens_out_mean = config_.lat.plan_out_tokens;
    request.complexity =
        std::clamp(context.extra_complexity +
                       config_.decentralized_complexity *
                           (context.n_agents - 1) +
                       std::min(0.2,
                                static_cast<double>(menu.size()) / 400.0) +
                       std::min(kMaxCorruptionComplexity,
                                kCorruptedRecordComplexity *
                                    corrupted_records_) +
                       // Memory inconsistency: conflicting beliefs in an
                       // oversized store confuse the model (Takeaway 4).
                       std::min(0.25, 0.05 * retrieved.stale_beliefs),
                   0.0, 0.95);
    const auto response = planner_engine_.complete(request);
    charge(stats::ModuleKind::Planning, response.latency_s, "plan");
    last_plan_tokens_ = request.tokens_in + response.tokens_out;
    decision.prompt_tokens = last_plan_tokens_;

    // Stuck-loop: an undetected failure makes the agent re-issue the same
    // subgoal (its context claims it should work).
    if (repeat_intent_.has_value()) {
        decision.subgoal = *repeat_intent_;
        repeat_intent_.reset();
        decision.from_oracle = false;
        return decision;
    }

    bool good = response.good;

    // CoELA-style third LLM call: select the concrete action from a menu.
    if (config_.llm_action_selection) {
        llm::LlmRequest select;
        select.kind = llm::CallKind::ActionSelection;
        select.tokens_in = 240 + menu_tokens;
        select.tokens_out_mean = config_.lat.action_select_out_tokens;
        const auto sel = planner_engine_.complete(select);
        charge(stats::ModuleKind::Planning, sel.latency_s,
               "action selection");
        good = good && sel.good;
    }

    if (good) {
        const auto known = knownUsefulSubgoals();
        if (!known.empty()) {
            decision.subgoal = known[rng_.pickIndex(known.size())];
            decision.from_oracle = true;
        } else {
            // A good plan with no actionable knowledge means search.
            decision.subgoal = searchOrExploreSubgoal();
            decision.from_oracle = true;
        }
    } else if (rng_.bernoulli(config_.hallucination_rate)) {
        decision.subgoal = hallucinatedSubgoal();
        decision.hallucinated = true;
    } else {
        decision.subgoal = suboptimalSubgoal();
    }

    decision.wants_comm =
        config_.has_communication && rng_.bernoulli(config_.message_utility);
    return decision;
}

env::Subgoal
Agent::chooseSubgoal(bool good_plan, bool hallucinate, int step)
{
    (void)step;
    if (repeat_intent_.has_value()) {
        const env::Subgoal sg = *repeat_intent_;
        repeat_intent_.reset();
        return sg;
    }
    if (good_plan) {
        const auto known = knownUsefulSubgoals();
        if (!known.empty())
            return known[rng_.pickIndex(known.size())];
        return searchOrExploreSubgoal();
    }
    if (hallucinate)
        return hallucinatedSubgoal();
    return suboptimalSubgoal();
}

ExecResult
Agent::execute(int step, const env::Subgoal &subgoal)
{
    (void)step;
    ExecResult result;
    result.attempted = true;

    // Stale-belief check: if the agent's belief about the target's location
    // is wrong, it navigates to the remembered spot and comes up empty.
    if (subgoal.target != env::kNoObject &&
        subgoal.kind != env::SubgoalKind::PutInto &&
        subgoal.kind != env::SubgoalKind::Wait) {
        const auto believed = believedPos(subgoal.target);
        const env::Vec2i actual =
            env_->world().effectivePos(subgoal.target);
        if (believed.has_value() && env::manhattan(*believed, actual) > 1) {
            // Walk to the believed position (real movement cost)...
            std::vector<env::Vec2i> path;
            const double cost = env_->motionCost(
                env_->world().agent(id_).pos, *believed, &path);
            charge(stats::ModuleKind::Execution,
                   config_.lat.motion_planner.sample(rng_), "motion plan");
            if (cost > 0) {
                for (std::size_t i = 1; i < path.size(); ++i) {
                    env::Primitive move;
                    move.op = env::PrimOp::MoveStep;
                    move.dest = path[i];
                    if (!env_->applyPrimitive(id_, move).ok)
                        break;
                    charge(stats::ModuleKind::Execution,
                           config_.lat.move_per_cell_s);
                    ++result.primitives;
                }
            }
            result.success = false;
            result.fail_reason = "object not at remembered location";
            // The agent has verified the belief is wrong: drop it so the
            // next plan searches instead of returning here. (Deferred
            // during speculative turns — memory must stay untouched until
            // the turn commits.)
            if (deferred_invalidations_ != nullptr)
                deferred_invalidations_->push_back(subgoal.target);
            else
                memory_.invalidate(subgoal.target);
            ++failed_subgoals_;
            return result;
        }
    }

    // Compile the subgoal with the low-level planner.
    plan::Compiled compiled = plan::compileSubgoal(*env_, id_, subgoal);
    charge(stats::ModuleKind::Execution,
           config_.lat.motion_planner.sample(rng_), "motion plan");
    if (!compiled.feasible) {
        result.success = false;
        result.fail_reason = compiled.reason;
        ++failed_subgoals_;
        return result;
    }
    result.motion_cost = compiled.motion_cost;

    const bool llm_direct = !config_.has_execution;
    int recompiles = 0;
    std::size_t index = 0;
    bool failed = false;
    while (index < compiled.prims.size()) {
        env::Primitive prim = compiled.prims[index];

        if (llm_direct) {
            // Without the execution module the LLM must choose every
            // primitive itself: one inference per primitive, with a real
            // chance of picking the wrong one in the huge action space.
            llm::LlmRequest request;
            request.kind = llm::CallKind::ActionSelection;
            request.tokens_in = 500 + 8 * static_cast<int>(
                                          compiled.prims.size());
            request.tokens_out_mean = config_.lat.action_select_out_tokens;
            const auto response = planner_engine_.complete(request);
            charge(stats::ModuleKind::Planning, response.latency_s,
                   "llm-direct primitive");
            const double reliability =
                config_.planner_model.format_compliance *
                kDirectControlReliability;
            if (!rng_.bernoulli(reliability)) {
                // Corrupted primitive: the sequence derails here.
                result.fail_reason = "llm-direct control error";
                failed = true;
                break;
            }
        }

        // Actuation slip: interactions occasionally fail at the hardware
        // level even when the command is correct.
        const bool interaction =
            prim.op != env::PrimOp::MoveStep && prim.op != env::PrimOp::Wait;
        if (interaction && rng_.bernoulli(config_.actuation_failure)) {
            charge(stats::ModuleKind::Execution,
                   config_.lat.actuation.sample(rng_), "actuation slip");
            ++result.primitives;
            result.fail_reason = "actuation slip";
            failed = true;
            break;
        }

        const auto applied = env_->applyPrimitive(id_, prim);
        if (prim.op == env::PrimOp::MoveStep) {
            charge(stats::ModuleKind::Execution,
                   config_.lat.move_per_cell_s);
        } else if (prim.op != env::PrimOp::Wait) {
            charge(stats::ModuleKind::Execution,
                   config_.lat.actuation.sample(rng_),
                   env::primOpName(prim.op));
        }
        ++result.primitives;

        if (!applied.ok) {
            if (prim.op == env::PrimOp::MoveStep && recompiles < 2) {
                // Another agent blocked the corridor: re-plan the path.
                ++recompiles;
                compiled = plan::compileSubgoal(*env_, id_, subgoal);
                charge(stats::ModuleKind::Execution,
                       config_.lat.motion_planner.sample(rng_),
                       "motion replan");
                if (!compiled.feasible) {
                    result.fail_reason = compiled.reason;
                    failed = true;
                    break;
                }
                index = 0;
                continue;
            }
            result.fail_reason = applied.reason;
            failed = true;
            break;
        }
        ++index;
    }

    result.success = !failed && index == compiled.prims.size();
    if (!result.success)
        ++failed_subgoals_;
    return result;
}

void
Agent::reflect(int step, const env::Subgoal &subgoal,
               const ExecResult &result, bool plan_was_sound)
{
    // Even without a reflection module, raw environment feedback reveals
    // some failures (a grasp that comes up empty is hard to miss); the
    // reflection module raises detection to its model's judged quality at
    // the cost of an LLM call.
    bool detected;
    if (config_.has_reflection) {
        llm::LlmRequest request;
        request.kind = llm::CallKind::Reflection;
        request.tokens_in = config_.lat.reflect_prompt_base + 60;
        request.tokens_out_mean = config_.lat.reflect_out_tokens;
        const auto response = reflect_engine_.complete(request);
        charge(stats::ModuleKind::Reflection, response.latency_s, "reflect");
        detected = response.good;
    } else {
        detected = rng_.bernoulli(config_.env_feedback_detection);
    }

    if (result.success) {
        repeat_intent_.reset();
        if (plan_was_sound) {
            memory_.recordAction(step, subgoal.describe(), true);
            return;
        }
        // The action executed fine but did not advance the task (an
        // "ineffective" operation in the paper's terms). Reflection's job
        // is to flag these; unflagged, they pollute the context as fake
        // progress and degrade subsequent planning.
        if (detected) {
            memory_.recordAction(step, subgoal.describe(), false);
        } else {
            memory_.recordAction(step, subgoal.describe(), true);
            ++corrupted_records_;
        }
        return;
    }

    if (detected) {
        // Failure caught: record it honestly and replan fresh next step.
        memory_.recordAction(step, subgoal.describe(), false);
        repeat_intent_.reset();
        return;
    }

    // Undetected failure: memory wrongly records success, and the agent
    // either "phantom-completes" the object or gets stuck re-issuing the
    // same subgoal. The corrupted record also degrades future planning.
    memory_.recordAction(step, subgoal.describe(), true);
    ++corrupted_records_;
    if (subgoal.target != env::kNoObject &&
        rng_.bernoulli(config_.phantom_completion)) {
        believed_done_.insert(subgoal.target);
        repeat_intent_.reset();
    } else if (!rng_.bernoulli(kLoopEscapeProb)) {
        repeat_intent_ = subgoal;
    } else {
        repeat_intent_.reset();
    }
}

} // namespace ebs::core
