#ifndef EBS_CORE_EPISODE_H
#define EBS_CORE_EPISODE_H

#include <vector>

#include "llm/engine.h"
#include "llm/engine_service.h"
#include "stats/latency_recorder.h"

namespace ebs::core {

/** Per-step prompt-size sample for the Fig. 6 token-growth series. */
struct StepTokens
{
    int step = 0;
    int agent = 0;          ///< agent id; -1 = central planner
    int plan_tokens = 0;    ///< planning prompt + completion size
    int message_tokens = 0; ///< communication prompt + completion size
};

/** Everything measured over one episode (one long-horizon task run). */
struct EpisodeResult
{
    bool success = false;
    int steps = 0;             ///< global steps consumed (paper's L)
    double sim_seconds = 0.0;  ///< end-to-end wall-clock (simulated)
    double final_progress = 0.0;

    stats::LatencyRecorder latency; ///< per-module work accounting
    llm::LlmUsage llm;              ///< aggregated across engines

    int messages_generated = 0; ///< comm-module invocations
    int messages_useful = 0;    ///< messages that carried information

    std::vector<StepTokens> token_series; ///< filled when requested

    /**
     * LLM batches the engine service assembled for this episode (empty
     * when the episode ran without a service or with batching off).
     * Deterministic per seed, so post-join folds over a runner batch —
     * runner::foldEpisodes-style — reproduce at any EBS_JOBS.
     */
    std::vector<llm::BatchRecord> llm_batches;

    /** Average simulated seconds per step (0 when no steps ran). */
    double
    secondsPerStep() const
    {
        return steps > 0 ? sim_seconds / steps : 0.0;
    }
};

} // namespace ebs::core

#endif // EBS_CORE_EPISODE_H
