#ifndef EBS_CORE_EPISODE_H
#define EBS_CORE_EPISODE_H

#include <vector>

#include "llm/engine.h"
#include "llm/engine_service.h"
#include "obs/metrics.h"
#include "stats/latency_recorder.h"

namespace ebs::core {

/** Per-step prompt-size sample for the Fig. 6 token-growth series. */
struct StepTokens
{
    int step = 0;
    int agent = 0;          ///< agent id; -1 = central planner
    int plan_tokens = 0;    ///< planning prompt + completion size
    int message_tokens = 0; ///< communication prompt + completion size
};

/**
 * Execute-phase speculation tallies for one episode. Deterministic —
 * conflicts are decided by read/write-set intersection against the same
 * serial commit order regardless of worker count — so these are safe to
 * fold into paper metrics. The two seconds fields price the phase's
 * *modeled* critical path: exec_total_s is the serial sum of per-agent
 * execute latency, exec_critical_s what the same phase costs when clean
 * agents overlap (max over clean agents + sum over serially re-executed
 * ones); their ratio is the modeled speculative speedup.
 */
struct SpeculativeExecStats
{
    long long turns = 0;      ///< agent execute turns in speculated phases
    long long speculated = 0; ///< turns that ran against a snapshot
    long long committed = 0;  ///< speculative turns committed clean
    long long conflicts = 0;  ///< turns re-executed after a read/write clash
    long long aborted = 0;    ///< turns re-executed after a snapshot abort
    double exec_total_s = 0.0;
    double exec_critical_s = 0.0;
};

/** Everything measured over one episode (one long-horizon task run). */
struct EpisodeResult
{
    bool success = false;
    int steps = 0;             ///< global steps consumed (paper's L)
    double sim_seconds = 0.0;  ///< end-to-end wall-clock (simulated)
    double final_progress = 0.0;

    stats::LatencyRecorder latency; ///< per-module work accounting
    llm::LlmUsage llm;              ///< aggregated across engines

    int messages_generated = 0; ///< comm-module invocations
    int messages_useful = 0;    ///< messages that carried information

    std::vector<StepTokens> token_series; ///< filled when requested

    /**
     * LLM batches the engine service assembled for this episode (empty
     * when the episode ran without a service or with batching off).
     * Deterministic per seed, so post-join folds over a runner batch —
     * runner::foldEpisodes-style — reproduce at any EBS_JOBS.
     */
    std::vector<llm::BatchRecord> llm_batches;

    /** Execute-phase speculation tallies (all zero when the episode ran
     * with speculative_execute off). */
    SpeculativeExecStats spec_exec;

    /** Typed per-episode metrics (counters/gauges/histograms), populated
     * at episode finish from the tallies above and folded through
     * runner::RunStats. Deterministic like everything else here. */
    obs::MetricSet metrics;

    /** Average simulated seconds per step (0 when no steps ran). */
    double
    secondsPerStep() const
    {
        return steps > 0 ? sim_seconds / steps : 0.0;
    }
};

} // namespace ebs::core

#endif // EBS_CORE_EPISODE_H
