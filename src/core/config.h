#ifndef EBS_CORE_CONFIG_H
#define EBS_CORE_CONFIG_H

#include "llm/model_profile.h"
#include "memory/memory.h"
#include "sim/distribution.h"

namespace ebs::core {

/**
 * Latency calibration of the non-LLM parts of an agent's pipeline plus the
 * prompt-size parameters of its LLM calls. Per-workload values live in
 * src/workloads/calibration.h and are tuned against the paper's Fig. 2a.
 */
struct ModuleLatencies
{
    /** Perception model time per step (ViT / Mask R-CNN / MineCLIP...). */
    sim::LatencyDist sensing{0.4, 0.3};

    /** P(the perception model misses an in-view object this step). Missed
     * objects are absent from the percept (and thus from memory) until a
     * later sighting — detector recall is not 1.0 in any real system.
     * Opt-in (0 by default): the suite's calibration treats detector
     * recall as part of the plan-quality model instead. */
    double sensing_miss_rate = 0.0;

    /** Actuation time per primitive interaction (grasp, open, chop...). */
    sim::LatencyDist actuation{0.5, 0.3};

    /** Locomotion time per grid cell moved. */
    double move_per_cell_s = 0.15;

    /** Low-level planner compute per motion query (A-star or RRT). */
    sim::LatencyDist motion_planner{0.08, 0.5};

    // --- prompt shaping (token counts) ---
    int plan_prompt_base = 600;   ///< system text, task, few-shot examples
    int plan_out_tokens = 90;     ///< generated plan length
    int comm_prompt_base = 350;   ///< message-generation preamble
    int comm_out_tokens = 60;     ///< generated message length
    int reflect_prompt_base = 280;
    int reflect_out_tokens = 36;
    int action_select_out_tokens = 24;
    int menu_tokens_per_option = 7;
    int state_tokens_per_agent = 90; ///< centralized joint-prompt growth
};

/**
 * Composition and behavior of one embodied agent: which of the six modules
 * it has (paper Table I/II), the model behind each LLM-based module, memory
 * configuration, and calibration.
 */
struct AgentConfig
{
    // --- module composition (ablation switches, Fig. 3) ---
    bool has_sensing = true;
    bool has_planning = true;
    bool has_communication = false;
    bool has_memory = true;
    bool has_reflection = true;
    bool has_execution = true;

    /** CoELA runs a third LLM call per step to pick the concrete action. */
    bool llm_action_selection = false;

    llm::ModelProfile planner_model = llm::ModelProfile::gpt4Api();
    llm::ModelProfile comm_model = llm::ModelProfile::gpt4Api();
    llm::ModelProfile reflect_model = llm::ModelProfile::gpt4Api();

    memory::MemoryModule::Config memory;

    ModuleLatencies lat;

    // --- behavior model constants ---

    /** P(a generated message carries task-relevant information) — the
     * paper observes only ~20% of CoELA's pre-generated messages matter. */
    double message_utility = 0.20;

    /** On an undetected failure, P(the agent wrongly marks the subgoal's
     * object as handled) vs. re-attempting the same subgoal next step. */
    double phantom_completion = 0.5;

    /** P(a failed action is noticed from raw environment feedback alone,
     * without a reflection module). The reflection module replaces this
     * with the (higher) reflect_quality of its model and adds the LLM
     * latency of the judgment call. */
    double env_feedback_detection = 0.45;

    /** P(an incorrect plan is an outright hallucination — acting on an
     * object in an impossible way) vs. merely wasteful-but-valid. */
    double hallucination_rate = 0.3;

    /**
     * Probability that one interaction primitive (grasp, open, chop, ...)
     * slips and fails at actuation time — the routine low-level
     * stochasticity (missed grasps, collisions) that reflection exists to
     * catch and re-plan around.
     */
    double actuation_failure = 0.08;

    /** Per-(other)agent complexity added to a centralized joint plan. */
    double central_joint_complexity = 0.08;

    /** Complexity added per concurrent agent in decentralized planning
     * (intent modeling of teammates). */
    double decentralized_complexity = 0.015;
};

/** Pipeline-level execution options (optimization ablations, Sec. V-D). */
struct PipelineOptions
{
    /** Plan once every k steps, executing k subgoals per plan (Rec. 7). */
    int plan_every_k = 1;

    /** Generate messages only when planning flags the need (Rec. 8),
     * instead of pre-generating every step. */
    bool comm_on_demand = false;

    /** Run per-agent module pipelines concurrently; step latency becomes
     * the max over agents rather than the sum (Sec. IV-A observation). */
    bool parallel_agents = false;

    /** Compress retrieved history into summaries before prompting
     * (Rec. 6); ratio of retained tokens. */
    double context_compression = 1.0;

    /**
     * Batch the same-backend LLM calls of one coordinator phase into a
     * single joint inference (Rec. 1) and charge the episode clock its
     * `llm::jointBatchTime` — summed prefill + longest decode + one mean
     * RTT, clamped at the sequential sum — instead of the members'
     * individually sampled latencies. Responses are untouched (sampling
     * streams are identical either way), so only `sim_seconds` changes.
     * Batching is phase-granular: whatever one flush window assembles is
     * priced as one batch per backend. Requires an engine-service
     * session that assembles batches (the default); on the legacy
     * serviceless path the switch is inert.
     */
    bool batch_llm_calls = false;

    /**
     * Run the execute phase optimistically: each agent executes against a
     * private world snapshot with read/write-set logging, clean agents
     * commit their buffered effects in index order, and conflicting
     * agents re-execute serially against the committed world — so every
     * result, counter, and clock value is bit-identical to the serial
     * schedule at any worker count (workers only change host wall-clock).
     * Inert for single-agent teams and for environments that report
     * !speculativeExecuteSafe().
     */
    bool speculative_execute = false;
};

} // namespace ebs::core

#endif // EBS_CORE_CONFIG_H
