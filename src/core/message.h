#ifndef EBS_CORE_MESSAGE_H
#define EBS_CORE_MESSAGE_H

#include <vector>

#include "env/subgoal.h"
#include "memory/memory.h"

namespace ebs::core {

/**
 * One inter-agent message. Content is abstracted to its information value:
 * shared object beliefs, the sender's declared intent, and a token size
 * (which is what the latency/prompt models consume).
 */
struct Message
{
    int from_agent = -1;
    int to_agent = -1; ///< -1 = broadcast
    int step = 0;
    int tokens = 0;
    bool useful = false; ///< carries task-relevant information

    /** Object sightings the sender shares. */
    std::vector<memory::ObservationRecord> shared_beliefs;

    /** The sender's declared next subgoal (for coordination). */
    env::Subgoal intent;
    bool has_intent = false;
};

} // namespace ebs::core

#endif // EBS_CORE_MESSAGE_H
