#ifndef EBS_CORE_COORDINATOR_H
#define EBS_CORE_COORDINATOR_H

#include "core/agent.h"
#include "core/config.h"
#include "core/episode.h"
#include "env/env.h"
#include "llm/engine_service.h"
#include "sched/fleet_scheduler.h"
#include "stats/phase_wall.h"

namespace ebs::obs {
class EpisodeTraceLog;
} // namespace ebs::obs

namespace ebs::core {

/** Options controlling one episode run. */
struct EpisodeOptions
{
    std::uint64_t seed = 1;      ///< master seed (agents fork substreams)
    bool record_tokens = false;  ///< fill EpisodeResult::token_series
    int max_steps_override = -1; ///< override the task's step budget
    PipelineOptions pipeline;    ///< optimization ablation switches

    /**
     * LLM engine service every agent module routes through; defaults to
     * the process-wide shared service. nullptr selects the legacy
     * per-agent-engine path (bit-identical results either way — the
     * service only adds fleet-wide accounting and batch assembly).
     */
    llm::LlmEngineService *engine_service = &llm::LlmEngineService::shared();

    /**
     * Scheduler the episode's per-agent phase compute fans out on when
     * `pipeline.parallel_agents` is set; defaults to the process-wide
     * shared pool (episodes submitted by the EpisodeRunner fan their
     * subtasks onto the same workers via nested submission). nullptr
     * runs every phase inline on the episode's thread. Results are
     * bit-identical either way: phase compute is pure per-agent work,
     * and all shared-state effects — latency charges, LLM batch
     * assembly, env writes — are applied in a deterministic
     * agent-index-ordered commit step.
     */
    sched::FleetScheduler *scheduler = &sched::FleetScheduler::shared();

    /**
     * Host-wall accumulator the harness reports its compute/execute
     * phase times and episode count into (not owned). Defaults to the
     * process-wide clock; in-process bench suites substitute a per-suite
     * instance so run_all's phase-wall summary stays attributable per
     * suite after the spawn-per-suite model was retired. Never null.
     */
    stats::PhaseWallClock *phase_wall = &stats::PhaseWallClock::shared();

    /**
     * Episode-confined trace log the harness records dual-clock phase
     * spans, LLM batch/queue instants, and speculative commit outcomes
     * into (see obs/trace.h). nullptr — the default, and always the
     * case when EBS_TRACE is off — reduces every emission point to one
     * null check. Owned by the caller (runner::runEpisode creates one
     * per episode when tracing is enabled and adopts it into
     * obs::Tracer::shared() afterwards).
     */
    obs::EpisodeTraceLog *trace = nullptr;
};

/**
 * Run a single-agent episode in the modularized paradigm (paper Fig. 1b):
 * per step, sense -> (memory retrieve) -> plan -> execute -> reflect.
 *
 * The environment must contain exactly one agent body.
 */
EpisodeResult runSingleAgent(env::Environment &environment,
                             const AgentConfig &config,
                             const EpisodeOptions &options);

/**
 * Run a centralized multi-agent episode (paper Fig. 1d): a central LLM
 * planner ingests every agent's state, produces the joint next-step plan,
 * and communicates instructions; agents execute and send local feedback.
 * LLM calls scale linearly with the agent count, but joint-plan quality
 * degrades as the coordination space grows.
 */
EpisodeResult runCentralized(env::Environment &environment,
                             const AgentConfig &config,
                             const EpisodeOptions &options);

/**
 * Run a decentralized multi-agent episode (paper Fig. 1e): every agent
 * plans for itself and engages in dialogue rounds with the others. Message
 * volume grows quadratically with the agent count; dialogue history is
 * concatenated into subsequent prompts.
 */
EpisodeResult runDecentralized(env::Environment &environment,
                               const AgentConfig &config,
                               const EpisodeOptions &options);

/**
 * Run a hierarchical multi-agent episode (paper Recommendation 9): agents
 * are grouped into clusters of `cluster_size`; each cluster is planned
 * centrally by one joint LLM call (small coordination space), and cluster
 * leads exchange one round of messages across clusters (bounded dialogue).
 * LLM calls scale with the number of clusters, not agents², and joint-plan
 * complexity is bounded by the cluster size — the paper's proposed remedy
 * for both paradigms' scalability failures.
 */
EpisodeResult runHierarchical(env::Environment &environment,
                              const AgentConfig &config,
                              const EpisodeOptions &options,
                              int cluster_size = 3);

} // namespace ebs::core

#endif // EBS_CORE_COORDINATOR_H
