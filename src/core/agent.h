#ifndef EBS_CORE_AGENT_H
#define EBS_CORE_AGENT_H

#include <optional>
#include <set>
#include <vector>

#include "core/config.h"
#include "core/message.h"
#include "env/env.h"
#include "llm/engine.h"
#include "llm/engine_service.h"
#include "memory/memory.h"
#include "sim/clock.h"
#include "sim/rng.h"
#include "sim/trace.h"
#include "stats/latency_recorder.h"

namespace ebs::core {

/** What the planning module decided this step. */
struct PlanDecision
{
    env::Subgoal subgoal;
    bool from_oracle = false;  ///< the model picked a genuinely useful goal
    bool hallucinated = false; ///< the model invented an impossible action
    int prompt_tokens = 0;     ///< planning prompt size (Fig. 6 series)
    bool wants_comm = false;   ///< planning flagged communication as needed
};

/** Context the coordinator passes into a planning call. */
struct PlanContext
{
    int step = 0;
    int n_agents = 1;
    double extra_complexity = 0.0; ///< paradigm-level complexity add-on
    double compression = 1.0;      ///< context-compression ratio (Rec. 6)
};

/** Result of executing one subgoal. */
struct ExecResult
{
    bool attempted = false;
    bool success = false;
    int primitives = 0;
    double motion_cost = 0.0;
    std::string fail_reason;
};

/**
 * One embodied agent: the composition of sensing, planning, communication,
 * memory, reflection, and execution modules (paper Fig. 1a), sharing a
 * simulated clock and charging every module's latency to the episode's
 * recorder.
 *
 * The coordinator (single-agent loop, centralized or decentralized
 * multi-agent) drives the per-step pipeline by calling sense() /
 * generateMessage() / plan() / execute() / reflect() in paradigm order.
 */
class Agent
{
  public:
    /**
     * @param id       body id in the environment's world
     * @param config   module composition and calibration
     * @param environment shared environment (not owned)
     * @param rng      per-agent random stream
     * @param clock    shared episode clock (not owned)
     * @param recorder shared latency recorder (not owned)
     * @param trace    optional event trace (may be null)
     * @param llm_session episode's engine-service session (not owned, may
     *                 be null); the agent's LLM modules become handles on
     *                 it instead of private engines, keeping their RNG
     *                 streams and usage while the service batches across
     *                 agents. Null (or a detached session) reproduces the
     *                 legacy per-agent-engine behavior bit for bit.
     */
    Agent(int id, AgentConfig config, env::Environment *environment,
          sim::Rng rng, sim::SimClock *clock,
          stats::LatencyRecorder *recorder, sim::EventTrace *trace,
          llm::EngineSession *llm_session = nullptr);

    int id() const { return id_; }
    const AgentConfig &config() const { return config_; }
    memory::MemoryModule &memory() { return memory_; }
    const memory::MemoryModule &memory() const { return memory_; }

    /** Sum of LLM usage across this agent's engines. */
    llm::LlmUsage llmUsage() const;

    /**
     * Redirect this agent's shared-state side channels — latency charges
     * and LLM session accounting — into thread-private buffers for the
     * duration of one parallel phase turn. The coordinator harness calls
     * this before fanning the agents' pure compute onto scheduler
     * threads; the buffers are replayed into the episode recorder and
     * session in agent-index order at the phase's commit step, so the
     * episode's accounting is bit-identical to a serial phase. The
     * agent's own state (rng, memory, percept, usage) needs no
     * redirection — it is touched only by this agent's turn.
     */
    void beginBufferedTurn(stats::LatencyRecorder *scratch,
                           llm::DeferredNotes *notes);

    /** Restore the shared recorder and live session accounting. */
    void endBufferedTurn();

    /**
     * Agent-private state one execute() turn can mutate. A speculative
     * execute turn saves it first; a clean commit keeps the speculatively
     * advanced state (identical to what a serial run would have produced,
     * by the disjointness check), while a conflicted/aborted turn restores
     * it before the serial re-execution so every rng draw replays exactly.
     */
    struct ExecState
    {
        sim::Rng rng;
        int failed_subgoals = 0;
    };

    ExecState
    saveExecState() const
    {
        return {rng_, failed_subgoals_};
    }

    void
    restoreExecState(const ExecState &state)
    {
        rng_ = state.rng;
        failed_subgoals_ = state.failed_subgoals;
    }

    /**
     * Redirect execute()'s only memory mutation (dropping a belief proven
     * stale) into `sink` instead of applying it, so a speculative turn
     * leaves memory untouched: a clean commit applies the sink's ids via
     * memory().invalidate(), a discarded turn just drops them. Pass null
     * to restore direct application.
     */
    void
    deferBeliefInvalidations(std::vector<env::ObjectId> *sink)
    {
        deferred_invalidations_ = sink;
    }

    // --- per-step pipeline (called by coordinators) ---

    /** Run the sensing module: observe, update memory, charge latency. */
    void sense(int step);

    /** Ingest a message from another agent (dialogue memory + beliefs). */
    void receiveMessage(const Message &message, int step);

    /**
     * Run the communication module: generate an outgoing message (LLM
     * call). The message is generated unconditionally (the paper's
     * "pre-generate every step" inefficiency) unless the module is absent.
     */
    Message generateMessage(int step, int n_agents);

    /** Run the planning module: one LLM call, returns the chosen subgoal. */
    PlanDecision plan(int step, const PlanContext &context);

    /**
     * Oracle-assisted subgoal choice used by centralized coordinators:
     * same knowledge filtering as plan(), but the good/bad decision is
     * supplied by the caller (the central planner's joint LLM call).
     */
    env::Subgoal chooseSubgoal(bool good_plan, bool hallucinate, int step);

    /** Run the execution module on a subgoal. */
    ExecResult execute(int step, const env::Subgoal &subgoal);

    /**
     * Run the reflection module on an executed subgoal; updates memory and
     * intent state. The module judges two kinds of errors: *failed*
     * actions and *ineffective* ones (executed fine but not advancing the
     * task, `plan_was_sound == false`). Undetected errors get logged as
     * successes, corrupting the planning context, and failed ones
     * additionally trigger phantom-completion / repeat-loop behavior.
     */
    void reflect(int step, const env::Subgoal &subgoal,
                 const ExecResult &result, bool plan_was_sound = true);

    /** Planning prompt size of the most recent plan() call. */
    int lastPlanTokens() const { return last_plan_tokens_; }

    /** Message size of the most recent generateMessage() call. */
    int lastMessageTokens() const { return last_message_tokens_; }

    /** Objects this agent believes are already handled (possibly wrongly). */
    const std::set<env::ObjectId> &believedDone() const
    {
        return believed_done_;
    }

    /** Number of failed subgoals this episode (ground truth). */
    int failedSubgoals() const { return failed_subgoals_; }

  private:
    /** Objects currently known: live percept + memory beliefs. */
    bool knows(env::ObjectId id) const;

    /** Believed position of an object (percept beats memory). */
    std::optional<env::Vec2i> believedPos(env::ObjectId id) const;

    /** Pick the exploration target: least-recently-visited room. */
    env::Subgoal exploreSubgoal();

    /**
     * Search fallback when the agent knows no actionable objects: explore
     * unvisited rooms first; once the map is covered, open known closed
     * containers (items may be hidden inside); then keep patrolling.
     */
    env::Subgoal searchOrExploreSubgoal();

    /** Filter oracle subgoals to those the agent can knowingly pursue. */
    std::vector<env::Subgoal> knownUsefulSubgoals() const;

    /** A wasteful-but-valid subgoal (bad plan sample). */
    env::Subgoal suboptimalSubgoal();

    /** An impossible subgoal (hallucination sample). */
    env::Subgoal hallucinatedSubgoal();

    void charge(stats::ModuleKind kind, double seconds,
                const char *label = nullptr);

    int id_;
    AgentConfig config_;
    env::Environment *env_;
    sim::Rng rng_;
    sim::SimClock *clock_;
    stats::LatencyRecorder *recorder_;
    stats::LatencyRecorder *episode_recorder_ = nullptr; ///< saved across
                                                         ///< buffered turns
    sim::EventTrace *trace_;

    llm::EngineHandle planner_engine_;
    llm::EngineHandle comm_engine_;
    llm::EngineHandle reflect_engine_;
    memory::MemoryModule memory_;

    env::Observation percept_;          ///< most recent observation
    std::set<env::ObjectId> believed_done_;
    std::optional<env::Subgoal> repeat_intent_; ///< stuck-loop state
    int last_plan_tokens_ = 0;
    int last_message_tokens_ = 0;
    int failed_subgoals_ = 0;
    int corrupted_records_ = 0; ///< failures wrongly logged as successes
    /** Non-null during a speculative execute turn; collects belief
     * invalidations instead of mutating memory_. */
    std::vector<env::ObjectId> *deferred_invalidations_ = nullptr;
};

} // namespace ebs::core

#endif // EBS_CORE_AGENT_H
