#ifndef EBS_CORE_THREAD_ANNOTATIONS_H
#define EBS_CORE_THREAD_ANNOTATIONS_H

/**
 * @file
 * Clang thread-safety annotation macros (no-ops on other compilers).
 *
 * The repo's load-bearing guarantee — paper metrics bit-identical at any
 * EBS_JOBS — rests on a small set of documented lock contracts: the
 * FleetScheduler's single mutex over all execution state, and the
 * LlmEngineService's mutex over backend usage and batch tallies. These
 * macros turn those prose contracts into compiler-checked properties:
 * the CI `static-analysis` job builds the tree with Clang's
 * `-Wthread-safety -Wthread-safety-beta -Werror`, so touching a guarded
 * field without its mutex (or calling a `EBS_REQUIRES` function without
 * the lock) is a hard build error, not a latent race for TSan to maybe
 * catch under one particular interleaving.
 *
 * The macro set mirrors the Clang documentation's canonical mutex.h:
 * annotate capabilities with EBS_CAPABILITY, guarded state with
 * EBS_GUARDED_BY, and lock contracts with EBS_REQUIRES / EBS_ACQUIRE /
 * EBS_RELEASE / EBS_EXCLUDES. Because libstdc++'s std::mutex carries no
 * capability attributes, the annotated wrapper types in core/sync.h are
 * what make the analysis bite — use ebs::core::Mutex / MutexLock /
 * CondVar for any lock the analysis should check.
 */

#if defined(__clang__) && (!defined(SWIG))
#define EBS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define EBS_THREAD_ANNOTATION(x) // no-op on GCC/MSVC: contracts still
                                 // documented, checked by the Clang job
#endif

/** Marks a class as a lockable capability (e.g. a mutex wrapper). */
#define EBS_CAPABILITY(name) EBS_THREAD_ANNOTATION(capability(name))

/** Marks an RAII class whose lifetime acquires/releases a capability. */
#define EBS_SCOPED_CAPABILITY EBS_THREAD_ANNOTATION(scoped_lockable)

/** Field may only be touched while holding `mu`. */
#define EBS_GUARDED_BY(mu) EBS_THREAD_ANNOTATION(guarded_by(mu))

/** Pointer field whose *pointee* is guarded by `mu`. */
#define EBS_PT_GUARDED_BY(mu) EBS_THREAD_ANNOTATION(pt_guarded_by(mu))

/** Caller must hold every listed capability (and keeps holding it). */
#define EBS_REQUIRES(...) \
    EBS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the listed capabilities (held on return). */
#define EBS_ACQUIRE(...) \
    EBS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the listed capabilities (free on return). */
#define EBS_RELEASE(...) \
    EBS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Caller must NOT hold the listed capabilities (deadlock guard). */
#define EBS_EXCLUDES(...) EBS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returns a reference to a value guarded by `mu`. */
#define EBS_RETURN_CAPABILITY(mu) EBS_THREAD_ANNOTATION(lock_returned(mu))

/**
 * Opt a function body out of the analysis. Reserved for lock juggling
 * the analysis cannot express — e.g. FleetScheduler::runClaim, which
 * temporarily drops its *caller's* scoped lock around the task body.
 * The function's EBS_REQUIRES contract is still enforced at call sites.
 */
#define EBS_NO_THREAD_SAFETY_ANALYSIS \
    EBS_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // EBS_CORE_THREAD_ANNOTATIONS_H
