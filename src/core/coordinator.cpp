#include "core/coordinator.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <vector>

#include "env/spec.h"
#include "obs/trace.h"
#include "stats/host_clock.h"
#include "stats/phase_wall.h"

namespace ebs::core {

namespace {

/**
 * Shared episode machinery: agent construction, per-phase latency
 * combination (sequential sum vs. parallel max), and result assembly.
 *
 * Phases come in two kinds, reflecting the compute/mutation split that
 * lets `parallel_agents` workloads run on real threads:
 *
 *  - computePhase(): *pure per-agent module evaluation* (sense, plan,
 *    message generation, reflection — each touches only its agent's own
 *    state plus const environment reads). The turns may execute
 *    concurrently on the episode's FleetScheduler; every shared-state
 *    effect — latency charges, LLM session accounting, token series,
 *    message counters — is buffered per agent and applied in a
 *    deterministic agent-index-ordered commit step, reproducing the
 *    exact operation sequence of a serial phase. Results are therefore
 *    bit-identical at any worker count.
 *
 *  - envPhase(): *environment-mutating* turns (execution, and any phase
 *    whose agents exchange state mid-phase). These run serially in
 *    agent-index order against the live environment — the ordered
 *    commit step of the episode's step pipeline.
 *
 *  - executePhase(): envPhase for the execute stage specifically, with
 *    an optimistic fast path (`speculative_execute`): agents run
 *    against private world snapshots on scheduler threads while
 *    read/write sets are logged, then commit serially in agent-index
 *    order — an agent whose read set is disjoint from every
 *    lower-indexed agent's write set keeps its speculative run (its
 *    world writes and buffered accounting are applied in order), while
 *    a conflicting, aborted, or non-speculable agent is rolled back and
 *    re-executes serially against the committed world. Since a clean
 *    agent's turn observed no state any predecessor changed, its run is
 *    the serial run; everything else *is* the serial schedule — so
 *    results are bit-identical to envPhase at any worker count, and the
 *    conflict/commit tallies themselves are worker-count-independent
 *    (the speculate/serialize decision depends only on the logs and the
 *    commit order, never on thread timing).
 */
class Harness
{
  public:
    Harness(env::Environment &environment, const AgentConfig &config,
            const EpisodeOptions &options)
        : env_(environment), options_(options),
          scheduler_(options.scheduler),
          master_rng_(options.seed),
          // The session is pinned (handles keep its address), so it is
          // built in place at its final location, before any agent mints
          // a handle on it.
          llm_session_(options.engine_service != nullptr
                           ? options.engine_service->openSession()
                           : llm::EngineSession()),
          // Rec. 1 end-to-end: the ablation charges real joint-batch
          // latency to the clock, which needs a session that actually
          // assembles batches. Without one (legacy path, or a service
          // built with batching=false) the switch is inert — there is
          // nothing to batch, so every call stays at its sequential cost.
          // A queueing session (finite-capacity backend serving,
          // llm/backend_queue.h) always charges: the closed loop *is*
          // the scheduled completion — joint batch time plus queueing +
          // admission delay — landing on the clock at every flush.
          charged_batching_(llm_session_.queueing() ||
                            (options.pipeline.batch_llm_calls &&
                             llm_session_.batching()))
    {
        // Dual-clock tracing: a null trace (the EBS_TRACE=0 default)
        // keeps every emission point below a single pointer check.
        trace_ = options.trace;
        if (trace_ != nullptr)
            llm_session_.traceTo(trace_);
        const int n = env_.world().agentCount();
        for (int i = 0; i < n; ++i) {
            agents_.push_back(std::make_unique<Agent>(
                i, config, &env_, master_rng_.fork(100 + i), &clock_,
                &recorder_, nullptr, &llm_session_));
        }
        scratch_.resize(agents_.size());
        notes_.resize(agents_.size());
        for (auto &recorder : scratch_)
            recorder.enableEventLog();
    }

    std::vector<std::unique_ptr<Agent>> &agents() { return agents_; }
    Agent &agent(int i) { return *agents_[static_cast<std::size_t>(i)]; }
    int agentCount() const { return static_cast<int>(agents_.size()); }
    sim::Rng &rng() { return master_rng_; }
    sim::SimClock &clock() { return clock_; }
    stats::LatencyRecorder &recorder() { return recorder_; }

    int
    maxSteps() const
    {
        return options_.max_steps_override > 0 ? options_.max_steps_override
                                               : env_.task().maxSteps();
    }

    /**
     * Mint an engine handle on the episode's service session (a private
     * engine when the episode runs serviceless) — for the central planner
     * and cluster leads, whose calls then join the session's batches.
     */
    llm::EngineHandle
    makeHandle(const llm::ModelProfile &profile, sim::Rng stream)
    {
        return llm_session_.handle(profile, stream);
    }

    /**
     * Close the open LLM batch groups. Called automatically at every
     * phase boundary; coordinators with solo actors (central planner,
     * cluster leads) call it wherever a causal dependency separates their
     * calls from the next batchable group.
     *
     * This is also the charging point of the batched-inference ablation:
     * when `batch_llm_calls` is live, each flushed (phase, backend) group
     * costs the episode clock its `jointBatchTime` (summed prefill +
     * longest decode + one RTT, clamped at the sequential sum) instead of
     * the members' individually sampled latencies, which the phases
     * withhold from their own clock advance. A group of one is charged
     * exactly its sequential sampled latency (the jointBatchTime
     * singleton rule), so batching never invents savings where nothing
     * co-batches.
     */
    void
    flushLlm()
    {
        llm_session_.setNow(clock_.now());
        llm_session_.flush();
        const double charge = llm_session_.takePendingCharge();
        if (charged_batching_)
            clock_.advance(charge);
    }

    /** True when per-agent compute fans out on scheduler threads. A
     * single-worker pool stays inline: there is no concurrency to win,
     * and the EBS_JOBS=1 baseline must keep the episode entirely on the
     * calling thread (results are bit-identical either way — this gate
     * is purely about dispatch overhead). */
    bool
    parallelPhases() const
    {
        return scheduler_ != nullptr && scheduler_->workers() > 1 &&
               options_.pipeline.parallel_agents && agents_.size() > 1;
    }

    /**
     * Run a pure-compute phase: `compute(agent)` once per agent
     * (concurrently when parallelPhases()), then `commit(agent)` once
     * per agent serially in agent-index order. `compute` must only
     * touch its agent's state, per-agent slots, and const environment
     * reads; everything order-sensitive belongs in `commit`.
     *
     * The buffered accounting is replayed event-by-event in agent-index
     * order, so the episode recorder, the LLM session's batch assembly,
     * and the phase's clock advance are bit-identical to a serial phase
     * — this is what keeps `parallel_agents` results independent of
     * EBS_JOBS. The phase boundary is also the batch boundary: every
     * same-backend LLM call the agents issued inside `compute` forms one
     * cross-agent batch.
     */
    template <typename Compute, typename Commit>
    void
    computePhase(const char *name, Compute &&compute, Commit &&commit)
    {
        const double host_begin = stats::hostNow();
        if (trace_ != nullptr)
            trace_->beginSpan("phase", name, clock_.now(), host_begin);
        const std::size_t n = agents_.size();
        for (std::size_t i = 0; i < n; ++i) {
            scratch_[i].reset();
            notes_[i].entries.clear();
            agents_[i]->beginBufferedTurn(&scratch_[i], &notes_[i]);
        }
        try {
            if (parallelPhases()) {
                scheduler_->parallelFor(
                    n, [&](std::size_t i) { compute(*agents_[i]); });
            } else {
                for (std::size_t i = 0; i < n; ++i)
                    compute(*agents_[i]);
            }
        } catch (...) {
            for (std::size_t i = 0; i < n; ++i)
                agents_[i]->endBufferedTurn();
            throw;
        }

        double total = 0.0;
        double longest = 0.0;
        double llm_total = 0.0;
        double nonllm_longest = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            agents_[i]->endBufferedTurn();
            const double before = recorder_.grandTotal();
            for (const auto &event : scratch_[i].events())
                recorder_.record(event.kind, event.seconds);
            llm_session_.replay(notes_[i]);
            const double delta = recorder_.grandTotal() - before;
            total += delta;
            longest = std::max(longest, delta);
            // The agent's sampled LLM latency this phase, read from the
            // same buffered notes the session replay consumes — when the
            // batch ablation charges jointBatchTime at the flush, this
            // share is withheld from the phase's own clock advance.
            double llm = 0.0;
            for (const auto &entry : notes_[i].entries)
                llm += entry.resp.latency_s;
            llm_total += llm;
            nonllm_longest =
                std::max(nonllm_longest, std::max(0.0, delta - llm));
            commit(*agents_[i]);
        }
        flushLlm();
        advanceBy(total, longest, llm_total, nonllm_longest);
        const double host_end = stats::hostNow();
        if (trace_ != nullptr)
            trace_->endSpan(clock_.now(), host_end);
        options_.phase_wall->addCompute(host_end - host_begin);
    }

    /** computePhase() with no per-agent commit step. */
    template <typename Compute>
    void
    computePhase(const char *name, Compute &&compute)
    {
        computePhase(name, std::forward<Compute>(compute), [](Agent &) {});
    }

    /**
     * Run an environment-mutating phase: `turn` once per agent, serially
     * in agent-index order against the live environment, measuring each
     * agent's latency contribution; advance the clock by the sum
     * (sequential pipeline) or the max (parallel execution across
     * agents). This is the deterministic ordered commit step for env
     * writes — execution must see the world as left by lower-index
     * agents of the same step, exactly as the serial pipeline defines.
     */
    template <typename Fn>
    void
    envPhase(const char *name, Fn &&turn)
    {
        const double host_begin = stats::hostNow();
        if (trace_ != nullptr)
            trace_->beginSpan("phase", name, clock_.now(), host_begin);
        double total = 0.0;
        double longest = 0.0;
        double llm_total = 0.0;
        double nonllm_longest = 0.0;
        for (auto &agent : agents_) {
            const double before = recorder_.grandTotal();
            const double llm_before = llm_session_.phaseBaseline();
            turn(*agent);
            const double delta = recorder_.grandTotal() - before;
            // Env-phase turns note their completions into the session
            // live, so the turn's sampled LLM share is the growth of the
            // open groups' sequential baseline.
            const double llm = llm_session_.phaseBaseline() - llm_before;
            total += delta;
            longest = std::max(longest, delta);
            llm_total += llm;
            nonllm_longest =
                std::max(nonllm_longest, std::max(0.0, delta - llm));
        }
        flushLlm();
        advanceBy(total, longest, llm_total, nonllm_longest);
        const double host_end = stats::hostNow();
        if (trace_ != nullptr)
            trace_->endSpan(clock_.now(), host_end);
        options_.phase_wall->addExecute(host_end - host_begin);
    }

    /**
     * True when the execute phase runs the speculative protocol. The gate
     * is deliberately independent of worker count: a single-worker pool
     * still speculates (inline), so every tally and stdout metric is
     * identical across EBS_JOBS values — only host wall-clock moves.
     */
    bool
    speculativeExecute() const
    {
        return options_.pipeline.speculative_execute &&
               agents_.size() > 1 && env_.speculativeExecuteSafe();
    }

    /**
     * Run the execute phase: envPhase semantics (turns observe the world
     * as left by lower-indexed agents of the same step; clock advances
     * identically), executed optimistically when speculativeExecute().
     * See the class comment for the protocol and determinism argument.
     */
    template <typename Fn>
    void
    executePhase(const char *name, Fn &&turn)
    {
        if (!speculativeExecute()) {
            envPhase(name, std::forward<Fn>(turn));
            return;
        }
        const double host_begin = stats::hostNow();
        if (trace_ != nullptr)
            trace_->beginSpan("phase", name, clock_.now(), host_begin);
        const std::size_t n = agents_.size();
        ensureSpecSlots();

        // --- Stage 1: speculate every eligible turn against a private
        // copy of the phase-start world, logging its read/write sets and
        // buffering its accounting (latency events, LLM notes, belief
        // invalidations). Tasks are independent by construction — each
        // touches its own agent, snapshot, and slots — so the fan-out
        // needs no ordering and any interleaving yields the same logs.
        auto speculate = [&](std::size_t i) {
            Agent &a = *agents_[i];
            spec_logs_[i].reset();
            spec_invalidated_[i].clear();
            spec_ran_[i] = 0;
            exec_states_[i] = a.saveExecState();
            // LLM-direct execution draws on shared engine-service state
            // that cannot be rolled back after a discarded run; those
            // agents take the serial lane below.
            if (!a.config().has_execution)
                return;
            if (spec_worlds_[i] == nullptr)
                spec_worlds_[i] =
                    std::make_unique<env::World>(env_.world());
            else
                *spec_worlds_[i] = env_.world();
            spec_worlds_[i]->setAccessLog(&spec_logs_[i]);
            scratch_[i].reset();
            notes_[i].entries.clear();
            a.beginBufferedTurn(&scratch_[i], &notes_[i]);
            a.deferBeliefInvalidations(&spec_invalidated_[i]);
            try {
                env::spec::SpeculationScope scope(&env_,
                                                  spec_worlds_[i].get());
                turn(a);
                spec_ran_[i] = 1;
            } catch (...) {
                a.deferBeliefInvalidations(nullptr);
                a.endBufferedTurn();
                spec_worlds_[i]->setAccessLog(nullptr);
                a.restoreExecState(exec_states_[i]);
                throw;
            }
            a.deferBeliefInvalidations(nullptr);
            a.endBufferedTurn();
            spec_worlds_[i]->setAccessLog(nullptr);
        };
        if (scheduler_ != nullptr && scheduler_->workers() > 1) {
            scheduler_->parallelFor(n, speculate);
        } else {
            for (std::size_t i = 0; i < n; ++i)
                speculate(i);
        }

        // --- Stage 2: serial commit in agent-index order. Clean agents
        // apply their buffered effects; everyone else rolls back and
        // re-executes against the live (committed) world — which *is*
        // the serial schedule for them.
        double total = 0.0;
        double longest = 0.0;
        double llm_total = 0.0;
        double nonllm_longest = 0.0;
        double clean_longest = 0.0;
        double serial_sum = 0.0;
        std::vector<env::spec::AccessKey> committed_writes;
        env::spec::AccessLog rerun_log;
        for (std::size_t i = 0; i < n; ++i) {
            Agent &a = *agents_[i];
            ++spec_stats_.turns;
            spec_logs_[i].finalize();
            bool clean = false;
            if (spec_ran_[i] != 0) {
                ++spec_stats_.speculated;
                if (spec_logs_[i].aborted())
                    ++spec_stats_.aborted;
                else if (env::spec::conflicts(spec_logs_[i].reads(),
                                              committed_writes))
                    ++spec_stats_.conflicts;
                else
                    clean = true;
            }

            double delta = 0.0;
            double llm = 0.0;
            if (clean) {
                ++spec_stats_.committed;
                // Replay the buffered accounting in index order — the
                // same commit discipline computePhase uses, so recorder
                // and session state are bit-identical to a serial phase.
                const double before = recorder_.grandTotal();
                for (const auto &event : scratch_[i].events())
                    recorder_.record(event.kind, event.seconds);
                llm_session_.replay(notes_[i]);
                delta = recorder_.grandTotal() - before;
                for (const auto &entry : notes_[i].entries)
                    llm += entry.resp.latency_s;
                for (const env::ObjectId id : spec_invalidated_[i])
                    a.memory().invalidate(id);
                commitWrites(i, committed_writes);
                clean_longest = std::max(clean_longest, delta);
            } else {
                // Serial lane: roll the agent back and run its turn for
                // real, with envPhase-identical accounting. Its writes
                // are logged on the live world so later agents still
                // validate against them.
                a.restoreExecState(exec_states_[i]);
                rerun_log.reset();
                serial_pos_.clear();
                for (const env::AgentBody &body : env_.world().bodies())
                    serial_pos_.push_back(body.pos);
                env_.world().setAccessLog(&rerun_log);
                const double before = recorder_.grandTotal();
                const double llm_before = llm_session_.phaseBaseline();
                try {
                    turn(a);
                } catch (...) {
                    env_.world().setAccessLog(nullptr);
                    throw;
                }
                env_.world().setAccessLog(nullptr);
                delta = recorder_.grandTotal() - before;
                llm = llm_session_.phaseBaseline() - llm_before;
                rerun_log.finalize();
                env::spec::mergeKeys(committed_writes, rerun_log.writes());
                occ_scratch_.clear();
                const auto &bodies = env_.world().bodies();
                for (std::size_t j = 0; j < bodies.size(); ++j) {
                    if (bodies[j].pos == serial_pos_[j])
                        continue;
                    occ_scratch_.push_back(
                        env::spec::cellKey(serial_pos_[j]));
                    occ_scratch_.push_back(
                        env::spec::cellKey(bodies[j].pos));
                }
                std::sort(occ_scratch_.begin(), occ_scratch_.end());
                env::spec::mergeKeys(committed_writes, occ_scratch_);
                serial_sum += delta;
            }
            if (trace_ != nullptr) {
                // Commit-vs-reexec outcome of this agent's turn — decided
                // deterministically by the logs and the commit order, so
                // the instant stream is EBS_JOBS-independent like the
                // tallies it mirrors.
                const char *outcome =
                    spec_ran_[i] == 0 ? "spec.serial"
                    : clean           ? "spec.commit"
                    : spec_logs_[i].aborted() ? "spec.abort"
                                              : "spec.conflict";
                trace_->instant("spec", outcome, clock_.now(),
                                static_cast<int>(i),
                                {{"latency_s", delta}});
            }
            total += delta;
            longest = std::max(longest, delta);
            llm_total += llm;
            nonllm_longest =
                std::max(nonllm_longest, std::max(0.0, delta - llm));
        }
        spec_stats_.exec_total_s += total;
        spec_stats_.exec_critical_s += clean_longest + serial_sum;
        flushLlm();
        advanceBy(total, longest, llm_total, nonllm_longest);
        const double host_end = stats::hostNow();
        if (trace_ != nullptr)
            trace_->endSpan(clock_.now(), host_end);
        options_.phase_wall->addExecute(host_end - host_begin);
    }

    /** Run a single-actor phase (e.g., the central planner). Under
     * charged batching the actor's sampled LLM latency is withheld here
     * and charged at the next flush instead — that is what lets the
     * hierarchical coordinator's independent cluster-lead plans, each
     * issued in its own soloPhase, cost one cross-cluster jointBatchTime
     * rather than a serial sum. */
    template <typename Fn>
    void
    soloPhase(const char *name, Fn &&body)
    {
        const double host_begin = stats::hostNow();
        if (trace_ != nullptr)
            trace_->beginSpan("phase", name, clock_.now(), host_begin);
        const double before = recorder_.grandTotal();
        const double llm_before = llm_session_.phaseBaseline();
        body();
        const double delta = recorder_.grandTotal() - before;
        if (charged_batching_) {
            const double llm = llm_session_.phaseBaseline() - llm_before;
            clock_.advance(std::max(0.0, delta - llm));
        } else {
            clock_.advance(delta);
        }
        const double host_end = stats::hostNow();
        if (trace_ != nullptr)
            trace_->endSpan(clock_.now(), host_end);
        options_.phase_wall->addCompute(host_end - host_begin);
    }

    /** Finish bookkeeping for one global step; true when episode is over. */
    bool
    stepDone(EpisodeResult &result, int step)
    {
        if (trace_ != nullptr)
            trace_->endSpan(clock_.now()); // the step bracket (setSteps)
        result.steps = step + 1;
        result.final_progress = env_.task().progress(env_.world());
        return env_.task().satisfied(env_.world());
    }

    EpisodeResult
    finish(bool success, const llm::LlmUsage &extra = {})
    {
        EpisodeResult result = partial_;
        // takeLog() flushes any still-open groups (coordinators flush at
        // every phase boundary, so normally there are none); claim their
        // charge before the clock is read so no batch goes uncharged.
        llm_session_.setNow(clock_.now());
        result.llm_batches = llm_session_.takeLog();
        const double charge = llm_session_.takePendingCharge();
        if (charged_batching_)
            clock_.advance(charge);
        result.success = success;
        result.sim_seconds = clock_.now();
        result.final_progress = env_.task().progress(env_.world());
        result.latency = recorder_;
        result.llm = extra;
        for (const auto &agent : agents_)
            result.llm += agent->llmUsage();
        result.steps = steps_;
        result.messages_generated = messages_generated_;
        result.messages_useful = messages_useful_;
        result.token_series = std::move(token_series_);
        result.spec_exec = spec_stats_;
        fillMetrics(result);
        options_.phase_wall->addEpisode();
        return result;
    }

    void
    setSteps(int steps)
    {
        steps_ = steps;
        llm_session_.beginStep(steps - 1);
        // The step bracket is sim-only (no host stamp is taken here);
        // stepDone() closes it.
        if (trace_ != nullptr)
            trace_->beginSpan("step", "step " + std::to_string(steps - 1),
                              clock_.now());
    }
    void countMessage(bool useful)
    {
        ++messages_generated_;
        if (useful)
            ++messages_useful_;
    }

    void
    recordTokens(int step, int agent, int plan_tokens, int message_tokens)
    {
        if (options_.record_tokens)
            token_series_.push_back({step, agent, plan_tokens,
                                     message_tokens});
    }

    const PipelineOptions &pipeline() const { return options_.pipeline; }

  private:
    /**
     * Advance the episode clock for one phase. `total`/`longest` cover
     * every charge of the phase (per-agent sums and max); `llm_total` is
     * the sampled-LLM share of `total` and `nonllm_longest` the max over
     * agents of their non-LLM share.
     *
     * The two ablations compose explicitly instead of sharing a branch:
     *
     *  - `parallel_agents` concurrent per-agent pipelines cost the
     *    slowest agent plus a small serial residue (the recorder still
     *    holds the full work done);
     *  - `batch_llm_calls` (when live — see charged_batching_) charges
     *    each (phase, backend) batch its jointBatchTime at the flush
     *    point, so this function only advances the *non-LLM* remainder —
     *    serially summed unless parallel_agents also applies its
     *    max-over-agents rule to it. Batching alone must not discount
     *    motion/planning/actuation latency, which the old shared branch
     *    silently did.
     */
    void
    advanceBy(double total, double longest, double llm_total,
              double nonllm_longest)
    {
        if (charged_batching_) {
            const double nonllm_total = std::max(0.0, total - llm_total);
            if (options_.pipeline.parallel_agents) {
                const double slowest =
                    std::min(nonllm_longest, nonllm_total);
                clock_.advance(slowest + 0.15 * (nonllm_total - slowest));
            } else {
                clock_.advance(nonllm_total);
            }
            return;
        }
        if (options_.pipeline.parallel_agents) {
            clock_.advance(longest + 0.15 * (total - longest));
        } else {
            clock_.advance(total);
        }
    }

    /**
     * Populate the episode's typed metrics registry from the tallies
     * the rest of finish() assembled. Always on (a handful of map
     * inserts per episode, nowhere near a hot path); every source value
     * is already worker-count-independent, so the registry folds
     * through runner::RunStats like the existing tallies.
     */
    void
    fillMetrics(EpisodeResult &result) const
    {
        obs::MetricSet &m = result.metrics;
        m.add("episode.count");
        m.add("episode.steps", result.steps);
        m.add("episode.success", result.success ? 1 : 0);
        m.add("episode.messages", result.messages_generated);
        m.add("episode.messages_useful", result.messages_useful);
        m.add("llm.calls", static_cast<long long>(result.llm.calls));
        m.add("spec.turns", spec_stats_.turns);
        m.add("spec.speculated", spec_stats_.speculated);
        m.add("spec.committed", spec_stats_.committed);
        m.add("spec.conflicts", spec_stats_.conflicts);
        m.add("spec.aborted", spec_stats_.aborted);
        m.gaugeMax("episode.max_sim_seconds", result.sim_seconds);
        static constexpr double kOccupancyBounds[] = {1, 2, 4, 8, 16, 32};
        static constexpr double kDelayBounds[] = {0.1, 0.5, 2.0, 10.0,
                                                  60.0};
        for (const auto &batch : result.llm_batches) {
            m.add("llm.batches");
            m.add("llm.batched_requests", batch.requests);
            m.observe("llm.batch_occupancy", batch.requests,
                      kOccupancyBounds);
            m.gaugeMax("llm.max_batch_kv_tokens", batch.kv_tokens);
            if (llm_session_.queueing())
                m.observe("llm.queue_delay_s", batch.queue_delay_s,
                          kDelayBounds);
        }
    }

    /** Size the per-agent speculation slots on first use, so episodes
     * that never speculate pay nothing for the subsystem. */
    void
    ensureSpecSlots()
    {
        if (!spec_ran_.empty())
            return;
        const std::size_t n = agents_.size();
        spec_worlds_.resize(n);
        spec_logs_.resize(n);
        exec_states_.resize(n);
        spec_invalidated_.resize(n);
        spec_ran_.resize(n, 0);
    }

    /**
     * Apply a clean speculative turn's world writes — full-entity copies
     * from its snapshot, in the log's sorted key order — to the live
     * world, and fold its write keys plus the occupancy cells its body
     * moves vacated/claimed into the phase's committed write set.
     */
    void
    commitWrites(std::size_t i,
                 std::vector<env::spec::AccessKey> &committed)
    {
        env::World &live = env_.world();
        const env::World &snap = *spec_worlds_[i];
        occ_scratch_.clear();
        for (const env::spec::AccessKey key : spec_logs_[i].writes()) {
            switch (env::spec::keyKind(key)) {
              case env::spec::kKindObject: {
                const env::ObjectId id = env::spec::keyId(key);
                live.object(id) = snap.object(id);
                break;
              }
              case env::spec::kKindAgent: {
                const int id = env::spec::keyId(key);
                const env::Vec2i before = live.agent(id).pos;
                const env::Vec2i after = snap.agent(id).pos;
                if (!(before == after)) {
                    occ_scratch_.push_back(env::spec::cellKey(before));
                    occ_scratch_.push_back(env::spec::cellKey(after));
                }
                live.agent(id) = snap.agent(id);
                break;
              }
              default:
                // Cell / all-objects keys never appear as log writes.
                break;
            }
        }
        env::spec::mergeKeys(committed, spec_logs_[i].writes());
        std::sort(occ_scratch_.begin(), occ_scratch_.end());
        env::spec::mergeKeys(committed, occ_scratch_);
    }

    env::Environment &env_;
    EpisodeOptions options_;
    /** Episode trace log (null = tracing off; see EpisodeOptions). */
    obs::EpisodeTraceLog *trace_ = nullptr;
    sched::FleetScheduler *scheduler_;
    sim::Rng master_rng_;
    sim::SimClock clock_;
    stats::LatencyRecorder recorder_;
    llm::EngineSession llm_session_; ///< must outlive agents_ (handles)
    /** True when `batch_llm_calls` charges real joint-batch latency to
     * the clock: the ablation is on AND the session assembles batches. */
    const bool charged_batching_;
    std::vector<std::unique_ptr<Agent>> agents_;
    /** Per-agent phase buffers (reused each computePhase). */
    std::vector<stats::LatencyRecorder> scratch_;
    std::vector<llm::DeferredNotes> notes_;
    EpisodeResult partial_;
    /** Speculative-execute slots, lazily sized by ensureSpecSlots().
     * spec_worlds_ holds reusable snapshot buffers (copy-assigned from
     * the live world each speculated phase, so allocations amortize). */
    std::vector<std::unique_ptr<env::World>> spec_worlds_;
    std::vector<env::spec::AccessLog> spec_logs_;
    std::vector<Agent::ExecState> exec_states_;
    std::vector<std::vector<env::ObjectId>> spec_invalidated_;
    std::vector<char> spec_ran_;
    /** Commit-loop scratch (reused across phases). */
    std::vector<env::Vec2i> serial_pos_;
    std::vector<env::spec::AccessKey> occ_scratch_;
    SpeculativeExecStats spec_stats_;
    std::vector<StepTokens> token_series_;
    int steps_ = 0;
    int messages_generated_ = 0;
    int messages_useful_ = 0;
};

/** Broadcast a message to every other agent. */
void
broadcast(Harness &harness, const Message &message, int step)
{
    for (int i = 0; i < harness.agentCount(); ++i)
        if (i != message.from_agent)
            harness.agent(i).receiveMessage(message, step);
}

} // namespace

EpisodeResult
runSingleAgent(env::Environment &environment, const AgentConfig &config,
               const EpisodeOptions &options)
{
    assert(environment.world().agentCount() == 1);
    Harness harness(environment, config, options);
    Agent &agent = harness.agent(0);

    const int plan_every = std::max(1, options.pipeline.plan_every_k);
    int guided_steps_left = 0; // plan-guided multi-step execution (Rec. 7)
    bool success = false;

    for (int step = 0; step < harness.maxSteps(); ++step) {
        environment.beginStep();
        harness.setSteps(step + 1);

        harness.computePhase("sense", [&](Agent &a) { a.sense(step); });

        env::Subgoal subgoal;
        bool plan_sound = true;
        bool skipped_plan = false;
        if (guided_steps_left > 0) {
            // Follow the standing plan without a fresh LLM call.
            subgoal = agent.chooseSubgoal(true, false, step);
            --guided_steps_left;
            skipped_plan = true;
        } else {
            PlanContext context;
            context.step = step;
            context.n_agents = 1;
            context.compression = options.pipeline.context_compression;
            PlanDecision decision;
            harness.computePhase(
                "plan", [&](Agent &a) { decision = a.plan(step, context); });
            subgoal = decision.subgoal;
            plan_sound = decision.from_oracle;
            harness.recordTokens(step, 0, decision.prompt_tokens, 0);
            if (decision.from_oracle && plan_every > 1)
                guided_steps_left = plan_every - 1;
        }

        ExecResult exec;
        harness.executePhase(
            "execute", [&](Agent &a) { exec = a.execute(step, subgoal); });
        harness.computePhase("reflect", [&](Agent &a) {
            a.reflect(step, subgoal, exec, plan_sound);
        });
        if (!exec.success)
            guided_steps_left = 0; // guided execution aborts on failure

        if (skipped_plan)
            harness.recordTokens(step, 0, 0, 0);

        EpisodeResult probe;
        if (harness.stepDone(probe, step)) {
            success = true;
            break;
        }
    }

    return harness.finish(success);
}

EpisodeResult
runCentralized(env::Environment &environment, const AgentConfig &config,
               const EpisodeOptions &options)
{
    Harness harness(environment, config, options);
    const int n = harness.agentCount();

    // The central planner has its own LLM streams, routed through the
    // episode's engine-service session like every agent module.
    llm::EngineHandle central =
        harness.makeHandle(config.planner_model, harness.rng().fork(999));
    llm::EngineHandle central_comm =
        harness.makeHandle(config.comm_model, harness.rng().fork(998));
    int dialogue_tokens = 0; // accumulated feedback in the central context
    bool success = false;

    for (int step = 0; step < harness.maxSteps(); ++step) {
        environment.beginStep();
        harness.setSteps(step + 1);

        harness.computePhase("sense", [&](Agent &a) { a.sense(step); });

        // Central joint plan: prompt covers every agent's state plus the
        // accumulated feedback dialogue.
        bool good = false;
        int central_tokens = 0;
        harness.soloPhase("plan.central", [&] {
            llm::LlmRequest request;
            request.kind = llm::CallKind::Planning;
            request.tokens_in = config.lat.plan_prompt_base +
                                n * config.lat.state_tokens_per_agent +
                                static_cast<int>(
                                    dialogue_tokens *
                                    std::clamp(options.pipeline
                                                   .context_compression,
                                               0.05, 1.0));
            request.tokens_out_mean =
                config.lat.plan_out_tokens + 24 * (n - 1);
            request.complexity = std::clamp(
                config.central_joint_complexity * (n - 1), 0.0, 0.95);
            const auto response = central.complete(request);
            harness.recorder().record(stats::ModuleKind::Planning,
                                      response.latency_s);
            good = response.good;
            central_tokens = request.tokens_in + response.tokens_out;
        });
        // The joint plan gates everything after it: close its batch.
        harness.flushLlm();
        harness.recordTokens(step, -1, central_tokens, 0);

        // Instruction broadcast (one message generation for the team).
        if (config.has_communication) {
            harness.soloPhase("comm.broadcast", [&] {
                llm::LlmRequest request;
                request.kind = llm::CallKind::Communication;
                request.tokens_in = config.lat.comm_prompt_base + 30 * n;
                request.tokens_out_mean = config.lat.comm_out_tokens +
                                          12 * (n - 1);
                const auto response = central_comm.complete(request);
                harness.recorder().record(stats::ModuleKind::Communication,
                                          response.latency_s);
                harness.countMessage(true);
                harness.recordTokens(step, -1, 0,
                                     request.tokens_in +
                                         response.tokens_out);
            });
            harness.flushLlm();
        }

        // Each agent follows its instruction; a bad joint plan still gets
        // parts right (per-agent partial correctness), and feedback flows
        // back to the central context. The shared-stream coin flips are
        // pre-drawn in agent-index order (the exact sequence the serial
        // pipeline consumed) so the subgoal choice itself is pure
        // per-agent compute.
        std::vector<char> pre_good(static_cast<std::size_t>(n));
        std::vector<char> pre_hallucinate(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            const bool agent_good =
                good || harness.rng().bernoulli(0.25);
            const bool hallucinate =
                !agent_good &&
                harness.rng().bernoulli(config.hallucination_rate);
            pre_good[static_cast<std::size_t>(i)] = agent_good;
            pre_hallucinate[static_cast<std::size_t>(i)] = hallucinate;
        }

        std::vector<env::Subgoal> subgoals(static_cast<std::size_t>(n));
        std::vector<char> sound(static_cast<std::size_t>(n), 1);
        harness.computePhase("plan.apply", [&](Agent &a) {
            const auto idx = static_cast<std::size_t>(a.id());
            sound[idx] = pre_good[idx];
            subgoals[idx] = a.chooseSubgoal(pre_good[idx] != 0,
                                            pre_hallucinate[idx] != 0, step);
        });

        std::vector<ExecResult> execs(static_cast<std::size_t>(n));
        harness.executePhase("execute", [&](Agent &a) {
            execs[static_cast<std::size_t>(a.id())] =
                a.execute(step, subgoals[static_cast<std::size_t>(a.id())]);
        });
        harness.computePhase("reflect", [&](Agent &a) {
            const auto &exec = execs[static_cast<std::size_t>(a.id())];
            a.reflect(step, subgoals[static_cast<std::size_t>(a.id())],
                      exec, sound[static_cast<std::size_t>(a.id())] != 0);
        });

        // Local feedback: ~40 tokens per agent per step accumulate in the
        // central planner's context.
        dialogue_tokens += 40 * n;

        EpisodeResult probe;
        if (harness.stepDone(probe, step)) {
            success = true;
            break;
        }
    }

    llm::LlmUsage extra = central.usage();
    extra += central_comm.usage();
    return harness.finish(success, extra);
}

EpisodeResult
runHierarchical(env::Environment &environment, const AgentConfig &config,
                const EpisodeOptions &options, int cluster_size)
{
    Harness harness(environment, config, options);
    const int n = harness.agentCount();
    const int k = std::max(1, cluster_size);
    const int clusters = (n + k - 1) / k;
    auto cluster_of = [&](int agent_id) { return agent_id / k; };

    // One planning stream per cluster lead, all on the shared service —
    // the per-cluster joint plans are independent, so they assemble into
    // one cross-cluster batch per step.
    std::vector<llm::EngineHandle> leads;
    leads.reserve(static_cast<std::size_t>(clusters));
    for (int c = 0; c < clusters; ++c)
        leads.push_back(harness.makeHandle(config.planner_model,
                                           harness.rng().fork(700 + c)));
    bool success = false;

    for (int step = 0; step < harness.maxSteps(); ++step) {
        environment.beginStep();
        harness.setSteps(step + 1);

        harness.computePhase("sense", [&](Agent &a) { a.sense(step); });

        // Cross-cluster coordination: one message per cluster lead,
        // broadcast to the other leads (bounded, not quadratic in n).
        // Generation is pure per-lead compute; counting and delivery are
        // the ordered commit.
        if (config.has_communication && clusters > 1) {
            std::vector<Message> outbox;
            std::vector<Message> generated(static_cast<std::size_t>(n));
            harness.computePhase(
                "comm.leads",
                [&](Agent &a) {
                    if (a.id() % k != 0)
                        return; // only cluster leads speak
                    generated[static_cast<std::size_t>(a.id())] =
                        a.generateMessage(step, clusters);
                },
                [&](Agent &a) {
                    if (a.id() % k != 0)
                        return;
                    Message &m =
                        generated[static_cast<std::size_t>(a.id())];
                    harness.countMessage(m.useful);
                    outbox.push_back(std::move(m));
                });
            for (const auto &m : outbox)
                for (int c = 0; c < clusters; ++c)
                    if (c * k != m.from_agent && c * k < n)
                        harness.agent(c * k).receiveMessage(m, step);
        }

        // Per-cluster joint plans: coordination space bounded by k.
        std::vector<char> cluster_good(static_cast<std::size_t>(clusters));
        for (int c = 0; c < clusters; ++c) {
            const int members = std::min(k, n - c * k);
            harness.soloPhase("plan.cluster", [&] {
                llm::LlmRequest request;
                request.kind = llm::CallKind::Planning;
                request.tokens_in = config.lat.plan_prompt_base +
                                    members *
                                        config.lat.state_tokens_per_agent;
                request.tokens_out_mean =
                    config.lat.plan_out_tokens + 20 * (members - 1);
                request.complexity = std::clamp(
                    config.central_joint_complexity * (members - 1), 0.0,
                    0.95);
                const auto response =
                    leads[static_cast<std::size_t>(c)].complete(request);
                harness.recorder().record(stats::ModuleKind::Planning,
                                          response.latency_s);
                cluster_good[static_cast<std::size_t>(c)] = response.good;
            });
        }
        // All cluster plans are independent: one cross-cluster batch.
        harness.flushLlm();

        // Pre-draw the shared-stream coin flips in agent-index order
        // (see runCentralized); the subgoal choice is then pure compute.
        std::vector<char> pre_good(static_cast<std::size_t>(n));
        std::vector<char> pre_hallucinate(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            const bool agent_good =
                cluster_good[static_cast<std::size_t>(cluster_of(i))] !=
                    0 ||
                harness.rng().bernoulli(0.25);
            const bool hallucinate =
                !agent_good &&
                harness.rng().bernoulli(config.hallucination_rate);
            pre_good[static_cast<std::size_t>(i)] = agent_good;
            pre_hallucinate[static_cast<std::size_t>(i)] = hallucinate;
        }

        std::vector<env::Subgoal> subgoals(static_cast<std::size_t>(n));
        std::vector<char> sound(static_cast<std::size_t>(n), 1);
        harness.computePhase("plan.apply", [&](Agent &a) {
            const auto idx = static_cast<std::size_t>(a.id());
            sound[idx] = pre_good[idx];
            subgoals[idx] = a.chooseSubgoal(pre_good[idx] != 0,
                                            pre_hallucinate[idx] != 0, step);
        });

        std::vector<ExecResult> execs(static_cast<std::size_t>(n));
        harness.executePhase("execute", [&](Agent &a) {
            execs[static_cast<std::size_t>(a.id())] =
                a.execute(step, subgoals[static_cast<std::size_t>(a.id())]);
        });
        harness.computePhase("reflect", [&](Agent &a) {
            const auto idx = static_cast<std::size_t>(a.id());
            a.reflect(step, subgoals[idx], execs[idx], sound[idx] != 0);
        });

        EpisodeResult probe;
        if (harness.stepDone(probe, step)) {
            success = true;
            break;
        }
    }

    llm::LlmUsage extra;
    for (const auto &lead : leads)
        extra += lead.usage();
    return harness.finish(success, extra);
}

EpisodeResult
runDecentralized(env::Environment &environment, const AgentConfig &config,
                 const EpisodeOptions &options)
{
    Harness harness(environment, config, options);
    const int n = harness.agentCount();
    const int plan_every = std::max(1, options.pipeline.plan_every_k);
    std::vector<int> guided_left(static_cast<std::size_t>(n), 0);
    bool success = false;

    for (int step = 0; step < harness.maxSteps(); ++step) {
        environment.beginStep();
        harness.setSteps(step + 1);

        harness.computePhase("sense", [&](Agent &a) { a.sense(step); });

        // Dialogue: in the default pipeline, every agent pre-generates a
        // message every step (the paper's observed inefficiency), in
        // turn-taking rounds that grow with the team size. Messages are
        // delivered after the round, so generation is pure per-agent
        // compute; counting/recording is the ordered commit.
        if (config.has_communication && !options.pipeline.comm_on_demand) {
            const int rounds = 1 + (n - 1) / 4;
            for (int round = 0; round < rounds; ++round) {
                std::vector<Message> outbox(static_cast<std::size_t>(n));
                harness.computePhase(
                    "comm.dialogue",
                    [&](Agent &a) {
                        outbox[static_cast<std::size_t>(a.id())] =
                            a.generateMessage(step, n);
                    },
                    [&](Agent &a) {
                        const auto &m =
                            outbox[static_cast<std::size_t>(a.id())];
                        harness.countMessage(m.useful);
                        harness.recordTokens(step, a.id(), 0,
                                             a.lastMessageTokens());
                    });
                for (const auto &m : outbox)
                    broadcast(harness, m, step);
            }
        }

        // Independent planning with teammate-intent complexity.
        std::vector<env::Subgoal> subgoals(static_cast<std::size_t>(n));
        std::vector<char> sound(static_cast<std::size_t>(n), 1);
        const bool comm_during_planning =
            config.has_communication && options.pipeline.comm_on_demand;
        if (comm_during_planning) {
            // Planning-then-communication (Rec. 8): an agent's plan may
            // broadcast immediately, and later agents plan *with* that
            // message in memory — a genuine cross-agent dependency chain,
            // so this phase stays serial in agent-index order.
            harness.envPhase("plan.comm", [&](Agent &a) {
                const auto idx = static_cast<std::size_t>(a.id());
                if (guided_left[idx] > 0) {
                    // Plan-guided multi-step execution (Rec. 7): follow
                    // the standing plan without a fresh LLM call.
                    subgoals[idx] = a.chooseSubgoal(true, false, step);
                    sound[idx] = 1;
                    --guided_left[idx];
                    return;
                }
                PlanContext context;
                context.step = step;
                context.n_agents = n;
                context.compression = options.pipeline.context_compression;
                const PlanDecision decision = a.plan(step, context);
                subgoals[idx] = decision.subgoal;
                sound[idx] = decision.from_oracle;
                if (decision.from_oracle && plan_every > 1)
                    guided_left[idx] = plan_every - 1;
                harness.recordTokens(step, a.id(), decision.prompt_tokens,
                                     0);

                // Only talk when the plan decided it is needed.
                if (decision.wants_comm) {
                    Message m = a.generateMessage(step, n);
                    harness.countMessage(m.useful);
                    broadcast(harness, m, step);
                }
            });
        } else {
            // No mid-phase message flow: planning is pure per-agent
            // compute (memory retrieval, one LLM call, subgoal choice).
            std::vector<int> prompt_tokens(static_cast<std::size_t>(n),
                                           -1); // -1 = guided, no call
            harness.computePhase(
                "plan",
                [&](Agent &a) {
                    const auto idx = static_cast<std::size_t>(a.id());
                    if (guided_left[idx] > 0) {
                        // Plan-guided multi-step execution (Rec. 7).
                        subgoals[idx] = a.chooseSubgoal(true, false, step);
                        sound[idx] = 1;
                        --guided_left[idx];
                        return;
                    }
                    PlanContext context;
                    context.step = step;
                    context.n_agents = n;
                    context.compression =
                        options.pipeline.context_compression;
                    const PlanDecision decision = a.plan(step, context);
                    subgoals[idx] = decision.subgoal;
                    sound[idx] = decision.from_oracle;
                    if (decision.from_oracle && plan_every > 1)
                        guided_left[idx] = plan_every - 1;
                    prompt_tokens[idx] = decision.prompt_tokens;
                },
                [&](Agent &a) {
                    const auto idx = static_cast<std::size_t>(a.id());
                    if (prompt_tokens[idx] >= 0)
                        harness.recordTokens(step, a.id(),
                                             prompt_tokens[idx], 0);
                });
        }

        std::vector<ExecResult> execs(static_cast<std::size_t>(n));
        harness.executePhase("execute", [&](Agent &a) {
            execs[static_cast<std::size_t>(a.id())] =
                a.execute(step, subgoals[static_cast<std::size_t>(a.id())]);
        });
        harness.computePhase("reflect", [&](Agent &a) {
            const auto idx = static_cast<std::size_t>(a.id());
            a.reflect(step, subgoals[idx], execs[idx], sound[idx] != 0);
            if (!execs[idx].success)
                guided_left[idx] = 0; // guided execution aborts on failure
        });

        EpisodeResult probe;
        if (harness.stepDone(probe, step)) {
            success = true;
            break;
        }
    }

    return harness.finish(success);
}

} // namespace ebs::core
