#include "core/vla.h"

#include <algorithm>
#include <cmath>

#include "plan/controller.h"
#include "sim/clock.h"
#include "sim/rng.h"

namespace ebs::core {

VlaProfile
VlaProfile::rt2()
{
    VlaProfile p;
    p.name = "RT-2 (55B VLA)";
    p.tick_latency_mean_s = 0.33; // ~3 Hz control
    p.primitive_quality = 0.96;
    p.horizon_decay = 0.86;
    return p;
}

VlaProfile
VlaProfile::octo()
{
    VlaProfile p;
    p.name = "Octo (93M policy)";
    p.tick_latency_mean_s = 0.10;
    p.primitive_quality = 0.92;
    p.horizon_decay = 0.82;
    return p;
}

VlaProfile
VlaProfile::diffusionPolicy()
{
    VlaProfile p;
    p.name = "Diffusion Policy";
    p.tick_latency_mean_s = 0.15; // DDIM-accelerated sampling
    p.primitive_quality = 0.94;
    p.horizon_decay = 0.80;
    return p;
}

EpisodeResult
runEndToEnd(env::Environment &environment, const VlaProfile &profile,
            const EpisodeOptions &options)
{
    sim::Rng rng = sim::Rng(options.seed).fork(500);
    sim::SimClock clock;
    stats::LatencyRecorder recorder;

    const int ticks = options.max_steps_override > 0
                          ? options.max_steps_override
                          : environment.task().maxSteps() * 6;
    const int agent_id = 0;
    bool success = false;
    int tick = 0;

    for (; tick < ticks; ++tick) {
        environment.beginStep();

        // One forward pass: observation in, primitive out. The network's
        // latency is the whole "cognition" budget of this paradigm.
        recorder.record(stats::ModuleKind::Planning,
                        rng.lognormal(profile.tick_latency_mean_s,
                                      profile.tick_latency_cv));

        // The behavior the policy is imitating: next primitive of the
        // compiled oracle plan, recompiled each tick from the live state.
        const auto useful = environment.usefulSubgoals(agent_id);
        if (useful.empty()) {
            clock.advance(recorder.grandTotal() - clock.now());
            if (environment.task().satisfied(environment.world())) {
                success = true;
                break;
            }
            continue;
        }
        const env::Subgoal &goal = useful.front();

        // A reactive policy only pursues goals it can see: if the next
        // objective is in another room, there is no visual affordance to
        // imitate and the policy usually drifts.
        bool goal_visible = true;
        const env::ObjectId anchor =
            goal.target != env::kNoObject ? goal.target : goal.dest_obj;
        if (anchor != env::kNoObject) {
            const env::Vec2i goal_pos =
                environment.world().effectivePos(anchor);
            const env::Vec2i self =
                environment.world().agent(agent_id).pos;
            goal_visible = environment.world().grid().room(goal_pos) ==
                           environment.world().grid().room(self);
        }

        const auto compiled =
            plan::compileSubgoal(environment, agent_id, goal);
        if (!compiled.feasible || compiled.prims.empty()) {
            clock.advance(recorder.grandTotal() - clock.now());
            continue;
        }

        // Horizon-dependent competence: deep remaining plans are exactly
        // what end-to-end policies fail to hold together; out-of-sight
        // objectives are nearly out of distribution entirely.
        const double depth =
            static_cast<double>(compiled.prims.size()) / 5.0;
        double quality = profile.primitive_quality *
                         std::pow(profile.horizon_decay, depth);
        if (!goal_visible)
            quality *= profile.out_of_sight_follow;

        env::Primitive prim = compiled.prims.front();
        if (!rng.bernoulli(std::clamp(quality, 0.0, 1.0))) {
            // Wrong action: drift to a random neighbor or stall.
            const auto neighbors = environment.world().grid().neighbors(
                environment.world().agent(agent_id).pos);
            if (!neighbors.empty() && rng.bernoulli(0.6)) {
                prim = env::Primitive{};
                prim.op = env::PrimOp::MoveStep;
                prim.dest = neighbors[rng.pickIndex(neighbors.size())];
            } else {
                prim = env::Primitive{};
                prim.op = env::PrimOp::Wait;
            }
        }

        (void)environment.applyPrimitive(agent_id, prim);
        if (prim.op == env::PrimOp::MoveStep)
            recorder.record(stats::ModuleKind::Execution,
                            profile.move_per_cell_s);
        else if (prim.op != env::PrimOp::Wait)
            recorder.record(stats::ModuleKind::Execution,
                            rng.lognormal(profile.actuation_s, 0.3));

        clock.advance(recorder.grandTotal() - clock.now());
        if (environment.task().satisfied(environment.world())) {
            success = true;
            ++tick;
            break;
        }
    }

    EpisodeResult result;
    result.success = success;
    result.steps = success ? tick : ticks;
    result.sim_seconds = clock.now();
    result.final_progress =
        environment.task().progress(environment.world());
    result.latency = recorder;
    return result;
}

} // namespace ebs::core
