#ifndef EBS_CORE_VLA_H
#define EBS_CORE_VLA_H

#include <string>

#include "core/coordinator.h"
#include "core/episode.h"
#include "env/env.h"

namespace ebs::core {

/**
 * Performance/capability profile of an end-to-end vision-language-action
 * model (paper Fig. 1c and Sec. II-C: RT-2, Octo, Diffusion Policy...).
 *
 * An end-to-end system has no modular pipeline: one forward pass per
 * control tick maps the current observation directly to a primitive
 * action. Per-tick latency is low and constant, but competence decays with
 * the *horizon* of the behavior being executed — the reason the paper
 * reserves this paradigm for short-horizon tasks.
 */
struct VlaProfile
{
    std::string name;

    /** One forward pass (vision encode + action decode), seconds. */
    double tick_latency_mean_s = 0.3;
    double tick_latency_cv = 0.2;

    /** P(the emitted primitive is the right one) on a one-step horizon. */
    double primitive_quality = 0.95;

    /**
     * Competence multiplier per 5 primitives of remaining plan depth:
     * effective quality = primitive_quality * horizon_decay^(depth/5).
     */
    double horizon_decay = 0.85;

    /**
     * P(the policy still heads the right way when the task's next goal is
     * *out of sight*). Reactive policies imitate visible affordances; they
     * carry no explicit task-level plan, so multi-stage tasks whose next
     * objective lies elsewhere are far out of distribution.
     */
    double out_of_sight_follow = 0.10;

    /** Actuation time per primitive interaction, seconds. */
    double actuation_s = 0.5;

    /** Locomotion time per grid cell, seconds. */
    double move_per_cell_s = 0.12;

    // --- presets ---
    static VlaProfile rt2();
    static VlaProfile octo();
    static VlaProfile diffusionPolicy();
};

/**
 * Run an end-to-end episode: each global step is one control tick — one
 * VLA forward pass emitting one primitive. A correct tick executes the
 * next primitive of the (recompiled) oracle behavior; an incorrect tick
 * wastes the action. There is no planning, memory, communication, or
 * reflection machinery at all.
 *
 * Tick budget: `options.max_steps_override` when given, otherwise
 * 6x the task's step budget (ticks are much finer-grained than the
 * modular paradigm's plan-act steps).
 */
EpisodeResult runEndToEnd(env::Environment &environment,
                          const VlaProfile &profile,
                          const EpisodeOptions &options);

} // namespace ebs::core

#endif // EBS_CORE_VLA_H
