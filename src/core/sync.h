#ifndef EBS_CORE_SYNC_H
#define EBS_CORE_SYNC_H

#include <cassert>
#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.h"

namespace ebs::core {

/**
 * std::mutex with a capability annotation.
 *
 * libstdc++ ships std::mutex without Clang capability attributes, so
 * `-Wthread-safety` sees straight through std::lock_guard code: guarded
 * fields could be touched lock-free without a diagnostic. Every mutex in
 * the library therefore is an ebs::core::Mutex, locked through MutexLock
 * below — that pair is what turns the EBS_GUARDED_BY annotations on
 * FleetScheduler and LlmEngineService state into compile-time checks.
 * The wrapper adds no state and no behavior over std::mutex.
 */
class EBS_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() EBS_ACQUIRE() { mu_.lock(); }
    void unlock() EBS_RELEASE() { mu_.unlock(); }

  private:
    friend class CondVar;
    std::mutex mu_;
};

/**
 * Scoped lock over a Mutex (the std::unique_lock of this codebase).
 *
 * Relockable: CondVar::wait and FleetScheduler::runClaim drop and
 * re-take the mutex mid-scope via unlock()/lock(), which Clang's
 * analysis tracks for scoped capabilities. Always constructed locked.
 */
class EBS_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) EBS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** Re-acquire after an explicit unlock(). */
    void lock() EBS_ACQUIRE() { mu_.lock(); locked_ = true; }

    /** Drop the mutex before scope end (e.g. around a task body). */
    void unlock() EBS_RELEASE() { mu_.unlock(); locked_ = false; }

    ~MutexLock() EBS_RELEASE()
    {
        if (locked_)
            mu_.unlock();
    }

  private:
    friend class CondVar;
    Mutex &mu_;
    bool locked_ = true;
};

/**
 * Condition variable paired with Mutex/MutexLock.
 *
 * wait() has the usual contract: the caller holds `lock` (over `mu`),
 * the wait atomically releases it while sleeping and re-acquires it
 * before returning — so from the analysis' point of view the capability
 * is held across the call, which matches every caller's guarded-field
 * access pattern on wakeup. The mutex is passed alongside its lock
 * because Clang's analysis resolves EBS_REQUIRES against named call
 * arguments, not against the mutex a scoped lock happens to manage —
 * this is what lets `-Wthread-safety` reject a wait without the lock.
 * Implemented on std::condition_variable against the wrapped std::mutex
 * (no condition_variable_any overhead).
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Sleep until notified; `lock` must hold `mu` (held again on
     * return). */
    void wait(Mutex &mu, MutexLock &lock) EBS_REQUIRES(mu)
    {
        assert(&lock.mu_ == &mu &&
               "CondVar::wait: lock does not manage the named mutex");
        // Adopt the already-locked mutex for the duration of the wait;
        // release() hands ownership back so the MutexLock destructor
        // stays the one true unlock site.
        std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
        cv_.wait(native);
        native.release();
        (void)lock;
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace ebs::core

#endif // EBS_CORE_SYNC_H
