#ifndef EBS_STATS_HISTOGRAM_H
#define EBS_STATS_HISTOGRAM_H

#include <cstddef>
#include <string>
#include <vector>

namespace ebs::stats {

/**
 * Fixed-range linear histogram. Samples below the range land in the first
 * bucket, above it in the last, so counts are never dropped.
 */
class Histogram
{
  public:
    /**
     * @param lo       lower edge of the histogram range
     * @param hi       upper edge (must be > lo)
     * @param buckets  number of buckets (>= 1)
     */
    Histogram(double lo, double hi, std::size_t buckets);

    /** Add one sample. */
    void add(double x);

    std::size_t bucketCount() const { return counts_.size(); }
    std::size_t count(std::size_t bucket) const { return counts_[bucket]; }
    std::size_t totalCount() const { return total_; }

    /** Inclusive lower edge of a bucket. */
    double bucketLo(std::size_t bucket) const;

    /** Exclusive upper edge of a bucket. */
    double bucketHi(std::size_t bucket) const;

    /** Render as a small ASCII bar chart (for bench/debug output). */
    std::string render(std::size_t width = 40) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace ebs::stats

#endif // EBS_STATS_HISTOGRAM_H
