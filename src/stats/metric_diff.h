#ifndef EBS_STATS_METRIC_DIFF_H
#define EBS_STATS_METRIC_DIFF_H

#include <map>
#include <string>
#include <vector>

namespace ebs::stats {

/**
 * Paper-metric regression diffing between two BENCH_results.json files
 * (the tolerance-based trajectory guard the ROADMAP called for).
 *
 * The parser understands exactly the JSON run_all emits: a top-level
 * object with a "suites" map, each suite carrying a "paper_metrics"
 * array of flat objects whose "case" string names the measurement and
 * whose remaining numeric fields are the metrics. It is a small strict
 * recursive-descent parser, not a general JSON library — unknown
 * structure is skipped, malformed input is an error.
 */

/** One measurement: (suite, case) plus its numeric metric fields. */
struct MetricEntry
{
    std::string suite;
    std::string case_name;
    std::map<std::string, double> values;
};

/**
 * Extract every paper metric from a BENCH_results.json document.
 * Returns an empty list and sets `*error` on malformed input.
 */
std::vector<MetricEntry> parseBenchResults(const std::string &json_text,
                                           std::string *error);

/** Which direction of change is a regression for a metric key. */
enum class MetricDirection
{
    HigherIsBetter, ///< e.g. success_rate: a drop is a regression
    LowerIsBetter,  ///< e.g. s_per_step: a rise is a regression
    /** Calibration target reproducing a paper value (e.g.
     * llm_latency_share ~ 0.70): drifting out of tolerance in EITHER
     * direction is a regression — "higher" is not better, closer is. */
    Anchored,
    Informational,  ///< e.g. episodes: never a regression
};

/** Built-in direction table for the keys bench_util.h emits; unknown
 * keys are Informational. */
MetricDirection metricDirection(const std::string &key);

struct DiffOptions
{
    /** Absolute change below this never flags (per metric). */
    double abs_tol = 0.05;
    /** Relative change below this never flags (vs. the old magnitude). */
    double rel_tol = 0.10;
    /** Treat cases — and individual metric keys of still-present cases —
     * present in old but missing in new as regressions. */
    bool fail_on_missing = false;
    /** Fail on out-of-tolerance improvements too. For a deterministic
     * simulator every such shift is a real code-driven change, and a
     * baseline left stale after one would mask the reverse regression
     * later — this flag forces the baseline refresh to be acknowledged
     * in the same change. */
    bool fail_on_improvement = false;
};

/** One flagged metric change. */
struct MetricDelta
{
    std::string suite;
    std::string case_name;
    std::string key;
    double old_value = 0.0;
    double new_value = 0.0;
    bool regression = false; ///< worsened beyond tolerance (directional)
};

struct DiffReport
{
    std::vector<MetricDelta> regressions;  ///< worsened beyond tolerance
    std::vector<MetricDelta> improvements; ///< bettered beyond tolerance
    std::vector<std::string> missing_cases; ///< "suite/case" gone in new
    /** "suite/case:key" — metric gone from a still-present case (e.g. a
     * bench stopped emitting success_rate): a coverage gap, never a
     * silent pass. */
    std::vector<std::string> missing_metrics;
    std::vector<std::string> new_cases;     ///< "suite/case" new-only
    int compared_values = 0;

    /** True when nothing fails under the options it was built with. */
    bool ok = true;
};

/**
 * Compare two parsed metric sets. A change flags when it exceeds BOTH
 * the absolute and the relative tolerance; whether a flagged change is a
 * regression or an improvement follows metricDirection(). Cases are
 * matched by (suite, case); Informational keys never flag.
 */
DiffReport diffMetrics(const std::vector<MetricEntry> &old_entries,
                       const std::vector<MetricEntry> &new_entries,
                       const DiffOptions &options);

} // namespace ebs::stats

#endif // EBS_STATS_METRIC_DIFF_H
