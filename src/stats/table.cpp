#include "stats/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace ebs::stats {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    assert(!headers_.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row, std::string &out) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            out.append(widths[c] - row[c].size(), ' ');
            if (c + 1 < row.size())
                out += "  ";
        }
        out += '\n';
    };

    std::string out;
    emit_row(headers_, out);
    for (std::size_t c = 0; c < widths.size(); ++c) {
        out.append(widths[c], '-');
        if (c + 1 < widths.size())
            out += "  ";
    }
    out += '\n';
    for (const auto &row : rows_)
        emit_row(row, out);
    return out;
}

} // namespace ebs::stats
