#include "stats/aggregate.h"

#include <cassert>

namespace ebs::stats {

double
percentile(std::vector<double> samples, double p)
{
    assert(!samples.empty());
    assert(p >= 0.0 && p <= 100.0);
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1)
        return samples.front();
    const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

} // namespace ebs::stats
