#include "stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace ebs::stats {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    assert(hi > lo);
    assert(buckets >= 1);
}

void
Histogram::add(double x)
{
    const double span = hi_ - lo_;
    auto idx = static_cast<long>((x - lo_) / span *
                                 static_cast<double>(counts_.size()));
    idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double
Histogram::bucketLo(std::size_t bucket) const
{
    const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + w * static_cast<double>(bucket);
}

double
Histogram::bucketHi(std::size_t bucket) const
{
    const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + w * static_cast<double>(bucket + 1);
}

std::string
Histogram::render(std::size_t width) const
{
    std::size_t max_count = 0;
    for (std::size_t c : counts_)
        max_count = std::max(max_count, c);

    std::string out;
    char line[160];
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const std::size_t bar =
            max_count == 0 ? 0 : counts_[i] * width / max_count;
        std::snprintf(line, sizeof(line), "[%8.2f, %8.2f) %6zu ",
                      bucketLo(i), bucketHi(i), counts_[i]);
        out += line;
        out.append(bar, '#');
        out += '\n';
    }
    return out;
}

} // namespace ebs::stats
