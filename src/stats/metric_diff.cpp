#include "stats/metric_diff.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <utility>

namespace ebs::stats {

namespace {

/**
 * Minimal strict JSON reader covering the grammar run_all emits:
 * objects, arrays, strings (all standard escapes including \uXXXX with
 * surrogate pairs), numbers, true, false, null. Values are materialized
 * only where the caller asks; everything else is validated and skipped.
 */
class JsonReader
{
  public:
    JsonReader(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool failed() const { return failed_; }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    char
    peek()
    {
        skipWs();
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    bool
    atEnd()
    {
        skipWs();
        return pos_ >= text_.size();
    }

    void
    fail(const std::string &what)
    {
        if (!failed_ && error_ != nullptr)
            *error_ = what + " at offset " + std::to_string(pos_);
        failed_ = true;
    }

    /** Parse a JSON string literal (after the opening quote position). */
    std::string
    parseString()
    {
        std::string out;
        if (!consume('"')) {
            fail("expected string");
            return out;
        }
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    break;
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"':
                  case '\\':
                  case '/':
                    out += esc;
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u':
                    // Decode \uXXXX (and surrogate pairs) to UTF-8.
                    // Substituting a placeholder here would alias two
                    // distinct metric keys ("kA" and "kB"
                    // both becoming "k?") and make the diff compare the
                    // wrong baseline value — so a malformed escape
                    // fails the parse instead.
                    appendUnicodeEscape(out);
                    if (failed_)
                        return out;
                    break;
                  default:
                    fail(std::string("invalid string escape '\\") + esc +
                         "'");
                    return out;
                }
            } else {
                out += c;
            }
        }
        fail("unterminated string");
        return out;
    }

    /**
     * Parse any JSON value. When `number_out`/`is_number` are given and
     * the value is numeric, report it; `null` reports as non-number.
     */
    void
    parseValue(double *number_out, bool *is_number)
    {
        if (is_number != nullptr)
            *is_number = false;
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return;
        }
        const char c = text_[pos_];
        if (c == '"') {
            parseString();
        } else if (c == '{') {
            skipObject();
        } else if (c == '[') {
            skipArray();
        } else if (c == 't') {
            expectWord("true");
        } else if (c == 'f') {
            expectWord("false");
        } else if (c == 'n') {
            expectWord("null");
        } else {
            const char *start = text_.c_str() + pos_;
            char *end = nullptr;
            const double v = std::strtod(start, &end);
            if (end == start) {
                fail("expected a JSON value");
                return;
            }
            pos_ += static_cast<std::size_t>(end - start);
            if (number_out != nullptr)
                *number_out = v;
            if (is_number != nullptr)
                *is_number = true;
        }
    }

    /**
     * Parse an object; for each member calls `member(key)` — which must
     * consume the member's value — when non-null, else skips the value.
     */
    template <typename Fn>
    void
    parseObjectWith(Fn &&member)
    {
        if (!consume('{')) {
            fail("expected object");
            return;
        }
        if (consume('}'))
            return;
        for (;;) {
            const std::string key = parseString();
            if (failed_)
                return;
            if (!consume(':')) {
                fail("expected ':'");
                return;
            }
            member(key);
            if (failed_)
                return;
            if (consume(','))
                continue;
            if (consume('}'))
                return;
            fail("expected ',' or '}'");
            return;
        }
    }

    void
    skipObject()
    {
        parseObjectWith([&](const std::string &) {
            parseValue(nullptr, nullptr);
        });
    }

    /** Parse an array; `element()` (when non-null semantics needed) must
     * consume each element. */
    template <typename Fn>
    void
    parseArrayWith(Fn &&element)
    {
        if (!consume('[')) {
            fail("expected array");
            return;
        }
        if (consume(']'))
            return;
        for (;;) {
            element();
            if (failed_)
                return;
            if (consume(','))
                continue;
            if (consume(']'))
                return;
            fail("expected ',' or ']'");
            return;
        }
    }

    void
    skipArray()
    {
        parseArrayWith([&] { parseValue(nullptr, nullptr); });
    }

  private:
    /** Read exactly four hex digits; returns false (and fails) on
     * anything shorter or non-hex. */
    bool
    readHex4(unsigned &out)
    {
        if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
        }
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            unsigned digit = 0;
            if (h >= '0' && h <= '9')
                digit = static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
                digit = static_cast<unsigned>(h - 'a') + 10u;
            else if (h >= 'A' && h <= 'F')
                digit = static_cast<unsigned>(h - 'A') + 10u;
            else {
                fail("invalid hex digit in \\u escape");
                return false;
            }
            out = (out << 4) | digit;
        }
        pos_ += 4;
        return true;
    }

    /** Decode one \\uXXXX escape (cursor just past the 'u'), combining
     * surrogate pairs, and append the code point as UTF-8. */
    void
    appendUnicodeEscape(std::string &out)
    {
        unsigned code = 0;
        if (!readHex4(code))
            return;
        if (code >= 0xD800u && code <= 0xDBFFu) {
            // High surrogate: a \uDC00-\uDFFF low surrogate must follow.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
                fail("unpaired high surrogate in \\u escape");
                return;
            }
            pos_ += 2;
            unsigned low = 0;
            if (!readHex4(low))
                return;
            if (low < 0xDC00u || low > 0xDFFFu) {
                fail("invalid low surrogate in \\u escape");
                return;
            }
            code = 0x10000u + ((code - 0xD800u) << 10) + (low - 0xDC00u);
        } else if (code >= 0xDC00u && code <= 0xDFFFu) {
            fail("unpaired low surrogate in \\u escape");
            return;
        }
        if (code < 0x80u) {
            out += static_cast<char>(code);
        } else if (code < 0x800u) {
            out += static_cast<char>(0xC0u | (code >> 6));
            out += static_cast<char>(0x80u | (code & 0x3Fu));
        } else if (code < 0x10000u) {
            out += static_cast<char>(0xE0u | (code >> 12));
            out += static_cast<char>(0x80u | ((code >> 6) & 0x3Fu));
            out += static_cast<char>(0x80u | (code & 0x3Fu));
        } else {
            out += static_cast<char>(0xF0u | (code >> 18));
            out += static_cast<char>(0x80u | ((code >> 12) & 0x3Fu));
            out += static_cast<char>(0x80u | ((code >> 6) & 0x3Fu));
            out += static_cast<char>(0x80u | (code & 0x3Fu));
        }
    }

    void
    expectWord(const char *word)
    {
        for (const char *p = word; *p != '\0'; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p) {
                fail(std::string("expected '") + word + "'");
                return;
            }
            ++pos_;
        }
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

/** Parse one paper_metrics element into a MetricEntry. */
MetricEntry
parseMetricObject(JsonReader &reader, const std::string &suite)
{
    MetricEntry entry;
    entry.suite = suite;
    reader.parseObjectWith([&](const std::string &key) {
        if (key == "case") {
            entry.case_name = reader.parseString();
            return;
        }
        double value = 0.0;
        bool is_number = false;
        reader.parseValue(&value, &is_number);
        if (is_number && std::isfinite(value))
            entry.values[key] = value;
    });
    return entry;
}

} // namespace

std::vector<MetricEntry>
parseBenchResults(const std::string &json_text, std::string *error)
{
    if (error != nullptr)
        error->clear();
    std::vector<MetricEntry> entries;
    JsonReader reader(json_text, error);

    reader.parseObjectWith([&](const std::string &top_key) {
        if (top_key != "suites") {
            reader.parseValue(nullptr, nullptr);
            return;
        }
        reader.parseObjectWith([&](const std::string &suite) {
            reader.parseObjectWith([&](const std::string &field) {
                if (field != "paper_metrics") {
                    reader.parseValue(nullptr, nullptr);
                    return;
                }
                reader.parseArrayWith([&] {
                    MetricEntry entry = parseMetricObject(reader, suite);
                    if (!entry.case_name.empty())
                        entries.push_back(std::move(entry));
                });
            });
        });
    });
    if (!reader.atEnd())
        reader.fail("trailing content");

    if (reader.failed()) {
        entries.clear();
        return entries;
    }
    return entries;
}

MetricDirection
metricDirection(const std::string &key)
{
    // Higher is better.
    if (key == "success_rate" || key == "speedup" ||
        key == "batch_occupancy" || key == "cross_episode_occupancy" ||
        key == "latency_saved_pct" || key == "cross_episode_saved_pct" ||
        key == "batch_charge_saved_pct" ||
        key == "cross_episode_windowed_occupancy" ||
        key == "cross_episode_windowed_saved_pct" ||
        key == "spec_exec_speedup" || key == "backend_occupancy" ||
        key == "max_sustainable_eps")
        return MetricDirection::HigherIsBetter;
    // Lower is better: cost-like metrics bench_util.h emits.
    if (key == "s_per_step" || key == "runtime_min" ||
        key == "avg_steps" || key == "llm_calls_per_episode" ||
        key == "tokens_per_episode" || key == "batched_s_per_step" ||
        key == "spec_conflict_rate" || key == "spec_reexec_fraction" ||
        key == "queue_delay_share" || key == "p50_episode_latency_s" ||
        key == "p99_episode_latency_s")
        return MetricDirection::LowerIsBetter;
    // Calibration targets: these reproduce specific paper values
    // (LLM latency share ~0.70, memory ablation ~1.61x steps, ...), so
    // drifting out of tolerance either way means the model broke.
    if (key == "llm_latency_share" || key == "reflection_latency_share" ||
        key == "memory_ablation_steps_ratio" ||
        key == "reflection_ablation_steps_ratio" ||
        key == "plan_prompt_growth_ratio" || key == "message_utility")
        return MetricDirection::Anchored;
    return MetricDirection::Informational;
}

namespace {

using CaseKey = std::pair<std::string, std::string>;
using CaseIndex = std::map<CaseKey, std::map<std::string, double>>;

/**
 * Consolidate entries by (suite, case), merging their value maps:
 * run_all emits one entry per EBS_METRIC line and benches emit several
 * lines per case (emitMetric + emitScalarMetric share the case name),
 * so diffing must see the union, not whichever line came last.
 */
CaseIndex
indexByCase(const std::vector<MetricEntry> &entries)
{
    CaseIndex index;
    for (const auto &entry : entries) {
        auto &values = index[{entry.suite, entry.case_name}];
        for (const auto &[key, value] : entry.values)
            values[key] = value;
    }
    return index;
}

} // namespace

DiffReport
diffMetrics(const std::vector<MetricEntry> &old_entries,
            const std::vector<MetricEntry> &new_entries,
            const DiffOptions &options)
{
    DiffReport report;

    const CaseIndex old_index = indexByCase(old_entries);
    const CaseIndex new_index = indexByCase(new_entries);

    for (const auto &[key, old_values] : old_index) {
        const auto found = new_index.find(key);
        if (found == new_index.end()) {
            report.missing_cases.push_back(key.first + "/" + key.second);
            continue;
        }
        const auto &new_values = found->second;
        for (const auto &[metric, old_value] : old_values) {
            const auto new_it = new_values.find(metric);
            if (new_it == new_values.end()) {
                report.missing_metrics.push_back(key.first + "/" +
                                                 key.second + ":" + metric);
                continue;
            }
            const double new_value = new_it->second;
            ++report.compared_values;

            // Relative tolerance is anchored on the OLD magnitude (per
            // DiffOptions): scaling by max(old, new) would let a
            // lower-is-better metric grow 1/(1-rel_tol)-fold — 2.5x at
            // rel_tol 0.6 — before flagging.
            const double delta = new_value - old_value;
            if (std::fabs(delta) <= options.abs_tol ||
                std::fabs(delta) <= options.rel_tol * std::fabs(old_value))
                continue;

            const MetricDirection direction = metricDirection(metric);
            if (direction == MetricDirection::Informational)
                continue;
            const bool worsened =
                direction == MetricDirection::Anchored ||
                (direction == MetricDirection::HigherIsBetter ? delta < 0
                                                              : delta > 0);
            MetricDelta flagged;
            flagged.suite = key.first;
            flagged.case_name = key.second;
            flagged.key = metric;
            flagged.old_value = old_value;
            flagged.new_value = new_value;
            flagged.regression = worsened;
            (worsened ? report.regressions : report.improvements)
                .push_back(std::move(flagged));
        }
    }

    for (const auto &[key, values] : new_index) {
        (void)values;
        if (old_index.count(key) == 0)
            report.new_cases.push_back(key.first + "/" + key.second);
    }

    report.ok = report.regressions.empty() &&
                (!options.fail_on_improvement ||
                 report.improvements.empty()) &&
                (!options.fail_on_missing ||
                 (report.missing_cases.empty() &&
                  report.missing_metrics.empty()));
    return report;
}

} // namespace ebs::stats
