#include "stats/metric_diff.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <utility>

namespace ebs::stats {

namespace {

/**
 * Minimal strict JSON reader covering the grammar run_all emits:
 * objects, arrays, strings (with \" and \\ escapes), numbers, true,
 * false, null. Values are materialized only where the caller asks;
 * everything else is validated and skipped.
 */
class JsonReader
{
  public:
    JsonReader(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool failed() const { return failed_; }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    char
    peek()
    {
        skipWs();
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    bool
    atEnd()
    {
        skipWs();
        return pos_ >= text_.size();
    }

    void
    fail(const std::string &what)
    {
        if (!failed_ && error_ != nullptr)
            *error_ = what + " at offset " + std::to_string(pos_);
        failed_ = true;
    }

    /** Parse a JSON string literal (after the opening quote position). */
    std::string
    parseString()
    {
        std::string out;
        if (!consume('"')) {
            fail("expected string");
            return out;
        }
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    break;
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"':
                  case '\\':
                  case '/':
                    out += esc;
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  default:
                    // Unhandled escapes (\uXXXX...) keep a placeholder;
                    // metric names never use them.
                    out += '?';
                    if (esc == 'u')
                        pos_ = std::min(pos_ + 4, text_.size());
                    break;
                }
            } else {
                out += c;
            }
        }
        fail("unterminated string");
        return out;
    }

    /**
     * Parse any JSON value. When `number_out`/`is_number` are given and
     * the value is numeric, report it; `null` reports as non-number.
     */
    void
    parseValue(double *number_out, bool *is_number)
    {
        if (is_number != nullptr)
            *is_number = false;
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return;
        }
        const char c = text_[pos_];
        if (c == '"') {
            parseString();
        } else if (c == '{') {
            skipObject();
        } else if (c == '[') {
            skipArray();
        } else if (c == 't') {
            expectWord("true");
        } else if (c == 'f') {
            expectWord("false");
        } else if (c == 'n') {
            expectWord("null");
        } else {
            const char *start = text_.c_str() + pos_;
            char *end = nullptr;
            const double v = std::strtod(start, &end);
            if (end == start) {
                fail("expected a JSON value");
                return;
            }
            pos_ += static_cast<std::size_t>(end - start);
            if (number_out != nullptr)
                *number_out = v;
            if (is_number != nullptr)
                *is_number = true;
        }
    }

    /**
     * Parse an object; for each member calls `member(key)` — which must
     * consume the member's value — when non-null, else skips the value.
     */
    template <typename Fn>
    void
    parseObjectWith(Fn &&member)
    {
        if (!consume('{')) {
            fail("expected object");
            return;
        }
        if (consume('}'))
            return;
        for (;;) {
            const std::string key = parseString();
            if (failed_)
                return;
            if (!consume(':')) {
                fail("expected ':'");
                return;
            }
            member(key);
            if (failed_)
                return;
            if (consume(','))
                continue;
            if (consume('}'))
                return;
            fail("expected ',' or '}'");
            return;
        }
    }

    void
    skipObject()
    {
        parseObjectWith([&](const std::string &) {
            parseValue(nullptr, nullptr);
        });
    }

    /** Parse an array; `element()` (when non-null semantics needed) must
     * consume each element. */
    template <typename Fn>
    void
    parseArrayWith(Fn &&element)
    {
        if (!consume('[')) {
            fail("expected array");
            return;
        }
        if (consume(']'))
            return;
        for (;;) {
            element();
            if (failed_)
                return;
            if (consume(','))
                continue;
            if (consume(']'))
                return;
            fail("expected ',' or ']'");
            return;
        }
    }

    void
    skipArray()
    {
        parseArrayWith([&] { parseValue(nullptr, nullptr); });
    }

  private:
    void
    expectWord(const char *word)
    {
        for (const char *p = word; *p != '\0'; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p) {
                fail(std::string("expected '") + word + "'");
                return;
            }
            ++pos_;
        }
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

/** Parse one paper_metrics element into a MetricEntry. */
MetricEntry
parseMetricObject(JsonReader &reader, const std::string &suite)
{
    MetricEntry entry;
    entry.suite = suite;
    reader.parseObjectWith([&](const std::string &key) {
        if (key == "case") {
            entry.case_name = reader.parseString();
            return;
        }
        double value = 0.0;
        bool is_number = false;
        reader.parseValue(&value, &is_number);
        if (is_number && std::isfinite(value))
            entry.values[key] = value;
    });
    return entry;
}

} // namespace

std::vector<MetricEntry>
parseBenchResults(const std::string &json_text, std::string *error)
{
    if (error != nullptr)
        error->clear();
    std::vector<MetricEntry> entries;
    JsonReader reader(json_text, error);

    reader.parseObjectWith([&](const std::string &top_key) {
        if (top_key != "suites") {
            reader.parseValue(nullptr, nullptr);
            return;
        }
        reader.parseObjectWith([&](const std::string &suite) {
            reader.parseObjectWith([&](const std::string &field) {
                if (field != "paper_metrics") {
                    reader.parseValue(nullptr, nullptr);
                    return;
                }
                reader.parseArrayWith([&] {
                    MetricEntry entry = parseMetricObject(reader, suite);
                    if (!entry.case_name.empty())
                        entries.push_back(std::move(entry));
                });
            });
        });
    });
    if (!reader.atEnd())
        reader.fail("trailing content");

    if (reader.failed()) {
        entries.clear();
        return entries;
    }
    return entries;
}

MetricDirection
metricDirection(const std::string &key)
{
    // Higher is better.
    if (key == "success_rate" || key == "speedup" ||
        key == "batch_occupancy" || key == "cross_episode_occupancy" ||
        key == "latency_saved_pct" || key == "cross_episode_saved_pct" ||
        key == "batch_charge_saved_pct" ||
        key == "cross_episode_windowed_occupancy" ||
        key == "cross_episode_windowed_saved_pct" ||
        key == "spec_exec_speedup")
        return MetricDirection::HigherIsBetter;
    // Lower is better: cost-like metrics bench_util.h emits.
    if (key == "s_per_step" || key == "runtime_min" ||
        key == "avg_steps" || key == "llm_calls_per_episode" ||
        key == "tokens_per_episode" || key == "batched_s_per_step" ||
        key == "spec_conflict_rate" || key == "spec_reexec_fraction")
        return MetricDirection::LowerIsBetter;
    // Calibration targets: these reproduce specific paper values
    // (LLM latency share ~0.70, memory ablation ~1.61x steps, ...), so
    // drifting out of tolerance either way means the model broke.
    if (key == "llm_latency_share" || key == "reflection_latency_share" ||
        key == "memory_ablation_steps_ratio" ||
        key == "reflection_ablation_steps_ratio" ||
        key == "plan_prompt_growth_ratio" || key == "message_utility")
        return MetricDirection::Anchored;
    return MetricDirection::Informational;
}

namespace {

using CaseKey = std::pair<std::string, std::string>;
using CaseIndex = std::map<CaseKey, std::map<std::string, double>>;

/**
 * Consolidate entries by (suite, case), merging their value maps:
 * run_all emits one entry per EBS_METRIC line and benches emit several
 * lines per case (emitMetric + emitScalarMetric share the case name),
 * so diffing must see the union, not whichever line came last.
 */
CaseIndex
indexByCase(const std::vector<MetricEntry> &entries)
{
    CaseIndex index;
    for (const auto &entry : entries) {
        auto &values = index[{entry.suite, entry.case_name}];
        for (const auto &[key, value] : entry.values)
            values[key] = value;
    }
    return index;
}

} // namespace

DiffReport
diffMetrics(const std::vector<MetricEntry> &old_entries,
            const std::vector<MetricEntry> &new_entries,
            const DiffOptions &options)
{
    DiffReport report;

    const CaseIndex old_index = indexByCase(old_entries);
    const CaseIndex new_index = indexByCase(new_entries);

    for (const auto &[key, old_values] : old_index) {
        const auto found = new_index.find(key);
        if (found == new_index.end()) {
            report.missing_cases.push_back(key.first + "/" + key.second);
            continue;
        }
        const auto &new_values = found->second;
        for (const auto &[metric, old_value] : old_values) {
            const auto new_it = new_values.find(metric);
            if (new_it == new_values.end()) {
                report.missing_metrics.push_back(key.first + "/" +
                                                 key.second + ":" + metric);
                continue;
            }
            const double new_value = new_it->second;
            ++report.compared_values;

            // Relative tolerance is anchored on the OLD magnitude (per
            // DiffOptions): scaling by max(old, new) would let a
            // lower-is-better metric grow 1/(1-rel_tol)-fold — 2.5x at
            // rel_tol 0.6 — before flagging.
            const double delta = new_value - old_value;
            if (std::fabs(delta) <= options.abs_tol ||
                std::fabs(delta) <= options.rel_tol * std::fabs(old_value))
                continue;

            const MetricDirection direction = metricDirection(metric);
            if (direction == MetricDirection::Informational)
                continue;
            const bool worsened =
                direction == MetricDirection::Anchored ||
                (direction == MetricDirection::HigherIsBetter ? delta < 0
                                                              : delta > 0);
            MetricDelta flagged;
            flagged.suite = key.first;
            flagged.case_name = key.second;
            flagged.key = metric;
            flagged.old_value = old_value;
            flagged.new_value = new_value;
            flagged.regression = worsened;
            (worsened ? report.regressions : report.improvements)
                .push_back(std::move(flagged));
        }
    }

    for (const auto &[key, values] : new_index) {
        (void)values;
        if (old_index.count(key) == 0)
            report.new_cases.push_back(key.first + "/" + key.second);
    }

    report.ok = report.regressions.empty() &&
                (!options.fail_on_improvement ||
                 report.improvements.empty()) &&
                (!options.fail_on_missing ||
                 (report.missing_cases.empty() &&
                  report.missing_metrics.empty()));
    return report;
}

} // namespace ebs::stats
