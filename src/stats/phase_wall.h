#ifndef EBS_STATS_PHASE_WALL_H
#define EBS_STATS_PHASE_WALL_H

#include "core/sync.h"
#include "core/thread_annotations.h"

namespace ebs::stats {

/**
 * Process-wide *host* wall-clock accumulator for the two phase families
 * of the episode loop: compute phases (sense/plan/comm/reflect fan-outs)
 * and execute phases (env mutation, now speculated). This is diagnostic
 * timing — it feeds the stderr `EBS_PHASE_WALL` line and run_all's
 * straggler summary / BENCH_timeline.json, never stdout metrics, because
 * host time varies run to run while every stdout metric must stay
 * byte-identical at any EBS_JOBS.
 *
 * Concurrent episodes add their phase times from scheduler threads, so
 * the tallies are mutex-guarded (core::Mutex + EBS_GUARDED_BY keeps the
 * -Wthread-safety CI job authoritative over this file too).
 */
class PhaseWallClock
{
  public:
    struct Snapshot
    {
        double compute_s = 0.0;
        double execute_s = 0.0;
        long long episodes = 0;
    };

    void
    addCompute(double seconds) EBS_EXCLUDES(mu_)
    {
        core::MutexLock lock(mu_);
        compute_s_ += seconds;
    }

    void
    addExecute(double seconds) EBS_EXCLUDES(mu_)
    {
        core::MutexLock lock(mu_);
        execute_s_ += seconds;
    }

    void
    addEpisode() EBS_EXCLUDES(mu_)
    {
        core::MutexLock lock(mu_);
        ++episodes_;
    }

    Snapshot
    snapshot() const EBS_EXCLUDES(mu_)
    {
        core::MutexLock lock(mu_);
        return {compute_s_, execute_s_, episodes_};
    }

    /** Zero every bucket — tests bracket a measured section with
     * reset()/snapshot(); benches never reset (the stderr summary is
     * cumulative per process). */
    void
    reset() EBS_EXCLUDES(mu_)
    {
        core::MutexLock lock(mu_);
        compute_s_ = 0.0;
        execute_s_ = 0.0;
        episodes_ = 0;
    }

    /** The process-wide instance every Harness reports into. */
    static PhaseWallClock &shared();

  private:
    mutable core::Mutex mu_;
    double compute_s_ EBS_GUARDED_BY(mu_) = 0.0;
    double execute_s_ EBS_GUARDED_BY(mu_) = 0.0;
    long long episodes_ EBS_GUARDED_BY(mu_) = 0;
};

} // namespace ebs::stats

#endif // EBS_STATS_PHASE_WALL_H
