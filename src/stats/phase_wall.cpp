#include "stats/phase_wall.h"

namespace ebs::stats {

PhaseWallClock &
PhaseWallClock::shared()
{
    static PhaseWallClock instance;
    return instance;
}

} // namespace ebs::stats
