#ifndef EBS_STATS_LATENCY_RECORDER_H
#define EBS_STATS_LATENCY_RECORDER_H

#include <array>
#include <cstddef>

#include "stats/module_kind.h"

namespace ebs::stats {

/**
 * Accumulates simulated wall-clock latency per module kind.
 *
 * One recorder lives per episode; modules charge their latency to it as they
 * run. The Fig. 2a per-step breakdown and the 70.2% LLM-share statistic are
 * computed from these totals.
 */
class LatencyRecorder
{
  public:
    /** Charge `seconds` of latency to the given module kind. */
    void
    record(ModuleKind kind, double seconds)
    {
        total_[static_cast<std::size_t>(kind)] += seconds;
        count_[static_cast<std::size_t>(kind)] += 1;
    }

    /** Total seconds charged to a kind. */
    double
    total(ModuleKind kind) const
    {
        return total_[static_cast<std::size_t>(kind)];
    }

    /** Number of charges to a kind. */
    std::size_t
    count(ModuleKind kind) const
    {
        return count_[static_cast<std::size_t>(kind)];
    }

    /** Sum across all kinds. */
    double
    grandTotal() const
    {
        double sum = 0.0;
        for (double v : total_)
            sum += v;
        return sum;
    }

    /** Fraction of the grand total charged to a kind (0 if nothing ran). */
    double
    fraction(ModuleKind kind) const
    {
        const double sum = grandTotal();
        return sum > 0.0 ? total(kind) / sum : 0.0;
    }

    /** Merge another recorder's totals into this one. */
    void
    merge(const LatencyRecorder &other)
    {
        for (std::size_t i = 0; i < kNumModuleKinds; ++i) {
            total_[i] += other.total_[i];
            count_[i] += other.count_[i];
        }
    }

    void
    reset()
    {
        total_.fill(0.0);
        count_.fill(0);
    }

  private:
    std::array<double, kNumModuleKinds> total_{};
    std::array<std::size_t, kNumModuleKinds> count_{};
};

} // namespace ebs::stats

#endif // EBS_STATS_LATENCY_RECORDER_H
