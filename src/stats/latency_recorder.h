#ifndef EBS_STATS_LATENCY_RECORDER_H
#define EBS_STATS_LATENCY_RECORDER_H

#include <array>
#include <cstddef>
#include <vector>

#include "stats/module_kind.h"

namespace ebs::stats {

/**
 * Accumulates simulated wall-clock latency per module kind.
 *
 * One recorder lives per episode; modules charge their latency to it as they
 * run. The Fig. 2a per-step breakdown and the 70.2% LLM-share statistic are
 * computed from these totals.
 *
 * A recorder can additionally capture its individual charge events
 * (enableEventLog()). The coordinator's parallel per-agent phases charge
 * each agent's turn to a private event-logging scratch recorder and
 * *replay* the events into the episode recorder in agent-index order —
 * reproducing the exact floating-point accumulation sequence a serial
 * phase performs, which is what keeps parallel phase execution
 * bit-identical to serial. (Replaying per-kind *sums* instead would
 * reassociate the additions and drift in the last ulp.)
 */
class LatencyRecorder
{
  public:
    /** One record() call, for event-logging scratch recorders. */
    struct Event
    {
        ModuleKind kind;
        double seconds;
    };

    /** Charge `seconds` of latency to the given module kind. */
    void
    record(ModuleKind kind, double seconds)
    {
        total_[static_cast<std::size_t>(kind)] += seconds;
        count_[static_cast<std::size_t>(kind)] += 1;
        if (log_events_)
            events_.push_back({kind, seconds});
    }

    /** Total seconds charged to a kind. */
    double
    total(ModuleKind kind) const
    {
        return total_[static_cast<std::size_t>(kind)];
    }

    /** Number of charges to a kind. */
    std::size_t
    count(ModuleKind kind) const
    {
        return count_[static_cast<std::size_t>(kind)];
    }

    /** Sum across all kinds. */
    double
    grandTotal() const
    {
        double sum = 0.0;
        for (double v : total_)
            sum += v;
        return sum;
    }

    /** Fraction of the grand total charged to a kind (0 if nothing ran). */
    double
    fraction(ModuleKind kind) const
    {
        const double sum = grandTotal();
        return sum > 0.0 ? total(kind) / sum : 0.0;
    }

    /** Merge another recorder's totals into this one. */
    void
    merge(const LatencyRecorder &other)
    {
        for (std::size_t i = 0; i < kNumModuleKinds; ++i) {
            total_[i] += other.total_[i];
            count_[i] += other.count_[i];
        }
    }

    void
    reset()
    {
        total_.fill(0.0);
        count_.fill(0);
        events_.clear(); // keeps capacity: scratch recorders reset per phase
    }

    /** Capture every subsequent record() call in events(). */
    void enableEventLog() { log_events_ = true; }

    /** Captured charges, in call order (empty unless enabled). */
    const std::vector<Event> &events() const { return events_; }

  private:
    std::array<double, kNumModuleKinds> total_{};
    std::array<std::size_t, kNumModuleKinds> count_{};
    std::vector<Event> events_;
    bool log_events_ = false;
};

} // namespace ebs::stats

#endif // EBS_STATS_LATENCY_RECORDER_H
