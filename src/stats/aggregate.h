#ifndef EBS_STATS_AGGREGATE_H
#define EBS_STATS_AGGREGATE_H

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace ebs::stats {

/**
 * Online accumulator for mean / stddev / min / max of a stream of samples
 * (Welford's algorithm, numerically stable).
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = n_ == 1 ? x : std::min(min_, x);
        max_ = n_ == 1 ? x : std::max(max_, x);
    }

    std::size_t count() const { return n_; }
    double mean() const { return n_ > 0 ? mean_ : 0.0; }

    /** Population variance (0 with fewer than 2 samples). */
    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }
    double min() const { return n_ > 0 ? min_ : 0.0; }
    double max() const { return n_ > 0 ? max_ : 0.0; }
    double sum() const { return mean_ * static_cast<double>(n_); }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Percentile of a sample vector with linear interpolation.
 *
 * @param samples non-empty set of samples (copied and sorted internally)
 * @param p       percentile in [0, 100]
 */
double percentile(std::vector<double> samples, double p);

} // namespace ebs::stats

#endif // EBS_STATS_AGGREGATE_H
