#ifndef EBS_STATS_TABLE_H
#define EBS_STATS_TABLE_H

#include <string>
#include <vector>

namespace ebs::stats {

/**
 * Simple aligned ASCII table writer used by the benchmark harness to print
 * the rows/series of the paper's tables and figures.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Convenience: format a percentage ("42.0%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Render the full table, padded and with a header separator. */
    std::string render() const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ebs::stats

#endif // EBS_STATS_TABLE_H
