#ifndef EBS_STATS_MODULE_KIND_H
#define EBS_STATS_MODULE_KIND_H

#include <array>
#include <cstddef>
#include <string_view>

namespace ebs::stats {

/**
 * The six building blocks of an embodied agent (paper Sec. II-A), plus an
 * Other bucket for overheads that belong to none of them.
 *
 * Latency accounting, ablation switches, and figure legends are all keyed by
 * this enum, mirroring Fig. 1a / Fig. 2a of the paper.
 */
enum class ModuleKind : std::size_t
{
    Sensing = 0,
    Planning,
    Communication,
    Memory,
    Reflection,
    Execution,
    Other,
};

/** Number of ModuleKind values (for fixed-size per-module arrays). */
inline constexpr std::size_t kNumModuleKinds = 7;

/** Short display name, as used in figure legends. */
constexpr std::string_view
moduleKindName(ModuleKind kind)
{
    constexpr std::array<std::string_view, kNumModuleKinds> names = {
        "Sensing", "Planning", "Communication", "Memory",
        "Reflection", "Execution", "Other",
    };
    return names[static_cast<std::size_t>(kind)];
}

/** All kinds, in enum order, for iteration. */
constexpr std::array<ModuleKind, kNumModuleKinds>
allModuleKinds()
{
    return {ModuleKind::Sensing, ModuleKind::Planning,
            ModuleKind::Communication, ModuleKind::Memory,
            ModuleKind::Reflection, ModuleKind::Execution, ModuleKind::Other};
}

} // namespace ebs::stats

#endif // EBS_STATS_MODULE_KIND_H
