#ifndef EBS_STATS_HOST_CLOCK_H
#define EBS_STATS_HOST_CLOCK_H

#include <chrono>

namespace ebs::stats {

/**
 * Monotonic host wall-clock, in seconds since an arbitrary process-local
 * epoch. This is the repo's ONE sanctioned host-timing site: every real
 * (non-simulated) duration — bench_util::hostSeconds, run_all's per-suite
 * wall-clock, the FleetScheduler's TaskTiming timeline — is a difference
 * of two hostNow() readings.
 *
 * Why a single chokepoint: simulated results must never read the host
 * clock (that is what makes paper metrics bit-identical at any EBS_JOBS),
 * so `ebs_lint` bans the std::chrono clock types outright. Concentrating
 * the legitimate diagnostic-timing use here gives the ban exactly one
 * suppressed line to audit instead of a scattered allowlist.
 */
inline double
hostNow()
{
    using clock = std::chrono::steady_clock; // EBS_LINT_ALLOW(host-clock): the one sanctioned host-timing site; see file comment
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

} // namespace ebs::stats

#endif // EBS_STATS_HOST_CLOCK_H
