#include "stats/csv.h"

#include <cassert>

namespace ebs::stats {

std::string
csvEscape(const std::string &field)
{
    const bool needs_quote =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quote)
        return field;
    std::string out = "\"";
    for (char ch : field) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

CsvWriter::CsvWriter(std::ostream &os, const std::vector<std::string> &headers)
    : os_(os), arity_(headers.size())
{
    writeRow(headers);
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    assert(cells.size() == arity_);
    writeRow(cells);
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            os_ << ',';
        os_ << csvEscape(cells[i]);
    }
    os_ << '\n';
}

} // namespace ebs::stats
