#ifndef EBS_STATS_CSV_H
#define EBS_STATS_CSV_H

#include <ostream>
#include <string>
#include <vector>

namespace ebs::stats {

/**
 * Minimal CSV writer (RFC-4180 quoting) for exporting bench series so they
 * can be plotted outside the harness.
 */
class CsvWriter
{
  public:
    /** Write the header row to the stream. */
    CsvWriter(std::ostream &os, const std::vector<std::string> &headers);

    /** Write one data row; must match the header arity. */
    void row(const std::vector<std::string> &cells);

  private:
    void writeRow(const std::vector<std::string> &cells);

    std::ostream &os_;
    std::size_t arity_;
};

/** Quote a CSV field if it contains separators, quotes, or newlines. */
std::string csvEscape(const std::string &field);

} // namespace ebs::stats

#endif // EBS_STATS_CSV_H
