#ifndef EBS_RUNNER_EPISODE_RUNNER_H
#define EBS_RUNNER_EPISODE_RUNNER_H

#include <cstdint>
#include <functional>
#include <vector>

#include "core/config.h"
#include "core/coordinator.h"
#include "env/env.h"
#include "workloads/workload.h"

namespace ebs::runner {

/**
 * One episode to execute: a workload variant plus the options of a single
 * run. Jobs are self-contained — everything an episode needs travels in
 * the descriptor, so any worker thread can execute any job.
 *
 * Two flavors:
 *  - workload jobs: `workload` points into the (immortal) suite registry
 *    and the episode runs `workload->runWithConfig(config, ...)`;
 *  - custom jobs: `custom` is set and receives the assembled
 *    EpisodeOptions — used by benches that drive paradigm entry points
 *    (runHierarchical, runEndToEnd) directly.
 */
struct EpisodeJob
{
    const workloads::WorkloadSpec *workload = nullptr;
    core::AgentConfig config;
    env::Difficulty difficulty = env::Difficulty::Medium;
    std::uint64_t seed = 1;
    int n_agents = -1; ///< -1 = workload default
    core::PipelineOptions pipeline;
    bool record_tokens = false;

    /**
     * Engine service the episode's LLM calls route through (not owned).
     * Defaults to the process-wide shared service so the whole fleet
     * shares backends; nullptr selects the legacy per-agent-engine path.
     * Either way results are bit-identical — the service only adds
     * fleet-wide accounting and batch assembly, both race-free under the
     * runner's worker pool.
     */
    llm::LlmEngineService *engine_service = &llm::LlmEngineService::shared();

    /** When set, runs instead of the workload path. Must be thread-safe
     * with respect to every other job in the same batch. */
    std::function<core::EpisodeResult(const core::EpisodeOptions &)> custom;
};

/**
 * Thread-pooled fan-out over a batch of episode jobs.
 *
 * Workers claim jobs from a shared atomic cursor and write each result
 * into the slot matching the job's submission index, so `run()` returns
 * results in submission order and downstream folds are deterministic.
 * Episodes share no mutable state (all simulator state is per-episode and
 * every stochastic draw flows through the job's seed), which makes the
 * results bit-identical regardless of the worker count.
 *
 * The worker count comes from the constructor, or — for the default
 * instance — from `EBS_JOBS` (falling back to hardware_concurrency).
 * `EBS_JOBS=1` runs every job inline on the calling thread, preserving
 * the pre-runner serial behavior exactly.
 */
class EpisodeRunner
{
  public:
    /** @param jobs worker threads; <= 0 selects defaultJobs() */
    explicit EpisodeRunner(int jobs = 0);

    /** Worker threads this runner fans out across (>= 1). */
    int jobs() const { return jobs_; }

    /** Execute a batch; results are in submission order. */
    std::vector<core::EpisodeResult>
    run(const std::vector<EpisodeJob> &batch) const;

    /** `EBS_JOBS` if set to a positive integer, else the hardware
     * concurrency (>= 1). */
    static int defaultJobs();

    /** Process-wide runner built with defaultJobs(), shared by the bench
     * fleet so every bench honors one EBS_JOBS setting. */
    static const EpisodeRunner &shared();

  private:
    int jobs_ = 1;
};

/** Execute one job on the calling thread (the serial building block). */
core::EpisodeResult runEpisode(const EpisodeJob &job);

} // namespace ebs::runner

#endif // EBS_RUNNER_EPISODE_RUNNER_H
