#ifndef EBS_RUNNER_EPISODE_RUNNER_H
#define EBS_RUNNER_EPISODE_RUNNER_H

#include <cstdint>
#include <functional>
#include <vector>

#include "core/config.h"
#include "core/coordinator.h"
#include "env/env.h"
#include "sched/fleet_scheduler.h"
#include "workloads/workload.h"

namespace ebs::obs {
class Tracer;
} // namespace ebs::obs

namespace ebs::runner {

/**
 * One episode to execute: a workload variant plus the options of a single
 * run. Jobs are self-contained — everything an episode needs travels in
 * the descriptor, so any worker thread can execute any job.
 *
 * Two flavors:
 *  - workload jobs: `workload` points into the (immortal) suite registry
 *    and the episode runs `workload->runWithConfig(config, ...)`;
 *  - custom jobs: `custom` is set and receives the assembled
 *    EpisodeOptions — used by benches that drive paradigm entry points
 *    (runHierarchical, runEndToEnd) directly.
 */
struct EpisodeJob
{
    const workloads::WorkloadSpec *workload = nullptr;
    core::AgentConfig config;
    env::Difficulty difficulty = env::Difficulty::Medium;
    std::uint64_t seed = 1;
    int n_agents = -1; ///< -1 = workload default
    core::PipelineOptions pipeline;
    bool record_tokens = false;

    /**
     * Engine service the episode's LLM calls route through (not owned).
     * Defaults to the process-wide shared service so the whole fleet
     * shares backends; nullptr selects the legacy per-agent-engine path.
     * Either way results are bit-identical — the service only adds
     * fleet-wide accounting and batch assembly, both race-free under the
     * scheduler's worker pool.
     */
    llm::LlmEngineService *engine_service = &llm::LlmEngineService::shared();

    /**
     * Scheduler the episode's *nested* per-agent phase fan-outs run on
     * (not owned). nullptr = inherit: the runner executing this job
     * passes its own scheduler, and a directly-called runEpisode() uses
     * FleetScheduler::shared() — either way episodes and their per-agent
     * subtasks draw from one worker budget. Results are bit-identical at
     * any pool size (the per-agent phases are pure compute with an
     * agent-index-ordered commit step).
     */
    sched::FleetScheduler *scheduler = nullptr;

    /**
     * Host-wall accumulator the episode's phase times are reported into
     * (see EpisodeOptions::phase_wall). Defaults to the process-wide
     * clock; in-process bench suites substitute their own instance.
     */
    stats::PhaseWallClock *phase_wall = &stats::PhaseWallClock::shared();

    /**
     * Trace sink the episode's log is adopted into when tracing is
     * enabled (not owned). nullptr = inherit: the runner executing this
     * job passes its own tracer, and a directly-called runEpisode() uses
     * obs::Tracer::shared(). In-process bench suites substitute a
     * per-suite tracer so each suite keeps its own trace track.
     */
    obs::Tracer *tracer = nullptr;

    /** When set, runs instead of the workload path. Must be thread-safe
     * with respect to every other job in the same batch. */
    std::function<core::EpisodeResult(const core::EpisodeOptions &)> custom;
};

/**
 * Thin batch facade over the process-wide FleetScheduler: episodes fan
 * out as one edge-free TaskGraph on the scheduler's *persistent* worker
 * pool (no per-batch thread spawning — the runner asserts the pool is
 * reused across batches).
 *
 * Each task writes its result into the slot matching the job's submission
 * index, so `run()` returns results in submission order and downstream
 * folds are deterministic. Episodes share no mutable state (all simulator
 * state is per-episode and every stochastic draw flows through the job's
 * seed), which makes the results bit-identical regardless of the worker
 * count. The runner therefore owns no lock and carries no capability
 * annotations (core/thread_annotations.h): disjoint result slots need no
 * mutex, and the cross-thread machinery it leans on — the FleetScheduler
 * pool and the LlmEngineService tallies — is annotated and
 * `-Wthread-safety`-checked at its own layer.
 *
 * `jobs` caps how many of this runner's episodes are in flight at once
 * (the scheduler's pool size always caps globally); for the default
 * instance it comes from `EBS_JOBS` (falling back to
 * hardware_concurrency). `EBS_JOBS=1` runs every job inline on the
 * calling thread, preserving the pre-runner serial behavior exactly.
 */
class EpisodeRunner
{
  public:
    /**
     * @param jobs      in-flight episode cap; <= 0 selects defaultJobs()
     * @param scheduler pool to run on (not owned); nullptr selects
     *                  FleetScheduler::shared()
     * @param tracer    trace sink batches mint episode ids from and
     *                  adopt logs into (not owned); nullptr selects
     *                  obs::Tracer::shared()
     */
    explicit EpisodeRunner(int jobs = 0,
                           sched::FleetScheduler *scheduler = nullptr,
                           obs::Tracer *tracer = nullptr);

    /** In-flight episode cap of this runner (>= 1). */
    int jobs() const { return jobs_; }

    /** The scheduler batches execute on (never null). */
    sched::FleetScheduler *scheduler() const { return scheduler_; }

    /** The trace sink batches record into (never null). */
    obs::Tracer *tracer() const { return tracer_; }

    /** Execute a batch; results are in submission order. */
    std::vector<core::EpisodeResult>
    run(const std::vector<EpisodeJob> &batch) const;

    /** `EBS_JOBS` if set to a positive integer, else the hardware
     * concurrency (>= 1). Delegates to sched::FleetScheduler so the
     * whole fleet derives its budget from one parser. */
    static int defaultJobs();

    /** Process-wide runner built with defaultJobs() on
     * FleetScheduler::shared(), shared by the bench fleet so every bench
     * honors one EBS_JOBS setting. */
    static const EpisodeRunner &shared();

  private:
    int jobs_ = 1;
    sched::FleetScheduler *scheduler_ = nullptr;
    obs::Tracer *tracer_ = nullptr;
};

/**
 * Execute one job on the calling thread (the serial building block).
 * Nested per-agent phases run on the job's scheduler when set, else on
 * `scheduler` (the runner passes its own), else on
 * FleetScheduler::shared().
 *
 * When tracing is enabled (obs::traceEnabled()) the episode runs with an
 * EpisodeTraceLog wired through EpisodeOptions::trace and adopts it into
 * the job's tracer (else `tracer`, else obs::Tracer::shared()).
 * `trace_episode` is the episode id for that log; 0 (the default, and
 * always the case when tracing is off) mints a solo id — EpisodeRunner
 * batches pass deterministic batch-derived ids instead so trace streams
 * reproduce at any EBS_JOBS.
 */
core::EpisodeResult runEpisode(const EpisodeJob &job,
                               sched::FleetScheduler *scheduler = nullptr,
                               std::uint64_t trace_episode = 0,
                               obs::Tracer *tracer = nullptr);

} // namespace ebs::runner

#endif // EBS_RUNNER_EPISODE_RUNNER_H
