#include "runner/averaged.h"

#include <span>

namespace ebs::runner {

std::vector<RunStats>
runAveragedMany(const EpisodeRunner &runner,
                const std::vector<RunVariant> &variants)
{
    std::vector<EpisodeJob> jobs;
    std::size_t total = 0;
    for (const auto &variant : variants)
        total += static_cast<std::size_t>(variant.seeds > 0 ? variant.seeds
                                                            : 0);
    jobs.reserve(total);

    for (const auto &variant : variants) {
        for (int seed = 1; seed <= variant.seeds; ++seed) {
            EpisodeJob job;
            job.workload = variant.workload;
            job.config = variant.config;
            job.difficulty = variant.difficulty;
            job.seed = episodeSeed(seed);
            job.n_agents = variant.n_agents;
            job.pipeline = variant.pipeline;
            job.engine_service = variant.engine_service;
            job.phase_wall = variant.phase_wall;
            job.custom = variant.custom;
            jobs.push_back(std::move(job));
        }
    }

    const std::vector<core::EpisodeResult> episodes = runner.run(jobs);

    std::vector<RunStats> stats;
    stats.reserve(variants.size());
    std::size_t offset = 0;
    for (const auto &variant : variants) {
        const std::size_t n =
            static_cast<std::size_t>(variant.seeds > 0 ? variant.seeds : 0);
        stats.push_back(foldEpisodes(
            std::span<const core::EpisodeResult>(episodes).subspan(offset,
                                                                   n)));
        offset += n;
    }
    return stats;
}

RunStats
runAveraged(const EpisodeRunner &runner, const RunVariant &variant)
{
    return runAveragedMany(runner, {variant}).front();
}

} // namespace ebs::runner
