#ifndef EBS_RUNNER_RUN_STATS_H
#define EBS_RUNNER_RUN_STATS_H

#include <span>

#include "core/episode.h"
#include "stats/latency_recorder.h"

namespace ebs::runner {

/**
 * Averaged episode metrics over several episodes of one variant (one
 * workload × config × difficulty × team size).
 *
 * Built exclusively by foldEpisodes(): a pure, serial fold over an ordered
 * list of EpisodeResults. No accumulation ever happens inside episode
 * workers, so the aggregate is bit-identical whether the episodes ran
 * serially or across EBS_JOBS threads.
 */
struct RunStats
{
    int episodes = 0; ///< how many episodes were folded in

    double success_rate = 0.0;
    double avg_steps = 0.0;
    double avg_runtime_min = 0.0;
    double avg_step_latency_s = 0.0;
    stats::LatencyRecorder latency; ///< merged across episodes
    double msgs_generated = 0.0;    ///< per-episode average
    double msgs_useful = 0.0;       ///< per-episode average
    long long llm_calls = 0;        ///< total across episodes
    long long tokens = 0;           ///< total (in + out) across episodes

    /** Execute-phase speculation tallies summed across episodes (all
     * zero when the variant ran with speculative_execute off). */
    core::SpeculativeExecStats spec_exec;

    /** Charged backend queueing + admission delay summed across the
     * episodes' batch logs (0 on the open-loop, infinite-capacity
     * path), and the total simulated seconds those episodes spent —
     * the pair behind queueDelayShare(). */
    double queue_delay_s = 0.0;
    double sim_seconds = 0.0;

    /** Typed metrics merged across episodes (counters sum, gauges max,
     * histograms add bucket-wise) — see obs/metrics.h. Deterministic
     * like every other field here: merged in fold (= submission) order. */
    obs::MetricSet metrics;

    /** LLM calls averaged per episode (0 when nothing folded). */
    double llmCallsPerEpisode() const;

    /** Tokens (in + out) averaged per episode (0 when nothing folded). */
    double tokensPerEpisode() const;

    /** Fraction of speculative turns that hit a read/write clash or a
     * snapshot abort and re-executed serially (0 when none speculated). */
    double specConflictRate() const;

    /** Fraction of execute turns that ran on the serial lane — conflicts,
     * aborts, and turns never speculated (0 when nothing speculated). */
    double specReexecFraction() const;

    /** Modeled execute-phase speedup: serial latency sum over the
     * speculative critical path (1 when speculation never engaged). */
    double specExecSpeedup() const;

    /** Charged queueing delay as a fraction of total simulated episode
     * time (0 when the variant ran open-loop). */
    double queueDelayShare() const;

    /** Mean charged queueing delay per episode, in seconds. */
    double queueDelayPerEpisode() const;
};

/**
 * Fold an ordered span of per-episode results into averaged stats.
 *
 * The fold order is the span order, so callers that keep submission
 * order (EpisodeRunner does) get floating-point results identical to a
 * serial run. Taking a span lets callers fold slices of a batch result
 * without copying episodes.
 */
RunStats foldEpisodes(std::span<const core::EpisodeResult> episodes);

} // namespace ebs::runner

#endif // EBS_RUNNER_RUN_STATS_H
