#ifndef EBS_RUNNER_AVERAGED_H
#define EBS_RUNNER_AVERAGED_H

#include <cstdint>
#include <vector>

#include "runner/episode_runner.h"
#include "runner/run_stats.h"

namespace ebs::runner {

/**
 * One averaged measurement: `seeds` episodes of a single workload variant.
 * This is the row unit of every figure/table bench — benches build a list
 * of variants (their full parameter grid), fan all episodes out through
 * one EpisodeRunner batch, and get one RunStats per variant back.
 */
struct RunVariant
{
    const workloads::WorkloadSpec *workload = nullptr;
    core::AgentConfig config;
    env::Difficulty difficulty = env::Difficulty::Medium;
    int seeds = 1;
    int n_agents = -1;
    core::PipelineOptions pipeline;

    /** Engine service for every episode of the variant (see EpisodeJob). */
    llm::LlmEngineService *engine_service = &llm::LlmEngineService::shared();

    /** Phase-wall accumulator for every episode of the variant (see
     * EpisodeJob::phase_wall). */
    stats::PhaseWallClock *phase_wall = &stats::PhaseWallClock::shared();

    /** Custom episode entry point (see EpisodeJob::custom); when set,
     * `workload`/`config`/`difficulty`/`n_agents` are ignored. */
    std::function<core::EpisodeResult(const core::EpisodeOptions &)> custom;
};

/**
 * Master seed of the i-th episode (1-based) of an averaged run. The
 * pre-runner bench loops used exactly this derivation, so averaged
 * results stay comparable across the refactor.
 */
inline std::uint64_t
episodeSeed(int seed_index)
{
    return 1000ULL + static_cast<std::uint64_t>(seed_index) * 7919ULL;
}

/**
 * Run every variant's seed fan-out as one batch and fold per variant.
 * Results are indexed like `variants`; episode submission order (and thus
 * the fold order) is variant-major, seed-minor, independent of the
 * runner's worker count.
 */
std::vector<RunStats> runAveragedMany(const EpisodeRunner &runner,
                                      const std::vector<RunVariant> &variants);

/** Single-variant convenience over runAveragedMany(). */
RunStats runAveraged(const EpisodeRunner &runner, const RunVariant &variant);

} // namespace ebs::runner

#endif // EBS_RUNNER_AVERAGED_H
