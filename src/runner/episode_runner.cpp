#include "runner/episode_runner.h"

#include <cassert>
#include <stdexcept>
#include <string>

namespace ebs::runner {

EpisodeRunner::EpisodeRunner(int jobs, sched::FleetScheduler *scheduler)
    : jobs_(jobs > 0 ? jobs : defaultJobs()),
      scheduler_(scheduler != nullptr ? scheduler
                                      : &sched::FleetScheduler::shared())
{
}

int
EpisodeRunner::defaultJobs()
{
    return sched::FleetScheduler::defaultWorkers();
}

const EpisodeRunner &
EpisodeRunner::shared()
{
    static const EpisodeRunner instance;
    return instance;
}

core::EpisodeResult
runEpisode(const EpisodeJob &job, sched::FleetScheduler *scheduler)
{
    core::EpisodeOptions options;
    options.seed = job.seed;
    options.record_tokens = job.record_tokens;
    options.pipeline = job.pipeline;
    options.engine_service = job.engine_service;
    options.scheduler = job.scheduler != nullptr ? job.scheduler
                        : scheduler != nullptr
                            ? scheduler
                            : &sched::FleetScheduler::shared();
    if (job.custom)
        return job.custom(options);
    if (job.workload == nullptr)
        throw std::invalid_argument(
            "EpisodeJob has neither a workload nor a custom entry point");
    return job.workload->runWithConfig(job.config, job.difficulty, options,
                                       job.n_agents);
}

std::vector<core::EpisodeResult>
EpisodeRunner::run(const std::vector<EpisodeJob> &batch) const
{
    std::vector<core::EpisodeResult> results(batch.size());
    if (jobs_ <= 1 || batch.size() <= 1) {
        // EBS_JOBS=1 (or a singleton batch) stays entirely on the calling
        // thread: the pre-runner serial behavior, exactly.
        for (std::size_t i = 0; i < batch.size(); ++i)
            results[i] = runEpisode(batch[i], scheduler_);
        return results;
    }

    sched::TaskGraph graph;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const EpisodeJob &job = batch[i];
        std::string label =
            job.workload != nullptr ? job.workload->name : "custom";
        label += "#" + std::to_string(job.seed);
        graph.add(
            [this, &results, &job, i] {
                results[i] = runEpisode(job, scheduler_);
            },
            std::move(label));
    }

    // The contract this subsystem was refactored for: batches ride the
    // scheduler's persistent workers — a run must never spawn threads.
    const long long spawned_before = scheduler_->threadsSpawned();
    scheduler_->run(std::move(graph), jobs_);
    assert(scheduler_->threadsSpawned() == spawned_before &&
           "EpisodeRunner batches must reuse the scheduler's persistent "
           "worker pool");
    (void)spawned_before;

    return results;
}

} // namespace ebs::runner
