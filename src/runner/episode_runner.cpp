#include "runner/episode_runner.h"

#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/trace.h"
#include "stats/host_clock.h"

namespace ebs::runner {

EpisodeRunner::EpisodeRunner(int jobs, sched::FleetScheduler *scheduler,
                             obs::Tracer *tracer)
    : jobs_(jobs > 0 ? jobs : defaultJobs()),
      scheduler_(scheduler != nullptr ? scheduler
                                      : &sched::FleetScheduler::shared()),
      tracer_(tracer != nullptr ? tracer : &obs::Tracer::shared())
{
}

int
EpisodeRunner::defaultJobs()
{
    return sched::FleetScheduler::defaultWorkers();
}

const EpisodeRunner &
EpisodeRunner::shared()
{
    static const EpisodeRunner instance;
    return instance;
}

core::EpisodeResult
runEpisode(const EpisodeJob &job, sched::FleetScheduler *scheduler,
           std::uint64_t trace_episode, obs::Tracer *tracer_hint)
{
    core::EpisodeOptions options;
    options.seed = job.seed;
    options.record_tokens = job.record_tokens;
    options.pipeline = job.pipeline;
    options.engine_service = job.engine_service;
    options.phase_wall = job.phase_wall;
    options.scheduler = job.scheduler != nullptr ? job.scheduler
                        : scheduler != nullptr
                            ? scheduler
                            : &sched::FleetScheduler::shared();

    const auto dispatch = [&job](const core::EpisodeOptions &opts) {
        if (job.custom)
            return job.custom(opts);
        if (job.workload == nullptr)
            throw std::invalid_argument(
                "EpisodeJob has neither a workload nor a custom entry "
                "point");
        return job.workload->runWithConfig(job.config, job.difficulty,
                                           opts, job.n_agents);
    };

    if (!obs::traceEnabled())
        return dispatch(options);

    // Traced episode: bracket the whole run in an "episode" span (sim
    // time starts at 0 by definition of the episode clock) and adopt the
    // log once done. The id either came from the runner batch (stable
    // across EBS_JOBS) or is minted as a solo id here.
    obs::Tracer &tracer = job.tracer != nullptr ? *job.tracer
                          : tracer_hint != nullptr
                              ? *tracer_hint
                              : obs::Tracer::shared();
    obs::EpisodeTraceLog log(trace_episode != 0 ? trace_episode
                                                : tracer.nextSoloId());
    options.trace = &log;
    std::string label =
        job.workload != nullptr ? job.workload->name : "custom";
    label += "#" + std::to_string(job.seed);
    log.beginSpan("episode", std::move(label), 0.0, stats::hostNow());
    core::EpisodeResult result = dispatch(options);
    log.closeOpenSpans(result.sim_seconds, stats::hostNow());
    tracer.adopt(std::move(log));
    return result;
}

std::vector<core::EpisodeResult>
EpisodeRunner::run(const std::vector<EpisodeJob> &batch) const
{
    std::vector<core::EpisodeResult> results(batch.size());

    // One episode-id base per batch, minted before any job runs: episode
    // ids become (batch ordinal, submission index) pairs, a pure function
    // of submission order — which is what keeps the sim-time trace
    // stream byte-identical at any EBS_JOBS. 0 when tracing is off.
    const std::uint64_t trace_base =
        obs::traceEnabled() ? tracer_->nextBatchBase() : 0;

    if (jobs_ <= 1 || batch.size() <= 1) {
        // EBS_JOBS=1 (or a singleton batch) stays entirely on the calling
        // thread: the pre-runner serial behavior, exactly.
        for (std::size_t i = 0; i < batch.size(); ++i)
            results[i] = runEpisode(batch[i], scheduler_,
                                    trace_base == 0 ? 0 : trace_base + i,
                                    tracer_);
        return results;
    }

    sched::TaskGraph graph;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const EpisodeJob &job = batch[i];
        std::string label =
            job.workload != nullptr ? job.workload->name : "custom";
        label += "#" + std::to_string(job.seed);
        graph.add(
            [this, &results, &job, i, trace_base] {
                results[i] = runEpisode(job, scheduler_,
                                        trace_base == 0 ? 0
                                                        : trace_base + i,
                                        tracer_);
            },
            std::move(label));
    }

    // The contract this subsystem was refactored for: batches ride the
    // scheduler's persistent workers — a run must never spawn threads.
    const long long spawned_before = scheduler_->threadsSpawned();
    scheduler_->run(std::move(graph), jobs_);
    assert(scheduler_->threadsSpawned() == spawned_before &&
           "EpisodeRunner batches must reuse the scheduler's persistent "
           "worker pool");
    (void)spawned_before;

    return results;
}

} // namespace ebs::runner
