#include "runner/episode_runner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace ebs::runner {

EpisodeRunner::EpisodeRunner(int jobs)
    : jobs_(jobs > 0 ? jobs : defaultJobs())
{
}

int
EpisodeRunner::defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    const int fallback = hw > 0 ? static_cast<int>(hw) : 1;
    if (const char *v = std::getenv("EBS_JOBS")) {
        char *end = nullptr;
        const long parsed = std::strtol(v, &end, 10);
        if (end != v && *end == '\0' && parsed > 0 && parsed <= 1024)
            return static_cast<int>(parsed);
        // A typo'd EBS_JOBS silently running at full parallelism would
        // corrupt serial baselines; say what happened.
        std::fprintf(stderr,
                     "runner: ignoring invalid EBS_JOBS='%s' "
                     "(want 1..1024), using %d\n",
                     v, fallback);
    }
    return fallback;
}

const EpisodeRunner &
EpisodeRunner::shared()
{
    static const EpisodeRunner instance;
    return instance;
}

core::EpisodeResult
runEpisode(const EpisodeJob &job)
{
    core::EpisodeOptions options;
    options.seed = job.seed;
    options.record_tokens = job.record_tokens;
    options.pipeline = job.pipeline;
    options.engine_service = job.engine_service;
    if (job.custom)
        return job.custom(options);
    if (job.workload == nullptr)
        throw std::invalid_argument(
            "EpisodeJob has neither a workload nor a custom entry point");
    return job.workload->runWithConfig(job.config, job.difficulty, options,
                                       job.n_agents);
}

std::vector<core::EpisodeResult>
EpisodeRunner::run(const std::vector<EpisodeJob> &batch) const
{
    std::vector<core::EpisodeResult> results(batch.size());
    const int workers =
        static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(jobs_), batch.size()));
    if (workers <= 1) {
        for (std::size_t i = 0; i < batch.size(); ++i)
            results[i] = runEpisode(batch[i]);
        return results;
    }

    // Dynamic claiming: episode runtimes vary by orders of magnitude
    // across difficulties/paradigms, so a shared cursor load-balances far
    // better than static striping. Each worker writes only its claimed
    // slots; publication happens-before the joins below.
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto work = [&] {
        for (;;) {
            const std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= batch.size() || failed.load(std::memory_order_relaxed))
                return;
            try {
                results[i] = runEpisode(batch[i]);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t)
        pool.emplace_back(work);
    for (auto &thread : pool)
        thread.join();

    if (first_error)
        std::rethrow_exception(first_error);
    return results;
}

} // namespace ebs::runner
