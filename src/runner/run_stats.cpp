#include "runner/run_stats.h"

namespace ebs::runner {

double
RunStats::llmCallsPerEpisode() const
{
    return episodes > 0 ? static_cast<double>(llm_calls) / episodes : 0.0;
}

double
RunStats::tokensPerEpisode() const
{
    return episodes > 0 ? static_cast<double>(tokens) / episodes : 0.0;
}

double
RunStats::specConflictRate() const
{
    return spec_exec.speculated > 0
               ? static_cast<double>(spec_exec.conflicts +
                                     spec_exec.aborted) /
                     static_cast<double>(spec_exec.speculated)
               : 0.0;
}

double
RunStats::specReexecFraction() const
{
    return spec_exec.turns > 0
               ? static_cast<double>(spec_exec.turns -
                                     spec_exec.committed) /
                     static_cast<double>(spec_exec.turns)
               : 0.0;
}

double
RunStats::specExecSpeedup() const
{
    return spec_exec.exec_critical_s > 0.0
               ? spec_exec.exec_total_s / spec_exec.exec_critical_s
               : 1.0;
}

double
RunStats::queueDelayShare() const
{
    return sim_seconds > 0.0 ? queue_delay_s / sim_seconds : 0.0;
}

double
RunStats::queueDelayPerEpisode() const
{
    return episodes > 0 ? queue_delay_s / episodes : 0.0;
}

RunStats
foldEpisodes(std::span<const core::EpisodeResult> episodes)
{
    RunStats out;
    for (const auto &r : episodes) {
        out.success_rate += r.success;
        out.avg_steps += r.steps;
        out.avg_runtime_min += r.sim_seconds / 60.0;
        out.sim_seconds += r.sim_seconds;
        for (const auto &batch : r.llm_batches)
            out.queue_delay_s += batch.queue_delay_s;
        out.avg_step_latency_s += r.secondsPerStep();
        out.latency.merge(r.latency);
        out.msgs_generated += r.messages_generated;
        out.msgs_useful += r.messages_useful;
        out.llm_calls += static_cast<long long>(r.llm.calls);
        out.tokens += r.llm.tokens_in + r.llm.tokens_out;
        out.spec_exec.turns += r.spec_exec.turns;
        out.spec_exec.speculated += r.spec_exec.speculated;
        out.spec_exec.committed += r.spec_exec.committed;
        out.spec_exec.conflicts += r.spec_exec.conflicts;
        out.spec_exec.aborted += r.spec_exec.aborted;
        out.spec_exec.exec_total_s += r.spec_exec.exec_total_s;
        out.spec_exec.exec_critical_s += r.spec_exec.exec_critical_s;
        out.metrics.merge(r.metrics);
    }
    out.episodes = static_cast<int>(episodes.size());
    if (out.episodes > 0) {
        out.success_rate /= out.episodes;
        out.avg_steps /= out.episodes;
        out.avg_runtime_min /= out.episodes;
        out.avg_step_latency_s /= out.episodes;
        out.msgs_generated /= out.episodes;
        out.msgs_useful /= out.episodes;
    }
    return out;
}

} // namespace ebs::runner
