#include "sched/fleet_scheduler.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"
#include "stats/host_clock.h"

namespace ebs::sched {

TaskGraph::TaskId
TaskGraph::add(std::function<void()> fn, std::string label,
               std::vector<TaskId> deps)
{
    const TaskId id = nodes_.size();
    for (const TaskId dep : deps)
        if (dep >= id)
            throw std::invalid_argument(
                "TaskGraph: task " + std::to_string(id) +
                " depends on task " + std::to_string(dep) +
                " which is not an earlier task (graphs are acyclic by "
                "construction: dependencies must point backwards)");
    nodes_.push_back({std::move(fn), std::move(label), std::move(deps)});
    return id;
}

/**
 * One in-flight graph. Lives on the stack of the run() call that owns
 * it, registered with the scheduler for its lifetime; all fields are
 * guarded by the scheduler mutex.
 */
struct FleetScheduler::Execution
{
    TaskGraph graph;
    std::vector<int> waiting_deps; ///< unresolved dep count per task
    std::vector<std::vector<std::size_t>> dependents;
    std::vector<std::size_t> ready; ///< FIFO queue of runnable task ids
    std::size_t next_ready = 0;     ///< pop cursor into `ready`
    std::vector<TaskTiming> timings;
    std::size_t done = 0;
    int running = 0;
    int cap = 0; ///< max concurrent tasks of this graph; 0 = pool-only
    bool failed = false;
    std::exception_ptr error;
    /** Wakes the owning waiter: fires when one of this graph's tasks
     * finishes or becomes ready (so the waiter can help execute it). */
    core::CondVar owner_cv;
};

FleetScheduler::FleetScheduler(int workers)
    : epoch_s_(stats::hostNow())
{
    const int count = workers > 0 ? workers : defaultWorkers();
    // Construction is single-threaded, but spawnWorker() writes
    // mu_-guarded counters and each new worker immediately contends on
    // mu_ — holding the lock across the spawn loop keeps the annotated
    // contract airtight (workers block until the pool is fully built).
    core::MutexLock lock(mu_);
    pool_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        spawnWorker();
}

void
FleetScheduler::spawnWorker()
{
    const int index = static_cast<int>(pool_.size());
    ++spawned_;
    pool_.emplace_back([this, index] { workerLoop(index); });
}

FleetScheduler::~FleetScheduler()
{
    {
        core::MutexLock lock(mu_);
        stop_ = true;
    }
    work_cv_.notifyAll();
    for (auto &thread : pool_)
        thread.join();
}

long long
FleetScheduler::threadsSpawned() const
{
    // A creation-event counter, deliberately not pool_.size(): if a
    // future change tears workers down and respawns them per batch, the
    // pool size would look unchanged while this count grows — which is
    // exactly what the EpisodeRunner's reuse assertion must catch.
    core::MutexLock lock(mu_);
    return spawned_;
}

long long
FleetScheduler::tasksExecuted() const
{
    core::MutexLock lock(mu_);
    return executed_;
}

double
FleetScheduler::nowSeconds() const
{
    return stats::hostNow() - epoch_s_;
}

int
FleetScheduler::defaultWorkers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    const int fallback = hw > 0 ? static_cast<int>(hw) : 1;
    // getenv is not thread-safe against setenv, but nothing in the
    // process mutates the environment after main() starts; the read is
    // also memoized by every caller (static init of the shared pools).
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char *v = std::getenv("EBS_JOBS")) {
        char *end = nullptr;
        const long parsed = std::strtol(v, &end, 10);
        if (end != v && *end == '\0' && parsed > 0 && parsed <= 1024)
            return static_cast<int>(parsed);
        // A typo'd EBS_JOBS silently running at full parallelism would
        // corrupt serial baselines; say what happened.
        std::fprintf(stderr,
                     "sched: ignoring invalid EBS_JOBS='%s' "
                     "(want 1..1024), using %d\n",
                     v, fallback);
    }
    return fallback;
}

FleetScheduler &
FleetScheduler::shared()
{
    static FleetScheduler instance;
    return instance;
}

bool
FleetScheduler::claimLocked(Execution *only, Claim &claim)
{
    const auto claimable = [](const Execution &exec) {
        if (exec.next_ready >= exec.ready.size())
            return false;
        // The cap throttles live work, not the post-failure drain: once
        // a graph failed its remaining tasks are skipped, and delaying
        // the skips would only stall the waiter.
        return exec.failed || exec.cap <= 0 || exec.running < exec.cap;
    };

    Execution *chosen = nullptr;
    if (only != nullptr) {
        if (claimable(*only))
            chosen = only;
    } else {
        for (Execution *exec : active_) {
            if (claimable(*exec)) {
                chosen = exec;
                break;
            }
        }
    }
    if (chosen == nullptr)
        return false;

    claim.exec = chosen;
    claim.task = chosen->ready[chosen->next_ready++];
    ++chosen->running;
    return true;
}

void
FleetScheduler::finishLocked(Execution &exec, std::size_t task)
{
    --exec.running;
    ++exec.done;
    for (const std::size_t dependent : exec.dependents[task]) {
        if (--exec.waiting_deps[dependent] == 0)
            exec.ready.push_back(dependent);
    }
}

// The body drops and re-takes the caller's scoped lock around the task
// function — a hand-off Clang's analysis cannot express through a
// by-reference MutexLock, so the body opts out; the EBS_REQUIRES(mu_)
// contract in the header still checks every call site.
void
FleetScheduler::runClaim(core::MutexLock &lock, const Claim &claim,
                         int worker) EBS_NO_THREAD_SAFETY_ANALYSIS
{
    Execution &exec = *claim.exec;
    const std::size_t task = claim.task;
    const bool skip = exec.failed;

    TaskTiming &timing = exec.timings[task];
    timing.worker = worker;
    timing.start_s = nowSeconds();

    std::exception_ptr error;
    if (!skip) {
        lock.unlock();
        try {
            exec.graph.nodes_[task].fn();
        } catch (...) {
            error = std::current_exception();
        }
        lock.lock();
    }

    timing.end_s = nowSeconds();
    timing.ran = !skip;
    if (!skip)
        ++executed_;
    if (!skip && obs::traceEnabled()) {
        // Host-timeline task span. Recorded while mu_ is held (relocked
        // above), so run()'s post-join reads of the per-thread trace
        // buffers are ordered after every recording (happens-before via
        // the scheduler mutex). Timings are epoch-relative; the tracer
        // stores absolute hostNow() stamps.
        const std::string &label = exec.graph.nodes_[task].label;
        obs::Tracer::shared().hostTask(
            "sched", label.empty() ? std::string("task") : label,
            epoch_s_ + timing.start_s, epoch_s_ + timing.end_s, worker);
    }
    if (error) {
        exec.failed = true;
        if (!exec.error)
            exec.error = error;
    }
    finishLocked(exec, task);

    // Wake pool workers only when this graph actually has claimable work
    // left (released dependents, a cap slot freeing over a non-empty
    // queue, or a failure drain) — per-agent phase tasks are tiny, and an
    // unconditional notify_all would thundering-herd every idle worker on
    // each completion. Other graphs' claimability cannot change here.
    // The owner always learns about its graph's progress.
    if (exec.next_ready < exec.ready.size())
        work_cv_.notifyAll();
    exec.owner_cv.notifyAll();
}

void
FleetScheduler::workerLoop(int index)
{
    core::MutexLock lock(mu_);
    for (;;) {
        Claim claim;
        if (claimLocked(nullptr, claim)) {
            runClaim(lock, claim, index);
            continue;
        }
        if (stop_)
            return;
        work_cv_.wait(mu_, lock);
    }
}

std::vector<TaskTiming>
FleetScheduler::run(TaskGraph graph, int max_parallel)
{
    const std::size_t count = graph.size();
    if (count == 0)
        return {};

    Execution exec;
    exec.graph = std::move(graph);
    exec.waiting_deps.resize(count, 0);
    exec.dependents.resize(count);
    exec.timings.resize(count);
    exec.cap = max_parallel > 0 ? max_parallel : 0;
    exec.ready.reserve(count);
    for (std::size_t id = 0; id < count; ++id) {
        exec.timings[id].label = exec.graph.nodes_[id].label;
        exec.waiting_deps[id] =
            static_cast<int>(exec.graph.nodes_[id].deps.size());
        for (const std::size_t dep : exec.graph.nodes_[id].deps)
            exec.dependents[dep].push_back(id);
        if (exec.waiting_deps[id] == 0)
            exec.ready.push_back(id);
    }

    {
        core::MutexLock lock(mu_);
        active_.push_back(&exec);
        work_cv_.notifyAll();

        // Help-execute our own graph while it drains. Restricting
        // helping to the awaited graph keeps the blocked stack bounded
        // (an episode task never starts an unrelated episode in its own
        // frames) and cannot deadlock: either this thread finds a ready
        // task to run, or every remaining task is running on some other
        // thread, which will finish it and signal owner_cv.
        while (exec.done < count) {
            Claim claim;
            if (claimLocked(&exec, claim)) {
                runClaim(lock, claim, /*worker=*/-1);
                continue;
            }
            exec.owner_cv.wait(mu_, lock);
        }

        active_.erase(std::find(active_.begin(), active_.end(), &exec));
    }

    if (exec.error)
        std::rethrow_exception(exec.error);
    return std::move(exec.timings);
}

void
FleetScheduler::parallelFor(std::size_t count,
                            const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (count == 1) {
        fn(0);
        return;
    }
    TaskGraph graph;
    for (std::size_t i = 0; i < count; ++i)
        graph.add([&fn, i] { fn(i); });
    run(std::move(graph));
}

} // namespace ebs::sched
