#ifndef EBS_SCHED_FLEET_SCHEDULER_H
#define EBS_SCHED_FLEET_SCHEDULER_H

#include <cstddef>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/sync.h"
#include "core/thread_annotations.h"

namespace ebs::sched {

/**
 * When and where one task of a scheduled graph ran, in seconds relative
 * to the scheduler's construction. `run_all` turns these into the
 * per-suite wall-clock / straggler summary; tests use them to prove that
 * dependency edges were honored.
 */
struct TaskTiming
{
    std::string label;
    double start_s = 0.0;
    double end_s = 0.0;
    int worker = -1; ///< executing worker index; -1 = a helping waiter
    bool ran = false; ///< false when skipped after an earlier task threw

    double duration() const { return end_s - start_s; }
};

/**
 * A dependency-ordered batch of work: the unit FleetScheduler executes.
 *
 * Tasks are identified by their insertion index, and a task may only
 * depend on tasks added before it — which makes every graph acyclic by
 * construction (add() rejects forward/self edges). Episode batches are
 * edge-free graphs; `run_all` uses one node per suite; nested per-agent
 * fan-outs use parallelFor(), which builds an edge-free graph under the
 * hood.
 */
class TaskGraph
{
  public:
    using TaskId = std::size_t;

    /**
     * Append a task. @param deps ids of earlier tasks that must finish
     * first (every id must be < the new task's id).
     * @throws std::invalid_argument on a forward or self dependency.
     */
    TaskId add(std::function<void()> fn, std::string label = {},
               std::vector<TaskId> deps = {});

    std::size_t size() const { return nodes_.size(); }
    bool empty() const { return nodes_.empty(); }

  private:
    friend class FleetScheduler;

    struct Node
    {
        std::function<void()> fn;
        std::string label;
        std::vector<TaskId> deps;
    };

    std::vector<Node> nodes_;
};

/**
 * Process-wide work scheduler: one persistent pool of `workers()` threads
 * (sized by EBS_JOBS for the shared() instance) executing TaskGraphs for
 * every client in the process — suite drivers, the EpisodeRunner's
 * episode batches, and the per-agent phase fan-outs *inside* a running
 * episode all share the same global budget.
 *
 * Nested submission is a first-class operation: run() blocks, but the
 * calling thread *helps* — it executes ready tasks of the graph it is
 * waiting on instead of sleeping. A worker whose task itself calls run()
 * (an episode fanning out per-agent subtasks) therefore drives the nested
 * graph to completion even when it occupies the pool's only thread, so no
 * pool size can deadlock. Helping is scoped to the awaited graph, which
 * also bounds help-recursion depth by the nesting depth, not the batch
 * size.
 *
 * The scheduler never influences results: tasks carry their own state and
 * clients require order-independence of the work they submit (the episode
 * determinism contract), so worker count and interleaving only change
 * wall-clock. Exceptions: the first throwing task's exception is
 * rethrown from run() after the graph drains; tasks that were not yet
 * started when the failure happened are skipped (TaskTiming::ran stays
 * false).
 *
 * Lock contract (compiler-checked): one mutex, `mu_`, guards every piece
 * of cross-thread state — the active-execution list, the stop flag, and
 * the lifetime counters — plus all fields of the per-graph Execution
 * records while they are registered. The EBS_GUARDED_BY / EBS_REQUIRES
 * annotations below make Clang's `-Wthread-safety` analysis enforce
 * this: the CI static-analysis job fails the build on any unlocked
 * access, so the contract cannot rot into a latent race.
 */
class FleetScheduler
{
  public:
    /** @param workers pool threads; <= 0 selects defaultWorkers(). */
    explicit FleetScheduler(int workers = 0);
    ~FleetScheduler();

    FleetScheduler(const FleetScheduler &) = delete;
    FleetScheduler &operator=(const FleetScheduler &) = delete;

    /** Persistent pool threads (>= 1). */
    int workers() const { return static_cast<int>(pool_.size()); }

    /**
     * Worker threads this scheduler has ever created — constant after
     * construction, which is exactly the point: repeated batches reuse
     * the persistent pool instead of respawning threads (the
     * EpisodeRunner asserts this around every run).
     */
    long long threadsSpawned() const EBS_EXCLUDES(mu_);

    /** Tasks executed (not skipped) over the scheduler's lifetime. */
    long long tasksExecuted() const EBS_EXCLUDES(mu_);

    /**
     * Execute every task of `graph`, honoring dependency edges, and
     * return one TaskTiming per task (indexed like the graph). At most
     * `max_parallel` tasks of this graph run concurrently when > 0 (the
     * EpisodeRunner passes its --jobs cap); the pool size always caps
     * globally. Blocking, help-executing, nestable; see class comment
     * for the failure contract.
     */
    std::vector<TaskTiming> run(TaskGraph graph, int max_parallel = 0)
        EBS_EXCLUDES(mu_);

    /**
     * Convenience fan-out: run `fn(0..count-1)` as an edge-free graph.
     * This is the nested-submission entry point coordinators use for
     * per-agent phase compute.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn)
        EBS_EXCLUDES(mu_);

    /** Seconds since this scheduler was constructed (timeline clock). */
    double nowSeconds() const;

    /**
     * `EBS_JOBS` if set to a positive integer (1..1024), else the
     * hardware concurrency (>= 1). One knob sizes the whole fleet's
     * budget: run_all's suite concurrency, the shared EpisodeRunner,
     * and the shared scheduler's pool all derive from it.
     */
    static int defaultWorkers();

    /**
     * Process-wide instance built with defaultWorkers(): the single
     * global pool behind EpisodeRunner::shared() and the default
     * EpisodeOptions, so suites, episodes, and per-agent phases all
     * draw from one EBS_JOBS budget.
     */
    static FleetScheduler &shared();

  private:
    struct Execution; ///< one in-flight graph (lives on run()'s stack)

    struct Claim
    {
        Execution *exec = nullptr;
        std::size_t task = 0;
    };

    /** Pop a runnable task — from `only` when helping, from any active
     * execution (oldest graph first) when a worker. */
    bool claimLocked(Execution *only, Claim &claim) EBS_REQUIRES(mu_);

    /** Execute (or skip) a claimed task. Enters and leaves with `lock`
     * held, but drops it around the task body — lock juggling through a
     * caller-owned scoped lock, which is why the definition opts out of
     * the body analysis (callers are still REQUIRES-checked). */
    void runClaim(core::MutexLock &lock, const Claim &claim, int worker)
        EBS_REQUIRES(mu_);

    /** Mark a task finished and release its dependents. */
    void finishLocked(Execution &exec, std::size_t task) EBS_REQUIRES(mu_);

    /** Create one pool thread (the only place a thread is ever made;
     * counts into threadsSpawned so a respawn regression trips the
     * runner's reuse assertion instead of passing silently). */
    void spawnWorker() EBS_REQUIRES(mu_);

    void workerLoop(int index) EBS_EXCLUDES(mu_);

    mutable core::Mutex mu_;
    core::CondVar work_cv_; ///< wakes idle workers
    /** Registration order = priority. */
    std::vector<Execution *> active_ EBS_GUARDED_BY(mu_);
    /** Populated under mu_ during construction, joined in the destructor,
     * structurally constant in between — so sized reads (workers()) are
     * safe lock-free and the field carries no capability. */
    std::vector<std::thread> pool_;
    bool stop_ EBS_GUARDED_BY(mu_) = false;
    long long executed_ EBS_GUARDED_BY(mu_) = 0;
    /** Thread-creation events, not pool size. */
    long long spawned_ EBS_GUARDED_BY(mu_) = 0;
    /** stats::hostNow() at construction (timeline origin). */
    double epoch_s_ = 0.0;
};

} // namespace ebs::sched

#endif // EBS_SCHED_FLEET_SCHEDULER_H
