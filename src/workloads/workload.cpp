#include "workloads/workload.h"

#include <cassert>
#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace ebs::workloads {

const char *
paradigmName(Paradigm paradigm)
{
    switch (paradigm) {
      case Paradigm::SingleModular:
        return "Single-Agent Modularized";
      case Paradigm::MultiCentralized:
        return "Multi-Agent Centralized";
      case Paradigm::MultiDecentralized:
        return "Multi-Agent Decentralized";
    }
    return "?";
}

core::EpisodeResult
WorkloadSpec::run(env::Difficulty difficulty,
                  const core::EpisodeOptions &options, int n_agents) const
{
    return runWithConfig(config, difficulty, options, n_agents);
}

core::EpisodeResult
WorkloadSpec::runWithConfig(const core::AgentConfig &config_override,
                            env::Difficulty difficulty,
                            const core::EpisodeOptions &options,
                            int n_agents) const
{
    int agents = n_agents > 0 ? n_agents : default_agents;
    if (paradigm == Paradigm::SingleModular)
        agents = 1;

    sim::Rng env_rng = sim::Rng(options.seed).fork(7);
    auto environment = make_env(difficulty, agents, env_rng);
    assert(environment != nullptr);

    core::EpisodeOptions effective = options;
    if (effective.max_steps_override <= 0 && step_budget_factor < 1.0) {
        effective.max_steps_override = std::max(
            5, static_cast<int>(environment->task().maxSteps() *
                                step_budget_factor));
    }

    switch (paradigm) {
      case Paradigm::SingleModular:
        return core::runSingleAgent(*environment, config_override, effective);
      case Paradigm::MultiCentralized:
        return core::runCentralized(*environment, config_override, effective);
      case Paradigm::MultiDecentralized:
        return core::runDecentralized(*environment, config_override,
                                      effective);
    }
    return {};
}

const std::vector<WorkloadSpec> &
suite()
{
    static const std::vector<WorkloadSpec> kSuite = [] {
        std::vector<WorkloadSpec> all;
        all.push_back(makeEmbodiedGpt());
        all.push_back(makeJarvis1());
        all.push_back(makeDaduE());
        all.push_back(makeMp5());
        all.push_back(makeDeps());
        all.push_back(makeMindAgent());
        all.push_back(makeOla());
        all.push_back(makeCoherent());
        all.push_back(makeCmas());
        all.push_back(makeCoela());
        all.push_back(makeCombo());
        all.push_back(makeRoco());
        all.push_back(makeDmas());
        all.push_back(makeHmas());
        return all;
    }();
    return kSuite;
}

const WorkloadSpec &
workload(const std::string &name)
{
    for (const auto &spec : suite())
        if (spec.name == name)
            return spec;
    std::fprintf(stderr, "unknown workload: %s\n", name.c_str());
    std::abort();
}

} // namespace ebs::workloads
