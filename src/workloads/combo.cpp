#include <memory>

#include "envs/kitchen_env.h"
#include "workloads/calibration.h"
#include "workloads/workload.h"

namespace ebs::workloads {

/**
 * COMBO (Zhang et al.): decentralized compositional-world-model agents —
 * diffusion-based state reconstruction from egocentric views (the heavy
 * sensing stage), LLaVA-7B planning/communication, tree-search refined
 * actions, A-star execution. Evaluated on TDW-Cook style cooperation.
 */
WorkloadSpec
makeCombo()
{
    WorkloadSpec spec;
    spec.name = "COMBO";
    spec.paradigm = Paradigm::MultiDecentralized;
    spec.sensing_desc = "Diffusion";
    spec.planning_desc = "LLaVA-7B";
    spec.comm_desc = "LLaVA-7B";
    spec.memory_desc = "Ob., Act., Dx.";
    spec.reflection_desc = "-";
    spec.execution_desc = "A-star";
    spec.tasks_desc = "Collaborative cooking/gaming (TDW-Cook)";
    spec.env_name = "kitchen";
    spec.default_agents = 2;

    core::AgentConfig cfg;
    cfg.has_communication = true;
    cfg.has_reflection = false;
    llm::ModelProfile llava = llm::ModelProfile::llava7bLocal();
    // Tree-search over proposed action sequences lifts plan quality above
    // the raw model's.
    llava.plan_quality = 0.72;
    cfg.planner_model = llava;
    cfg.comm_model = llm::ModelProfile::llava7bLocal();
    cfg.memory = defaultMemory();

    cfg.lat.sensing = sensingDiffusion();
    cfg.lat.actuation = {0.6, 0.3};
    cfg.lat.move_per_cell_s = 0.12;
    cfg.lat.plan_prompt_base = 700;
    cfg.lat.plan_out_tokens = 220; // tree-search proposals are verbose
    cfg.lat.comm_prompt_base = 420;
    cfg.lat.comm_out_tokens = 60;
    spec.step_budget_factor = 0.7;
    spec.config = cfg;

    spec.make_env = [](env::Difficulty difficulty, int n_agents,
                       sim::Rng rng) -> std::unique_ptr<env::Environment> {
        return std::make_unique<envs::KitchenEnv>(difficulty, n_agents, rng);
    };
    return spec;
}

} // namespace ebs::workloads
