#include <memory>

#include "envs/household_env.h"
#include "workloads/calibration.h"
#include "workloads/workload.h"

namespace ebs::workloads {

/**
 * EmbodiedGPT (Mu et al.): ViT sensing -> fine-tuned Llama-7B planning ->
 * MLP low-level policy. No communication, memory, or reflection modules.
 * Evaluated here on household rearrangement (VirtualHome-style).
 */
WorkloadSpec
makeEmbodiedGpt()
{
    WorkloadSpec spec;
    spec.name = "EmbodiedGPT";
    spec.paradigm = Paradigm::SingleModular;
    spec.sensing_desc = "ViT";
    spec.planning_desc = "Llama-7B (fine-tuned)";
    spec.comm_desc = "-";
    spec.memory_desc = "-";
    spec.reflection_desc = "-";
    spec.execution_desc = "MLP policy";
    spec.tasks_desc = "Embodied planning, VQA (VirtualHome-style)";
    spec.env_name = "household";
    spec.default_agents = 1;

    core::AgentConfig cfg;
    cfg.has_communication = false;
    cfg.has_memory = false;
    cfg.has_reflection = false;

    // Embodied fine-tuning lifts the small model's task competence well
    // above the generic Llama-7B baseline.
    llm::ModelProfile planner = llm::ModelProfile::llama7bLocal();
    planner.name = "Llama-7B (embodied fine-tune)";
    planner.plan_quality = 0.76;
    planner.format_compliance = 0.96;
    cfg.planner_model = planner;
    cfg.reflect_model = planner;
    cfg.comm_model = planner;

    cfg.lat.sensing = sensingVit();
    cfg.lat.actuation = {0.9, 0.3}; // MLP policy rollouts per interaction
    cfg.lat.move_per_cell_s = 0.22;
    cfg.lat.plan_prompt_base = 450;
    cfg.lat.plan_out_tokens = 70;
    spec.config = cfg;

    spec.make_env = [](env::Difficulty difficulty, int n_agents,
                       sim::Rng rng) -> std::unique_ptr<env::Environment> {
        return std::make_unique<envs::HouseholdEnv>(difficulty, n_agents,
                                                    rng);
    };
    return spec;
}

} // namespace ebs::workloads
