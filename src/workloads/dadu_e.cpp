#include <memory>

#include "envs/transport_env.h"
#include "workloads/calibration.h"
#include "workloads/workload.h"

namespace ebs::workloads {

/**
 * DaDu-E (Sun et al.): LiDAR point-cloud sensing, lightweight Llama-8B
 * planning, LLaVA-8B reflection, memory augmentation, and AnyGrasp
 * low-level grasping — the heavy execution module (38.1% of step latency
 * per Fig. 2a). Evaluated on object transport.
 */
WorkloadSpec
makeDaduE()
{
    WorkloadSpec spec;
    spec.name = "DaDu-E";
    spec.paradigm = Paradigm::SingleModular;
    spec.sensing_desc = "PointCloud";
    spec.planning_desc = "Llama-8B";
    spec.comm_desc = "-";
    spec.memory_desc = "Ob., Act.";
    spec.reflection_desc = "LLaVA-8B";
    spec.execution_desc = "AnyGrasp";
    spec.tasks_desc = "Object transport, autonomous decisions";
    spec.env_name = "transport";
    spec.default_agents = 1;

    core::AgentConfig cfg;
    cfg.has_communication = false;
    llm::ModelProfile planner = llm::ModelProfile::llama3_8bLocal();
    // DaDu-E constrains planning to closed-loop multiple-choice prompts,
    // recovering much of the reasoning gap (paper Rec. 4).
    planner.name = "Llama-8B (multiple-choice planning)";
    planner.plan_quality = 0.74;
    planner.format_compliance = 0.95;
    cfg.planner_model = planner;
    cfg.reflect_model = llm::ModelProfile::llava7bLocal();
    cfg.reflect_model.name = "LLaVA-8B (local)";
    cfg.reflect_model.reflect_quality = 0.74;
    cfg.memory = defaultMemory();

    cfg.lat.sensing = sensingPointCloud();
    cfg.lat.actuation = {2.6, 0.35}; // AnyGrasp perception + grasp motion
    cfg.lat.move_per_cell_s = 0.30;  // real robot base locomotion
    cfg.lat.motion_planner = {0.15, 0.4};
    cfg.lat.plan_prompt_base = 500;
    cfg.lat.plan_out_tokens = 60;
    spec.step_budget_factor = 0.7;
    spec.config = cfg;

    spec.make_env = [](env::Difficulty difficulty, int n_agents,
                       sim::Rng rng) -> std::unique_ptr<env::Environment> {
        return std::make_unique<envs::TransportEnv>(difficulty, n_agents,
                                                    rng);
    };
    return spec;
}

} // namespace ebs::workloads
