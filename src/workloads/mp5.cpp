#include <memory>

#include "envs/craft_env.h"
#include "workloads/calibration.h"
#include "workloads/workload.h"

namespace ebs::workloads {

/**
 * MP5 (Qin et al.): MineCLIP active perception, GPT-4 situation-aware
 * planning, GPT-4 reflection patroller, MineDojo low-level performer. No
 * persistent memory module. Evaluated on open-ended Minecraft tasks.
 */
WorkloadSpec
makeMp5()
{
    WorkloadSpec spec;
    spec.name = "MP5";
    spec.paradigm = Paradigm::SingleModular;
    spec.sensing_desc = "MineCLIP";
    spec.planning_desc = "GPT-4";
    spec.comm_desc = "-";
    spec.memory_desc = "-";
    spec.reflection_desc = "GPT-4";
    spec.execution_desc = "MineDojo";
    spec.tasks_desc = "Process/context-dependent Minecraft tasks";
    spec.env_name = "craft";
    spec.default_agents = 1;

    core::AgentConfig cfg;
    cfg.has_communication = false;
    cfg.has_memory = false;
    cfg.planner_model = llm::ModelProfile::gpt4Api();
    cfg.reflect_model = llm::ModelProfile::gpt4Api();

    cfg.lat.sensing = sensingMineClip();
    cfg.lat.actuation = {0.8, 0.3};
    cfg.lat.move_per_cell_s = 0.12;
    cfg.lat.plan_prompt_base = 1100; // active-perception descriptions
    cfg.lat.plan_out_tokens = 130;
    cfg.lat.reflect_prompt_base = 420;
    cfg.lat.reflect_out_tokens = 60;
    spec.config = cfg;

    spec.make_env = [](env::Difficulty difficulty, int n_agents,
                       sim::Rng rng) -> std::unique_ptr<env::Environment> {
        return std::make_unique<envs::CraftEnv>(difficulty, n_agents, rng);
    };
    return spec;
}

} // namespace ebs::workloads
