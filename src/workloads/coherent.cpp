#include <memory>

#include "envs/household_env.h"
#include "workloads/calibration.h"
#include "workloads/workload.h"

namespace ebs::workloads {

/**
 * COHERENT (Liu et al.): centralized hierarchical framework for
 * heterogeneous multi-robot planning — DINO sensing, GPT-4
 * proposal-execution-feedback-adjustment (heavy communication), RRT /
 * A-star executors. Communication is this workload's latency bottleneck
 * (Fig. 2a).
 */
WorkloadSpec
makeCoherent()
{
    WorkloadSpec spec;
    spec.name = "COHERENT";
    spec.paradigm = Paradigm::MultiCentralized;
    spec.sensing_desc = "DINO";
    spec.planning_desc = "GPT-4";
    spec.comm_desc = "GPT-4";
    spec.memory_desc = "Ob., Act., Dx.";
    spec.reflection_desc = "GPT-4";
    spec.execution_desc = "RRT/A-star";
    spec.tasks_desc = "Heterogeneous robot task/motion planning (BEHAVIOR)";
    spec.env_name = "household";
    spec.default_agents = 3;

    core::AgentConfig cfg;
    cfg.has_communication = true;
    cfg.has_reflection = true;
    cfg.planner_model = llm::ModelProfile::gpt4Api();
    cfg.comm_model = llm::ModelProfile::gpt4Api();
    cfg.reflect_model = llm::ModelProfile::gpt4Api();
    cfg.memory = defaultMemory();

    cfg.lat.sensing = sensingDino();
    cfg.lat.actuation = {1.6, 0.35}; // robot arm interactions
    cfg.lat.move_per_cell_s = 0.25;
    cfg.lat.motion_planner = {0.25, 0.5}; // RRT queries
    cfg.lat.plan_prompt_base = 1100;
    cfg.lat.plan_out_tokens = 110;
    // Proposal-feedback-adjustment rounds make messages long.
    cfg.lat.comm_prompt_base = 900;
    cfg.lat.comm_out_tokens = 160;
    spec.step_budget_factor = 0.5;
    spec.config = cfg;

    spec.make_env = [](env::Difficulty difficulty, int n_agents,
                       sim::Rng rng) -> std::unique_ptr<env::Environment> {
        return std::make_unique<envs::HouseholdEnv>(difficulty, n_agents,
                                                    rng);
    };
    return spec;
}

} // namespace ebs::workloads
