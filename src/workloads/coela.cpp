#include <memory>

#include "envs/transport_env.h"
#include "workloads/calibration.h"
#include "workloads/workload.h"

namespace ebs::workloads {

/**
 * CoELA (Zhang et al.): decentralized cooperative embodied language agents
 * — Mask R-CNN perception, GPT-4 for communication, planning, and action
 * selection (three LLM calls per step: 16.1% / 36.5% / 10.3% of step
 * latency), A-star execution. Evaluated on TDW-MAT object transport.
 */
WorkloadSpec
makeCoela()
{
    WorkloadSpec spec;
    spec.name = "CoELA";
    spec.paradigm = Paradigm::MultiDecentralized;
    spec.sensing_desc = "Mask R-CNN";
    spec.planning_desc = "GPT-4";
    spec.comm_desc = "GPT-4";
    spec.memory_desc = "Ob., Act., Dx.";
    spec.reflection_desc = "-";
    spec.execution_desc = "A-star";
    spec.tasks_desc = "Collaborative transport, housework (TDW-MAT)";
    spec.env_name = "transport";
    spec.default_agents = 2;

    core::AgentConfig cfg;
    cfg.has_communication = true;
    cfg.has_reflection = false;
    cfg.llm_action_selection = true; // the third LLM call per step
    cfg.planner_model = llm::ModelProfile::gpt4Api();
    cfg.comm_model = llm::ModelProfile::gpt4Api();
    cfg.memory = defaultMemory();

    cfg.lat.sensing = sensingMaskRcnn();
    cfg.lat.actuation = {0.7, 0.3};
    cfg.lat.move_per_cell_s = 0.15;
    cfg.lat.plan_prompt_base = 850;
    cfg.lat.plan_out_tokens = 120;
    cfg.lat.comm_prompt_base = 520;
    cfg.lat.comm_out_tokens = 55;
    cfg.lat.action_select_out_tokens = 28;
    spec.step_budget_factor = 0.5;
    spec.config = cfg;

    spec.make_env = [](env::Difficulty difficulty, int n_agents,
                       sim::Rng rng) -> std::unique_ptr<env::Environment> {
        return std::make_unique<envs::TransportEnv>(difficulty, n_agents,
                                                    rng);
    };
    return spec;
}

} // namespace ebs::workloads
