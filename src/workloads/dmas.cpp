#include <memory>

#include "envs/boxnet_env.h"
#include "workloads/calibration.h"
#include "workloads/workload.h"

namespace ebs::workloads {

/**
 * DMAS (Chen et al.): fully decentralized variant of the multi-robot
 * planning study — each robot runs its own GPT-4 planner and dialogue
 * proceeds in turn-taking rounds. Evaluated on BoxNet.
 */
WorkloadSpec
makeDmas()
{
    WorkloadSpec spec;
    spec.name = "DMAS";
    spec.paradigm = Paradigm::MultiDecentralized;
    spec.sensing_desc = "ViLD";
    spec.planning_desc = "GPT-4";
    spec.comm_desc = "GPT-4";
    spec.memory_desc = "Ob., Act., Dx.";
    spec.reflection_desc = "-";
    spec.execution_desc = "Action list";
    spec.tasks_desc = "Collaborative planning, manipulation (BoxNet)";
    spec.env_name = "boxnet";
    spec.default_agents = 4;

    core::AgentConfig cfg;
    cfg.has_communication = true;
    cfg.has_reflection = false;
    cfg.planner_model = llm::ModelProfile::gpt4Api();
    cfg.comm_model = llm::ModelProfile::gpt4Api();
    cfg.memory = defaultMemory();

    cfg.lat.sensing = sensingVild();
    cfg.lat.actuation = {0.9, 0.3};
    cfg.lat.move_per_cell_s = 0.15;
    cfg.lat.plan_prompt_base = 750;
    cfg.lat.plan_out_tokens = 80;
    cfg.lat.comm_prompt_base = 500;
    cfg.lat.comm_out_tokens = 55; // turn-taking keeps messages short
    spec.step_budget_factor = 0.5;
    spec.config = cfg;

    spec.make_env = [](env::Difficulty difficulty, int n_agents,
                       sim::Rng rng) -> std::unique_ptr<env::Environment> {
        return std::make_unique<envs::BoxNetEnv>(difficulty, n_agents, rng);
    };
    return spec;
}

} // namespace ebs::workloads
