#include <memory>

#include "envs/household_env.h"
#include "workloads/calibration.h"
#include "workloads/workload.h"

namespace ebs::workloads {

/**
 * Organized LLM Agents / OLA (Guo et al.): centralized team organization
 * with GPT-4 planning and communication, criticize-reflect prompting, and
 * full observation/action/dialogue memory. Evaluated on VirtualHome /
 * C-WAH household tasks.
 */
WorkloadSpec
makeOla()
{
    WorkloadSpec spec;
    spec.name = "OLA";
    spec.paradigm = Paradigm::MultiCentralized;
    spec.sensing_desc = "-";
    spec.planning_desc = "GPT-4/Llama-70B";
    spec.comm_desc = "GPT-4";
    spec.memory_desc = "Ob., Act., Dx.";
    spec.reflection_desc = "GPT-4";
    spec.execution_desc = "Action list";
    spec.tasks_desc = "Collaborative planning, object transport (C-WAH)";
    spec.env_name = "household";
    spec.default_agents = 3;

    core::AgentConfig cfg;
    cfg.has_sensing = false; // symbolic environment interface
    cfg.has_communication = true;
    cfg.has_reflection = true;
    cfg.planner_model = llm::ModelProfile::gpt4Api();
    cfg.comm_model = llm::ModelProfile::gpt4Api();
    cfg.reflect_model = llm::ModelProfile::gpt4Api();
    cfg.memory = defaultMemory();

    cfg.lat.actuation = {0.5, 0.3};
    cfg.lat.move_per_cell_s = 0.12;
    cfg.lat.plan_prompt_base = 1200; // organizational prompts
    cfg.lat.plan_out_tokens = 120;
    cfg.lat.comm_prompt_base = 500;
    cfg.lat.comm_out_tokens = 80;
    spec.step_budget_factor = 0.25;
    spec.config = cfg;

    spec.make_env = [](env::Difficulty difficulty, int n_agents,
                       sim::Rng rng) -> std::unique_ptr<env::Environment> {
        return std::make_unique<envs::HouseholdEnv>(difficulty, n_agents,
                                                    rng);
    };
    return spec;
}

} // namespace ebs::workloads
