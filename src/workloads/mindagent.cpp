#include <memory>

#include "envs/kitchen_env.h"
#include "workloads/calibration.h"
#include "workloads/workload.h"

namespace ebs::workloads {

/**
 * MindAgent (Gong et al.): centralized GPT-4 scheduler for collaborative
 * cooking (CuisineWorld). The central planner receives the symbolic game
 * state (no perception module), dispatches tasks, and coordinates via
 * few-shot prompting; agents have no reflection module.
 */
WorkloadSpec
makeMindAgent()
{
    WorkloadSpec spec;
    spec.name = "MindAgent";
    spec.paradigm = Paradigm::MultiCentralized;
    spec.sensing_desc = "-";
    spec.planning_desc = "GPT-4";
    spec.comm_desc = "GPT-4";
    spec.memory_desc = "Ob., Act., Dx.";
    spec.reflection_desc = "-";
    spec.execution_desc = "Action list";
    spec.tasks_desc = "Collaborative cooking (CuisineWorld)";
    spec.env_name = "kitchen";
    spec.default_agents = 3;

    core::AgentConfig cfg;
    cfg.has_sensing = false; // game state is handed to the planner
    cfg.has_communication = true;
    cfg.has_reflection = false;
    cfg.planner_model = llm::ModelProfile::gpt4Api();
    cfg.comm_model = llm::ModelProfile::gpt4Api();
    cfg.memory = defaultMemory();

    cfg.lat.actuation = {0.5, 0.3};
    cfg.lat.move_per_cell_s = 0.10;
    cfg.lat.plan_prompt_base = 1400; // recipe book + few-shot dispatches
    cfg.lat.plan_out_tokens = 120;
    cfg.lat.state_tokens_per_agent = 110;
    spec.step_budget_factor = 0.6;
    spec.config = cfg;

    spec.make_env = [](env::Difficulty difficulty, int n_agents,
                       sim::Rng rng) -> std::unique_ptr<env::Environment> {
        return std::make_unique<envs::KitchenEnv>(difficulty, n_agents, rng);
    };
    return spec;
}

} // namespace ebs::workloads
