#include <memory>

#include "envs/craft_env.h"
#include "workloads/calibration.h"
#include "workloads/workload.h"

namespace ebs::workloads {

/**
 * DEPS (Wang et al.): symbolic-information sensing, GPT-4
 * describe-explain-plan-select planning, CLIP-based selector/reflector,
 * MineDojo controller. Evaluated on open-world crafting chains.
 */
WorkloadSpec
makeDeps()
{
    WorkloadSpec spec;
    spec.name = "DEPS";
    spec.paradigm = Paradigm::SingleModular;
    spec.sensing_desc = "Symbolic info";
    spec.planning_desc = "GPT-4";
    spec.comm_desc = "-";
    spec.memory_desc = "-";
    spec.reflection_desc = "CLIP";
    spec.execution_desc = "MineDojo";
    spec.tasks_desc = "Complex-dependency crafting (diamond pickaxe)";
    spec.env_name = "craft";
    spec.default_agents = 1;

    core::AgentConfig cfg;
    cfg.has_communication = false;
    cfg.has_memory = false;
    // "Symbolic info" sensing: the simulator hands DEPS the full symbolic
    // game state, so there is no perception model in the loop.
    cfg.has_sensing = false;
    cfg.planner_model = llm::ModelProfile::gpt4Api();
    cfg.reflect_model = clipReflector();

    cfg.lat.sensing = sensingSymbolic();
    cfg.lat.actuation = {0.8, 0.3};
    cfg.lat.move_per_cell_s = 0.12;
    cfg.lat.plan_prompt_base = 1000; // describe+explain chains
    cfg.lat.plan_out_tokens = 140;
    cfg.lat.reflect_prompt_base = 120;
    cfg.lat.reflect_out_tokens = 8; // CLIP similarity scoring
    spec.step_budget_factor = 0.5;
    spec.config = cfg;

    spec.make_env = [](env::Difficulty difficulty, int n_agents,
                       sim::Rng rng) -> std::unique_ptr<env::Environment> {
        return std::make_unique<envs::CraftEnv>(difficulty, n_agents, rng);
    };
    return spec;
}

} // namespace ebs::workloads
