#include <memory>

#include "envs/boxlift_env.h"
#include "workloads/calibration.h"
#include "workloads/workload.h"

namespace ebs::workloads {

/**
 * HMAS (Chen et al.): hybrid central-initial-plan + local-feedback
 * multi-robot system, profiled under the decentralized paradigm per the
 * paper's suite. Evaluated on BoxLift, where crates need multiple robots
 * lifting simultaneously — the coordination-critical domain.
 */
WorkloadSpec
makeHmas()
{
    WorkloadSpec spec;
    spec.name = "HMAS";
    spec.paradigm = Paradigm::MultiDecentralized;
    spec.sensing_desc = "ViLD";
    spec.planning_desc = "GPT-4";
    spec.comm_desc = "GPT-4";
    spec.memory_desc = "Ob., Act., Dx.";
    spec.reflection_desc = "GPT-4";
    spec.execution_desc = "Action list";
    spec.tasks_desc = "Joint lifting, long-horizon planning (BoxLift)";
    spec.env_name = "boxlift";
    spec.default_agents = 3;

    core::AgentConfig cfg;
    cfg.has_communication = true;
    cfg.has_reflection = true;
    cfg.planner_model = llm::ModelProfile::gpt4Api();
    cfg.comm_model = llm::ModelProfile::gpt4Api();
    cfg.reflect_model = llm::ModelProfile::gpt4Api();
    cfg.memory = defaultMemory();

    cfg.lat.sensing = sensingVild();
    cfg.lat.actuation = {1.1, 0.3}; // joint lift maneuvers
    cfg.lat.move_per_cell_s = 0.15;
    cfg.lat.plan_prompt_base = 800;
    cfg.lat.plan_out_tokens = 100;
    cfg.lat.comm_prompt_base = 480;
    cfg.lat.comm_out_tokens = 70;
    spec.step_budget_factor = 0.18;
    spec.config = cfg;

    spec.make_env = [](env::Difficulty difficulty, int n_agents,
                       sim::Rng rng) -> std::unique_ptr<env::Environment> {
        return std::make_unique<envs::BoxLiftEnv>(difficulty, n_agents, rng);
    };
    return spec;
}

} // namespace ebs::workloads
