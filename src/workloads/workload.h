#ifndef EBS_WORKLOADS_WORKLOAD_H
#define EBS_WORKLOADS_WORKLOAD_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/coordinator.h"
#include "env/env.h"

namespace ebs::workloads {

/** The four system paradigms of paper Sec. II (end-to-end systems are
 * profiled separately and not part of the 14-workload suite). */
enum class Paradigm
{
    SingleModular,      ///< Fig. 1b
    MultiCentralized,   ///< Fig. 1d
    MultiDecentralized, ///< Fig. 1e
};

/** Display name of a paradigm. */
const char *paradigmName(Paradigm paradigm);

/**
 * One benchmarked embodied AI system: its module composition (Table II),
 * calibrated agent configuration, environment factory, and default scale.
 */
struct WorkloadSpec
{
    std::string name;
    Paradigm paradigm = Paradigm::SingleModular;

    // Documentation columns of Table II.
    std::string sensing_desc;
    std::string planning_desc;
    std::string comm_desc;
    std::string memory_desc;
    std::string reflection_desc;
    std::string execution_desc;
    std::string tasks_desc;

    /** Environment domain this workload is evaluated on. */
    std::string env_name;

    /** Default team size used in the paper's main experiments. */
    int default_agents = 1;

    /**
     * Fraction of the environment's generic step budget this system is
     * given as its L_max. Environments size budgets for their slowest
     * users; efficient systems are evaluated against proportionally
     * tighter deadlines so the cap is meaningful (as in the paper, where
     * L_max binds for degraded configurations).
     */
    double step_budget_factor = 1.0;

    /** Calibrated agent configuration (GPT-4 backends where Table II
     * says so). */
    core::AgentConfig config;

    /** Build a fresh task instance. */
    std::function<std::unique_ptr<env::Environment>(
        env::Difficulty, int n_agents, sim::Rng rng)>
        make_env;

    /**
     * Run one episode at the given difficulty with the workload's default
     * configuration.
     *
     * @param n_agents team size; -1 uses default_agents (single-agent
     *                 workloads always run one agent)
     */
    core::EpisodeResult run(env::Difficulty difficulty,
                            const core::EpisodeOptions &options,
                            int n_agents = -1) const;

    /** Run with an overridden agent configuration (ablations, Fig. 3/4). */
    core::EpisodeResult runWithConfig(const core::AgentConfig &config_override,
                                      env::Difficulty difficulty,
                                      const core::EpisodeOptions &options,
                                      int n_agents = -1) const;
};

/** The 14-workload suite of paper Table II, in paper order. */
const std::vector<WorkloadSpec> &suite();

/** Lookup by name; aborts on unknown names (programming error). */
const WorkloadSpec &workload(const std::string &name);

// Factories for each system (defined one per .cpp).
WorkloadSpec makeEmbodiedGpt();
WorkloadSpec makeJarvis1();
WorkloadSpec makeDaduE();
WorkloadSpec makeMp5();
WorkloadSpec makeDeps();
WorkloadSpec makeMindAgent();
WorkloadSpec makeOla();
WorkloadSpec makeCoherent();
WorkloadSpec makeCmas();
WorkloadSpec makeCoela();
WorkloadSpec makeCombo();
WorkloadSpec makeRoco();
WorkloadSpec makeDmas();
WorkloadSpec makeHmas();

} // namespace ebs::workloads

#endif // EBS_WORKLOADS_WORKLOAD_H
