#ifndef EBS_WORKLOADS_CALIBRATION_H
#define EBS_WORKLOADS_CALIBRATION_H

#include <memory>

#include "core/config.h"
#include "env/env.h"
#include "sim/rng.h"

namespace ebs::workloads {

/**
 * @file
 * Shared calibration helpers for the 14 workload specs.
 *
 * Constants here are eyeballed from the paper's Fig. 2 (per-step module
 * latency shares and 10-40 min totals), Table II (which model backs which
 * module), and the hardware setup of Sec. III-E (GPT-4 over the OpenAI
 * API; local models on an A6000; action execution on an i7 CPU). The
 * reproduction target is the *shape* of every figure, not absolute
 * seconds.
 */

/** Perception latency presets, per Table II sensing backends. */
inline sim::LatencyDist
sensingVit()
{
    return {0.55, 0.25}; // ViT / OWL-ViT on A6000
}

inline sim::LatencyDist
sensingMaskRcnn()
{
    return {0.85, 0.25}; // Mask R-CNN is heavier
}

inline sim::LatencyDist
sensingMineClip()
{
    return {0.45, 0.25};
}

inline sim::LatencyDist
sensingSymbolic()
{
    return {0.05, 0.2}; // symbolic game info, nearly free
}

inline sim::LatencyDist
sensingPointCloud()
{
    return {0.70, 0.30}; // LiDAR point-cloud pipeline
}

inline sim::LatencyDist
sensingDino()
{
    return {0.60, 0.25};
}

inline sim::LatencyDist
sensingVild()
{
    return {0.50, 0.25};
}

inline sim::LatencyDist
sensingDiffusion()
{
    return {2.4, 0.30}; // COMBO's diffusion world-model reconstruction
}

/** Non-LLM reflection (DEPS uses CLIP scoring): fast, decent accuracy. */
inline llm::ModelProfile
clipReflector()
{
    llm::ModelProfile p;
    p.name = "CLIP (local)";
    p.remote = false;
    p.prefill_tok_per_s = 20000;
    p.decode_tok_per_s = 4000; // effectively instant scoring
    p.context_limit = 2048;
    p.plan_quality = 0.3;
    p.comm_quality = 0.3;
    p.reflect_quality = 0.78;
    p.format_compliance = 1.0;
    return p;
}

/** Default memory window used by memory-equipped workloads. */
inline memory::MemoryModule::Config
defaultMemory()
{
    memory::MemoryModule::Config cfg;
    cfg.enabled = true;
    cfg.capacity_steps = 40;
    return cfg;
}

} // namespace ebs::workloads

#endif // EBS_WORKLOADS_CALIBRATION_H
