#include <memory>

#include "envs/manipulation_env.h"
#include "workloads/calibration.h"
#include "workloads/workload.h"

namespace ebs::workloads {

/**
 * RoCo (Mandi et al.): decentralized dialectic multi-robot manipulation —
 * OWL-ViT sensing, GPT-4 planning/communication/reflection, RRT low-level
 * trajectories. Execution dominates its step latency (49.4% per Fig. 2a)
 * because of sampling-based motion planning on real arms.
 */
WorkloadSpec
makeRoco()
{
    WorkloadSpec spec;
    spec.name = "RoCo";
    spec.paradigm = Paradigm::MultiDecentralized;
    spec.sensing_desc = "ViT";
    spec.planning_desc = "GPT-4";
    spec.comm_desc = "GPT-4";
    spec.memory_desc = "Ob., Act., Dx.";
    spec.reflection_desc = "GPT-4";
    spec.execution_desc = "RRT";
    spec.tasks_desc = "Multi-arm motion planning (RoCoBench)";
    spec.env_name = "manipulation";
    spec.default_agents = 2;

    core::AgentConfig cfg;
    cfg.has_communication = true;
    cfg.has_reflection = true;
    cfg.planner_model = llm::ModelProfile::gpt4Api();
    cfg.comm_model = llm::ModelProfile::gpt4Api();
    cfg.reflect_model = llm::ModelProfile::gpt4Api();
    cfg.memory = defaultMemory();

    cfg.lat.sensing = sensingVit();
    cfg.lat.actuation = {2.2, 0.35};    // arm trajectory execution
    cfg.lat.move_per_cell_s = 0.30;     // slow Cartesian moves
    cfg.lat.motion_planner = {0.5, 0.5}; // RRT sampling effort
    cfg.lat.plan_prompt_base = 800;
    cfg.lat.plan_out_tokens = 110;
    cfg.lat.comm_prompt_base = 450;
    cfg.lat.comm_out_tokens = 90;
    spec.step_budget_factor = 0.25;
    spec.config = cfg;

    spec.make_env = [](env::Difficulty difficulty, int n_agents,
                       sim::Rng rng) -> std::unique_ptr<env::Environment> {
        return std::make_unique<envs::ManipulationEnv>(difficulty, n_agents,
                                                       rng);
    };
    return spec;
}

} // namespace ebs::workloads
