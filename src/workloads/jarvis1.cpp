#include <memory>

#include "envs/craft_env.h"
#include "workloads/calibration.h"
#include "workloads/workload.h"

namespace ebs::workloads {

/**
 * JARVIS-1 (Wang et al.): MineCLIP sensing, GPT-4 long-horizon planning,
 * observation/action memory, Llama-13B self-reflection, action-list
 * execution. Evaluated on Minecraft-style crafting chains up to "obtain
 * diamond pickaxe".
 */
WorkloadSpec
makeJarvis1()
{
    WorkloadSpec spec;
    spec.name = "JARVIS-1";
    spec.paradigm = Paradigm::SingleModular;
    spec.sensing_desc = "MineCLIP";
    spec.planning_desc = "GPT-4";
    spec.comm_desc = "-";
    spec.memory_desc = "Ob., Act.";
    spec.reflection_desc = "Llama-13B";
    spec.execution_desc = "Action list";
    spec.tasks_desc = "Crafting chains (diamond pickaxe)";
    spec.env_name = "craft";
    spec.default_agents = 1;

    core::AgentConfig cfg;
    cfg.has_communication = false;
    cfg.planner_model = llm::ModelProfile::gpt4Api();
    cfg.reflect_model = llm::ModelProfile::llama13bLocal();
    // Reflection fine-tuned on Minecraft outcome traces.
    cfg.reflect_model.reflect_quality = 0.80;
    cfg.memory = defaultMemory();

    cfg.lat.sensing = sensingMineClip();
    cfg.lat.actuation = {0.7, 0.3}; // mining/crafting animations
    cfg.lat.move_per_cell_s = 0.12;
    cfg.lat.plan_prompt_base = 900; // task tree + few-shot plans
    cfg.lat.plan_out_tokens = 110;
    cfg.lat.reflect_out_tokens = 48;
    spec.step_budget_factor = 0.55;
    spec.config = cfg;

    spec.make_env = [](env::Difficulty difficulty, int n_agents,
                       sim::Rng rng) -> std::unique_ptr<env::Environment> {
        return std::make_unique<envs::CraftEnv>(difficulty, n_agents, rng);
    };
    return spec;
}

} // namespace ebs::workloads
