#include <memory>

#include "envs/boxnet_env.h"
#include "workloads/calibration.h"
#include "workloads/workload.h"

namespace ebs::workloads {

/**
 * CMAS (Chen et al.): fully centralized multi-robot planning — ViLD
 * image-to-text descriptions, one GPT-4 call produces the next action for
 * every robot. Evaluated on BoxNet / Warehouse / BoxLift; BoxNet here.
 */
WorkloadSpec
makeCmas()
{
    WorkloadSpec spec;
    spec.name = "CMAS";
    spec.paradigm = Paradigm::MultiCentralized;
    spec.sensing_desc = "ViLD";
    spec.planning_desc = "GPT-4";
    spec.comm_desc = "GPT-4";
    spec.memory_desc = "Ob., Act., Dx.";
    spec.reflection_desc = "-";
    spec.execution_desc = "Action list";
    spec.tasks_desc = "Collaborative planning, manipulation (BoxNet)";
    spec.env_name = "boxnet";
    spec.default_agents = 4;

    core::AgentConfig cfg;
    cfg.has_communication = true;
    cfg.has_reflection = false;
    cfg.planner_model = llm::ModelProfile::gpt4Api();
    cfg.comm_model = llm::ModelProfile::gpt4Api();
    cfg.memory = defaultMemory();

    cfg.lat.sensing = sensingVild();
    cfg.lat.actuation = {0.9, 0.3};
    cfg.lat.move_per_cell_s = 0.15;
    cfg.lat.plan_prompt_base = 900;
    cfg.lat.plan_out_tokens = 100;
    cfg.lat.state_tokens_per_agent = 80;
    spec.step_budget_factor = 0.7;
    spec.config = cfg;

    spec.make_env = [](env::Difficulty difficulty, int n_agents,
                       sim::Rng rng) -> std::unique_ptr<env::Environment> {
        return std::make_unique<envs::BoxNetEnv>(difficulty, n_agents, rng);
    };
    return spec;
}

} // namespace ebs::workloads
