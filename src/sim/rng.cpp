#include "sim/rng.h"

#include <cassert>
#include <cmath>

namespace ebs::sim {

namespace {

/** SplitMix64 step, used for seeding and stream derivation. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : seed_(seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int
Rng::uniformInt(int lo, int hi)
{
    assert(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi) - lo + 1;
    return lo + static_cast<int>(next() % span);
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::normal()
{
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box-Muller; u1 kept away from 0 so log() stays finite.
    double u1 = uniform();
    if (u1 < 1e-300)
        u1 = 1e-300;
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mean, double cv)
{
    assert(mean > 0.0);
    if (cv <= 0.0)
        return mean;
    // Convert (mean, cv) of the log-normal into (mu, sigma) of the
    // underlying normal.
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(normal(mu, std::sqrt(sigma2)));
}

double
Rng::exponential(double mean)
{
    assert(mean > 0.0);
    double u = uniform();
    if (u < 1e-300)
        u = 1e-300;
    return -mean * std::log(u);
}

std::size_t
Rng::pickIndex(std::size_t n)
{
    assert(n > 0);
    return static_cast<std::size_t>(next() % n);
}

Rng
Rng::fork(std::uint64_t stream_id) const
{
    std::uint64_t sm = seed_ ^ (0xd1342543de82ef95ULL * (stream_id + 1));
    return Rng(splitmix64(sm));
}

} // namespace ebs::sim
