#ifndef EBS_SIM_RNG_H
#define EBS_SIM_RNG_H

#include <cstdint>
#include <vector>

namespace ebs::sim {

/**
 * Deterministic pseudo-random number generator (xoshiro256** seeded via
 * SplitMix64).
 *
 * Every stochastic decision in the simulator flows through an Rng instance so
 * that entire experiments are reproducible from a single seed. Substreams for
 * independent components (per agent, per module) are derived with fork() so
 * that adding draws in one component does not perturb another.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any value (including 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    int uniformInt(int lo, int hi);

    /** Bernoulli trial with success probability p (clamped to [0,1]). */
    bool bernoulli(double p);

    /** Standard normal via Box-Muller. */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Log-normal sample parameterized by the mean and relative spread of the
     * *resulting* distribution (not of the underlying normal), which is the
     * natural way to express "about 3 s, +/- 30%" latency models.
     *
     * @param mean positive mean of the produced samples
     * @param cv   coefficient of variation (stddev / mean), >= 0
     */
    double lognormal(double mean, double cv);

    /** Exponential with the given mean (mean > 0). */
    double exponential(double mean);

    /** Uniformly pick an index in [0, n). Requires n > 0. */
    std::size_t pickIndex(std::size_t n);

    /** Uniformly pick an element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        return v[pickIndex(v.size())];
    }

    /**
     * Derive an independent substream. Deterministic: the same (parent seed,
     * stream id) pair always yields the same child stream.
     */
    Rng fork(std::uint64_t stream_id) const;

    /** The seed this instance was constructed from. */
    std::uint64_t seed() const { return seed_; }

  private:
    std::uint64_t seed_;
    std::uint64_t s_[4];
    bool has_cached_normal_ = false;
    double cached_normal_ = 0.0;
};

} // namespace ebs::sim

#endif // EBS_SIM_RNG_H
