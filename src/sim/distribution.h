#ifndef EBS_SIM_DISTRIBUTION_H
#define EBS_SIM_DISTRIBUTION_H

#include "sim/rng.h"

namespace ebs::sim {

/**
 * A latency distribution expressed as (mean seconds, coefficient of
 * variation), sampled log-normally.
 *
 * Latency models throughout the simulator are specified this way because it
 * reads naturally in calibration tables ("3.2 s +/- 25%") and log-normal is a
 * reasonable shape for service times. A cv of 0 makes the draw deterministic.
 */
struct LatencyDist
{
    double mean_s = 0.0; ///< mean of produced samples, seconds
    double cv = 0.0;     ///< stddev / mean

    /** Draw one latency sample (>= 0). Zero-mean distributions return 0. */
    double
    sample(Rng &rng) const
    {
        if (mean_s <= 0.0)
            return 0.0;
        return rng.lognormal(mean_s, cv);
    }

    /** Scale the mean by a factor, keeping the relative spread. */
    LatencyDist
    scaled(double factor) const
    {
        return LatencyDist{mean_s * factor, cv};
    }
};

} // namespace ebs::sim

#endif // EBS_SIM_DISTRIBUTION_H
