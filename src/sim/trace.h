#ifndef EBS_SIM_TRACE_H
#define EBS_SIM_TRACE_H

#include <string>
#include <vector>

namespace ebs::sim {

/** One timestamped event in a simulation trace. */
struct TraceEvent
{
    double t = 0.0;       ///< simulated time, seconds
    std::string category; ///< e.g. "llm", "action", "message"
    std::string label;    ///< human-readable detail
};

/**
 * Append-only event trace for debugging and for benches that need per-event
 * series (e.g. token counts over time steps).
 *
 * Tracing is cheap but not free; it is disabled by default and enabled by
 * episode runners only when a bench or test asks for it.
 */
class EventTrace
{
  public:
    /** Enable or disable recording. Disabled traces drop events. */
    void setEnabled(bool on) { enabled_ = on; }

    bool enabled() const { return enabled_; }

    /** Record one event if enabled. */
    void
    record(double t, std::string category, std::string label)
    {
        if (enabled_)
            events_.push_back({t, std::move(category), std::move(label)});
    }

    const std::vector<TraceEvent> &events() const { return events_; }

    /** All events whose category matches exactly. */
    std::vector<TraceEvent>
    byCategory(const std::string &category) const
    {
        std::vector<TraceEvent> out;
        for (const auto &e : events_)
            if (e.category == category)
                out.push_back(e);
        return out;
    }

    void clear() { events_.clear(); }

  private:
    bool enabled_ = false;
    std::vector<TraceEvent> events_;
};

} // namespace ebs::sim

#endif // EBS_SIM_TRACE_H
