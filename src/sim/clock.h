#ifndef EBS_SIM_CLOCK_H
#define EBS_SIM_CLOCK_H

#include <cassert>

namespace ebs::sim {

/**
 * Virtual wall-clock for the simulation, in seconds.
 *
 * The simulator never sleeps: module latencies (LLM inference, perception,
 * actuation, retrieval) advance this clock, and all reported latencies and
 * end-to-end runtimes are read from it. Time is monotone non-decreasing.
 */
class SimClock
{
  public:
    SimClock() = default;

    /** Current simulated time in seconds since reset. */
    double now() const { return now_; }

    /** Advance by dt seconds (dt >= 0). Returns the new time. */
    double
    advance(double dt)
    {
        assert(dt >= 0.0);
        now_ += dt;
        return now_;
    }

    /** Reset to t = 0. */
    void reset() { now_ = 0.0; }

  private:
    double now_ = 0.0;
};

} // namespace ebs::sim

#endif // EBS_SIM_CLOCK_H
