#ifndef EBS_LLM_PROMPT_H
#define EBS_LLM_PROMPT_H

#include <string>
#include <vector>

namespace ebs::llm {

/**
 * A structured prompt: an ordered list of named sections, each contributing
 * either literal text or an explicit token count.
 *
 * Workload prompts mix real text (task descriptions, action menus) with
 * synthetic bulk (retrieved memory, concatenated dialogue history) whose
 * *size* matters but whose content does not; explicit-token sections model
 * the latter exactly without fabricating filler strings.
 */
class Prompt
{
  public:
    /** One prompt section. */
    struct Section
    {
        std::string name;
        std::string text;   ///< literal content (may be empty)
        int extra_tokens;   ///< tokens accounted beyond the literal text
    };

    /** Append a literal-text section. */
    void addText(std::string name, std::string text);

    /** Append a size-only section of `tokens` tokens. */
    void addTokens(std::string name, int tokens);

    /** Total token count across all sections. */
    int tokens() const;

    /** Token count of one named section (0 if absent; first match wins). */
    int sectionTokens(const std::string &name) const;

    const std::vector<Section> &sections() const { return sections_; }

    /** Concatenated literal text (size-only sections render as markers). */
    std::string render() const;

    /**
     * Context-compression transform (Recommendation 6): scales every section
     * whose name appears in `compressible` by `ratio` (0 < ratio <= 1),
     * returning a new prompt. Literal text in compressed sections is
     * replaced by an equivalent token allowance.
     */
    Prompt compressed(const std::vector<std::string> &compressible,
                      double ratio) const;

  private:
    std::vector<Section> sections_;
};

} // namespace ebs::llm

#endif // EBS_LLM_PROMPT_H
