#include "llm/backend_queue.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

namespace ebs::llm {

void
QueueConfig::validate() const
{
    if (slots <= 0)
        throw std::invalid_argument(
            "QueueConfig: slots must be >= 1 (got " +
            std::to_string(slots) + ")");
    if (!(kv_budget_tokens > 0.0))
        throw std::invalid_argument(
            "QueueConfig: kv_budget_tokens must be > 0 (got " +
            std::to_string(kv_budget_tokens) + ")");
    if (!(iteration_s > 0.0))
        throw std::invalid_argument(
            "QueueConfig: iteration_s must be > 0 (got " +
            std::to_string(iteration_s) + ")");
}

QueueConfig
defaultQueueConfig(const ModelProfile &profile)
{
    QueueConfig config;
    if (profile.remote) {
        // A pooled API endpoint: many replicas behind one name, so a
        // single tenant sees a deep slot pool and a large aggregate KV
        // budget. Queueing still bites once a fleet saturates it.
        config.slots = 16;
        config.kv_budget_tokens = 262144.0;
    } else {
        // One local GPU's continuous-batching server: a handful of
        // concurrent decode streams sharing a single card's KV cache.
        config.slots = 4;
        config.kv_budget_tokens = 32768.0;
    }
    return config;
}

double
QueueStats::occupancy(int slots) const
{
    const double horizon = last_complete_s - first_arrival_s;
    if (slots <= 0 || !(horizon > 0.0))
        return 0.0;
    return busy_slot_s / (static_cast<double>(slots) * horizon);
}

BackendQueue::BackendQueue(QueueConfig config) : config_(config)
{
    config_.validate();
}

double
BackendQueue::boundary(double t) const
{
    // First multiple of iteration_s at or after t. Pure double
    // arithmetic — deterministic on every platform we build for.
    const double steps = std::ceil(t / config_.iteration_s);
    const double at = steps * config_.iteration_s;
    return at < t ? at + config_.iteration_s : at;
}

QueueAdmission
BackendQueue::submit(double arrival_s, int requests, double kv_tokens,
                     double service_s)
{
    assert(requests > 0 && "empty groups are never flushed");
    assert(service_s >= 0.0);
    assert(arrival_s >= stats_.first_arrival_s ||
           stats_.requests == 0); // arrivals are nondecreasing (FIFO)

    stats_.first_arrival_s = std::min(stats_.first_arrival_s, arrival_s);
    ++stats_.groups;

    const double member_kv =
        std::max(0.0, kv_tokens / static_cast<double>(requests));

    QueueAdmission admission;
    // FIFO: this group can never start before the previous admission.
    double t = boundary(std::max(arrival_s, last_admit_s_));
    int admitted = 0;
    while (admitted < requests) {
        // Capacity at instant t: members admitted earlier and still
        // executing. Admissions are nondecreasing, so everything in
        // running_ was admitted at or before t; prune the completed.
        std::erase_if(running_, [t](const Running &r) {
            return r.complete_s <= t;
        });
        int used_slots = static_cast<int>(running_.size());
        double used_kv = 0.0;
        for (const Running &r : running_)
            used_kv += r.kv_tokens;

        int fit = config_.slots - used_slots;
        if (member_kv > 0.0) {
            const double kv_room = config_.kv_budget_tokens - used_kv;
            const int kv_fit =
                kv_room > 0.0
                    ? static_cast<int>(std::floor(kv_room / member_kv))
                    : 0;
            fit = std::min(fit, kv_fit);
        }
        // Oversized member (KV share alone exceeds the budget): admit it
        // solo on an idle backend rather than deadlocking the queue.
        if (fit <= 0 && running_.empty() &&
            member_kv > config_.kv_budget_tokens)
            fit = 1;

        if (fit <= 0) {
            // Wait for the next completion, then the next boundary.
            double next = std::numeric_limits<double>::infinity();
            for (const Running &r : running_)
                next = std::min(next, r.complete_s);
            assert(std::isfinite(next) &&
                   "no capacity with an empty running batch");
            t = boundary(next);
            continue;
        }

        const int batch = std::min(fit, requests - admitted);
        for (int i = 0; i < batch; ++i)
            running_.push_back({t + service_s, member_kv});
        stats_.peak_running = std::max(
            stats_.peak_running, static_cast<int>(running_.size()));
        stats_.requests += batch;
        stats_.queued += (t - arrival_s) > config_.iteration_s ? batch : 0;
        stats_.queue_delay_s +=
            static_cast<double>(batch) * (t - arrival_s);
        stats_.busy_slot_s += static_cast<double>(batch) * service_s;
        admitted += batch;
        last_admit_s_ = t;
        admission.admit_s = t;
        admission.complete_s = t + service_s;
        if (admitted < requests)
            t = boundary(t + service_s); // capacity frees at completion
    }

    stats_.last_complete_s =
        std::max(stats_.last_complete_s, admission.complete_s);
    // The episode waits for its whole group; the charge beyond the
    // open-loop joint batch time is the last member's late start.
    admission.queue_delay_s =
        std::max(0.0, admission.complete_s - (arrival_s + service_s));
    return admission;
}

BackendQueueModel::BackendQueueModel(int slots_override,
                                     double kv_budget_override,
                                     double iteration_s)
    : slots_override_(slots_override),
      kv_budget_override_(kv_budget_override), iteration_s_(iteration_s)
{
    // 0 means "no override"; anything else must be a usable capacity.
    // Rejecting here (not at first ensureBackend) keeps the failure at
    // the configuration site.
    if (slots_override < 0)
        throw std::invalid_argument(
            "BackendQueueModel: slots_override must be >= 0 (got " +
            std::to_string(slots_override) + ")");
    if (kv_budget_override < 0.0)
        throw std::invalid_argument(
            "BackendQueueModel: kv_budget_override must be >= 0 (got " +
            std::to_string(kv_budget_override) + ")");
    if (!(iteration_s > 0.0))
        throw std::invalid_argument(
            "BackendQueueModel: iteration_s must be > 0 (got " +
            std::to_string(iteration_s) + ")");
}

void
BackendQueueModel::ensureBackend(BackendId backend,
                                 const ModelProfile &profile)
{
    if (queues_.find(backend) != queues_.end())
        return;
    QueueConfig config = defaultQueueConfig(profile);
    if (slots_override_ > 0)
        config.slots = slots_override_;
    if (kv_budget_override_ > 0.0)
        config.kv_budget_tokens = kv_budget_override_;
    config.iteration_s = iteration_s_;
    queues_.emplace(backend, BackendQueue(config));
}

QueueAdmission
BackendQueueModel::submit(const BatchRecord &record)
{
    const auto it = queues_.find(record.backend);
    assert(it != queues_.end() && "submit() before ensureBackend()");
    if (it == queues_.end())
        return {record.sim_time_s, record.sim_time_s + record.batched_s,
                0.0};
    return it->second.submit(record.sim_time_s, record.requests,
                             record.kv_tokens, record.batched_s);
}

const BackendQueue *
BackendQueueModel::queue(BackendId backend) const
{
    const auto it = queues_.find(backend);
    return it != queues_.end() ? &it->second : nullptr;
}

} // namespace ebs::llm
