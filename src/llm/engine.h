#ifndef EBS_LLM_ENGINE_H
#define EBS_LLM_ENGINE_H

#include <cstddef>
#include <vector>

#include "llm/model_profile.h"
#include "sim/rng.h"

namespace ebs::llm {

/** Purpose of an LLM call; selects the capability axis that gates it. */
enum class CallKind
{
    Planning,        ///< high-level plan / subgoal proposal
    Communication,   ///< message generation or comprehension
    Reflection,      ///< outcome judgment / self-correction
    ActionSelection, ///< choosing among primitive/menu actions
};

/** One simulated completion request. */
struct LlmRequest
{
    CallKind kind = CallKind::Planning;
    int tokens_in = 0;        ///< prompt size
    int tokens_out_mean = 64; ///< expected generation length
    /**
     * Extra task complexity in [0, 1): joint multi-agent reasoning, deep
     * dependency chains. Multiplies quality by (1 - complexity).
     */
    double complexity = 0.0;
};

/** Result of one simulated completion. */
struct LlmResponse
{
    double latency_s = 0.0;  ///< end-to-end inference latency
    int tokens_in = 0;       ///< prompt tokens actually consumed
    int tokens_out = 0;      ///< generated tokens
    bool truncated = false;  ///< prompt exceeded the context window
    bool parse_ok = true;    ///< output was format-compliant
    /**
     * True when the model produced the *good* output for this call — a
     * correct plan, a useful message, an accurate reflection. Sampled from
     * the profile's quality, degraded by dilution, truncation, and
     * complexity.
     */
    bool good = true;
};

/** Aggregate usage counters maintained by an engine. */
struct LlmUsage
{
    std::size_t calls = 0;
    long tokens_in = 0;
    long tokens_out = 0;
    double total_latency_s = 0.0;

    /** Fold one completed call in. */
    void
    add(const LlmResponse &resp);

    /** Merge another aggregate in (the single usage-fold definition —
     * every aggregation site uses this, so adding a counter means
     * touching exactly one place). */
    LlmUsage &operator+=(const LlmUsage &other);
};

/**
 * Sample one completion: the shared response model behind LlmEngine,
 * EngineHandle (engine_service.h), and batched inference.
 *
 * Draw order from `rng` is part of the determinism contract (tokens_out,
 * RTT if remote, parse_ok, good) — every completion path in the simulator
 * consumes its stream in exactly this order, which is what makes the
 * per-agent response streams bit-identical whether calls run through a
 * private engine, the shared service, or an assembled batch.
 */
LlmResponse sampleCompletion(const ModelProfile &profile,
                             const LlmRequest &request, sim::Rng &rng);

/** Deterministic latency mean of one completion (no sampling). */
double expectedCompletionLatency(const ModelProfile &profile,
                                 const LlmRequest &request);

/**
 * Deterministic mean completion time of a *batch* (Recommendation 1):
 * summed prefill at batch throughput, decode for the longest stream, one
 * mean RTT for the whole batch. Empty batches cost nothing.
 */
double expectedBatchLatency(const ModelProfile &profile,
                            const std::vector<LlmRequest> &requests);

/**
 * The single definition of the joint-batch cost model, shared by
 * LlmEngine::completeBatch(), expectedBatchLatency(), and the engine
 * service's BatchRecord fold (engine_service.cpp): summed prefill +
 * longest member decode + one mean RTT for remote backends, clamped so
 * a batch never costs more than its members run sequentially
 * (`baseline_s`). A group of one IS the sequential call and keeps its
 * baseline exactly — substituting the mean RTT for a sampled RTT under
 * a one-sided clamp would manufacture savings out of RTT jitter.
 */
double jointBatchTime(int requests, double prefill_s, double max_decode_s,
                      bool remote, double rtt_mean_s, double baseline_s);

/**
 * Simulated LLM inference backend.
 *
 * Substitutes the paper's GPT-4 API / local A6000 inference: computes
 * latency from the profile's RTT + prefill + decode rates, enforces the
 * context window, and samples output quality from the profile's calibrated
 * capability model. All randomness comes from the injected Rng, so runs are
 * reproducible.
 *
 * Thread-safety contract: an LlmEngine is confined to a single thread (in
 * practice, to one episode). complete()/completeBatch() mutate the RNG and
 * the usage counters without synchronization, and usage()/resetUsage() are
 * unsynchronized reads/writes of the same counters — sharing one engine
 * across threads is a data race by construction. Cross-thread inference
 * goes through LlmEngineService (engine_service.h), whose per-backend
 * usage aggregation is mutex-guarded — and compiler-checked: the service's
 * shared state carries EBS_GUARDED_BY annotations (core/thread_annotations.h)
 * enforced by the CI Clang `-Wthread-safety` build. LlmEngine itself
 * deliberately carries no capability annotations: it owns no lock, and
 * annotating it would misstate the contract — thread confinement here is
 * guarded dynamically by the TSan job instead. Per-episode sampling state
 * stays in episode-confined EngineHandles so no RNG is ever shared.
 */
class LlmEngine
{
  public:
    LlmEngine(ModelProfile profile, sim::Rng rng);

    /** Run one completion. */
    LlmResponse complete(const LlmRequest &request);

    /**
     * Run several completions as a single batch (Recommendation 1).
     *
     * Every request is sampled exactly as a sequential complete() call
     * would be (same RNG draw order), so the per-request response streams
     * are bit-identical to unbatched execution; only the completion time
     * changes. Prefill is processed jointly at batch throughput; decode
     * runs at per-stream speed for the longest response; one mean RTT
     * covers the whole batch. `latency_s` on each response is that batch
     * completion time, clamped to never exceed the sequential sum. A
     * single-request batch is exactly complete() (including its sampled
     * latency), and an empty batch returns an empty vector at no cost.
     */
    std::vector<LlmResponse> completeBatch(
        const std::vector<LlmRequest> &requests);

    const ModelProfile &profile() const { return profile_; }
    const LlmUsage &usage() const { return usage_; }
    void resetUsage() { usage_ = LlmUsage{}; }

    /** Deterministic latency mean for a request (no sampling), for tests. */
    double expectedLatency(const LlmRequest &request) const;

  private:
    ModelProfile profile_;
    sim::Rng rng_;
    LlmUsage usage_;
};

} // namespace ebs::llm

#endif // EBS_LLM_ENGINE_H
