#ifndef EBS_LLM_ENGINE_H
#define EBS_LLM_ENGINE_H

#include <cstddef>
#include <vector>

#include "llm/model_profile.h"
#include "sim/rng.h"

namespace ebs::llm {

/** Purpose of an LLM call; selects the capability axis that gates it. */
enum class CallKind
{
    Planning,        ///< high-level plan / subgoal proposal
    Communication,   ///< message generation or comprehension
    Reflection,      ///< outcome judgment / self-correction
    ActionSelection, ///< choosing among primitive/menu actions
};

/** One simulated completion request. */
struct LlmRequest
{
    CallKind kind = CallKind::Planning;
    int tokens_in = 0;        ///< prompt size
    int tokens_out_mean = 64; ///< expected generation length
    /**
     * Extra task complexity in [0, 1): joint multi-agent reasoning, deep
     * dependency chains. Multiplies quality by (1 - complexity).
     */
    double complexity = 0.0;
};

/** Result of one simulated completion. */
struct LlmResponse
{
    double latency_s = 0.0;  ///< end-to-end inference latency
    int tokens_in = 0;       ///< prompt tokens actually consumed
    int tokens_out = 0;      ///< generated tokens
    bool truncated = false;  ///< prompt exceeded the context window
    bool parse_ok = true;    ///< output was format-compliant
    /**
     * True when the model produced the *good* output for this call — a
     * correct plan, a useful message, an accurate reflection. Sampled from
     * the profile's quality, degraded by dilution, truncation, and
     * complexity.
     */
    bool good = true;
};

/** Aggregate usage counters maintained by an engine. */
struct LlmUsage
{
    std::size_t calls = 0;
    long tokens_in = 0;
    long tokens_out = 0;
    double total_latency_s = 0.0;
};

/**
 * Simulated LLM inference backend.
 *
 * Substitutes the paper's GPT-4 API / local A6000 inference: computes
 * latency from the profile's RTT + prefill + decode rates, enforces the
 * context window, and samples output quality from the profile's calibrated
 * capability model. All randomness comes from the injected Rng, so runs are
 * reproducible.
 */
class LlmEngine
{
  public:
    LlmEngine(ModelProfile profile, sim::Rng rng);

    /** Run one completion. */
    LlmResponse complete(const LlmRequest &request);

    /**
     * Run several completions as a single batch (Recommendation 1).
     *
     * Prefill is processed jointly at batch throughput; decode runs at
     * per-stream speed for the longest response, so the batch finishes in
     * roughly max-decode time plus the summed prefill — far less than the
     * sequential sum. Returns one response per request; `latency_s` on each
     * is the *batch* completion time.
     */
    std::vector<LlmResponse> completeBatch(
        const std::vector<LlmRequest> &requests);

    const ModelProfile &profile() const { return profile_; }
    const LlmUsage &usage() const { return usage_; }
    void resetUsage() { usage_ = LlmUsage{}; }

    /** Deterministic latency mean for a request (no sampling), for tests. */
    double expectedLatency(const LlmRequest &request) const;

  private:
    double qualityFor(const LlmRequest &request, int effective_in) const;

    ModelProfile profile_;
    sim::Rng rng_;
    LlmUsage usage_;
};

} // namespace ebs::llm

#endif // EBS_LLM_ENGINE_H
