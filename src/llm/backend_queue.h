#ifndef EBS_LLM_BACKEND_QUEUE_H
#define EBS_LLM_BACKEND_QUEUE_H

#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "llm/engine_service.h"
#include "llm/model_profile.h"

namespace ebs::llm {

/**
 * Finite-capacity serving model of one inference backend (the closed-loop
 * complement of the open-loop `jointBatchTime` cost model).
 *
 * The abstraction is the standard continuous-batching serving loop
 * (vLLM-style): the backend runs a batch of at most `slots` concurrent
 * requests whose summed KV-cache footprint stays within
 * `kv_budget_tokens`, and *admission happens at iteration boundaries* —
 * a waiting request joins the running batch at the next multiple of
 * `iteration_s` at which a slot and enough KV budget are free, otherwise
 * it waits in a FIFO arrival queue. Requests never overtake each other
 * (FIFO admission), so the schedule is a pure function of the arrival
 * sequence.
 */
struct QueueConfig
{
    /** Maximum concurrently executing requests (the running batch). */
    int slots = 4;
    /** KV-cache/memory budget: summed (prompt + generated) tokens of
     * the running batch may not exceed this. */
    double kv_budget_tokens = 32768.0;
    /** Iteration boundary granularity: admission instants are quantized
     * to multiples of this (continuous batching admits at iteration
     * boundaries, not at arbitrary instants). */
    double iteration_s = 0.25;

    /**
     * Reject degenerate configurations loudly: zero slots or a
     * non-positive KV budget can never admit anything (the queue would
     * grow without bound), and a non-positive iteration has no
     * boundaries to admit at. Throws std::invalid_argument.
     */
    void validate() const;
};

/**
 * Deterministic per-profile default capacity — a pure function of the
 * profile, so every session (and the post-join bench replay) derives the
 * same config for the same backend at any worker count. Remote API
 * endpoints model a pooled, many-replica service (many slots, large
 * aggregate KV budget); local single-GPU models get a single card's
 * worth of concurrent decode slots and KV cache.
 */
QueueConfig defaultQueueConfig(const ModelProfile &profile);

/** Outcome of submitting one batch group to a backend queue. */
struct QueueAdmission
{
    /** When the group's last member joined the running batch. */
    double admit_s = 0.0;
    /** When the group's last member finished executing. */
    double complete_s = 0.0;
    /**
     * The delay charged to the submitting episode beyond the open-loop
     * joint batch time: last-member completion minus (arrival +
     * service). Includes both FIFO queueing behind earlier requests and
     * the iteration-boundary admission quantization; >= 0 always.
     */
    double queue_delay_s = 0.0;
};

/** Aggregate serving tallies of one backend queue. */
struct QueueStats
{
    long long requests = 0;  ///< member requests admitted
    long long groups = 0;    ///< submit() calls (batch groups)
    long long queued = 0;    ///< members that waited past their arrival
                             ///< boundary for capacity
    double queue_delay_s = 0.0;  ///< summed per-member (admit - arrival)
    double busy_slot_s = 0.0;    ///< summed member slot-seconds
    double first_arrival_s = std::numeric_limits<double>::infinity();
    double last_complete_s = 0.0;
    int peak_running = 0; ///< max concurrently executing members

    /**
     * Mean fraction of the backend's slot capacity in use over the
     * served horizon (first arrival to last completion); 0 when nothing
     * was served.
     */
    double occupancy(int slots) const;
};

/**
 * Discrete-event queue of one backend. Single-threaded by design: a
 * queue either lives inside one (episode-confined) EngineSession, or
 * inside a bench's post-join replay — never shared across threads.
 *
 * Determinism: the admission schedule is a pure function of the
 * submission sequence (arrival instants must be nondecreasing — episode
 * clocks only move forward, and the bench replay sorts by (arrival,
 * backend, submission index) before submitting), so results are
 * bit-identical at any EBS_JOBS.
 */
class BackendQueue
{
  public:
    /** Validates `config` (see QueueConfig::validate). */
    explicit BackendQueue(QueueConfig config);

    /**
     * Admit one flushed batch group: `requests` members arriving
     * together at `arrival_s`, each occupying one slot and an equal
     * share of `kv_tokens` for `service_s` seconds once admitted (the
     * group's members execute jointly, so each runs for the joint batch
     * time). Members are admitted FIFO at iteration boundaries as
     * capacity frees up; a member whose KV share alone exceeds the
     * budget is admitted solo when the backend is idle (it can never
     * co-run, but refusing it would deadlock the queue).
     *
     * `arrival_s` must be >= every earlier submission's arrival.
     */
    QueueAdmission submit(double arrival_s, int requests,
                          double kv_tokens, double service_s);

    const QueueConfig &config() const { return config_; }
    const QueueStats &stats() const { return stats_; }

  private:
    struct Running
    {
        double complete_s = 0.0;
        double kv_tokens = 0.0;
    };

    /** First iteration boundary at or after `t`. */
    double boundary(double t) const;

    QueueConfig config_;
    QueueStats stats_;
    /** Members still executing at the latest admission instant, pruned
     * lazily as admission time advances. */
    std::vector<Running> running_;
    double last_admit_s_ = 0.0; ///< FIFO: admissions are nondecreasing
};

/**
 * The per-backend queue fleet one serving simulation sees: a
 * BackendQueue per touched backend, created on first sight with the
 * profile-derived default config (overridable per QueuePolicy in
 * ServiceConfig). Deterministically iterable — keyed by stable
 * BackendId — and single-threaded like its member queues.
 */
class BackendQueueModel
{
  public:
    BackendQueueModel() = default;
    /** `slots_override` / `kv_budget_override` > 0 replace the
     * profile-derived defaults (0 means "no override"); `iteration_s`
     * always applies. Throws std::invalid_argument on negative
     * overrides or a non-positive iteration. */
    BackendQueueModel(int slots_override, double kv_budget_override,
                      double iteration_s);

    /** Ensure `backend` has a queue, deriving its config from
     * `profile` on first sight (validated — throws on degenerate
     * overrides). */
    void ensureBackend(BackendId backend, const ModelProfile &profile);

    /**
     * Submit one flushed batch group to its backend's queue (which must
     * have been ensured) at `record.sim_time_s`, sized by the record's
     * occupancy and KV footprint, executing for `record.batched_s`.
     */
    QueueAdmission submit(const BatchRecord &record);

    /** Queue of one backend (nullptr when never ensured). */
    const BackendQueue *queue(BackendId backend) const;

    /** Stable-id-ordered view over every backend's queue. */
    const std::map<BackendId, BackendQueue> &queues() const
    {
        return queues_;
    }

  private:
    std::map<BackendId, BackendQueue> queues_;
    int slots_override_ = 0;
    double kv_budget_override_ = 0.0;
    double iteration_s_ = 0.25;
};

} // namespace ebs::llm

#endif // EBS_LLM_BACKEND_QUEUE_H
