#ifndef EBS_LLM_ENGINE_SERVICE_H
#define EBS_LLM_ENGINE_SERVICE_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/sync.h"
#include "core/thread_annotations.h"
#include "llm/engine.h"
#include "llm/model_profile.h"
#include "sim/rng.h"

namespace ebs::obs {
class EpisodeTraceLog;
} // namespace ebs::obs

namespace ebs::llm {

class BackendQueueModel;
class EngineSession;
class LlmEngineService;

/**
 * Stable backend identity: a pure function of the full ModelProfile
 * (an FNV-1a hash over every field), never a registration-order index.
 * Episodes racing to register profiles on the EpisodeRunner pool always
 * agree on a profile's id, which is what keeps BatchRecord.backend, the
 * cross-episode fold key, and per-backend usage slots bit-identical at
 * any EBS_JOBS. See LlmEngineService::backendFor().
 */
using BackendId = std::uint64_t;

/**
 * Closed-loop serving switches of an LlmEngineService: when enabled,
 * every session simulates finite-capacity backends (see
 * llm/backend_queue.h) and charges queueing + admission delay back to
 * its episode's clock through the takePendingCharge path. Requires
 * `ServiceConfig::batching` (the queue serves the assembled batch
 * groups); the service constructor rejects the inconsistent combination.
 */
struct QueuePolicy
{
    bool enabled = false;
    /** > 0 replaces the profile-derived slot count on every backend. */
    int slots_override = 0;
    /** > 0 replaces the profile-derived KV/memory token budget. */
    double kv_budget_override = 0.0;
    /** Iteration boundary granularity of continuous-batching admission
     * (must be > 0 when enabled). */
    double iteration_s = 0.25;
};

/** Build-time switches of an LlmEngineService. */
struct ServiceConfig
{
    /**
     * Assemble the completions issued between two session flush points
     * (one coordinator phase: the same pipeline stage across every agent
     * of a step) into per-backend batches and track the modeled joint
     * completion time. Batching never changes any sampled response — it
     * only produces BatchRecords — so toggling it cannot perturb a
     * simulated result.
     */
    bool batching = true;

    /** Finite-capacity backend serving model (off by default: the
     * open-loop paths stay bit-identical to the pre-queue behavior). */
    QueuePolicy queue;
};

/**
 * One assembled inference batch: every completion of one (episode step,
 * coordinator phase) that hit the same backend. `baseline_s` is what the
 * members cost as sequential calls (their individually sampled
 * latencies); `batched_s` is the modeled joint completion time (summed
 * prefill + longest decode + one mean RTT), clamped to never exceed the
 * baseline. The (step, phase, backend) key is what the cross-episode fold
 * merges on.
 */
struct BatchRecord
{
    int step = 0;            ///< episode step the batch was assembled in
    int phase = 0;           ///< flush index within the step
    BackendId backend = 0;   ///< profile-derived backend id (stable)
    int requests = 0;        ///< completions in the batch (occupancy)
    bool remote = false;     ///< backend pays an RTT per (batched) call
    double rtt_mean_s = 0.0; ///< backend's mean RTT (deterministic)
    double prefill_s = 0.0;  ///< summed prefill time of the members
    double max_decode_s = 0.0; ///< longest member decode time
    double baseline_s = 0.0; ///< sequential cost (sampled latency sum)
    double batched_s = 0.0;  ///< modeled joint completion time
    /** Episode sim-clock time at which the batch's phase flushed (the
     * batch's modeled arrival instant). Deterministic per seed; the
     * latency-aware cross-episode fold merges only records whose
     * arrival instants fall within one admission window. */
    double sim_time_s = 0.0;
    /** Summed (prompt + generated) tokens of the members: the group's
     * KV-cache footprint while it executes on a finite backend. */
    double kv_tokens = 0.0;
    /** Queueing + admission delay the backend queue charged the episode
     * for this group (0 on the open-loop, infinite-capacity path). */
    double queue_delay_s = 0.0;
};

/** Aggregated batching outcome over any set of BatchRecords. */
struct BatchStats
{
    long long batches = 0;
    long long requests = 0;
    long long cross_agent_batches = 0; ///< batches with occupancy > 1
    double baseline_s = 0.0;
    double batched_s = 0.0;
    double queue_delay_s = 0.0; ///< summed charged queueing delay

    /** Average completions per assembled batch (0 when empty). */
    double occupancy() const
    {
        return batches > 0 ? static_cast<double>(requests) / batches : 0.0;
    }

    /** Modeled latency saved versus sequential execution (>= 0). */
    double savedSeconds() const { return baseline_s - batched_s; }

    /** Saved fraction of the sequential cost, in [0, 1]. */
    double savedFraction() const
    {
        return baseline_s > 0.0 ? savedSeconds() / baseline_s : 0.0;
    }

    /** Charged queueing delay as a fraction of total charged serving
     * time (execution + queueing); 0 on the open-loop path. */
    double queueDelayShare() const
    {
        const double served = batched_s + queue_delay_s;
        return served > 0.0 ? queue_delay_s / served : 0.0;
    }

    void add(const BatchRecord &record);
    void merge(const BatchStats &other);
};

/**
 * Session accounting deferred during a parallel coordinator phase.
 *
 * When agents of one episode run a phase concurrently, their handles must
 * not touch the (single-threaded, order-sensitive) EngineSession. Each
 * agent instead records its completions into a private DeferredNotes
 * buffer, and the phase's commit step replays the buffers into the
 * session in agent-index order (EngineSession::replay) — producing the
 * exact note/noteUsage call sequence a serial phase would have issued,
 * so batch assembly and usage staging stay bit-identical at any worker
 * count.
 */
struct DeferredNotes
{
    struct Entry
    {
        BackendId backend = 0;
        const ModelProfile *profile = nullptr; ///< the handle's (stable)
        LlmResponse resp;
    };
    std::vector<Entry> entries;
};

/**
 * A per-agent-module view onto the engine service: the drop-in
 * replacement for a privately owned LlmEngine.
 *
 * The handle keeps the module's RNG stream and usage counters (so
 * per-agent accounting and determinism are untouched) and routes every
 * completion through its session: the shared backend accumulates
 * race-free fleet-wide usage, and — when batching is on — the completion
 * joins the session's currently open batch group. Sampling uses
 * sampleCompletion(), the exact function behind LlmEngine::complete(),
 * so a handle's response stream is bit-identical to the legacy per-agent
 * engine it replaces.
 *
 * A handle constructed with a null session (or a detached session) is
 * exactly a private LlmEngine: it samples and accounts locally. Handles
 * are episode-confined and single-threaded, like the agents that own
 * them.
 */
class EngineHandle
{
  public:
    EngineHandle(EngineSession *session, ModelProfile profile, sim::Rng rng);

    /** Run one completion (see class comment for routing). */
    LlmResponse complete(const LlmRequest &request);

    /**
     * Redirect session accounting into `notes` (nullptr restores live
     * notes). Sampling and the handle's own usage are unaffected — only
     * the session-side note/noteUsage calls are buffered, for the
     * owning agent's parallel-phase turn (see DeferredNotes).
     */
    void defer(DeferredNotes *notes) { deferred_ = notes; }

    const ModelProfile &profile() const { return profile_; }
    const LlmUsage &usage() const { return usage_; }
    void resetUsage() { usage_ = LlmUsage{}; }

    /** Deterministic latency mean for a request (no sampling). */
    double expectedLatency(const LlmRequest &request) const
    {
        return expectedCompletionLatency(profile_, request);
    }

  private:
    EngineSession *session_ = nullptr;
    BackendId backend_ = 0; ///< meaningful only when attached
    DeferredNotes *deferred_ = nullptr; ///< set only inside parallel turns
    ModelProfile profile_;
    sim::Rng rng_;
    LlmUsage usage_;
};

/**
 * Episode-local port into the service: owned by one coordinator harness,
 * used from one thread.
 *
 * The session mints EngineHandles, brackets the episode's step/phase
 * structure (beginStep()/flush()), and keeps the episode's BatchRecord
 * log. All completions issued between two flush points that hit the same
 * backend form one batch — coordinators flush at phase boundaries, so a
 * batch is "the planning calls of every agent this step", which is
 * exactly the paper's Recommendation 1 cross-agent batching. The log is
 * deterministic for a given episode seed regardless of how many other
 * episodes run concurrently, which is what makes the post-join
 * cross-episode fold (foldCrossEpisodeBatches) reproducible at any
 * EBS_JOBS.
 *
 * A default-constructed session is detached: handles behave like private
 * engines and the log stays empty.
 */
class EngineSession
{
  public:
    EngineSession();
    ~EngineSession();

    /**
     * Sessions are pinned: every EngineHandle holds a raw pointer back
     * to the session it was minted from, so moving a session would leave
     * its handles dangling. Construct the session at its final address
     * (the Harness in coordinator.cpp builds it in its member-init list)
     * and mint handles afterwards.
     */
    EngineSession(EngineSession &&) = delete;
    EngineSession &operator=(EngineSession &&) = delete;

    /** Mint a handle for one agent module (see EngineHandle). */
    EngineHandle handle(const ModelProfile &profile, sim::Rng stream);

    /** True when completions route through a service. */
    bool attached() const { return service_ != nullptr; }

    /** True when this session assembles batches. */
    bool batching() const;

    /**
     * True when this session simulates finite-capacity backends: each
     * flushed batch group is submitted to its backend's discrete-event
     * queue at the group's arrival instant (`setNow`), and the queueing
     * + admission delay joins the pending charge so the coordinator's
     * takePendingCharge path feeds contention back into the episode
     * clock. Implies charged serving: the coordinator withholds sampled
     * LLM latency and pays the queue-scheduled completion instead.
     */
    bool queueing() const { return queue_ != nullptr; }

    /** The session's backend queues (nullptr when not queueing). */
    const BackendQueueModel *queueModel() const { return queue_.get(); }

    /** Mark the start of a global episode step (closes open groups). */
    void beginStep(int step);

    /** Episode sim-clock time stamped onto the BatchRecords of the next
     * flush (their modeled arrival instant). The coordinator harness
     * sets this right before every phase flush. */
    void setNow(double now_s) { now_s_ = now_s; }

    /** Close every open batch group (coordinators call this per phase). */
    void flush();

    /**
     * Sampled sequential latency of every completion noted since the
     * last flush (the summed `baseline_s` of the open groups): the
     * LLM-attributable share of the current phase. 0 for a detached or
     * non-batching session.
     */
    double phaseBaseline() const;

    /**
     * Joint completion time (`jointBatchTime`) accumulated by the
     * groups flushed since the last take — what the phase's batches
     * cost the episode clock when `batch_llm_calls` charges for real.
     * Returns the accumulated sum and resets it; the harness claims it
     * at every flush point so each batch is charged exactly once.
     */
    double takePendingCharge();

    /**
     * Re-issue the notes an agent deferred during a parallel phase turn,
     * in the buffered order. The coordinator's commit step calls this
     * once per agent, in agent-index order, before flushing the phase.
     */
    void replay(const DeferredNotes &notes);

    /**
     * Route flush-time trace instants (batch assembly, queue admission)
     * into an episode trace log (see obs/trace.h). nullptr — the default
     * — keeps flush() emission-free; the coordinator harness wires its
     * episode's log through here when tracing is enabled. The log must
     * outlive the session's last flush.
     */
    void traceTo(obs::EpisodeTraceLog *trace) { trace_ = trace; }

    /** Batches assembled so far (flushed groups only). */
    const std::vector<BatchRecord> &log() const { return log_; }

    /** Flush and surrender the batch log (for EpisodeResult). */
    std::vector<BatchRecord> takeLog();

    LlmEngineService *service() const { return service_; }

  private:
    friend class EngineHandle;
    friend class LlmEngineService;

    explicit EngineSession(LlmEngineService *service);

    /** Join `resp` to the open batch group of `backend`. */
    void note(BackendId backend, const ModelProfile &profile,
              const LlmResponse &resp);

    /** Stage `resp`'s usage for the backend; drained to the service at
     * the next flush so the hot path never takes the service mutex. */
    void noteUsage(BackendId backend, const LlmResponse &resp);

    LlmEngineService *service_ = nullptr;
    /** Episode trace log for flush-time instants; null (the default)
     * when tracing is off. Not owned. */
    obs::EpisodeTraceLog *trace_ = nullptr;
    /** Finite-capacity backend queues (closed-loop serving); null on
     * the open-loop path. Episode-confined like the session itself. */
    std::unique_ptr<BackendQueueModel> queue_;
    int step_ = 0;
    int phase_ = 0;
    double now_s_ = 0.0;           ///< arrival stamp for the next flush
    double pending_charge_s_ = 0.0; ///< flushed batched_s not yet claimed
    std::vector<BatchRecord> open_; ///< one open group per touched backend
    std::vector<BatchRecord> log_;
    /** Usage staged since the last flush, one slot per touched backend. */
    std::vector<std::pair<BackendId, LlmUsage>> pending_usage_;
};

/**
 * Process-wide simulated LLM inference service (the tentpole of
 * Recommendation 1): one backend per distinct ModelProfile — the GPT-4
 * API endpoint and each local-GPU model are single shared resources, not
 * per-agent copies — plus the batching machinery above.
 *
 * Thread-safety contract (the fix for LlmEngine's unsynchronized usage
 * counters): every cross-thread touchpoint — backend registration,
 * usage aggregation, batch tallies, usage()/stats()/reset() — takes the
 * service mutex, so concurrent episodes on the EpisodeRunner pool
 * aggregate race-free by construction. Sessions stage usage locally and
 * drain one lock per coordinator phase (not per completion), keeping
 * the hot path contention-free. Everything stochastic stays in
 * episode-confined handles, so the service never serializes RNG state
 * and never perturbs a sampled stream. The contract is compiler-checked:
 * `backends_` and `stats_` carry EBS_GUARDED_BY(mu_), so the CI Clang
 * `-Wthread-safety` build hard-errors on any drain or query path that
 * touches them without the lock.
 *
 * Determinism contract: routing through the service (with batching on or
 * off, at any worker count) yields bit-identical EpisodeResults to the
 * legacy per-agent-engine path. Only the service's aggregate counters
 * and the BatchRecord logs are new information.
 */
class LlmEngineService
{
  public:
    explicit LlmEngineService(ServiceConfig config = {});

    LlmEngineService(const LlmEngineService &) = delete;
    LlmEngineService &operator=(const LlmEngineService &) = delete;

    /** Open an episode-local session (cheap; one per episode). */
    EngineSession openSession() { return EngineSession(this); }

    /**
     * Backend id for a profile, registering it on first sight. The id is
     * a pure function of the profile — an FNV-1a hash over every field —
     * NOT a registration-order index, so concurrently racing episodes
     * always agree on it regardless of thread scheduling. Keying on the
     * full profile also means a quantized or differently-calibrated
     * variant (e.g. a workload-tweaked reflect_quality) gets its own
     * backend even under a reused name, so usage accounting never
     * silently merges differently-calibrated models.
     */
    BackendId backendFor(const ModelProfile &profile) EBS_EXCLUDES(mu_);

    int backendCount() const EBS_EXCLUDES(mu_);
    std::string backendName(BackendId backend) const EBS_EXCLUDES(mu_);

    /** Registered profile of a backend (the id's preimage), so a bench
     * replay can rebuild per-backend queue configs from record logs. */
    ModelProfile backendProfile(BackendId backend) const EBS_EXCLUDES(mu_);

    /**
     * Fleet-wide usage of one backend (race-free snapshot). Sessions
     * stage usage locally and drain it at flush/takeLog, so totals are
     * exact once an episode finishes — mid-phase reads may lag by the
     * calls staged since the last phase boundary.
     */
    LlmUsage backendUsage(BackendId backend) const EBS_EXCLUDES(mu_);

    /** Fleet-wide usage summed over all backends (same freshness). */
    LlmUsage totalUsage() const EBS_EXCLUDES(mu_);

    /** Aggregate batching outcome across every session so far. */
    BatchStats stats() const EBS_EXCLUDES(mu_);

    /** Clear usage counters and batch tallies (backends persist). */
    void reset() EBS_EXCLUDES(mu_);

    const ServiceConfig &config() const { return config_; }

    /**
     * Process-wide instance shared by the bench fleet and the default
     * EpisodeOptions, so every episode of every suite hits the same
     * simulated endpoints (one EBS_JOBS-wide view of API traffic).
     */
    static LlmEngineService &shared();

  private:
    friend class EngineHandle;
    friend class EngineSession;

    /** Fold one session flush — staged usage plus the phase's assembled
     * batches — into the shared tallies under a single lock. */
    void
    accountFlush(std::span<const std::pair<BackendId, LlmUsage>> usage,
                 std::span<const BatchRecord> batches) EBS_EXCLUDES(mu_);

    struct Backend
    {
        std::string name;
        ModelProfile profile;
        LlmUsage usage;
    };

    mutable core::Mutex mu_;
    /** Set at construction, immutable after — safe to read lock-free. */
    ServiceConfig config_;
    /** Keyed (and therefore iterated) by stable id, so aggregate float
     * sums over backends accumulate in a scheduling-independent order. */
    std::map<BackendId, Backend> backends_ EBS_GUARDED_BY(mu_);
    BatchStats stats_ EBS_GUARDED_BY(mu_);
};

/** Fold one episode's batch log into aggregate stats. */
BatchStats foldBatchLog(std::span<const BatchRecord> log);

/**
 * Model the cross-episode batching opportunity of a set of episodes that
 * ran concurrently on the EpisodeRunner pool: batches with the same
 * (step, phase, backend) key — the same pipeline stage of episodes
 * advancing in lockstep — merge into one super-batch with summed
 * prefill, the longest member decode, and a single RTT.
 *
 * This is a pure post-join fold over per-episode logs (the same pattern
 * as runner::foldEpisodes), so the result is bit-identical at any worker
 * count instead of depending on thread timing.
 */
BatchStats
foldCrossEpisodeBatches(std::span<const std::vector<BatchRecord>> logs);

/**
 * Latency-aware variant of the cross-episode fold: episodes only start
 * in lockstep — their clocks drift apart as steps diverge — so two
 * same-(step, phase, backend) batches can really share one joint
 * inference only if they arrive at the backend around the same time.
 * Records merge only when their modeled arrival instants
 * (`BatchRecord::sim_time_s`) fall within `window_s` seconds of the
 * arrival that opened the group (a backend admission window anchored at
 * the group's first-visited record; records are visited in
 * episode-submission order, so the anchor is deterministic).
 *
 * `window_s = infinity` reproduces the lockstep fold above exactly;
 * any finite window yields a partition refinement of the lockstep
 * merge, so its modeled savings are <= the lockstep savings — a
 * conservative estimate instead of a lockstep-optimistic one. The fold
 * stays pure and deterministic at any worker count (records are
 * visited in episode-submission order, clusters are keyed by the
 * stable batch key).
 */
BatchStats
foldCrossEpisodeBatches(std::span<const std::vector<BatchRecord>> logs,
                        double window_s);

} // namespace ebs::llm

#endif // EBS_LLM_ENGINE_SERVICE_H
