#ifndef EBS_LLM_TOKEN_H
#define EBS_LLM_TOKEN_H

#include <string>

namespace ebs::llm {

/**
 * Approximate token count of a text string.
 *
 * Uses the standard BPE rule of thumb (~4 characters or ~0.75 words per
 * token, whichever yields more tokens). The paper's token-length findings
 * (Fig. 6) depend on growth *shape*, not on exact tokenizer output, so an
 * approximation is sufficient and keeps the simulator dependency-free.
 */
int approxTokens(const std::string &text);

/** Token count of `count` short items (ids, coordinates) in a list. */
int listTokens(int count, int tokens_per_item = 6);

} // namespace ebs::llm

#endif // EBS_LLM_TOKEN_H
