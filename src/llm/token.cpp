#include "llm/token.h"

#include <algorithm>
#include <cctype>

namespace ebs::llm {

int
approxTokens(const std::string &text)
{
    if (text.empty())
        return 0;
    int words = 0;
    bool in_word = false;
    for (char ch : text) {
        const bool space = std::isspace(static_cast<unsigned char>(ch)) != 0;
        if (!space && !in_word)
            ++words;
        in_word = !space;
    }
    const int by_chars = static_cast<int>((text.size() + 3) / 4);
    const int by_words = (words * 4 + 2) / 3;
    return std::max(by_chars, by_words);
}

int
listTokens(int count, int tokens_per_item)
{
    return std::max(0, count) * tokens_per_item;
}

} // namespace ebs::llm
