#ifndef EBS_LLM_MODEL_PROFILE_H
#define EBS_LLM_MODEL_PROFILE_H

#include <string>

namespace ebs::llm {

/**
 * Performance and capability profile of one language (or vision-language)
 * model, the unit of substitution for the paper's GPT-4 / Llama / LLaVA
 * backends.
 *
 * Latency model: a completion with T_in prompt tokens and T_out generated
 * tokens costs
 *
 *     api_rtt + T_in / prefill_tok_per_s + T_out / decode_tok_per_s
 *
 * with api_rtt = 0 for local models. Capability model: each call kind
 * (planning / communication / reflection) has a base quality in [0, 1] — the
 * probability that the model produces the *good* output — degraded further
 * by context dilution and joint-reasoning complexity (see LlmEngine).
 *
 * Numbers are calibrated to the paper's hardware setup (GPT-4 via OpenAI
 * API; local models on an NVIDIA A6000).
 */
struct ModelProfile
{
    std::string name;

    // --- latency ---
    bool remote = false;           ///< true for API-served models
    double api_rtt_mean_s = 0.0;   ///< fixed round-trip overhead per call
    double api_rtt_cv = 0.0;       ///< relative jitter of the RTT
    double prefill_tok_per_s = 1;  ///< prompt-processing throughput
    double decode_tok_per_s = 1;   ///< generation throughput
    int context_limit = 8192;      ///< max prompt tokens before truncation

    // --- capability ---
    double plan_quality = 0.5;     ///< P(good high-level plan), undiluted
    double comm_quality = 0.5;     ///< P(useful message / correct parse)
    double reflect_quality = 0.5;  ///< P(correctly judging an outcome)
    double format_compliance = 1;  ///< P(output parses at all)

    // --- context dilution (Takeaway 5: long prompts dilute attention) ---
    double dilution_onset_tokens = 3000;  ///< no penalty below this size
    double dilution_scale_tokens = 10000; ///< halves quality per this many

    /** Quality multiplier (<= 1) for a prompt of the given size. */
    double dilutionFactor(int tokens_in) const;

    // --- presets used across the workload suite ---
    static ModelProfile gpt4Api();
    static ModelProfile llama3_8bLocal();
    static ModelProfile llama13bLocal();
    static ModelProfile llama70bLocal();
    static ModelProfile llava7bLocal();
    static ModelProfile llama7bLocal();

    /**
     * AWQ-style 4-bit quantized variant of a local profile: ~1.8x decode
     * throughput, ~0.97x quality (Recommendation 1 ablation).
     */
    static ModelProfile quantized(const ModelProfile &base);

    /**
     * LoRA task-tuned variant (Recommendation 4): parameter-efficient
     * fine-tuning on domain data narrows the gap to large models on the
     * tuned task family — quality axes move a fraction `gain` of the way
     * to 1.0 and format compliance rises — at unchanged inference speed.
     *
     * @param gain fraction of the remaining quality gap closed, in [0, 1]
     */
    static ModelProfile loraTuned(const ModelProfile &base,
                                  double gain = 0.5);
};

} // namespace ebs::llm

#endif // EBS_LLM_MODEL_PROFILE_H
