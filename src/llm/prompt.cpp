#include "llm/prompt.h"

#include <algorithm>
#include <cassert>

#include "llm/token.h"

namespace ebs::llm {

void
Prompt::addText(std::string name, std::string text)
{
    sections_.push_back({std::move(name), std::move(text), 0});
}

void
Prompt::addTokens(std::string name, int tokens)
{
    assert(tokens >= 0);
    sections_.push_back({std::move(name), std::string(), tokens});
}

int
Prompt::tokens() const
{
    int total = 0;
    for (const auto &s : sections_)
        total += approxTokens(s.text) + s.extra_tokens;
    return total;
}

int
Prompt::sectionTokens(const std::string &name) const
{
    for (const auto &s : sections_)
        if (s.name == name)
            return approxTokens(s.text) + s.extra_tokens;
    return 0;
}

std::string
Prompt::render() const
{
    std::string out;
    for (const auto &s : sections_) {
        out += "## ";
        out += s.name;
        out += '\n';
        if (!s.text.empty()) {
            out += s.text;
            out += '\n';
        }
        if (s.extra_tokens > 0) {
            out += '[';
            out += std::to_string(s.extra_tokens);
            out += " tokens]\n";
        }
    }
    return out;
}

Prompt
Prompt::compressed(const std::vector<std::string> &compressible,
                   double ratio) const
{
    assert(ratio > 0.0 && ratio <= 1.0);
    Prompt out;
    for (const auto &s : sections_) {
        const bool target =
            std::find(compressible.begin(), compressible.end(), s.name) !=
            compressible.end();
        if (!target) {
            out.sections_.push_back(s);
            continue;
        }
        const int toks = approxTokens(s.text) + s.extra_tokens;
        out.addTokens(s.name + " (summarized)",
                      static_cast<int>(toks * ratio));
    }
    return out;
}

} // namespace ebs::llm
