#include "llm/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ebs::llm {

namespace {

/** Penalty applied to quality when the prompt was truncated. */
constexpr double kTruncationQualityFactor = 0.80;

/** Base quality axis of the profile for a call kind. */
double
baseQuality(const ModelProfile &profile, CallKind kind)
{
    switch (kind) {
      case CallKind::Planning:
        return profile.plan_quality;
      case CallKind::Communication:
        return profile.comm_quality;
      case CallKind::Reflection:
        return profile.reflect_quality;
      case CallKind::ActionSelection:
        // Menu-style selection is easier than free-form planning.
        return std::min(1.0, profile.plan_quality * 1.05);
    }
    return 0.5;
}

} // namespace

LlmEngine::LlmEngine(ModelProfile profile, sim::Rng rng)
    : profile_(std::move(profile)), rng_(rng)
{
}

double
LlmEngine::qualityFor(const LlmRequest &request, int effective_in) const
{
    double q = baseQuality(profile_, request.kind);
    q *= profile_.dilutionFactor(effective_in);
    q *= std::clamp(1.0 - request.complexity, 0.0, 1.0);
    if (request.tokens_in > profile_.context_limit)
        q *= kTruncationQualityFactor;
    return std::clamp(q, 0.0, 1.0);
}

double
LlmEngine::expectedLatency(const LlmRequest &request) const
{
    const int in = std::min(request.tokens_in, profile_.context_limit);
    double latency = 0.0;
    if (profile_.remote)
        latency += profile_.api_rtt_mean_s;
    latency += in / profile_.prefill_tok_per_s;
    latency += request.tokens_out_mean / profile_.decode_tok_per_s;
    return latency;
}

LlmResponse
LlmEngine::complete(const LlmRequest &request)
{
    assert(request.tokens_in >= 0);

    LlmResponse resp;
    resp.truncated = request.tokens_in > profile_.context_limit;
    resp.tokens_in = std::min(request.tokens_in, profile_.context_limit);

    // Generation length varies around the mean (+/- ~25%).
    const double out_mean = std::max(1.0, double(request.tokens_out_mean));
    resp.tokens_out =
        std::max(1, static_cast<int>(rng_.lognormal(out_mean, 0.25)));

    double latency = 0.0;
    if (profile_.remote)
        latency += rng_.lognormal(profile_.api_rtt_mean_s, profile_.api_rtt_cv);
    latency += resp.tokens_in / profile_.prefill_tok_per_s;
    latency += resp.tokens_out / profile_.decode_tok_per_s;
    resp.latency_s = latency;

    resp.parse_ok = rng_.bernoulli(profile_.format_compliance);
    const double q = qualityFor(request, resp.tokens_in);
    resp.good = resp.parse_ok && rng_.bernoulli(q);

    ++usage_.calls;
    usage_.tokens_in += resp.tokens_in;
    usage_.tokens_out += resp.tokens_out;
    usage_.total_latency_s += resp.latency_s;
    return resp;
}

std::vector<LlmResponse>
LlmEngine::completeBatch(const std::vector<LlmRequest> &requests)
{
    std::vector<LlmResponse> out;
    out.reserve(requests.size());
    if (requests.empty())
        return out;

    // Joint prefill + longest decode; one RTT for the whole batch.
    double prefill_s = 0.0;
    double max_decode_s = 0.0;
    for (const auto &req : requests) {
        LlmResponse resp;
        resp.truncated = req.tokens_in > profile_.context_limit;
        resp.tokens_in = std::min(req.tokens_in, profile_.context_limit);
        const double out_mean = std::max(1.0, double(req.tokens_out_mean));
        resp.tokens_out =
            std::max(1, static_cast<int>(rng_.lognormal(out_mean, 0.25)));
        resp.parse_ok = rng_.bernoulli(profile_.format_compliance);
        resp.good =
            resp.parse_ok && rng_.bernoulli(qualityFor(req, resp.tokens_in));

        prefill_s += resp.tokens_in / profile_.prefill_tok_per_s;
        max_decode_s = std::max(max_decode_s,
                                resp.tokens_out / profile_.decode_tok_per_s);
        out.push_back(resp);
    }

    double batch_latency = prefill_s + max_decode_s;
    if (profile_.remote)
        batch_latency +=
            rng_.lognormal(profile_.api_rtt_mean_s, profile_.api_rtt_cv);

    for (auto &resp : out) {
        resp.latency_s = batch_latency;
        ++usage_.calls;
        usage_.tokens_in += resp.tokens_in;
        usage_.tokens_out += resp.tokens_out;
    }
    usage_.total_latency_s += batch_latency;
    return out;
}

} // namespace ebs::llm
