#include "llm/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ebs::llm {

namespace {

/** Penalty applied to quality when the prompt was truncated. */
constexpr double kTruncationQualityFactor = 0.80;

/** Base quality axis of the profile for a call kind. */
double
baseQuality(const ModelProfile &profile, CallKind kind)
{
    switch (kind) {
      case CallKind::Planning:
        return profile.plan_quality;
      case CallKind::Communication:
        return profile.comm_quality;
      case CallKind::Reflection:
        return profile.reflect_quality;
      case CallKind::ActionSelection:
        // Menu-style selection is easier than free-form planning.
        return std::min(1.0, profile.plan_quality * 1.05);
    }
    return 0.5;
}

double
qualityFor(const ModelProfile &profile, const LlmRequest &request,
           int effective_in)
{
    double q = baseQuality(profile, request.kind);
    q *= profile.dilutionFactor(effective_in);
    q *= std::clamp(1.0 - request.complexity, 0.0, 1.0);
    if (request.tokens_in > profile.context_limit)
        q *= kTruncationQualityFactor;
    return std::clamp(q, 0.0, 1.0);
}

} // namespace

LlmResponse
sampleCompletion(const ModelProfile &profile, const LlmRequest &request,
                 sim::Rng &rng)
{
    assert(request.tokens_in >= 0);

    LlmResponse resp;
    resp.truncated = request.tokens_in > profile.context_limit;
    resp.tokens_in = std::min(request.tokens_in, profile.context_limit);

    // Generation length varies around the mean (+/- ~25%).
    const double out_mean = std::max(1.0, double(request.tokens_out_mean));
    resp.tokens_out =
        std::max(1, static_cast<int>(rng.lognormal(out_mean, 0.25)));

    double latency = 0.0;
    if (profile.remote)
        latency += rng.lognormal(profile.api_rtt_mean_s, profile.api_rtt_cv);
    latency += resp.tokens_in / profile.prefill_tok_per_s;
    latency += resp.tokens_out / profile.decode_tok_per_s;
    resp.latency_s = latency;

    resp.parse_ok = rng.bernoulli(profile.format_compliance);
    const double q = qualityFor(profile, request, resp.tokens_in);
    resp.good = resp.parse_ok && rng.bernoulli(q);
    return resp;
}

double
expectedCompletionLatency(const ModelProfile &profile,
                          const LlmRequest &request)
{
    const int in = std::min(request.tokens_in, profile.context_limit);
    double latency = 0.0;
    if (profile.remote)
        latency += profile.api_rtt_mean_s;
    latency += in / profile.prefill_tok_per_s;
    latency += request.tokens_out_mean / profile.decode_tok_per_s;
    return latency;
}

double
expectedBatchLatency(const ModelProfile &profile,
                     const std::vector<LlmRequest> &requests)
{
    if (requests.empty())
        return 0.0;
    double prefill_s = 0.0;
    double max_decode_s = 0.0;
    double baseline_s = 0.0;
    for (const auto &req : requests) {
        const int in = std::min(req.tokens_in, profile.context_limit);
        prefill_s += in / profile.prefill_tok_per_s;
        max_decode_s = std::max(
            max_decode_s, req.tokens_out_mean / profile.decode_tok_per_s);
        baseline_s += expectedCompletionLatency(profile, req);
    }
    // The expected sequential baseline never undercuts the joint time
    // (summed decode >= longest decode, n RTTs >= one), so the clamp is
    // inert here and the singleton rule reduces to the member's own
    // expected latency.
    return jointBatchTime(static_cast<int>(requests.size()), prefill_s,
                          max_decode_s, profile.remote,
                          profile.api_rtt_mean_s, baseline_s);
}

double
jointBatchTime(int requests, double prefill_s, double max_decode_s,
               bool remote, double rtt_mean_s, double baseline_s)
{
    if (requests <= 1)
        return baseline_s;
    double latency = prefill_s + max_decode_s;
    if (remote)
        latency += rtt_mean_s;
    return std::min(latency, baseline_s);
}

void
LlmUsage::add(const LlmResponse &resp)
{
    ++calls;
    tokens_in += resp.tokens_in;
    tokens_out += resp.tokens_out;
    total_latency_s += resp.latency_s;
}

LlmUsage &
LlmUsage::operator+=(const LlmUsage &other)
{
    calls += other.calls;
    tokens_in += other.tokens_in;
    tokens_out += other.tokens_out;
    total_latency_s += other.total_latency_s;
    return *this;
}

LlmEngine::LlmEngine(ModelProfile profile, sim::Rng rng)
    : profile_(std::move(profile)), rng_(rng)
{
}

double
LlmEngine::expectedLatency(const LlmRequest &request) const
{
    return expectedCompletionLatency(profile_, request);
}

LlmResponse
LlmEngine::complete(const LlmRequest &request)
{
    const LlmResponse resp = sampleCompletion(profile_, request, rng_);
    usage_.add(resp);
    return resp;
}

std::vector<LlmResponse>
LlmEngine::completeBatch(const std::vector<LlmRequest> &requests)
{
    std::vector<LlmResponse> out;
    out.reserve(requests.size());
    if (requests.empty())
        return out;
    if (requests.size() == 1) {
        out.push_back(complete(requests.front()));
        return out;
    }

    // Sample each member exactly as sequential complete() calls would, so
    // batching never perturbs the response stream; then overwrite the
    // latency with the joint completion time (summed prefill + longest
    // decode + one mean RTT), which can only improve on the sum.
    double prefill_s = 0.0;
    double max_decode_s = 0.0;
    double sequential_s = 0.0;
    for (const auto &req : requests) {
        LlmResponse resp = sampleCompletion(profile_, req, rng_);
        prefill_s += resp.tokens_in / profile_.prefill_tok_per_s;
        max_decode_s = std::max(max_decode_s,
                                resp.tokens_out / profile_.decode_tok_per_s);
        sequential_s += resp.latency_s;
        out.push_back(resp);
    }

    const double batch_latency = jointBatchTime(
        static_cast<int>(requests.size()), prefill_s, max_decode_s,
        profile_.remote, profile_.api_rtt_mean_s, sequential_s);

    for (auto &resp : out) {
        resp.latency_s = batch_latency;
        ++usage_.calls;
        usage_.tokens_in += resp.tokens_in;
        usage_.tokens_out += resp.tokens_out;
    }
    usage_.total_latency_s += batch_latency;
    return out;
}

} // namespace ebs::llm
