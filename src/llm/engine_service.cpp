#include "llm/engine_service.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <tuple>

namespace ebs::llm {

namespace {

/** Modeled joint completion time of an assembled group, clamped so a
 * batch can never cost more than running its members sequentially. A
 * group of one IS the sequential call — substituting the mean RTT for
 * its sampled RTT under a one-sided clamp would manufacture savings
 * out of RTT jitter, so singletons keep their baseline exactly. */
double
jointCompletionTime(const BatchRecord &record)
{
    if (record.requests <= 1)
        return record.baseline_s;
    double latency = record.prefill_s + record.max_decode_s;
    if (record.remote)
        latency += record.rtt_mean_s;
    return std::min(latency, record.baseline_s);
}

/** Two profiles map to the same backend iff their identity and latency
 * model agree (capability axes ride along with the name). */
bool
sameBackend(const ModelProfile &a, const ModelProfile &b)
{
    return a.name == b.name && a.remote == b.remote &&
           a.api_rtt_mean_s == b.api_rtt_mean_s &&
           a.prefill_tok_per_s == b.prefill_tok_per_s &&
           a.decode_tok_per_s == b.decode_tok_per_s &&
           a.context_limit == b.context_limit;
}

} // namespace

// ---------------------------------------------------------------- stats

void
BatchStats::add(const BatchRecord &record)
{
    ++batches;
    requests += record.requests;
    cross_agent_batches += record.requests > 1;
    baseline_s += record.baseline_s;
    batched_s += record.batched_s;
}

void
BatchStats::merge(const BatchStats &other)
{
    batches += other.batches;
    requests += other.requests;
    cross_agent_batches += other.cross_agent_batches;
    baseline_s += other.baseline_s;
    batched_s += other.batched_s;
}

// ---------------------------------------------------------------- handle

EngineHandle::EngineHandle(EngineSession *session, ModelProfile profile,
                           sim::Rng rng)
    : session_(session), profile_(std::move(profile)), rng_(rng)
{
    if (session_ != nullptr && session_->attached())
        backend_ = session_->service()->backendFor(profile_);
}

LlmResponse
EngineHandle::complete(const LlmRequest &request)
{
    const LlmResponse resp = sampleCompletion(profile_, request, rng_);
    usage_.add(resp);

    if (session_ != nullptr && session_->attached()) {
        session_->noteUsage(backend_, resp);
        if (session_->batching())
            session_->note(backend_, profile_, resp);
    }
    return resp;
}

// --------------------------------------------------------------- session

EngineHandle
EngineSession::handle(const ModelProfile &profile, sim::Rng stream)
{
    return EngineHandle(this, profile, stream);
}

bool
EngineSession::batching() const
{
    return service_ != nullptr && service_->config().batching;
}

void
EngineSession::beginStep(int step)
{
    flush();
    step_ = step;
    phase_ = 0;
}

void
EngineSession::note(int backend, const ModelProfile &profile,
                    const LlmResponse &resp)
{
    BatchRecord *group = nullptr;
    for (auto &open : open_)
        if (open.backend == backend)
            group = &open;
    if (group == nullptr) {
        BatchRecord fresh;
        fresh.step = step_;
        fresh.phase = phase_;
        fresh.backend = backend;
        fresh.remote = profile.remote;
        fresh.rtt_mean_s = profile.api_rtt_mean_s;
        open_.push_back(fresh);
        group = &open_.back();
    }
    ++group->requests;
    group->prefill_s += resp.tokens_in / profile.prefill_tok_per_s;
    group->max_decode_s = std::max(
        group->max_decode_s, resp.tokens_out / profile.decode_tok_per_s);
    group->baseline_s += resp.latency_s;
}

void
EngineSession::noteUsage(int backend, const LlmResponse &resp)
{
    LlmUsage *slot = nullptr;
    for (auto &[pending_backend, usage] : pending_usage_)
        if (pending_backend == backend)
            slot = &usage;
    if (slot == nullptr) {
        pending_usage_.emplace_back(backend, LlmUsage{});
        slot = &pending_usage_.back().second;
    }
    slot->add(resp);
}

void
EngineSession::flush()
{
    for (auto &group : open_) {
        group.batched_s = jointCompletionTime(group);
        log_.push_back(group);
    }
    if (service_ != nullptr && (!pending_usage_.empty() || !open_.empty()))
        service_->accountFlush(pending_usage_, open_);
    pending_usage_.clear();
    open_.clear();
    ++phase_;
}

std::vector<BatchRecord>
EngineSession::takeLog()
{
    flush();
    std::vector<BatchRecord> out = std::move(log_);
    log_.clear();
    return out;
}

// --------------------------------------------------------------- service

LlmEngineService::LlmEngineService(ServiceConfig config) : config_(config)
{
}

int
LlmEngineService::backendFor(const ModelProfile &profile)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < backends_.size(); ++i)
        if (sameBackend(backends_[i].profile, profile))
            return static_cast<int>(i);
    Backend fresh;
    fresh.name = profile.name;
    fresh.profile = profile;
    backends_.push_back(std::move(fresh));
    return static_cast<int>(backends_.size()) - 1;
}

int
LlmEngineService::backendCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(backends_.size());
}

std::string
LlmEngineService::backendName(int backend) const
{
    std::lock_guard<std::mutex> lock(mu_);
    assert(backend >= 0 &&
           backend < static_cast<int>(backends_.size()));
    return backends_[static_cast<std::size_t>(backend)].name;
}

LlmUsage
LlmEngineService::backendUsage(int backend) const
{
    std::lock_guard<std::mutex> lock(mu_);
    assert(backend >= 0 &&
           backend < static_cast<int>(backends_.size()));
    return backends_[static_cast<std::size_t>(backend)].usage;
}

LlmUsage
LlmEngineService::totalUsage() const
{
    std::lock_guard<std::mutex> lock(mu_);
    LlmUsage total;
    for (const auto &backend : backends_)
        total += backend.usage;
    return total;
}

BatchStats
LlmEngineService::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
LlmEngineService::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &backend : backends_)
        backend.usage = LlmUsage{};
    stats_ = BatchStats{};
}

void
LlmEngineService::accountFlush(
    std::span<const std::pair<int, LlmUsage>> usage,
    std::span<const BatchRecord> batches)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[backend, staged] : usage) {
        assert(backend >= 0 &&
               backend < static_cast<int>(backends_.size()));
        backends_[static_cast<std::size_t>(backend)].usage += staged;
    }
    for (const auto &record : batches)
        stats_.add(record);
}

LlmEngineService &
LlmEngineService::shared()
{
    static LlmEngineService instance;
    return instance;
}

// ----------------------------------------------------------------- folds

BatchStats
foldBatchLog(std::span<const BatchRecord> log)
{
    BatchStats stats;
    for (const auto &record : log)
        stats.add(record);
    return stats;
}

BatchStats
foldCrossEpisodeBatches(std::span<const std::vector<BatchRecord>> logs)
{
    // Merge per-episode batches keyed by (step, phase, backend): the same
    // pipeline stage of episodes advancing in lockstep shares one joint
    // inference. std::map keeps the fold order deterministic.
    std::map<std::tuple<int, int, int>, BatchRecord> merged;
    for (const auto &log : logs) {
        for (const auto &record : log) {
            const auto key = std::make_tuple(record.step, record.phase,
                                             record.backend);
            auto [it, inserted] = merged.try_emplace(key, record);
            if (inserted)
                continue;
            BatchRecord &super = it->second;
            super.requests += record.requests;
            super.remote = super.remote || record.remote;
            super.rtt_mean_s = std::max(super.rtt_mean_s, record.rtt_mean_s);
            super.prefill_s += record.prefill_s;
            super.max_decode_s =
                std::max(super.max_decode_s, record.max_decode_s);
            super.baseline_s += record.baseline_s;
        }
    }

    BatchStats stats;
    for (auto &[key, record] : merged) {
        (void)key;
        record.batched_s = jointCompletionTime(record);
        stats.add(record);
    }
    return stats;
}

} // namespace ebs::llm
