#include "llm/engine_service.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <tuple>

#include "llm/backend_queue.h"
#include "obs/trace.h"

namespace ebs::llm {

namespace {

/** Modeled joint completion time of an assembled group: the shared
 * jointBatchTime() cost model (engine.h) applied to a BatchRecord. */
double
jointCompletionTime(const BatchRecord &record)
{
    return jointBatchTime(record.requests, record.prefill_s,
                          record.max_decode_s, record.remote,
                          record.rtt_mean_s, record.baseline_s);
}

/** Feed every ModelProfile field except the name to `field`, as a
 * double. Backend equality and identity below both consume exactly this
 * enumeration, so the two can never drift apart: a same-name,
 * same-latency profile with e.g. a workload-tweaked reflect_quality is
 * a differently-calibrated model and must not merge into another
 * backend's usage accounting. When ModelProfile gains a field, extend
 * this list (the size guard below fails loudly until you do). */
template <typename Fn>
void
forEachProfileField(const ModelProfile &p, Fn &&field)
{
    field(p.remote ? 1.0 : 0.0);
    field(p.api_rtt_mean_s);
    field(p.api_rtt_cv);
    field(p.prefill_tok_per_s);
    field(p.decode_tok_per_s);
    field(static_cast<double>(p.context_limit));
    field(p.plan_quality);
    field(p.comm_quality);
    field(p.reflect_quality);
    field(p.format_compliance);
    field(p.dilution_onset_tokens);
    field(p.dilution_scale_tokens);
}

#if defined(__GLIBCXX__) && defined(__x86_64__) && \
    defined(_GLIBCXX_USE_CXX11_ABI) && _GLIBCXX_USE_CXX11_ABI == 1
static_assert(sizeof(ModelProfile) == 128,
              "ModelProfile changed: extend forEachProfileField() (and "
              "this size) so backend identity keeps covering every field");
#endif

/** Full-profile backend equality (same name, same field stream). Only
 * the debug-build collision assert calls this — the identity hash below
 * consumes the same enumeration — hence maybe_unused. */
[[maybe_unused]] bool
sameBackend(const ModelProfile &a, const ModelProfile &b)
{
    if (a.name != b.name)
        return false;
    std::vector<double> fields_a;
    std::vector<double> fields_b;
    forEachProfileField(a, [&](double v) { fields_a.push_back(v); });
    forEachProfileField(b, [&](double v) { fields_b.push_back(v); });
    return fields_a == fields_b;
}

std::uint64_t
fnv1aBytes(std::uint64_t hash, const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ULL;
    }
    return hash;
}

std::uint64_t
fnv1aField(std::uint64_t hash, double value)
{
    // Normalize so the hash agrees with the operator== comparison in
    // sameBackend(): -0.0 must hash like +0.0. (NaN fields would break
    // both functions and never occur in a profile.)
    if (value == 0.0)
        value = 0.0;
    const auto bits = std::bit_cast<std::uint64_t>(value);
    return fnv1aBytes(hash, &bits, sizeof bits);
}

/** The stable BackendId of a profile: FNV-1a over the name and the
 * field stream sameBackend() compares, so the id is a pure function of
 * the profile and never depends on which thread registered a backend
 * first. Two distinct profiles colliding on the full 64 bits is
 * astronomically improbable for the handful of backends a run touches;
 * backendFor() still asserts against it. */
BackendId
backendIdentity(const ModelProfile &p)
{
    std::uint64_t hash = 1469598103934665603ULL;
    hash = fnv1aBytes(hash, p.name.data(), p.name.size());
    hash = fnv1aBytes(hash, "\x1f", 1); // terminate the name bytes
    forEachProfileField(p, [&hash](double field) {
        hash = fnv1aField(hash, field);
    });
    return hash;
}

} // namespace

// ---------------------------------------------------------------- stats

void
BatchStats::add(const BatchRecord &record)
{
    ++batches;
    requests += record.requests;
    cross_agent_batches += record.requests > 1;
    baseline_s += record.baseline_s;
    batched_s += record.batched_s;
    queue_delay_s += record.queue_delay_s;
}

void
BatchStats::merge(const BatchStats &other)
{
    batches += other.batches;
    requests += other.requests;
    cross_agent_batches += other.cross_agent_batches;
    baseline_s += other.baseline_s;
    batched_s += other.batched_s;
    queue_delay_s += other.queue_delay_s;
}

// ---------------------------------------------------------------- handle

EngineHandle::EngineHandle(EngineSession *session, ModelProfile profile,
                           sim::Rng rng)
    : session_(session), profile_(std::move(profile)), rng_(rng)
{
    if (session_ != nullptr && session_->attached())
        backend_ = session_->service()->backendFor(profile_);
}

LlmResponse
EngineHandle::complete(const LlmRequest &request)
{
    const LlmResponse resp = sampleCompletion(profile_, request, rng_);
    usage_.add(resp);

    if (session_ != nullptr && session_->attached()) {
        if (deferred_ != nullptr) {
            // Parallel phase turn: the session is single-threaded and its
            // accounting is order-sensitive, so stage the note for the
            // agent-index-ordered replay at the phase's commit step.
            deferred_->entries.push_back({backend_, &profile_, resp});
        } else {
            session_->noteUsage(backend_, resp);
            if (session_->batching())
                session_->note(backend_, profile_, resp);
        }
    }
    return resp;
}

// --------------------------------------------------------------- session

EngineSession::EngineSession() = default;
EngineSession::~EngineSession() = default;

EngineSession::EngineSession(LlmEngineService *service) : service_(service)
{
    if (service_ != nullptr && service_->config().queue.enabled) {
        const QueuePolicy &policy = service_->config().queue;
        queue_ = std::make_unique<BackendQueueModel>(
            policy.slots_override, policy.kv_budget_override,
            policy.iteration_s);
    }
}

EngineHandle
EngineSession::handle(const ModelProfile &profile, sim::Rng stream)
{
    return EngineHandle(this, profile, stream);
}

bool
EngineSession::batching() const
{
    return service_ != nullptr && service_->config().batching;
}

void
EngineSession::beginStep(int step)
{
    flush();
    step_ = step;
    phase_ = 0;
}

void
EngineSession::note(BackendId backend, const ModelProfile &profile,
                    const LlmResponse &resp)
{
    BatchRecord *group = nullptr;
    for (auto &open : open_)
        if (open.backend == backend)
            group = &open;
    if (group == nullptr) {
        BatchRecord fresh;
        fresh.step = step_;
        fresh.phase = phase_;
        fresh.backend = backend;
        fresh.remote = profile.remote;
        fresh.rtt_mean_s = profile.api_rtt_mean_s;
        open_.push_back(fresh);
        group = &open_.back();
    }
    ++group->requests;
    group->prefill_s += resp.tokens_in / profile.prefill_tok_per_s;
    group->max_decode_s = std::max(
        group->max_decode_s, resp.tokens_out / profile.decode_tok_per_s);
    group->baseline_s += resp.latency_s;
    group->kv_tokens +=
        static_cast<double>(resp.tokens_in + resp.tokens_out);
    if (queue_ != nullptr)
        queue_->ensureBackend(backend, profile);
}

void
EngineSession::noteUsage(BackendId backend, const LlmResponse &resp)
{
    LlmUsage *slot = nullptr;
    for (auto &[pending_backend, usage] : pending_usage_)
        if (pending_backend == backend)
            slot = &usage;
    if (slot == nullptr) {
        pending_usage_.emplace_back(backend, LlmUsage{});
        slot = &pending_usage_.back().second;
    }
    slot->add(resp);
}

void
EngineSession::flush()
{
    for (auto &group : open_) {
        group.batched_s = jointCompletionTime(group);
        group.sim_time_s = now_s_;
        QueueAdmission admission;
        if (queue_ != nullptr) {
            // Closed loop: the group arrives at the backend's finite
            // queue at the phase's sim instant; whatever the scheduled
            // completion adds beyond the open-loop joint time is
            // charged to the episode alongside it. Groups are submitted
            // in open-order (backend-first-touch within the phase), and
            // the episode clock only moves forward, so the per-backend
            // arrival sequence — and with it the whole admission
            // schedule — is deterministic at any EBS_JOBS.
            admission = queue_->submit(group);
            group.queue_delay_s = admission.queue_delay_s;
        }
        pending_charge_s_ += group.batched_s + group.queue_delay_s;
        if (trace_ != nullptr) {
            const std::string backend = service_ != nullptr
                                            ? service_->backendName(
                                                  group.backend)
                                            : std::string("detached");
            trace_->instant(
                "llm", "batch " + backend, now_s_, -1,
                {{"requests", static_cast<double>(group.requests)},
                 {"kv_tokens", group.kv_tokens},
                 {"baseline_s", group.baseline_s},
                 {"batched_s", group.batched_s},
                 {"step", static_cast<double>(group.step)}});
            if (queue_ != nullptr) {
                const BackendQueue *bq = queue_->queue(group.backend);
                const QueueStats &qs = bq->stats();
                trace_->instant(
                    "queue", "admit " + backend, now_s_, -1,
                    {{"admit_s", admission.admit_s},
                     {"complete_s", admission.complete_s},
                     {"queue_delay_s", admission.queue_delay_s},
                     {"peak_running",
                      static_cast<double>(qs.peak_running)},
                     {"occupancy", qs.occupancy(bq->config().slots)}});
            }
        }
        log_.push_back(group);
    }
    if (service_ != nullptr && (!pending_usage_.empty() || !open_.empty()))
        service_->accountFlush(pending_usage_, open_);
    pending_usage_.clear();
    open_.clear();
    ++phase_;
}

double
EngineSession::phaseBaseline() const
{
    double baseline = 0.0;
    for (const auto &group : open_)
        baseline += group.baseline_s;
    return baseline;
}

double
EngineSession::takePendingCharge()
{
    const double charge = pending_charge_s_;
    pending_charge_s_ = 0.0;
    return charge;
}

void
EngineSession::replay(const DeferredNotes &notes)
{
    for (const auto &entry : notes.entries) {
        noteUsage(entry.backend, entry.resp);
        if (batching())
            note(entry.backend, *entry.profile, entry.resp);
    }
}

std::vector<BatchRecord>
EngineSession::takeLog()
{
    flush();
    std::vector<BatchRecord> out = std::move(log_);
    log_.clear();
    return out;
}

// --------------------------------------------------------------- service

LlmEngineService::LlmEngineService(ServiceConfig config) : config_(config)
{
    if (config_.queue.enabled) {
        // The queue serves assembled batch groups; without batching
        // there is nothing to submit and the "closed loop" would be
        // silently open. Reject the inconsistent combination loudly.
        if (!config_.batching)
            throw std::invalid_argument(
                "ServiceConfig: queue.enabled requires batching");
        if (!(config_.queue.iteration_s > 0.0))
            throw std::invalid_argument(
                "ServiceConfig: queue.iteration_s must be > 0");
    }
}

BackendId
LlmEngineService::backendFor(const ModelProfile &profile)
{
    const BackendId id = backendIdentity(profile);
    core::MutexLock lock(mu_);
    auto [it, inserted] = backends_.try_emplace(id);
    if (inserted) {
        it->second.name = profile.name;
        it->second.profile = profile;
    } else {
        assert(sameBackend(it->second.profile, profile) &&
               "64-bit backend identity collision");
    }
    return id;
}

int
LlmEngineService::backendCount() const
{
    core::MutexLock lock(mu_);
    return static_cast<int>(backends_.size());
}

std::string
LlmEngineService::backendName(BackendId backend) const
{
    core::MutexLock lock(mu_);
    const auto it = backends_.find(backend);
    assert(it != backends_.end());
    return it != backends_.end() ? it->second.name : std::string();
}

ModelProfile
LlmEngineService::backendProfile(BackendId backend) const
{
    core::MutexLock lock(mu_);
    const auto it = backends_.find(backend);
    assert(it != backends_.end());
    return it != backends_.end() ? it->second.profile : ModelProfile{};
}

LlmUsage
LlmEngineService::backendUsage(BackendId backend) const
{
    core::MutexLock lock(mu_);
    const auto it = backends_.find(backend);
    assert(it != backends_.end());
    return it != backends_.end() ? it->second.usage : LlmUsage{};
}

LlmUsage
LlmEngineService::totalUsage() const
{
    core::MutexLock lock(mu_);
    LlmUsage total;
    for (const auto &[id, backend] : backends_)
        total += backend.usage;
    return total;
}

BatchStats
LlmEngineService::stats() const
{
    core::MutexLock lock(mu_);
    return stats_;
}

void
LlmEngineService::reset()
{
    core::MutexLock lock(mu_);
    for (auto &[id, backend] : backends_)
        backend.usage = LlmUsage{};
    stats_ = BatchStats{};
}

void
LlmEngineService::accountFlush(
    std::span<const std::pair<BackendId, LlmUsage>> usage,
    std::span<const BatchRecord> batches)
{
    core::MutexLock lock(mu_);
    for (const auto &[backend, staged] : usage) {
        const auto it = backends_.find(backend);
        assert(it != backends_.end());
        if (it != backends_.end())
            it->second.usage += staged;
    }
    for (const auto &record : batches)
        stats_.add(record);
}

LlmEngineService &
LlmEngineService::shared()
{
    static LlmEngineService instance;
    return instance;
}

// ----------------------------------------------------------------- folds

BatchStats
foldBatchLog(std::span<const BatchRecord> log)
{
    BatchStats stats;
    for (const auto &record : log)
        stats.add(record);
    return stats;
}

BatchStats
foldCrossEpisodeBatches(std::span<const std::vector<BatchRecord>> logs)
{
    return foldCrossEpisodeBatches(logs,
                                   std::numeric_limits<double>::infinity());
}

BatchStats
foldCrossEpisodeBatches(std::span<const std::vector<BatchRecord>> logs,
                        double window_s)
{
    // Merge per-episode batches keyed by (step, phase, backend): the same
    // pipeline stage of episodes advancing in lockstep shares one joint
    // inference. std::map keeps the fold order deterministic — backend
    // ids are stable profile hashes, so the key (and with it the float
    // summation order) never depends on registration order.
    //
    // The admission window makes the merge latency-aware: a record joins
    // an existing super-batch only when its arrival instant lies within
    // `window_s` of the arrival that opened the group; otherwise it opens a new
    // super-batch under the same key. With an infinite window every key
    // collapses to one group — the lockstep fold — and any finite window
    // is a partition refinement of it, so windowed savings never exceed
    // the lockstep estimate (summed subgroup joint times >= the merged
    // joint time, clamp included).
    struct Cluster
    {
        BatchRecord super;
        double anchor_s = 0.0; ///< arrival instant that opened the group
    };
    std::map<std::tuple<int, int, BackendId>, std::vector<Cluster>> merged;
    for (const auto &log : logs) {
        for (const auto &record : log) {
            const auto key = std::make_tuple(record.step, record.phase,
                                             record.backend);
            auto &clusters = merged[key];
            Cluster *home = nullptr;
            for (auto &cluster : clusters) {
                if (std::abs(record.sim_time_s - cluster.anchor_s) <=
                    window_s) {
                    home = &cluster;
                    break;
                }
            }
            if (home == nullptr) {
                clusters.push_back({record, record.sim_time_s});
                continue;
            }
            BatchRecord &super = home->super;
            super.requests += record.requests;
            super.remote = super.remote || record.remote;
            super.rtt_mean_s = std::max(super.rtt_mean_s, record.rtt_mean_s);
            super.prefill_s += record.prefill_s;
            super.max_decode_s =
                std::max(super.max_decode_s, record.max_decode_s);
            super.baseline_s += record.baseline_s;
            super.kv_tokens += record.kv_tokens;
            super.queue_delay_s += record.queue_delay_s;
        }
    }

    BatchStats stats;
    for (auto &[key, clusters] : merged) {
        (void)key;
        for (auto &cluster : clusters) {
            cluster.super.batched_s = jointCompletionTime(cluster.super);
            stats.add(cluster.super);
        }
    }
    return stats;
}

} // namespace ebs::llm
