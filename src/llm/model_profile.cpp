#include "llm/model_profile.h"

#include <algorithm>
#include <cmath>

namespace ebs::llm {

double
ModelProfile::dilutionFactor(int tokens_in) const
{
    const double excess =
        std::max(0.0, static_cast<double>(tokens_in) - dilution_onset_tokens);
    // Smooth hyperbolic falloff: 1 at onset, 1/2 after dilution_scale
    // excess tokens, approaching 0 asymptotically.
    return 1.0 / (1.0 + excess / dilution_scale_tokens);
}

ModelProfile
ModelProfile::gpt4Api()
{
    ModelProfile p;
    p.name = "GPT-4 (API)";
    p.remote = true;
    p.api_rtt_mean_s = 0.9;
    p.api_rtt_cv = 0.35;
    p.prefill_tok_per_s = 5000;
    p.decode_tok_per_s = 22;
    p.context_limit = 32768;
    p.plan_quality = 0.90;
    p.comm_quality = 0.88;
    p.reflect_quality = 0.90;
    p.format_compliance = 0.99;
    p.dilution_onset_tokens = 6000;
    p.dilution_scale_tokens = 24000;
    return p;
}

ModelProfile
ModelProfile::llama3_8bLocal()
{
    ModelProfile p;
    p.name = "Llama-3-8B (local)";
    p.remote = false;
    p.prefill_tok_per_s = 2800;
    p.decode_tok_per_s = 48;
    p.context_limit = 8192;
    p.plan_quality = 0.60;
    p.comm_quality = 0.58;
    p.reflect_quality = 0.62;
    p.format_compliance = 0.88;
    p.dilution_onset_tokens = 2000;
    p.dilution_scale_tokens = 6000;
    return p;
}

ModelProfile
ModelProfile::llama13bLocal()
{
    ModelProfile p;
    p.name = "Llama-13B (local)";
    p.remote = false;
    p.prefill_tok_per_s = 1800;
    p.decode_tok_per_s = 30;
    p.context_limit = 4096;
    p.plan_quality = 0.68;
    p.comm_quality = 0.64;
    p.reflect_quality = 0.68;
    p.format_compliance = 0.90;
    p.dilution_onset_tokens = 2000;
    p.dilution_scale_tokens = 6000;
    return p;
}

ModelProfile
ModelProfile::llama70bLocal()
{
    ModelProfile p;
    p.name = "Llama-70B (local)";
    p.remote = false;
    p.prefill_tok_per_s = 700;
    p.decode_tok_per_s = 12;
    p.context_limit = 8192;
    p.plan_quality = 0.82;
    p.comm_quality = 0.80;
    p.reflect_quality = 0.82;
    p.format_compliance = 0.96;
    p.dilution_onset_tokens = 3500;
    p.dilution_scale_tokens = 12000;
    return p;
}

ModelProfile
ModelProfile::llava7bLocal()
{
    ModelProfile p = llama3_8bLocal();
    p.name = "LLaVA-7B (local)";
    p.prefill_tok_per_s = 2200; // vision encoder adds prompt-side cost
    p.decode_tok_per_s = 40;
    p.plan_quality = 0.58;
    p.comm_quality = 0.56;
    p.reflect_quality = 0.64;
    return p;
}

ModelProfile
ModelProfile::llama7bLocal()
{
    ModelProfile p = llama3_8bLocal();
    p.name = "Llama-7B (local)";
    p.prefill_tok_per_s = 3000;
    p.decode_tok_per_s = 52;
    p.plan_quality = 0.56;
    p.comm_quality = 0.52;
    p.reflect_quality = 0.58;
    p.format_compliance = 0.85;
    return p;
}

ModelProfile
ModelProfile::loraTuned(const ModelProfile &base, double gain)
{
    const double g = std::clamp(gain, 0.0, 1.0);
    ModelProfile p = base;
    p.name = base.name + " [LoRA-tuned]";
    p.plan_quality += g * (1.0 - base.plan_quality);
    p.comm_quality += g * (1.0 - base.comm_quality);
    p.reflect_quality += g * (1.0 - base.reflect_quality);
    p.format_compliance += 0.8 * g * (1.0 - base.format_compliance);
    return p;
}

ModelProfile
ModelProfile::quantized(const ModelProfile &base)
{
    ModelProfile p = base;
    p.name = base.name + " [AWQ-4bit]";
    p.prefill_tok_per_s *= 1.4;
    p.decode_tok_per_s *= 1.8;
    p.plan_quality *= 0.97;
    p.comm_quality *= 0.97;
    p.reflect_quality *= 0.97;
    p.format_compliance *= 0.99;
    return p;
}

} // namespace ebs::llm
