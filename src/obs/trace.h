#ifndef EBS_OBS_TRACE_H
#define EBS_OBS_TRACE_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/sync.h"
#include "core/thread_annotations.h"

namespace ebs::obs {

/**
 * Process-wide dual-clock tracing (spans + instants) for the episode
 * pipeline, exported as Chrome trace-event JSON (Perfetto-loadable).
 *
 * Two timelines, two very different contracts:
 *
 *  - **Sim-time events** (coordinator phases, step brackets, LLM batch
 *    flushes, queue admissions, speculative commit outcomes) are stamped
 *    from the episode's SimClock and recorded into an episode-confined
 *    EpisodeTraceLog on the episode's own thread, in the episode's own
 *    deterministic order. Logs are adopted into the shared Tracer after
 *    the episode finishes and merged in (episode id, sequence) order, so
 *    the sim-time span stream is **byte-identical at any EBS_JOBS** —
 *    the same contract every stdout metric honors.
 *
 *  - **Host-time events** (FleetScheduler task begin/end, and the host
 *    projection of phase spans) are diagnostic only. Scheduler tasks are
 *    recorded into per-thread buffers — registered once per thread
 *    against the immortal shared Tracer, appended to without any lock —
 *    and read only post-join. Host stamps always originate from the one
 *    sanctioned host-clock site, stats::hostNow(); nothing in src/obs/
 *    reads a clock itself (the ebs_lint host-clock rule pins this).
 *
 * Tracing is **off by default**: `EBS_TRACE` unset/0/false/off/no means
 * every emission point reduces to one predicted branch (a null trace
 * pointer on the episode path, one relaxed atomic load on the scheduler
 * path) and no memory is allocated — the zero-hot-path-cost contract.
 * Tracing never touches bench stdout and never feeds a paper metric.
 */

/** True when `EBS_TRACE` requests tracing (any value other than empty,
 * "0", "false", "off", "no" — the same falsy parse as EBS_BENCH_SMOKE).
 * Memoized at first call; setTraceEnabled() overrides it for tests. */
bool traceEnabled();

/** Test hook: force tracing on/off for the current process. */
void setTraceEnabled(bool on);

/** One recorded event. `ph` follows the Chrome trace-event phases this
 * subsystem emits: 'B'/'E' nested spans, 'X' complete spans, 'i'
 * instants. `host_s` < 0 means the event has no host-time projection. */
struct TraceEvent
{
    char ph = 'i';
    const char *cat = ""; ///< static string (track grouping)
    std::string name;
    double sim_s = 0.0;     ///< sim-clock timestamp (begin for 'X')
    double sim_dur_s = 0.0; ///< 'X' only
    double host_s = -1.0;   ///< host-clock timestamp via stats::hostNow()
    int agent = -1;         ///< agent index; -1 = episode-level
    std::uint64_t seq = 0;  ///< per-episode recording sequence
    /** Numeric payload (token counts, delays, occupancy). Keys are
     * static strings; values print with full precision in simStream(). */
    std::vector<std::pair<const char *, double>> args;
};

/**
 * Span/instant log of one episode. Single-threaded by design: every
 * sim-relevant emission point of an episode (phase brackets, batch
 * flushes, commit outcomes) runs on the episode's own task thread, so
 * the log needs no lock and its sequence numbers are deterministic.
 * Adopt into Tracer::shared() once the episode completes.
 */
class EpisodeTraceLog
{
  public:
    explicit EpisodeTraceLog(std::uint64_t episode_id)
        : episode_id_(episode_id)
    {
    }

    std::uint64_t episodeId() const { return episode_id_; }

    /** Open a nested span. `host_s` < 0 records a sim-only span; the
     * matching endSpan() must then also omit its host stamp so the host
     * projection stays begin/end-balanced. */
    void beginSpan(const char *cat, std::string name, double sim_s,
                   double host_s = -1.0, int agent = -1);

    /** Close the innermost open span (no-op when none is open). */
    void endSpan(double sim_s, double host_s = -1.0);

    /** Record an instant event. */
    void instant(const char *cat, std::string name, double sim_s,
                 int agent = -1,
                 std::vector<std::pair<const char *, double>> args = {});

    /** Close every still-open span at the given instants — the episode
     * wrapper calls this instead of a bare endSpan() so the exported
     * stream is begin/end-balanced even on abnormal exits. */
    void closeOpenSpans(double sim_s, double host_s = -1.0);

    int openSpans() const { return static_cast<int>(open_.size()); }
    const std::vector<TraceEvent> &events() const { return events_; }

  private:
    std::uint64_t episode_id_;
    std::uint64_t next_seq_ = 0;
    /** Open-span stack: whether each open B carried a host stamp. */
    std::vector<bool> open_;
    std::vector<TraceEvent> events_;
};

/**
 * The process-wide trace sink. Collects adopted EpisodeTraceLogs (under
 * a mutex, once per episode) and lock-free per-thread buffers of
 * scheduler task spans, and merges both into one Chrome trace-event
 * JSON file — or, for the determinism test, into a text dump of the
 * sim-time events alone, sorted by (episode id, sequence).
 *
 * Reading (simStream / writeChromeJson / clear) requires quiescence: no
 * episode in flight, scheduler workers idle. Every caller satisfies
 * this structurally — the atexit exporter runs after main, tests read
 * after EpisodeRunner::run() returned (task completion is published
 * through the scheduler mutex, so the buffers are safely visible).
 */
class Tracer
{
  public:
    /** Tracers are also directly constructible: run_all's in-process
     * fleet gives every suite its own instance so episode-id streams and
     * trace tracks stay per-suite (matching what a spawned child's
     * process-wide tracer produced). Only the shared() instance may
     * receive hostTask() — the scheduler's emission point — because the
     * per-thread buffer slot is process-global (see threadBuffer()). */
    Tracer() = default;

    /** The process-wide instance. First touch with tracing enabled and
     * `EBS_TRACE_OUT` set registers an atexit exporter that writes the
     * Chrome JSON to that path (see writeChromeJson for the env knobs). */
    static Tracer &shared();

    /**
     * Deterministic episode-id base for one EpisodeRunner batch:
     * (batch ordinal << 32), ordinals counted per-process from 1.
     * Batches are submitted serially (bench main threads), so ids are
     * reproducible run to run; clear() resets the ordinal so tests can
     * compare streams across runner configurations.
     */
    std::uint64_t nextBatchBase() EBS_EXCLUDES(mu_);

    /** Episode id for a direct runEpisode() call outside a runner batch
     * (top bit set, counted separately). Deterministic only when such
     * calls are serial — the byte-identity guarantee covers runner
     * batches, which always use nextBatchBase(). */
    std::uint64_t nextSoloId() EBS_EXCLUDES(mu_);

    /** Take ownership of one finished episode's log. */
    void adopt(EpisodeTraceLog &&log) EBS_EXCLUDES(mu_);

    /** Record one scheduler task span (host timeline) into the calling
     * thread's buffer. Both stamps are absolute stats::hostNow() values. */
    void hostTask(const char *cat, std::string name, double begin_s,
                  double end_s, int worker) EBS_EXCLUDES(mu_);

    /**
     * Deterministic text dump of every **sim-time** event, sorted by
     * (episode id, sequence) — host stamps excluded by construction.
     * This is the byte-identity surface of the EBS_JOBS 1-vs-8 test.
     */
    std::string simStream() const EBS_EXCLUDES(mu_);

    /**
     * Write Chrome trace-event JSON: one event object per line between
     * a `{ "traceEvents": [` header and a `] }` footer (run_all merges
     * per-suite files line-wise). Three process tracks: `pid_base` =
     * sim-time episodes, +1 = host-time phase projection, +2 = host
     * scheduler tasks; `process_label` names them. Per-track timestamps
     * are emitted sorted, and begin/end events balance — the invariants
     * tools/trace_summarize --validate checks. Returns false on I/O
     * failure.
     */
    bool writeChromeJson(const std::string &path,
                         const std::string &process_label,
                         int pid_base = 1) const EBS_EXCLUDES(mu_);

    /**
     * The body lines of writeChromeJson() without the header/footer or
     * any file I/O: one Chrome trace-event JSON object per element, in
     * emission order. run_all's in-process fleet concatenates every
     * suite tracer's lines (distinct pid_base per suite) plus the shared
     * tracer's scheduler track into one merged file — the in-memory
     * replacement for stitching per-child trace files.
     */
    std::vector<std::string>
    chromeLines(const std::string &process_label,
                int pid_base = 1) const EBS_EXCLUDES(mu_);

    /** Drop every adopted log and buffered task span and reset the
     * episode-id counters (tests; requires quiescence). */
    void clear() EBS_EXCLUDES(mu_);

  private:
    struct HostTaskEvent
    {
        const char *cat = "";
        std::string name;
        double begin_s = 0.0;
        double end_s = 0.0;
        int worker = -1;
    };

    /** One thread's task-span buffer. Appended to only by its owning
     * thread (no lock — the "lock-free" half of the subsystem); read
     * only under quiescence. The registry slot is stable: buffers are
     * owned by the immortal shared Tracer and never reclaimed. */
    struct HostBuffer
    {
        std::vector<HostTaskEvent> events;
    };

    HostBuffer &threadBuffer() EBS_EXCLUDES(mu_);

    mutable core::Mutex mu_;
    std::vector<EpisodeTraceLog> episodes_ EBS_GUARDED_BY(mu_);
    std::vector<std::unique_ptr<HostBuffer>> buffers_ EBS_GUARDED_BY(mu_);
    std::uint64_t batch_ordinal_ EBS_GUARDED_BY(mu_) = 0;
    std::uint64_t solo_ordinal_ EBS_GUARDED_BY(mu_) = 0;
};

} // namespace ebs::obs

#endif // EBS_OBS_TRACE_H
