#include "obs/metrics.h"

#include <algorithm>

namespace ebs::obs {

void
MetricSet::add(const std::string &name, long long delta)
{
    counters_[name] += delta;
}

void
MetricSet::gaugeMax(const std::string &name, double value)
{
    auto [it, inserted] = gauges_.emplace(name, value);
    if (!inserted)
        it->second = std::max(it->second, value);
}

void
MetricSet::observe(const std::string &name, double value,
                   std::span<const double> upper_bounds)
{
    Histogram &hist = histograms_[name];
    if (hist.counts.empty()) {
        hist.bounds.assign(upper_bounds.begin(), upper_bounds.end());
        hist.counts.assign(hist.bounds.size() + 1, 0);
    }
    std::size_t bucket = hist.bounds.size(); // overflow by default
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
        if (value <= hist.bounds[i]) {
            bucket = i;
            break;
        }
    }
    ++hist.counts[bucket];
    ++hist.total;
    hist.sum += value;
}

void
MetricSet::merge(const MetricSet &other)
{
    for (const auto &[name, value] : other.counters_)
        counters_[name] += value;
    for (const auto &[name, value] : other.gauges_)
        gaugeMax(name, value);
    for (const auto &[name, theirs] : other.histograms_) {
        Histogram &hist = histograms_[name];
        if (hist.counts.empty()) {
            hist = theirs;
            continue;
        }
        if (hist.bounds == theirs.bounds) {
            for (std::size_t i = 0; i < hist.counts.size(); ++i)
                hist.counts[i] += theirs.counts[i];
        } else {
            hist.counts.back() += theirs.total;
        }
        hist.total += theirs.total;
        hist.sum += theirs.sum;
    }
}

long long
MetricSet::counter(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it != counters_.end() ? it->second : 0;
}

} // namespace ebs::obs
