#ifndef EBS_OBS_METRICS_H
#define EBS_OBS_METRICS_H

#include <map>
#include <span>
#include <string>
#include <vector>

namespace ebs::obs {

/**
 * Typed metrics registry of one episode (or one fold of episodes):
 * counters (summed on merge), gauges (max on merge), and fixed-bound
 * histograms. Deterministic by construction — std::map keys give a
 * stable iteration order, and every value is populated from episode
 * tallies that are themselves bit-identical at any EBS_JOBS — so a
 * MetricSet folds through runner::RunStats exactly like the existing
 * tallies: a pure post-join merge in submission order.
 *
 * This is bookkeeping, not tracing: it is always on (the per-episode
 * cost is a handful of map inserts at episode finish), never printed to
 * bench stdout, and carries no host-time values.
 */
class MetricSet
{
  public:
    struct Histogram
    {
        /** Upper bucket bounds (inclusive), fixed at first observe;
         * counts has bounds.size() + 1 slots (last = overflow). */
        std::vector<double> bounds;
        std::vector<long long> counts;
        long long total = 0;
        double sum = 0.0;
    };

    /** Add `delta` to a counter (created at zero on first touch). */
    void add(const std::string &name, long long delta = 1);

    /** Raise a gauge to at least `value` (max-merge semantics). */
    void gaugeMax(const std::string &name, double value);

    /**
     * Record one observation into a fixed-bound histogram. The first
     * observe of a name fixes its bounds; later observes must pass the
     * same bounds (call sites use shared constants per metric name).
     */
    void observe(const std::string &name, double value,
                 std::span<const double> upper_bounds);

    /** Fold another set in: counters add, gauges max, histograms add
     * bucket-wise. A histogram whose bounds disagree (never happens for
     * in-tree metric names, which use one shared constant each) folds
     * its counts into the overflow bucket so no observation is lost. */
    void merge(const MetricSet &other);

    bool empty() const
    {
        return counters_.empty() && gauges_.empty() && histograms_.empty();
    }

    long long counter(const std::string &name) const;

    const std::map<std::string, long long> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, double> &gauges() const { return gauges_; }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

  private:
    std::map<std::string, long long> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace ebs::obs

#endif // EBS_OBS_METRICS_H
