#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace ebs::obs {

namespace {

/** Same falsy parse as the benches' EBS_BENCH_SMOKE. */
bool
envTruthy(const char *value)
{
    if (value == nullptr)
        return false;
    const std::string v(value);
    return !(v.empty() || v == "0" || v == "false" || v == "off" ||
             v == "no");
}

std::atomic<bool> &
enabledFlag()
{
    // getenv here is init-once under the static guard; nothing in the
    // tree calls setenv concurrently (same stance as EBS_JOBS parsing).
    static std::atomic<bool> flag{
        envTruthy(std::getenv("EBS_TRACE"))}; // NOLINT(concurrency-mt-unsafe)
    return flag;
}

void
appendf(std::string &out, const char *fmt, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, value);
    out += buf;
}

void
appendJsonString(std::string &out, const std::string &text)
{
    out += '"';
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/** Human-readable track label of one episode id (see nextBatchBase). */
std::string
episodeLabel(std::uint64_t id)
{
    constexpr std::uint64_t kSoloBit = 1ULL << 63;
    if ((id & kSoloBit) != 0)
        return "solo#" + std::to_string(id & ~kSoloBit);
    return "b" + std::to_string(id >> 32) + ".e" +
           std::to_string(id & 0xffffffffULL);
}

} // namespace

bool
traceEnabled()
{
    return enabledFlag().load(std::memory_order_relaxed);
}

void
setTraceEnabled(bool on)
{
    enabledFlag().store(on, std::memory_order_relaxed);
}

void
EpisodeTraceLog::beginSpan(const char *cat, std::string name, double sim_s,
                           double host_s, int agent)
{
    TraceEvent event;
    event.ph = 'B';
    event.cat = cat;
    event.name = std::move(name);
    event.sim_s = sim_s;
    event.host_s = host_s;
    event.agent = agent;
    event.seq = next_seq_++;
    events_.push_back(std::move(event));
    open_.push_back(host_s >= 0.0);
}

void
EpisodeTraceLog::endSpan(double sim_s, double host_s)
{
    if (open_.empty())
        return;
    TraceEvent event;
    event.ph = 'E';
    event.sim_s = sim_s;
    // Keep the host projection balanced: an E only carries a host stamp
    // when its matching B did.
    event.host_s = open_.back() ? host_s : -1.0;
    event.seq = next_seq_++;
    events_.push_back(std::move(event));
    open_.pop_back();
}

void
EpisodeTraceLog::instant(const char *cat, std::string name, double sim_s,
                         int agent,
                         std::vector<std::pair<const char *, double>> args)
{
    TraceEvent event;
    event.ph = 'i';
    event.cat = cat;
    event.name = std::move(name);
    event.sim_s = sim_s;
    event.agent = agent;
    event.seq = next_seq_++;
    event.args = std::move(args);
    events_.push_back(std::move(event));
}

void
EpisodeTraceLog::closeOpenSpans(double sim_s, double host_s)
{
    while (!open_.empty())
        endSpan(sim_s, host_s);
}

Tracer &
Tracer::shared()
{
    static Tracer instance;
    // Registered *after* the instance's construction completed, so the
    // atexit handler runs before the (trivial) destructor would.
    static const bool exporter_registered = [] {
        // NOLINTNEXTLINE(concurrency-mt-unsafe)
        const char *out = std::getenv("EBS_TRACE_OUT");
        if (!traceEnabled() || out == nullptr || out[0] == '\0')
            return false;
        std::atexit([] {
            // NOLINTNEXTLINE(concurrency-mt-unsafe)
            const char *path = std::getenv("EBS_TRACE_OUT");
            if (path == nullptr || path[0] == '\0')
                return;
            // NOLINTNEXTLINE(concurrency-mt-unsafe)
            const char *name = std::getenv("EBS_TRACE_NAME");
            // NOLINTNEXTLINE(concurrency-mt-unsafe)
            const char *base = std::getenv("EBS_TRACE_PID_BASE");
            int pid_base = 1;
            if (base != nullptr) {
                const long parsed = std::strtol(base, nullptr, 10);
                if (parsed > 0 &&
                    parsed < std::numeric_limits<int>::max() - 2)
                    pid_base = static_cast<int>(parsed);
            }
            Tracer::shared().writeChromeJson(
                path, name != nullptr && name[0] != '\0' ? name : "ebs",
                pid_base);
        });
        return true;
    }();
    (void)exporter_registered;
    return instance;
}

std::uint64_t
Tracer::nextBatchBase()
{
    core::MutexLock lock(mu_);
    return ++batch_ordinal_ << 32;
}

std::uint64_t
Tracer::nextSoloId()
{
    core::MutexLock lock(mu_);
    return (1ULL << 63) | ++solo_ordinal_;
}

void
Tracer::adopt(EpisodeTraceLog &&log)
{
    core::MutexLock lock(mu_);
    episodes_.push_back(std::move(log));
}

Tracer::HostBuffer &
Tracer::threadBuffer()
{
    // The calling thread's buffer slot on the shared Tracer. hostTask
    // is only ever invoked on Tracer::shared() (the scheduler's
    // emission point), so a single thread_local slot is unambiguous;
    // the buffer is owned by the immortal tracer, so the pointer never
    // dangles even across scheduler rebuilds.
    static thread_local HostBuffer *slot = nullptr;
    if (slot == nullptr) {
        core::MutexLock lock(mu_);
        buffers_.push_back(std::make_unique<HostBuffer>());
        slot = buffers_.back().get();
    }
    return *slot;
}

void
Tracer::hostTask(const char *cat, std::string name, double begin_s,
                 double end_s, int worker)
{
    HostTaskEvent event;
    event.cat = cat;
    event.name = std::move(name);
    event.begin_s = begin_s;
    event.end_s = end_s;
    event.worker = worker;
    threadBuffer().events.push_back(std::move(event));
}

std::string
Tracer::simStream() const
{
    core::MutexLock lock(mu_);
    std::vector<const EpisodeTraceLog *> logs;
    logs.reserve(episodes_.size());
    for (const auto &log : episodes_)
        logs.push_back(&log);
    // Adoption order depends on episode completion order (thread
    // timing); the (episode id, sequence) sort restores the canonical
    // deterministic order — ids come from the serial submission point.
    std::sort(logs.begin(), logs.end(),
              [](const EpisodeTraceLog *a, const EpisodeTraceLog *b) {
                  return a->episodeId() < b->episodeId();
              });
    std::string out;
    for (const EpisodeTraceLog *log : logs) {
        for (const TraceEvent &event : log->events()) {
            out += "ep=" + std::to_string(log->episodeId());
            out += " seq=" + std::to_string(event.seq);
            out += " ph=";
            out += event.ph;
            out += " cat=";
            out += event.cat;
            out += " name=" + event.name;
            out += " agent=" + std::to_string(event.agent);
            appendf(out, " t=%.17g", event.sim_s);
            if (event.ph == 'X')
                appendf(out, " dur=%.17g", event.sim_dur_s);
            for (const auto &[key, value] : event.args) {
                out += ' ';
                out += key;
                appendf(out, "=%.17g", value);
            }
            out += '\n';
        }
    }
    return out;
}

std::vector<std::string>
Tracer::chromeLines(const std::string &process_label, int pid_base) const
{
    core::MutexLock lock(mu_);
    const int sim_pid = pid_base;
    const int host_pid = pid_base + 1;
    const int sched_pid = pid_base + 2;

    std::vector<const EpisodeTraceLog *> logs;
    logs.reserve(episodes_.size());
    for (const auto &log : episodes_)
        logs.push_back(&log);
    std::sort(logs.begin(), logs.end(),
              [](const EpisodeTraceLog *a, const EpisodeTraceLog *b) {
                  return a->episodeId() < b->episodeId();
              });

    // Host timestamps are absolute stats::hostNow() readings; rebase to
    // the earliest one so the host tracks start near t=0 in the viewer.
    double epoch = std::numeric_limits<double>::infinity();
    for (const EpisodeTraceLog *log : logs)
        for (const TraceEvent &event : log->events())
            if (event.host_s >= 0.0)
                epoch = std::min(epoch, event.host_s);
    for (const auto &buffer : buffers_)
        for (const HostTaskEvent &event : buffer->events)
            epoch = std::min(epoch, event.begin_s);
    if (epoch == std::numeric_limits<double>::infinity())
        epoch = 0.0;

    std::vector<std::string> lines;
    auto meta = [&](int pid, int tid, const char *kind,
                    const std::string &name) {
        std::string line = "{\"ph\":\"M\",\"pid\":" + std::to_string(pid);
        if (tid >= 0)
            line += ",\"tid\":" + std::to_string(tid);
        line += ",\"name\":\"";
        line += kind;
        line += "\",\"args\":{\"name\":";
        appendJsonString(line, name);
        line += "}}";
        lines.push_back(std::move(line));
    };
    auto argsTail = [](const TraceEvent &event) {
        std::string tail;
        if (event.agent >= 0 || !event.args.empty()) {
            tail += ",\"args\":{";
            bool first = true;
            if (event.agent >= 0) {
                tail += "\"agent\":" + std::to_string(event.agent);
                first = false;
            }
            for (const auto &[key, value] : event.args) {
                if (!first)
                    tail += ',';
                first = false;
                tail += '"';
                tail += key;
                tail += "\":";
                appendf(tail, "%.17g", value);
            }
            tail += '}';
        }
        return tail;
    };
    auto spanLine = [&](int pid, int tid, const TraceEvent &event,
                        double ts_s) {
        std::string line = "{\"ph\":\"";
        line += event.ph;
        line += "\"";
        if (event.ph == 'i')
            line += ",\"s\":\"t\"";
        line += ",\"pid\":" + std::to_string(pid);
        line += ",\"tid\":" + std::to_string(tid);
        appendf(line, ",\"ts\":%.3f", ts_s * 1e6);
        if (event.ph != 'E') {
            line += ",\"cat\":\"";
            line += event.cat;
            line += "\",\"name\":";
            appendJsonString(line, event.name);
            line += argsTail(event);
        }
        line += '}';
        lines.push_back(std::move(line));
    };

    bool named_processes = false;
    for (std::size_t t = 0; t < logs.size(); ++t) {
        const EpisodeTraceLog &log = *logs[t];
        if (log.events().empty())
            continue;
        if (!named_processes) {
            meta(sim_pid, -1, "process_name", process_label + " (sim)");
            meta(host_pid, -1, "process_name",
                 process_label + " phases (host)");
            named_processes = true;
        }
        const int tid = static_cast<int>(t);
        const std::string track = "ep " + episodeLabel(log.episodeId());
        meta(sim_pid, tid, "thread_name", track);

        // Sim timeline: recording order is already nondecreasing in sim
        // time (clocks only move forward and instants stamp the current
        // clock); the stable sort is a guard for future emission points
        // and keeps (seq) order within equal timestamps.
        std::vector<const TraceEvent *> ordered;
        ordered.reserve(log.events().size());
        for (const TraceEvent &event : log.events())
            ordered.push_back(&event);
        std::stable_sort(ordered.begin(), ordered.end(),
                         [](const TraceEvent *a, const TraceEvent *b) {
                             return a->sim_s < b->sim_s;
                         });
        for (const TraceEvent *event : ordered)
            spanLine(sim_pid, tid, *event, event->sim_s);

        // Host projection: the dual-clock view of the same spans (only
        // events that carried a host stamp; B/E pairs agree by
        // construction, see EpisodeTraceLog::endSpan).
        std::vector<const TraceEvent *> host;
        for (const TraceEvent &event : log.events())
            if (event.host_s >= 0.0)
                host.push_back(&event);
        if (!host.empty()) {
            meta(host_pid, tid, "thread_name", track);
            std::stable_sort(host.begin(), host.end(),
                             [](const TraceEvent *a, const TraceEvent *b) {
                                 return a->host_s < b->host_s;
                             });
            for (const TraceEvent *event : host)
                spanLine(host_pid, tid, *event, event->host_s - epoch);
        }
    }

    bool named_sched = false;
    for (std::size_t t = 0; t < buffers_.size(); ++t) {
        if (buffers_[t]->events.empty())
            continue;
        if (!named_sched) {
            meta(sched_pid, -1, "process_name",
                 process_label + " scheduler (host)");
            named_sched = true;
        }
        const int tid = static_cast<int>(t);
        meta(sched_pid, tid, "thread_name",
             "pool thread " + std::to_string(t));
        // Nested help-execution records the outer task after its inner
        // tasks finish, so recording order is end-ordered; re-sort by
        // begin. Nesting stays proper (inner spans lie inside the outer
        // call frame on the same thread).
        std::vector<const HostTaskEvent *> ordered;
        ordered.reserve(buffers_[t]->events.size());
        for (const HostTaskEvent &event : buffers_[t]->events)
            ordered.push_back(&event);
        std::stable_sort(
            ordered.begin(), ordered.end(),
            [](const HostTaskEvent *a, const HostTaskEvent *b) {
                return a->begin_s < b->begin_s;
            });
        for (const HostTaskEvent *event : ordered) {
            std::string line = "{\"ph\":\"X\",\"pid\":" +
                               std::to_string(sched_pid) +
                               ",\"tid\":" + std::to_string(tid);
            appendf(line, ",\"ts\":%.3f", (event->begin_s - epoch) * 1e6);
            appendf(line, ",\"dur\":%.3f",
                    std::max(0.0, event->end_s - event->begin_s) * 1e6);
            line += ",\"cat\":\"";
            line += event->cat;
            line += "\",\"name\":";
            appendJsonString(line, event->name);
            line += ",\"args\":{\"worker\":" +
                    std::to_string(event->worker) + "}}";
            lines.push_back(std::move(line));
        }
    }

    return lines;
}

bool
Tracer::writeChromeJson(const std::string &path,
                        const std::string &process_label,
                        int pid_base) const
{
    const std::vector<std::string> lines =
        chromeLines(process_label, pid_base);

    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr)
        return false;
    bool ok = std::fputs("{ \"traceEvents\": [\n", file) >= 0;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (!ok)
            break;
        ok = std::fputs(lines[i].c_str(), file) >= 0;
        if (ok && i + 1 < lines.size())
            ok = std::fputc(',', file) != EOF;
        if (ok)
            ok = std::fputc('\n', file) != EOF;
    }
    if (ok)
        ok = std::fputs("] }\n", file) >= 0;
    return std::fclose(file) == 0 && ok;
}

void
Tracer::clear()
{
    core::MutexLock lock(mu_);
    episodes_.clear();
    for (auto &buffer : buffers_)
        buffer->events.clear();
    batch_ordinal_ = 0;
    solo_ordinal_ = 0;
}

} // namespace ebs::obs
