#ifndef EBS_ENV_ENV_H
#define EBS_ENV_ENV_H

#include <memory>
#include <string>
#include <vector>

#include "env/action.h"
#include "env/observation.h"
#include "env/subgoal.h"
#include "env/task.h"
#include "env/world.h"

namespace ebs::env {

/**
 * Base class for embodied environments.
 *
 * An environment owns the ground-truth world and the task instance, applies
 * primitives (spatial ops via World, domain ops via applyDomain), produces
 * partial egocentric observations, and exposes a *task oracle*: the set of
 * subgoals that would advance the task right now. The oracle is what lets
 * the LLM capability model act mechanically — a "good" planning call picks a
 * useful subgoal the agent knows about; a bad one picks a merely-valid or
 * invalid subgoal, and the consequences play out in the world for real.
 */
class Environment
{
  public:
    virtual ~Environment() = default;

    /** Short domain name ("transport", "kitchen", ...). */
    virtual std::string domainName() const = 0;

    /**
     * The world this call should act on. Normally the live ground-truth
     * world; during a speculative execute turn (a spec::SpeculationScope
     * is active on this thread for this environment) it resolves to that
     * turn's private snapshot, so controller/agent code is oblivious to
     * whether it runs speculatively.
     */
    World &world();
    const World &world() const;

    /**
     * Whether execute() turns of this environment may run speculatively
     * at all. Environments whose motion planning consumes order-dependent
     * mutable state (ManipulationEnv's shared RRT stream) must opt out;
     * their execute phase stays serial.
     */
    virtual bool speculativeExecuteSafe() const { return true; }

    /**
     * Whether this environment's domain primitives (Chop/Cook/...) are
     * safe under speculation, i.e. applyDomain routes every mutation
     * through world() accessors and touches no env-local state. The base
     * default is conservative (false): a domain primitive during a
     * speculative turn then aborts the turn and the agent re-executes
     * serially. Environments adding env-local domain state (inventories,
     * lift votes) must keep — or restore — the false override.
     */
    virtual bool domainOpsSpeculationSafe() const { return false; }

    /** The task instance; must have been set by the concrete environment. */
    const Task &task() const;

    /** Partial observation for one agent (default: current-room view). */
    virtual Observation observe(int agent_id, int step) const;

    /** Hook called at the start of each global step (clears lift votes...). */
    virtual void beginStep() {}

    /** Apply one primitive for an agent. */
    ActionResult applyPrimitive(int agent_id, const Primitive &prim);

    /**
     * Oracle: subgoals that advance the task for this agent right now,
     * computed from ground truth. Empty when the task is finished or the
     * agent cannot contribute.
     */
    virtual std::vector<Subgoal> usefulSubgoals(int agent_id) const = 0;

    /**
     * All subgoals the agent could validly attempt right now, including
     * wasteful ones (used to sample suboptimal plans).
     */
    virtual std::vector<Subgoal> validSubgoals(int agent_id) const = 0;

    /**
     * Low-level motion cost from `from` adjacent-to/onto `to`, in grid
     * steps; fills `path` with the cell sequence when non-null. Returns a
     * negative value when unreachable. Implemented by concrete environments
     * (grid A* or continuous RRT).
     */
    virtual double motionCost(const Vec2i &from, const Vec2i &to,
                              std::vector<Vec2i> *path) const = 0;

    /**
     * Size of the currently-valid decision space for an agent; drives the
     * joint-reasoning complexity penalty in the LLM capability model.
     */
    virtual int actionSpaceSize(int agent_id) const;

    /**
     * A representative walkable cell of a room (used as the Explore
     * navigation target). Returns {-1,-1} when the room has no free cell.
     */
    env::Vec2i roomAnchor(int room) const;

  protected:
    /** Construct with the world grid; the task is installed by the concrete
     * environment once the world is populated (object ids are then known). */
    explicit Environment(GridMap grid);

    /** Install the task instance (non-null, once). */
    void setTask(std::unique_ptr<Task> task);

    /** Apply a domain primitive (Chop/Cook/Craft/Mine/Lift). */
    virtual ActionResult applyDomain(int agent_id, const Primitive &prim) = 0;

    World world_;
    std::unique_ptr<Task> task_;
};

} // namespace ebs::env

#endif // EBS_ENV_ENV_H
