#include "env/action.h"

namespace ebs::env {

const char *
primOpName(PrimOp op)
{
    switch (op) {
      case PrimOp::MoveStep:
        return "MoveStep";
      case PrimOp::Pick:
        return "Pick";
      case PrimOp::Place:
        return "Place";
      case PrimOp::PutIn:
        return "PutIn";
      case PrimOp::TakeOut:
        return "TakeOut";
      case PrimOp::Open:
        return "Open";
      case PrimOp::Close:
        return "Close";
      case PrimOp::Chop:
        return "Chop";
      case PrimOp::Cook:
        return "Cook";
      case PrimOp::Craft:
        return "Craft";
      case PrimOp::Mine:
        return "Mine";
      case PrimOp::Lift:
        return "Lift";
      case PrimOp::Wait:
        return "Wait";
    }
    return "?";
}

std::string
Primitive::describe() const
{
    std::string out = primOpName(op);
    out += '(';
    if (target != kNoObject)
        out += "obj " + std::to_string(target);
    if (op == PrimOp::MoveStep || op == PrimOp::Place) {
        if (target != kNoObject)
            out += ", ";
        out += '(';
        out += std::to_string(dest.x);
        out += ',';
        out += std::to_string(dest.y);
        out += ')';
    }
    out += ')';
    return out;
}

} // namespace ebs::env
