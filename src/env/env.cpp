#include "env/env.h"

#include <cassert>

namespace ebs::env {

const char *
difficultyName(Difficulty d)
{
    switch (d) {
      case Difficulty::Easy:
        return "easy";
      case Difficulty::Medium:
        return "medium";
      case Difficulty::Hard:
        return "hard";
    }
    return "?";
}

Environment::Environment(GridMap grid)
    : world_(std::move(grid))
{
}

World &
Environment::world()
{
    if (World *snapshot = spec::activeSnapshot(this))
        return *snapshot;
    return world_;
}

const World &
Environment::world() const
{
    if (World *snapshot = spec::activeSnapshot(this))
        return *snapshot;
    return world_;
}

void
Environment::setTask(std::unique_ptr<Task> task)
{
    assert(task != nullptr);
    assert(task_ == nullptr && "task installed twice");
    task_ = std::move(task);
}

const Task &
Environment::task() const
{
    assert(task_ != nullptr && "environment has no task installed");
    return *task_;
}

Observation
Environment::observe(int agent_id, int step) const
{
    const AgentBody &body = world_.agent(agent_id);
    Observation obs;
    obs.agent_id = agent_id;
    obs.step = step;
    obs.self_pos = body.pos;
    obs.room = world_.grid().room(body.pos);
    obs.carrying = body.carrying != kNoObject;
    obs.carried = body.carrying;

    for (const auto &obj : world_.objects()) {
        // Visible if in the agent's room; contents of closed containers
        // stay hidden (the agent must open them to look inside).
        const Vec2i pos = world_.effectivePos(obj.id);
        if (world_.grid().room(pos) != obs.room)
            continue;
        if (obj.inside != kNoObject) {
            const Object &container = world_.object(obj.inside);
            if (container.openable && !container.open)
                continue;
        }
        ObservedObject seen;
        seen.id = obj.id;
        seen.cls = obj.cls;
        seen.kind = obj.kind;
        seen.state = obj.state;
        seen.pos = pos;
        seen.room = obs.room;
        seen.inside = obj.inside;
        seen.held_by = obj.held_by;
        seen.openable = obj.openable;
        seen.open = obj.open;
        obs.objects.push_back(seen);
    }
    return obs;
}

ActionResult
Environment::applyPrimitive(int agent_id, const Primitive &prim)
{
    switch (prim.op) {
      case PrimOp::Chop:
      case PrimOp::Cook:
      case PrimOp::Craft:
      case PrimOp::Mine:
      case PrimOp::Lift: {
        World *snapshot = spec::activeSnapshot(this);
        if (snapshot != nullptr && !domainOpsSpeculationSafe()) {
            // Domain rules of this environment read/write env-local state
            // the snapshot cannot isolate — discard the speculative run;
            // the coordinator re-executes this agent serially, where
            // applyDomain acts on the live world as usual.
            if (spec::AccessLog *log = snapshot->accessLog())
                log->abort("domain primitive in non-speculable environment");
            return ActionResult::failure(
                "domain primitive deferred to serial re-execution");
        }
        return applyDomain(agent_id, prim);
      }
      default:
        return world().applySpatial(agent_id, prim);
    }
}

int
Environment::actionSpaceSize(int agent_id) const
{
    return static_cast<int>(validSubgoals(agent_id).size());
}

Vec2i
Environment::roomAnchor(int room) const
{
    const GridMap &grid = world_.grid();
    // Prefer a central *interior* cell so exploration lands mid-room:
    // doorway cells carry a room label but border another room, and an
    // agent stopping adjacent to one may never actually enter.
    Vec2i best{-1, -1};
    long best_score = -1;
    static const Vec2i kDirs[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
    for (int y = 0; y < grid.height(); ++y) {
        for (int x = 0; x < grid.width(); ++x) {
            const Vec2i p{x, y};
            if (!grid.walkable(p) || grid.room(p) != room)
                continue;
            bool interior = true;
            for (const auto &d : kDirs) {
                const int neighbor_room = grid.room(p + d);
                if (neighbor_room >= 0 && neighbor_room != room)
                    interior = false;
            }
            if (!interior)
                continue;
            // Score by closeness to the room's bounding-box center proxy:
            // just take the first then middle-ish via running average trick.
            const long score =
                -(std::abs(2 * x - grid.width()) +
                  std::abs(2 * y - grid.height()));
            if (best.x < 0 || score > best_score) {
                best = p;
                best_score = score;
            }
        }
    }
    if (best.x < 0) {
        // Degenerate room with no interior cell: fall back to any cell.
        for (int y = 0; y < grid.height() && best.x < 0; ++y)
            for (int x = 0; x < grid.width() && best.x < 0; ++x)
                if (grid.walkable({x, y}) && grid.room({x, y}) == room)
                    best = {x, y};
    }
    return best;
}

} // namespace ebs::env
