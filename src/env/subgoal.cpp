#include "env/subgoal.h"

namespace ebs::env {

const char *
subgoalKindName(SubgoalKind kind)
{
    switch (kind) {
      case SubgoalKind::Explore:
        return "Explore";
      case SubgoalKind::GoTo:
        return "GoTo";
      case SubgoalKind::PickUp:
        return "PickUp";
      case SubgoalKind::PlaceAt:
        return "PlaceAt";
      case SubgoalKind::PutInto:
        return "PutInto";
      case SubgoalKind::TakeFrom:
        return "TakeFrom";
      case SubgoalKind::OpenObj:
        return "OpenObj";
      case SubgoalKind::Chop:
        return "Chop";
      case SubgoalKind::Cook:
        return "Cook";
      case SubgoalKind::Craft:
        return "Craft";
      case SubgoalKind::Mine:
        return "Mine";
      case SubgoalKind::LiftWith:
        return "LiftWith";
      case SubgoalKind::Wait:
        return "Wait";
    }
    return "?";
}

std::string
Subgoal::describe() const
{
    std::string out = subgoalKindName(kind);
    out += '(';
    bool first = true;
    auto sep = [&] {
        if (!first)
            out += ", ";
        first = false;
    };
    if (target != kNoObject) {
        sep();
        out += "obj " + std::to_string(target);
    }
    if (dest_obj != kNoObject) {
        sep();
        out += "-> obj " + std::to_string(dest_obj);
    }
    if (dest.x >= 0) {
        sep();
        out += "-> (";
        out += std::to_string(dest.x);
        out += ',';
        out += std::to_string(dest.y);
        out += ')';
    }
    if (param != 0) {
        sep();
        out += '#';
        out += std::to_string(param);
    }
    out += ')';
    return out;
}

} // namespace ebs::env
