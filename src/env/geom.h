#ifndef EBS_ENV_GEOM_H
#define EBS_ENV_GEOM_H

#include <cmath>
#include <cstdlib>

namespace ebs::env {

/** Integer grid coordinate. */
struct Vec2i
{
    int x = 0;
    int y = 0;

    // Defaulted comparison requires C++20; the build enforces cxx_std_20
    // (see the configure-time guard in the top-level CMakeLists.txt).
    bool operator==(const Vec2i &) const = default;

    Vec2i operator+(const Vec2i &o) const { return {x + o.x, y + o.y}; }
    Vec2i operator-(const Vec2i &o) const { return {x - o.x, y - o.y}; }
};

/** Manhattan (L1) distance between grid cells. */
inline int
manhattan(const Vec2i &a, const Vec2i &b)
{
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/** Chebyshev (L-inf) distance; adjacency means chebyshev() <= 1. */
inline int
chebyshev(const Vec2i &a, const Vec2i &b)
{
    return std::max(std::abs(a.x - b.x), std::abs(a.y - b.y));
}

/** Continuous 2-D point for the manipulation workspace. */
struct Vec2d
{
    double x = 0.0;
    double y = 0.0;

    bool operator==(const Vec2d &) const = default;

    Vec2d operator+(const Vec2d &o) const { return {x + o.x, y + o.y}; }
    Vec2d operator-(const Vec2d &o) const { return {x - o.x, y - o.y}; }
    Vec2d operator*(double k) const { return {x * k, y * k}; }
};

/** Euclidean distance between continuous points. */
inline double
dist(const Vec2d &a, const Vec2d &b)
{
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    return std::sqrt(dx * dx + dy * dy);
}

} // namespace ebs::env

#endif // EBS_ENV_GEOM_H
