#ifndef EBS_ENV_TASK_H
#define EBS_ENV_TASK_H

#include <string>

namespace ebs::env {

class World;

/** Task difficulty tiers used throughout the paper's sweeps. */
enum class Difficulty
{
    Easy,
    Medium,
    Hard,
};

/** Display name ("easy"/"medium"/"hard"). */
const char *difficultyName(Difficulty d);

/**
 * A long-horizon task over a world: a goal predicate with progress
 * reporting and a step budget (the paper's L_max cap).
 */
class Task
{
  public:
    virtual ~Task() = default;

    /** Natural-language task description, used in prompts. */
    virtual std::string description() const = 0;

    /** True when the goal is fully satisfied. */
    virtual bool satisfied(const World &world) const = 0;

    /** Fraction of the goal achieved, in [0, 1]. */
    virtual double progress(const World &world) const = 0;

    /** Step budget; exceeding it fails the episode (L_max). */
    virtual int maxSteps() const = 0;

    /** The difficulty tier this instance was generated at. */
    virtual Difficulty difficulty() const = 0;
};

} // namespace ebs::env

#endif // EBS_ENV_TASK_H
