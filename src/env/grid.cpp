#include "env/grid.h"

#include <cassert>

namespace ebs::env {

GridMap::GridMap(int width, int height)
    : width_(width), height_(height),
      walkable_(static_cast<std::size_t>(width) * height, 1),
      room_(static_cast<std::size_t>(width) * height, 0)
{
    assert(width > 0 && height > 0);
}

std::size_t
GridMap::idx(const Vec2i &p) const
{
    return static_cast<std::size_t>(p.y) * width_ + p.x;
}

bool
GridMap::walkable(const Vec2i &p) const
{
    return inBounds(p) && walkable_[idx(p)] != 0;
}

void
GridMap::setWalkable(const Vec2i &p, bool w)
{
    assert(inBounds(p));
    walkable_[idx(p)] = w ? 1 : 0;
    if (!w)
        room_[idx(p)] = -1;
}

int
GridMap::room(const Vec2i &p) const
{
    if (!inBounds(p))
        return -1;
    return room_[idx(p)];
}

void
GridMap::setRoom(const Vec2i &p, int room)
{
    assert(inBounds(p));
    room_[idx(p)] = static_cast<std::int16_t>(room);
    if (room + 1 > room_count_)
        room_count_ = room + 1;
}

std::vector<Vec2i>
GridMap::neighbors(const Vec2i &p) const
{
    static const Vec2i kDirs[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
    std::vector<Vec2i> out;
    out.reserve(4);
    for (const auto &d : kDirs) {
        const Vec2i q = p + d;
        if (walkable(q))
            out.push_back(q);
    }
    return out;
}

GridMap
GridMap::apartment(int rooms_x, int rooms_y, int room_w, int room_h)
{
    assert(rooms_x >= 1 && rooms_y >= 1);
    assert(room_w >= 3 && room_h >= 3);

    // +1 wall between rooms and around the border.
    const int width = rooms_x * (room_w + 1) + 1;
    const int height = rooms_y * (room_h + 1) + 1;
    GridMap map(width, height);

    // Carve walls first: border and inter-room separators.
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const bool on_wall = x % (room_w + 1) == 0 || y % (room_h + 1) == 0;
            if (on_wall)
                map.setWalkable({x, y}, false);
        }
    }

    // Assign room labels to interiors.
    for (int ry = 0; ry < rooms_y; ++ry) {
        for (int rx = 0; rx < rooms_x; ++rx) {
            const int room_id = ry * rooms_x + rx;
            for (int y = 1; y <= room_h; ++y) {
                for (int x = 1; x <= room_w; ++x) {
                    map.setRoom({rx * (room_w + 1) + x, ry * (room_h + 1) + y},
                                room_id);
                }
            }
        }
    }

    // Doorways between horizontally adjacent rooms.
    for (int ry = 0; ry < rooms_y; ++ry) {
        for (int rx = 0; rx + 1 < rooms_x; ++rx) {
            const int wall_x = (rx + 1) * (room_w + 1);
            const int door_y = ry * (room_h + 1) + 1 + room_h / 2;
            const Vec2i door{wall_x, door_y};
            map.setWalkable(door, true);
            map.setRoom(door, ry * rooms_x + rx);
        }
    }
    // Doorways between vertically adjacent rooms.
    for (int ry = 0; ry + 1 < rooms_y; ++ry) {
        for (int rx = 0; rx < rooms_x; ++rx) {
            const int wall_y = (ry + 1) * (room_h + 1);
            const int door_x = rx * (room_w + 1) + 1 + room_w / 2;
            const Vec2i door{door_x, wall_y};
            map.setWalkable(door, true);
            map.setRoom(door, ry * rooms_x + rx);
        }
    }

    return map;
}

} // namespace ebs::env
