#include "env/object.h"

namespace ebs::env {

const char *
objectClassName(ObjectClass cls)
{
    switch (cls) {
      case ObjectClass::Item:
        return "Item";
      case ObjectClass::Container:
        return "Container";
      case ObjectClass::Station:
        return "Station";
      case ObjectClass::Target:
        return "Target";
      case ObjectClass::Resource:
        return "Resource";
    }
    return "?";
}

} // namespace ebs::env
