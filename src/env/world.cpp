#include "env/world.h"

#include <cassert>

namespace ebs::env {

World::World(GridMap grid)
    : grid_(std::move(grid))
{
}

World::World(const World &other)
    : grid_(other.grid_),
      objects_(other.objects_),
      agents_(other.agents_)
{
}

World &
World::operator=(const World &other)
{
    grid_ = other.grid_;
    objects_ = other.objects_;
    agents_ = other.agents_;
    return *this;
}

ObjectId
World::addObject(Object obj)
{
    // Structural growth cannot be expressed in the fixed-slot key space.
    if (log_ != nullptr)
        log_->abort("object added during speculation");
    obj.id = static_cast<ObjectId>(objects_.size());
    obj.room = grid_.room(obj.pos);
    objects_.push_back(std::move(obj));
    return objects_.back().id;
}

int
World::addAgent(const Vec2i &pos)
{
    assert(grid_.walkable(pos));
    if (log_ != nullptr)
        log_->abort("agent added during speculation");
    AgentBody body;
    body.id = static_cast<int>(agents_.size());
    body.pos = pos;
    agents_.push_back(body);
    return body.id;
}

const Object &
World::object(ObjectId id) const
{
    assert(id >= 0 && id < static_cast<ObjectId>(objects_.size()));
    if (log_ != nullptr)
        log_->read(spec::objectKey(id));
    return objects_[static_cast<std::size_t>(id)];
}

Object &
World::object(ObjectId id)
{
    assert(id >= 0 && id < static_cast<ObjectId>(objects_.size()));
    // A mutable fetch is logged as read+write: every World mutation path
    // fetches its entity through here first, so any writer is also a
    // reader and write/write overlaps surface as read/write conflicts.
    if (log_ != nullptr)
        log_->readWrite(spec::objectKey(id));
    return objects_[static_cast<std::size_t>(id)];
}

const AgentBody &
World::agent(int id) const
{
    assert(id >= 0 && id < agentCount());
    if (log_ != nullptr)
        log_->read(spec::agentKey(id));
    return agents_[static_cast<std::size_t>(id)];
}

AgentBody &
World::agent(int id)
{
    assert(id >= 0 && id < agentCount());
    if (log_ != nullptr)
        log_->readWrite(spec::agentKey(id));
    return agents_[static_cast<std::size_t>(id)];
}

std::vector<ObjectId>
World::objectsInRoom(int room) const
{
    if (log_ != nullptr)
        log_->read(spec::allObjectsKey());
    std::vector<ObjectId> out;
    for (const auto &obj : objects_)
        if (obj.loose() && obj.room == room)
            out.push_back(obj.id);
    return out;
}

std::vector<ObjectId>
World::contents(ObjectId container) const
{
    if (log_ != nullptr)
        log_->read(spec::allObjectsKey());
    std::vector<ObjectId> out;
    for (const auto &obj : objects_)
        if (obj.inside == container)
            out.push_back(obj.id);
    return out;
}

Vec2i
World::effectivePos(ObjectId id) const
{
    const Object *obj = &object(id);
    // Follow the container chain (containers cannot themselves be held
    // while containing in our domains, but be safe).
    int hops = 0;
    while (obj->inside != kNoObject && hops++ < 8)
        obj = &object(obj->inside);
    if (obj->held_by >= 0)
        return agent(obj->held_by).pos;
    return obj->pos;
}

bool
World::occupiedByOther(int agent_id, const Vec2i &cell) const
{
    // Logged as a read of the *cell's* occupancy, not of every agent:
    // committers emit Occ writes for their net position delta, so this
    // conflicts exactly with agents that vacated or claimed `cell`.
    if (log_ != nullptr)
        log_->read(spec::cellKey(cell));
    for (const auto &body : agents_)
        if (body.id != agent_id && body.pos == cell)
            return true;
    return false;
}

ActionResult
World::applySpatial(int agent_id, const Primitive &prim)
{
    AgentBody &body = agent(agent_id);
    switch (prim.op) {
      case PrimOp::MoveStep:
        return doMoveStep(body, prim);
      case PrimOp::Pick:
        return doPick(body, prim);
      case PrimOp::Place:
        return doPlace(body, prim);
      case PrimOp::PutIn:
        return doPutIn(body, prim);
      case PrimOp::TakeOut:
        return doTakeOut(body, prim);
      case PrimOp::Open:
        return doOpenClose(body, prim, true);
      case PrimOp::Close:
        return doOpenClose(body, prim, false);
      case PrimOp::Wait:
        return ActionResult::success();
      default:
        return ActionResult::failure("domain primitive not handled by World");
    }
}

ActionResult
World::doMoveStep(AgentBody &agent, const Primitive &prim)
{
    if (manhattan(agent.pos, prim.dest) != 1)
        return ActionResult::failure("move step not unit-length");
    if (!grid_.walkable(prim.dest))
        return ActionResult::failure("destination not walkable");
    if (occupiedByOther(agent.id, prim.dest))
        return ActionResult::failure("destination occupied by another agent");
    agent.pos = prim.dest;
    if (agent.carrying != kNoObject) {
        Object &held = object(agent.carrying);
        held.pos = agent.pos;
        held.room = grid_.room(agent.pos);
    }
    return ActionResult::success();
}

ActionResult
World::doPick(AgentBody &agent, const Primitive &prim)
{
    if (prim.target == kNoObject)
        return ActionResult::failure("pick without target");
    Object &obj = object(prim.target);
    if (agent.carrying != kNoObject)
        return ActionResult::failure("gripper already full");
    if (obj.held_by >= 0)
        return ActionResult::failure("object held by another agent");
    if (obj.inside != kNoObject)
        return ActionResult::failure("object inside a container");
    if (obj.cls != ObjectClass::Item && obj.cls != ObjectClass::Container)
        return ActionResult::failure("object not graspable");
    if (obj.weight > 1.0)
        return ActionResult::failure("object too heavy for one agent");
    if (chebyshev(agent.pos, obj.pos) > 1)
        return ActionResult::failure("object out of reach");
    obj.held_by = agent.id;
    obj.pos = agent.pos;
    obj.room = grid_.room(agent.pos);
    agent.carrying = obj.id;
    return ActionResult::success();
}

ActionResult
World::doPlace(AgentBody &agent, const Primitive &prim)
{
    if (agent.carrying == kNoObject)
        return ActionResult::failure("nothing carried");
    if (chebyshev(agent.pos, prim.dest) > 1)
        return ActionResult::failure("place cell out of reach");
    if (!grid_.walkable(prim.dest))
        return ActionResult::failure("place cell not walkable");
    Object &obj = object(agent.carrying);
    obj.held_by = -1;
    obj.pos = prim.dest;
    obj.room = grid_.room(prim.dest);
    agent.carrying = kNoObject;
    return ActionResult::success();
}

ActionResult
World::doPutIn(AgentBody &agent, const Primitive &prim)
{
    if (agent.carrying == kNoObject)
        return ActionResult::failure("nothing carried");
    if (prim.target == kNoObject)
        return ActionResult::failure("put-in without container");
    Object &container = object(prim.target);
    if (container.cls != ObjectClass::Container &&
        container.cls != ObjectClass::Target)
        return ActionResult::failure("destination is not a container");
    if (container.id == agent.carrying)
        return ActionResult::failure("cannot put object into itself");
    if (chebyshev(agent.pos, effectivePos(container.id)) > 1)
        return ActionResult::failure("container out of reach");
    if (container.openable && !container.open)
        return ActionResult::failure("container is closed");
    Object &obj = object(agent.carrying);
    obj.held_by = -1;
    obj.inside = container.id;
    obj.pos = container.pos;
    obj.room = container.room;
    agent.carrying = kNoObject;
    return ActionResult::success();
}

ActionResult
World::doTakeOut(AgentBody &agent, const Primitive &prim)
{
    if (agent.carrying != kNoObject)
        return ActionResult::failure("gripper already full");
    if (prim.target == kNoObject)
        return ActionResult::failure("take-out without target");
    Object &obj = object(prim.target);
    if (obj.inside == kNoObject)
        return ActionResult::failure("object not in a container");
    Object &container = object(obj.inside);
    if (chebyshev(agent.pos, effectivePos(container.id)) > 1)
        return ActionResult::failure("container out of reach");
    if (container.openable && !container.open)
        return ActionResult::failure("container is closed");
    obj.inside = kNoObject;
    obj.held_by = agent.id;
    obj.pos = agent.pos;
    obj.room = grid_.room(agent.pos);
    agent.carrying = obj.id;
    return ActionResult::success();
}

ActionResult
World::doOpenClose(AgentBody &agent, const Primitive &prim, bool open)
{
    if (prim.target == kNoObject)
        return ActionResult::failure("open/close without target");
    Object &obj = object(prim.target);
    if (!obj.openable)
        return ActionResult::failure("object not openable");
    if (chebyshev(agent.pos, effectivePos(obj.id)) > 1)
        return ActionResult::failure("object out of reach");
    obj.open = open;
    return ActionResult::success();
}

} // namespace ebs::env
