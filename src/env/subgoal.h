#ifndef EBS_ENV_SUBGOAL_H
#define EBS_ENV_SUBGOAL_H

#include <string>

#include "env/geom.h"
#include "env/object.h"

namespace ebs::env {

/**
 * High-level subgoal vocabulary shared by the planning and execution
 * modules. The planner (LLM) emits one subgoal per agent step; the execution
 * module compiles it into a primitive sequence.
 */
enum class SubgoalKind
{
    Explore,  ///< visit an unvisited room to discover objects
    GoTo,     ///< navigate adjacent to `target` (or to cell `dest`)
    PickUp,   ///< go to and grasp `target`
    PlaceAt,  ///< carry held object to cell `dest` and put it down
    PutInto,  ///< carry held object to container/zone `dest_obj` and insert
    TakeFrom, ///< retrieve `target` out of container `dest_obj`
    OpenObj,  ///< open `target`
    Chop,     ///< process ingredient `target` at a board
    Cook,     ///< cook ingredient `target` at station `dest_obj`
    Craft,    ///< craft recipe `param` at station `dest_obj`
    Mine,     ///< harvest resource node `target`
    LiftWith, ///< jointly lift heavy object `target` (multi-agent)
    Wait,     ///< idle this step
};

/** Display name of a subgoal kind. */
const char *subgoalKindName(SubgoalKind kind);

/** One subgoal instance. */
struct Subgoal
{
    SubgoalKind kind = SubgoalKind::Wait;
    ObjectId target = kNoObject;   ///< primary object operand
    ObjectId dest_obj = kNoObject; ///< destination object (container/station)
    Vec2i dest{-1, -1};            ///< destination cell (PlaceAt / Explore)
    int param = 0;                 ///< recipe id or other op-specific code

    bool operator==(const Subgoal &) const = default;

    /** Human-readable rendering for prompts, traces, and tests. */
    std::string describe() const;
};

} // namespace ebs::env

#endif // EBS_ENV_SUBGOAL_H
