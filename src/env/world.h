#ifndef EBS_ENV_WORLD_H
#define EBS_ENV_WORLD_H

#include <vector>

#include "env/action.h"
#include "env/grid.h"
#include "env/object.h"
#include "env/spec.h"

namespace ebs::env {

/** Embodied state of one agent body. */
struct AgentBody
{
    int id = -1;
    Vec2i pos;
    ObjectId carrying = kNoObject; ///< single-object gripper
    bool lifting = false;          ///< currently part of a joint lift
};

/**
 * Ground-truth world state: grid + objects + agent bodies, with validated
 * application of the *spatial* primitives (movement, grasping, containers).
 * Domain primitives (Chop/Cook/Craft/Mine/Lift) are validated and applied by
 * the owning Environment, which knows the domain rules.
 */
class World
{
  public:
    explicit World(GridMap grid);

    /** Copies transfer world *state* only — the destination keeps its own
     * access-log attachment (a snapshot refreshed from the live world must
     * not inherit, or clobber, a log pointer). */
    World(const World &other);
    World &operator=(const World &other);
    World(World &&) = default;
    World &operator=(World &&) = default;

    const GridMap &grid() const { return grid_; }

    GridMap &
    grid()
    {
        // Grid topology is construction-time state; a mutation during a
        // speculative turn would be invisible to the read/write sets.
        if (log_ != nullptr)
            log_->abort("grid mutation during speculation");
        return grid_;
    }

    // --- construction ---

    /** Add an object; assigns and returns its id. Snaps `room` from grid. */
    ObjectId addObject(Object obj);

    /** Add an agent body at a position; returns its id. */
    int addAgent(const Vec2i &pos);

    // --- access ---

    const Object &object(ObjectId id) const;
    Object &object(ObjectId id);

    /** Whole-table scan: under an access log this reads *every* object
     * (logged as one AllObjects key, which any object write invalidates). */
    const std::vector<Object> &
    objects() const
    {
        if (log_ != nullptr)
            log_->read(spec::allObjectsKey());
        return objects_;
    }

    const AgentBody &agent(int id) const;
    AgentBody &agent(int id);
    int agentCount() const { return static_cast<int>(agents_.size()); }

    /**
     * Raw agent-body table, deliberately *not* access-logged: for callers
     * (motion cost) that derive per-cell occupancy and log the precise
     * Occ(cell) reads themselves instead of a read of every agent.
     */
    const std::vector<AgentBody> &bodies() const { return agents_; }

    /** Ids of loose objects currently in the given room. */
    std::vector<ObjectId> objectsInRoom(int room) const;

    /** Ids of objects held inside the given container. */
    std::vector<ObjectId> contents(ObjectId container) const;

    /** Current position of an object, following holder/container chains. */
    Vec2i effectivePos(ObjectId id) const;

    /**
     * Apply a spatial primitive for an agent. Returns failure for domain
     * ops (Chop/Cook/Craft/Mine/Lift) — those belong to the Environment.
     */
    ActionResult applySpatial(int agent_id, const Primitive &prim);

    /** True if any agent other than `agent_id` stands on `cell`. */
    bool occupiedByOther(int agent_id, const Vec2i &cell) const;

    /**
     * Attach (or detach, with nullptr) a speculative-execution access
     * log: every accessor call on this world is recorded into it until
     * detached. The coordinator attaches one log per speculative turn to
     * that turn's snapshot world, and a fresh log to the live world for
     * serial re-runs (so re-run writes still feed later agents'
     * validation).
     */
    void setAccessLog(spec::AccessLog *log) { log_ = log; }
    spec::AccessLog *accessLog() const { return log_; }

  private:
    ActionResult doMoveStep(AgentBody &agent, const Primitive &prim);
    ActionResult doPick(AgentBody &agent, const Primitive &prim);
    ActionResult doPlace(AgentBody &agent, const Primitive &prim);
    ActionResult doPutIn(AgentBody &agent, const Primitive &prim);
    ActionResult doTakeOut(AgentBody &agent, const Primitive &prim);
    ActionResult doOpenClose(AgentBody &agent, const Primitive &prim,
                             bool open);

    GridMap grid_;
    std::vector<Object> objects_;
    std::vector<AgentBody> agents_;
    /** Active speculation access log; null outside speculative turns.
     * Not copied: a snapshot world starts unlogged (copy-assignment of
     * World would otherwise alias the source's log). */
    spec::AccessLog *log_ = nullptr;
};

} // namespace ebs::env

#endif // EBS_ENV_WORLD_H
