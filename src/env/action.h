#ifndef EBS_ENV_ACTION_H
#define EBS_ENV_ACTION_H

#include <string>

#include "env/geom.h"
#include "env/object.h"

namespace ebs::env {

/**
 * Primitive operations an agent body can perform. These are the low-level
 * actions produced by the execution module; one high-level agent step
 * typically expands into several primitives.
 */
enum class PrimOp
{
    MoveStep, ///< move one cell toward `dest` (already path-planned)
    Pick,     ///< grasp adjacent loose object `target`
    Place,    ///< put carried object down at adjacent cell `dest`
    PutIn,    ///< insert carried object into adjacent container `target`
    TakeOut,  ///< remove object `target` from its adjacent container
    Open,     ///< open adjacent openable `target`
    Close,    ///< close adjacent openable `target`
    Chop,     ///< domain op: process adjacent ingredient `target`
    Cook,     ///< domain op: cook at adjacent station `target`
    Craft,    ///< domain op: craft recipe `param` at station `target`
    Mine,     ///< domain op: harvest adjacent resource `target`
    Lift,     ///< domain op: (multi-agent) lift adjacent heavy `target`
    Wait,     ///< no-op (also used for turn-taking)
};

/** Display name of a primitive op. */
const char *primOpName(PrimOp op);

/** One primitive action instance. */
struct Primitive
{
    PrimOp op = PrimOp::Wait;
    ObjectId target = kNoObject; ///< object operand
    Vec2i dest;                  ///< cell operand (MoveStep / Place)
    int param = 0;               ///< op-specific extra (recipe id, ...)

    /** Human-readable rendering, e.g. "Pick(obj 3)". */
    std::string describe() const;
};

/** Outcome of applying a primitive. */
struct ActionResult
{
    bool ok = false;
    std::string reason; ///< failure reason when !ok (empty on success)

    static ActionResult success() { return {true, {}}; }
    static ActionResult failure(std::string why) { return {false, std::move(why)}; }
};

} // namespace ebs::env

#endif // EBS_ENV_ACTION_H
