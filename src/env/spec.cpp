#include "env/spec.h"

#include <algorithm>
#include <cassert>

namespace ebs::env::spec {

void
AccessLog::finalize()
{
    std::sort(reads_.begin(), reads_.end());
    reads_.erase(std::unique(reads_.begin(), reads_.end()), reads_.end());
    std::sort(writes_.begin(), writes_.end());
    writes_.erase(std::unique(writes_.begin(), writes_.end()),
                  writes_.end());
}

void
AccessLog::reset()
{
    reads_.clear();
    writes_.clear();
    aborted_ = false;
    abort_reason_ = "";
}

bool
conflicts(const std::vector<AccessKey> &reads,
          const std::vector<AccessKey> &writes)
{
    if (reads.empty() || writes.empty())
        return false;
    // A whole-table scan read is invalidated by any object write. Object
    // keys have kind 00, so they sort first; AllObjects sorts last.
    if (reads.back() == allObjectsKey() && !writes.empty() &&
        keyKind(writes.front()) == kKindObject)
        return true;
    auto r = reads.begin();
    auto w = writes.begin();
    while (r != reads.end() && w != writes.end()) {
        if (*r < *w)
            ++r;
        else if (*w < *r)
            ++w;
        else
            return true;
    }
    return false;
}

void
mergeKeys(std::vector<AccessKey> &into, const std::vector<AccessKey> &extra)
{
    if (extra.empty())
        return;
    std::size_t const old = into.size();
    into.insert(into.end(), extra.begin(), extra.end());
    std::inplace_merge(into.begin(),
                       into.begin() + static_cast<std::ptrdiff_t>(old),
                       into.end());
    into.erase(std::unique(into.begin(), into.end()), into.end());
}

namespace {

/**
 * The per-thread override slot. One thread runs at most one speculative
 * turn at a time (the coordinator's fan-out tasks are each a whole
 * turn), so a single {env, world} pair suffices — no stack needed.
 */
struct ThreadOverride
{
    const void *environment = nullptr;
    World *snapshot = nullptr;
};

thread_local ThreadOverride t_override;

} // namespace

SpeculationScope::SpeculationScope(const void *environment, World *snapshot)
{
    assert(t_override.environment == nullptr &&
           "speculative turns must not nest");
    t_override.environment = environment;
    t_override.snapshot = snapshot;
}

SpeculationScope::~SpeculationScope()
{
    t_override.environment = nullptr;
    t_override.snapshot = nullptr;
}

World *
activeSnapshot(const void *environment)
{
    return t_override.environment == environment ? t_override.snapshot
                                                 : nullptr;
}

} // namespace ebs::env::spec
