#ifndef EBS_ENV_OBJECT_H
#define EBS_ENV_OBJECT_H

#include <string>

#include "env/geom.h"

namespace ebs::env {

/** Identifier of an object within a world (index into the object table). */
using ObjectId = int;

/** Sentinel for "no object". */
inline constexpr ObjectId kNoObject = -1;

/** Coarse object category shared across environments. */
enum class ObjectClass
{
    Item,      ///< graspable thing (food, box, tool, resource drop)
    Container, ///< can hold Items (basket, fridge, bin)
    Station,   ///< fixed appliance (stove, cutting board, crafting table)
    Target,    ///< goal marker (delivery zone, target cell)
    Resource,  ///< minable/harvestable node (tree, ore vein)
};

/** Display name for an ObjectClass. */
const char *objectClassName(ObjectClass cls);

/**
 * One object in the world. `kind` and `state` are environment-specific codes
 * (e.g. in KitchenEnv, kind = ingredient id, state = raw/chopped/cooked);
 * the substrate only moves objects around.
 */
struct Object
{
    ObjectId id = kNoObject;
    std::string name;
    ObjectClass cls = ObjectClass::Item;
    Vec2i pos;
    int room = -1;            ///< room the object is in (cache of grid room)
    ObjectId inside = kNoObject; ///< container holding this object, if any
    int held_by = -1;         ///< agent carrying this object, or -1
    bool openable = false;
    bool open = true;         ///< closed containers hide their contents
    int kind = 0;             ///< environment-specific type code
    int state = 0;            ///< environment-specific state code
    double weight = 1.0;      ///< mass units; >1 may need multiple agents

    /** True when the object sits freely in the world (not held/contained). */
    bool
    loose() const
    {
        return held_by < 0 && inside == kNoObject;
    }
};

} // namespace ebs::env

#endif // EBS_ENV_OBJECT_H
