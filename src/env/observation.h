#ifndef EBS_ENV_OBSERVATION_H
#define EBS_ENV_OBSERVATION_H

#include <vector>

#include "env/geom.h"
#include "env/object.h"

namespace ebs::env {

/** One object as seen by an agent's sensors. */
struct ObservedObject
{
    ObjectId id = kNoObject;
    ObjectClass cls = ObjectClass::Item;
    int kind = 0;
    int state = 0;
    Vec2i pos;
    int room = -1;
    ObjectId inside = kNoObject;
    int held_by = -1;
    bool openable = false;
    bool open = true;
};

/**
 * Egocentric partial observation: what one agent's sensing module sees this
 * step (its own pose plus the objects in its current room / sensing range).
 */
struct Observation
{
    int agent_id = -1;
    int step = 0;
    Vec2i self_pos;
    int room = -1;
    bool carrying = false;
    ObjectId carried = kNoObject;
    std::vector<ObservedObject> objects;
};

} // namespace ebs::env

#endif // EBS_ENV_OBSERVATION_H
