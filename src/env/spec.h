#ifndef EBS_ENV_SPEC_H
#define EBS_ENV_SPEC_H

#include <cstdint>
#include <vector>

#include "env/geom.h"
#include "env/object.h"

namespace ebs::env {

class World;

namespace spec {

/**
 * Read/write-set instrumentation for the speculative execute phase.
 *
 * Every piece of world state an agent's execute() turn can observe or
 * mutate is named by one 64-bit key: an object slot, an agent body slot,
 * the occupancy of one grid cell, or the whole-object-table scans
 * (objectsInRoom/contents). World accessors append keys into the log
 * attached via World::setAccessLog(); the coordinator validates an
 * agent's speculative run by intersecting its read set with the write
 * sets committed by lower-indexed agents of the same phase.
 *
 * Keys are plain sorted uint64 vectors (never an unordered container —
 * the determinism lint bans those, and validation only needs a sorted
 * merge/intersect). The kind lives in the top two bits:
 *
 *   00 | object id          one Object slot (any field)
 *   01 | agent id           one AgentBody slot (any field)
 *   10 | (x << 16) | y      occupancy of one grid cell (occupiedByOther
 *                           and the A* blocked-cell queries)
 *   11 | 0                  the whole object table (unkeyed scans)
 */
using AccessKey = std::uint64_t;

inline AccessKey
objectKey(ObjectId id)
{
    return static_cast<AccessKey>(static_cast<std::uint32_t>(id));
}

inline AccessKey
agentKey(int id)
{
    return (AccessKey{1} << 62) |
           static_cast<AccessKey>(static_cast<std::uint32_t>(id));
}

inline AccessKey
cellKey(const Vec2i &cell)
{
    return (AccessKey{2} << 62) |
           (static_cast<AccessKey>(static_cast<std::uint16_t>(cell.x))
            << 16) |
           static_cast<AccessKey>(static_cast<std::uint16_t>(cell.y));
}

inline AccessKey
allObjectsKey()
{
    return AccessKey{3} << 62;
}

/** Kind tag of a key (the top two bits; see the table above). */
inline unsigned
keyKind(AccessKey key)
{
    return static_cast<unsigned>(key >> 62);
}

inline constexpr unsigned kKindObject = 0;
inline constexpr unsigned kKindAgent = 1;
inline constexpr unsigned kKindCell = 2;
inline constexpr unsigned kKindAllObjects = 3;

/** Object/agent id of an object or agent key. */
inline int
keyId(AccessKey key)
{
    return static_cast<int>(key & 0xffffffffULL);
}

/**
 * One speculative turn's footprint: what it read, what it wrote, and
 * whether it touched something the snapshot cannot isolate (world
 * structure changes, or a domain primitive of an environment whose
 * domain rules mutate env-local state). Aborted runs are discarded and
 * the agent re-executes serially against the committed world.
 */
class AccessLog
{
  public:
    void
    read(AccessKey key)
    {
        reads_.push_back(key);
    }

    void
    write(AccessKey key)
    {
        writes_.push_back(key);
    }

    void
    readWrite(AccessKey key)
    {
        reads_.push_back(key);
        writes_.push_back(key);
    }

    /** Mark the run non-isolatable; `reason` must be a string literal. */
    void
    abort(const char *reason)
    {
        aborted_ = true;
        abort_reason_ = reason;
    }

    bool aborted() const { return aborted_; }
    const char *abortReason() const { return abort_reason_; }

    /** Sort + dedupe both key sets (idempotent); call before reads()/
     * writes() are consumed by validation or commit. */
    void finalize();

    const std::vector<AccessKey> &reads() const { return reads_; }
    const std::vector<AccessKey> &writes() const { return writes_; }

    /** Clear for reuse, keeping vector capacity across phases. */
    void reset();

  private:
    std::vector<AccessKey> reads_;
    std::vector<AccessKey> writes_;
    bool aborted_ = false;
    const char *abort_reason_ = "";
};

/**
 * True when a finalized read set overlaps a sorted-unique committed
 * write set. An AllObjects read conflicts with any object write (the
 * scan saw every object, so any object change invalidates it).
 */
bool conflicts(const std::vector<AccessKey> &reads,
               const std::vector<AccessKey> &writes);

/** Merge sorted-unique `extra` into sorted-unique `into` (stays sorted). */
void mergeKeys(std::vector<AccessKey> &into,
               const std::vector<AccessKey> &extra);

/**
 * Thread-local world override for speculation: while a scope is alive on
 * a thread, Environment::world() calls *on that thread, for that
 * environment* resolve to the agent's private snapshot World instead of
 * the live one. One level only — speculative turns never nest.
 *
 * Registration is keyed by the environment's address, so concurrent
 * episodes (different environments) on one worker thread, or the same
 * environment speculated on many threads, never cross wires: each thread
 * sees exactly the snapshot its own turn installed.
 */
class SpeculationScope
{
  public:
    SpeculationScope(const void *environment, World *snapshot);
    ~SpeculationScope();

    SpeculationScope(const SpeculationScope &) = delete;
    SpeculationScope &operator=(const SpeculationScope &) = delete;
};

/** The snapshot installed on this thread for `environment` (null when
 * no speculative turn is active — the common, non-speculating case). */
World *activeSnapshot(const void *environment);

} // namespace spec
} // namespace ebs::env

#endif // EBS_ENV_SPEC_H
