#ifndef EBS_ENV_GRID_H
#define EBS_ENV_GRID_H

#include <cstdint>
#include <vector>

#include "env/geom.h"

namespace ebs::env {

/**
 * 2-D occupancy grid with room labels.
 *
 * Rooms drive partial observability: an agent sees objects in its current
 * room only, mirroring the egocentric views of TDW / VirtualHome. Walls are
 * non-walkable cells; doorways connect rooms.
 */
class GridMap
{
  public:
    /** An all-walkable map of the given size, single room 0. */
    GridMap(int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }

    bool
    inBounds(const Vec2i &p) const
    {
        return p.x >= 0 && p.x < width_ && p.y >= 0 && p.y < height_;
    }

    bool walkable(const Vec2i &p) const;
    void setWalkable(const Vec2i &p, bool w);

    /** Room id of a cell (-1 for walls / out of bounds). */
    int room(const Vec2i &p) const;
    void setRoom(const Vec2i &p, int room);

    /** Number of distinct room labels assigned so far. */
    int roomCount() const { return room_count_; }

    /** 4-connected walkable neighbors of a cell. */
    std::vector<Vec2i> neighbors(const Vec2i &p) const;

    /**
     * Build a rooms_x by rooms_y apartment: each room is room_w x room_h
     * cells, separated by one-cell walls with a centered doorway between
     * horizontally and vertically adjacent rooms. Room ids are assigned in
     * row-major order.
     */
    static GridMap apartment(int rooms_x, int rooms_y, int room_w,
                             int room_h);

  private:
    std::size_t idx(const Vec2i &p) const;

    int width_;
    int height_;
    int room_count_ = 1;
    std::vector<std::uint8_t> walkable_;
    std::vector<std::int16_t> room_;
};

} // namespace ebs::env

#endif // EBS_ENV_GRID_H
