#ifndef EBS_PLAN_CONTROLLER_H
#define EBS_PLAN_CONTROLLER_H

#include <string>
#include <vector>

#include "env/env.h"
#include "env/subgoal.h"

namespace ebs::plan {

/** A subgoal compiled to a primitive sequence. */
struct Compiled
{
    bool feasible = false;
    std::string reason;                 ///< why compilation failed
    std::vector<env::Primitive> prims;  ///< primitives to execute in order
    double motion_cost = 0.0;           ///< path length in grid steps
};

/**
 * Compile a high-level subgoal into primitives for one agent: navigate
 * (via the environment's motion planner), then interact.
 *
 * This is the heart of the low-level execution module — the piece the
 * paper's Fig. 3 shows to be indispensable: without it, the LLM has to emit
 * primitives directly and drowns in the expanded decision space.
 */
Compiled compileSubgoal(const env::Environment &environment, int agent_id,
                        const env::Subgoal &subgoal);

} // namespace ebs::plan

#endif // EBS_PLAN_CONTROLLER_H
