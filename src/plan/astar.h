#ifndef EBS_PLAN_ASTAR_H
#define EBS_PLAN_ASTAR_H

#include <optional>
#include <vector>

#include "env/geom.h"
#include "env/grid.h"

namespace ebs::plan {

/** Result of a grid path query. */
struct GridPath
{
    std::vector<env::Vec2i> cells; ///< start..goal inclusive
    double cost = 0.0;             ///< number of unit moves
};

/**
 * A* shortest path on a GridMap (4-connected, unit edge cost, Manhattan
 * heuristic — admissible and consistent, so the first expansion of the goal
 * is optimal).
 *
 * This is the real low-level planner used by the execution module
 * (substituting the A-star controllers of CoELA / COHERENT / DaDu-E); its
 * compute cost is part of the execution-module latency story.
 *
 * @param adjacent_ok when true, reaching any cell adjacent (chebyshev <= 1)
 *                    to the goal counts as arrival — the common case for
 *                    interacting with objects that sit on furniture.
 * @param blocked     extra temporarily-untraversable cells (other agents'
 *                    positions); may be null.
 * @param queried     when non-null, collects every cell whose blocked
 *                    status the search consulted (speculative execution
 *                    logs these as occupancy reads: the search result can
 *                    only change if one of *these* cells changes, so they
 *                    are exactly the path query's occupancy read set).
 * @return nullopt when no path exists.
 */
std::optional<GridPath> aStar(const env::GridMap &grid,
                              const env::Vec2i &start,
                              const env::Vec2i &goal,
                              bool adjacent_ok = false,
                              const std::vector<env::Vec2i> *blocked =
                                  nullptr,
                              std::vector<env::Vec2i> *queried = nullptr);

/** Cells expanded by the most recent aStar call on this thread (for perf
 * tests and the microbench). */
std::size_t aStarLastExpanded();

} // namespace ebs::plan

#endif // EBS_PLAN_ASTAR_H
