#include "plan/rrt.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ebs::plan {

bool
Workspace::free(const env::Vec2d &p) const
{
    if (p.x < min_x || p.x > max_x || p.y < min_y || p.y > max_y)
        return false;
    for (const auto &obs : obstacles)
        if (env::dist(p, obs.center) < obs.radius)
            return false;
    return true;
}

bool
Workspace::segmentFree(const env::Vec2d &a, const env::Vec2d &b,
                       double step) const
{
    const double len = env::dist(a, b);
    const int samples = std::max(1, static_cast<int>(len / step));
    for (int i = 0; i <= samples; ++i) {
        const double t = static_cast<double>(i) / samples;
        if (!free(a + (b - a) * t))
            return false;
    }
    return true;
}

namespace {

double
pathLength(const std::vector<env::Vec2d> &pts)
{
    double len = 0.0;
    for (std::size_t i = 1; i < pts.size(); ++i)
        len += env::dist(pts[i - 1], pts[i]);
    return len;
}

} // namespace

std::optional<RrtPath>
rrtPlan(const Workspace &ws, const env::Vec2d &start, const env::Vec2d &goal,
        sim::Rng &rng, const RrtParams &params)
{
    if (!ws.free(start) || !ws.free(goal))
        return std::nullopt;

    // Trivial case: straight shot.
    if (ws.segmentFree(start, goal)) {
        RrtPath path;
        path.points = {start, goal};
        path.length = env::dist(start, goal);
        path.iterations = 1;
        return path;
    }

    std::vector<env::Vec2d> nodes = {start};
    std::vector<int> parents = {-1};

    int goal_node = -1;
    int iter = 0;
    for (; iter < params.max_iterations; ++iter) {
        env::Vec2d sample;
        if (rng.bernoulli(params.goal_bias)) {
            sample = goal;
        } else {
            sample = {rng.uniform(ws.min_x, ws.max_x),
                      rng.uniform(ws.min_y, ws.max_y)};
        }

        // Nearest node (linear scan; tree sizes stay small).
        std::size_t nearest = 0;
        double best = env::dist(nodes[0], sample);
        for (std::size_t i = 1; i < nodes.size(); ++i) {
            const double d = env::dist(nodes[i], sample);
            if (d < best) {
                best = d;
                nearest = i;
            }
        }

        // Extend toward the sample by step_size.
        env::Vec2d dir = sample - nodes[nearest];
        const double len = std::sqrt(dir.x * dir.x + dir.y * dir.y);
        if (len < 1e-9)
            continue;
        const double scale = std::min(1.0, params.step_size / len);
        const env::Vec2d candidate = nodes[nearest] + dir * scale;

        if (!ws.free(candidate) ||
            !ws.segmentFree(nodes[nearest], candidate))
            continue;

        nodes.push_back(candidate);
        parents.push_back(static_cast<int>(nearest));

        if (env::dist(candidate, goal) <= params.goal_tolerance &&
            ws.segmentFree(candidate, goal)) {
            nodes.push_back(goal);
            parents.push_back(static_cast<int>(nodes.size()) - 2);
            goal_node = static_cast<int>(nodes.size()) - 1;
            break;
        }
    }

    if (goal_node < 0)
        return std::nullopt;

    RrtPath path;
    path.iterations = iter + 1;
    for (int idx = goal_node; idx >= 0;
         idx = parents[static_cast<std::size_t>(idx)])
        path.points.push_back(nodes[static_cast<std::size_t>(idx)]);
    std::reverse(path.points.begin(), path.points.end());
    path.length = pathLength(path.points);
    return smoothPath(ws, path);
}

RrtPath
smoothPath(const Workspace &ws, const RrtPath &path)
{
    if (path.points.size() <= 2)
        return path;

    RrtPath out;
    out.iterations = path.iterations;
    out.points.push_back(path.points.front());
    std::size_t anchor = 0;
    while (anchor + 1 < path.points.size()) {
        // Greedily connect the anchor to the farthest visible point.
        std::size_t best = anchor + 1;
        for (std::size_t j = path.points.size() - 1; j > anchor + 1; --j) {
            if (ws.segmentFree(path.points[anchor], path.points[j])) {
                best = j;
                break;
            }
        }
        out.points.push_back(path.points[best]);
        anchor = best;
    }
    out.length = pathLength(out.points);
    return out;
}

} // namespace ebs::plan
