#ifndef EBS_PLAN_TASK_GRAPH_H
#define EBS_PLAN_TASK_GRAPH_H

#include <string>
#include <vector>

namespace ebs::plan {

/**
 * Dependency DAG over named subtasks, used for crafting tech-trees
 * (JARVIS-1 / DEPS "obtain diamond pickaxe" chains) and DEPS-style plan
 * decomposition.
 */
class TaskGraph
{
  public:
    /** One subtask node. */
    struct Node
    {
        int id = -1;
        std::string name;
        std::vector<int> deps; ///< node ids that must complete first
        bool done = false;
    };

    /**
     * Add a node with dependencies (ids of previously added nodes).
     * @return the new node's id.
     */
    int add(std::string name, std::vector<int> deps = {});

    const Node &node(int id) const;
    std::size_t size() const { return nodes_.size(); }

    /** Mark a node complete. */
    void markDone(int id);

    bool done(int id) const { return node(id).done; }
    bool allDone() const;

    /** Ids of nodes whose dependencies are all done but are not yet done. */
    std::vector<int> ready() const;

    /**
     * Depth of the longest dependency chain ending at `id` (1 for roots) —
     * a measure of task-horizon used by difficulty scaling.
     */
    int depth(int id) const;

  private:
    std::vector<Node> nodes_;
};

} // namespace ebs::plan

#endif // EBS_PLAN_TASK_GRAPH_H
