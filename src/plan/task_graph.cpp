#include "plan/task_graph.h"

#include <algorithm>
#include <cassert>

namespace ebs::plan {

int
TaskGraph::add(std::string name, std::vector<int> deps)
{
    const int id = static_cast<int>(nodes_.size());
    for ([[maybe_unused]] int dep : deps)
        assert(dep >= 0 && dep < id && "dependencies must pre-exist");
    nodes_.push_back({id, std::move(name), std::move(deps), false});
    return id;
}

const TaskGraph::Node &
TaskGraph::node(int id) const
{
    assert(id >= 0 && id < static_cast<int>(nodes_.size()));
    return nodes_[static_cast<std::size_t>(id)];
}

void
TaskGraph::markDone(int id)
{
    assert(id >= 0 && id < static_cast<int>(nodes_.size()));
    nodes_[static_cast<std::size_t>(id)].done = true;
}

bool
TaskGraph::allDone() const
{
    return std::all_of(nodes_.begin(), nodes_.end(),
                       [](const Node &n) { return n.done; });
}

std::vector<int>
TaskGraph::ready() const
{
    std::vector<int> out;
    for (const auto &n : nodes_) {
        if (n.done)
            continue;
        const bool deps_done =
            std::all_of(n.deps.begin(), n.deps.end(),
                        [&](int d) { return node(d).done; });
        if (deps_done)
            out.push_back(n.id);
    }
    return out;
}

int
TaskGraph::depth(int id) const
{
    const Node &n = node(id);
    int best = 0;
    for (int dep : n.deps)
        best = std::max(best, depth(dep));
    return best + 1;
}

} // namespace ebs::plan
