#include "plan/astar.h"

#include <algorithm>
#include <cstdint>
#include <queue>

namespace ebs::plan {

namespace {

thread_local std::size_t last_expanded = 0;

struct Node
{
    int f;
    int g;
    int idx;

    bool
    operator>(const Node &o) const
    {
        // Tie-break on larger g (deeper nodes first) for faster goal pops.
        return f != o.f ? f > o.f : g < o.g;
    }
};

} // namespace

std::size_t
aStarLastExpanded()
{
    return last_expanded;
}

std::optional<GridPath>
aStar(const env::GridMap &grid, const env::Vec2i &start,
      const env::Vec2i &goal, bool adjacent_ok,
      const std::vector<env::Vec2i> *blocked,
      std::vector<env::Vec2i> *queried)
{
    last_expanded = 0;
    if (!grid.inBounds(start) || !grid.inBounds(goal))
        return std::nullopt;
    if (!grid.walkable(start))
        return std::nullopt;

    auto is_blocked = [&](const env::Vec2i &p) {
        if (queried != nullptr)
            queried->push_back(p);
        if (blocked == nullptr)
            return false;
        for (const auto &b : *blocked)
            if (b == p)
                return true;
        return false;
    };

    auto at_goal = [&](const env::Vec2i &p) {
        return adjacent_ok ? env::chebyshev(p, goal) <= 1 : p == goal;
    };
    if (at_goal(start))
        return GridPath{{start}, 0.0};

    const int w = grid.width();
    const int h = grid.height();
    const std::size_t n = static_cast<std::size_t>(w) * h;
    std::vector<std::int32_t> g_score(n, -1);
    std::vector<std::int32_t> parent(n, -1);

    auto index = [&](const env::Vec2i &p) { return p.y * w + p.x; };
    auto heuristic = [&](const env::Vec2i &p) {
        const int d = env::manhattan(p, goal);
        return adjacent_ok ? std::max(0, d - 1) : d;
    };

    std::priority_queue<Node, std::vector<Node>, std::greater<Node>> open;
    g_score[static_cast<std::size_t>(index(start))] = 0;
    open.push({heuristic(start), 0, index(start)});

    while (!open.empty()) {
        const Node cur = open.top();
        open.pop();
        const env::Vec2i p{cur.idx % w, cur.idx / w};
        if (cur.g > g_score[static_cast<std::size_t>(cur.idx)])
            continue; // stale heap entry
        ++last_expanded;

        if (at_goal(p)) {
            GridPath path;
            path.cost = cur.g;
            int idx = cur.idx;
            while (idx >= 0) {
                path.cells.push_back({idx % w, idx / w});
                idx = parent[static_cast<std::size_t>(idx)];
            }
            std::reverse(path.cells.begin(), path.cells.end());
            return path;
        }

        for (const auto &q : grid.neighbors(p)) {
            if (is_blocked(q))
                continue;
            const int qi = index(q);
            const int ng = cur.g + 1;
            if (g_score[static_cast<std::size_t>(qi)] < 0 ||
                ng < g_score[static_cast<std::size_t>(qi)]) {
                g_score[static_cast<std::size_t>(qi)] = ng;
                parent[static_cast<std::size_t>(qi)] = cur.idx;
                open.push({ng + heuristic(q), ng, qi});
            }
        }
    }
    return std::nullopt;
}

} // namespace ebs::plan
