#ifndef EBS_PLAN_RRT_H
#define EBS_PLAN_RRT_H

#include <optional>
#include <vector>

#include "env/geom.h"
#include "sim/rng.h"

namespace ebs::plan {

/** Circular obstacle in the continuous workspace. */
struct CircleObstacle
{
    env::Vec2d center;
    double radius = 0.0;
};

/** Continuous workspace for RRT queries: an axis-aligned box + obstacles. */
struct Workspace
{
    double min_x = 0.0, min_y = 0.0;
    double max_x = 1.0, max_y = 1.0;
    std::vector<CircleObstacle> obstacles;

    /** True if a point is inside the box and outside every obstacle. */
    bool free(const env::Vec2d &p) const;

    /** True if the straight segment a-b stays collision-free (sampled). */
    bool segmentFree(const env::Vec2d &a, const env::Vec2d &b,
                     double step = 0.01) const;
};

/** Tuning parameters for RRT. */
struct RrtParams
{
    int max_iterations = 4000;
    double step_size = 0.05;      ///< extension length per iteration
    double goal_bias = 0.10;      ///< probability of sampling the goal
    double goal_tolerance = 0.03; ///< arrival radius around the goal
};

/** A continuous path with its length. */
struct RrtPath
{
    std::vector<env::Vec2d> points; ///< start..goal inclusive
    double length = 0.0;
    int iterations = 0; ///< tree extensions performed (compute cost proxy)
};

/**
 * Rapidly-exploring Random Tree planner in a 2-D workspace with circular
 * obstacles, with greedy shortcut smoothing.
 *
 * Substitutes the RRT low-level controllers of RoCo / COHERENT; its
 * iteration count feeds the execution-latency model, so harder scenes
 * genuinely cost more.
 *
 * @return nullopt when no path is found within max_iterations.
 */
std::optional<RrtPath> rrtPlan(const Workspace &ws, const env::Vec2d &start,
                               const env::Vec2d &goal, sim::Rng &rng,
                               const RrtParams &params = {});

/** Greedy shortcut smoothing of a piecewise-linear path. */
RrtPath smoothPath(const Workspace &ws, const RrtPath &path);

} // namespace ebs::plan

#endif // EBS_PLAN_RRT_H
