#include "plan/controller.h"

#include <cassert>

namespace ebs::plan {

namespace {

using env::kNoObject;
using env::ObjectId;
using env::Primitive;
using env::PrimOp;
using env::Subgoal;
using env::SubgoalKind;
using env::Vec2i;

/** Append MoveStep primitives along a path (path[0] = current pos). */
void
appendMoves(Compiled &out, const std::vector<Vec2i> &path)
{
    for (std::size_t i = 1; i < path.size(); ++i) {
        Primitive prim;
        prim.op = PrimOp::MoveStep;
        prim.dest = path[i];
        out.prims.push_back(prim);
    }
}

/** Navigate adjacent to `goal`; returns false (with reason) if unreachable. */
bool
navigate(const env::Environment &environment, int agent_id, const Vec2i &goal,
         Compiled &out)
{
    const Vec2i start = environment.world().agent(agent_id).pos;
    std::vector<Vec2i> path;
    const double cost = environment.motionCost(start, goal, &path);
    if (cost < 0.0) {
        out.reason = "unreachable goal cell";
        return false;
    }
    out.motion_cost += cost;
    appendMoves(out, path);
    return true;
}

/** Navigate adjacent to the effective position of an object. */
bool
navigateToObject(const env::Environment &environment, int agent_id,
                 ObjectId target, Compiled &out)
{
    if (target == kNoObject) {
        out.reason = "subgoal missing target object";
        return false;
    }
    const Vec2i goal = environment.world().effectivePos(target);
    return navigate(environment, agent_id, goal, out);
}

/** Insert an Open primitive if the object is a closed openable. */
void
maybeOpen(const env::Environment &environment, ObjectId id, Compiled &out)
{
    if (id == kNoObject)
        return;
    const env::Object &obj = environment.world().object(id);
    if (obj.openable && !obj.open) {
        Primitive prim;
        prim.op = PrimOp::Open;
        prim.target = id;
        out.prims.push_back(prim);
    }
}

Primitive
interact(PrimOp op, ObjectId target, int param = 0)
{
    Primitive prim;
    prim.op = op;
    prim.target = target;
    prim.param = param;
    return prim;
}

} // namespace

Compiled
compileSubgoal(const env::Environment &environment, int agent_id,
               const Subgoal &subgoal)
{
    Compiled out;

    switch (subgoal.kind) {
      case SubgoalKind::Wait: {
        out.prims.push_back(interact(PrimOp::Wait, kNoObject));
        out.feasible = true;
        return out;
      }
      case SubgoalKind::Explore:
      case SubgoalKind::GoTo: {
        const bool has_cell = subgoal.dest.x >= 0;
        if (!has_cell && subgoal.target == kNoObject) {
            out.reason = "goto/explore without destination";
            return out;
        }
        const Vec2i goal =
            has_cell ? subgoal.dest
                     : environment.world().effectivePos(subgoal.target);
        if (!navigate(environment, agent_id, goal, out))
            return out;
        out.feasible = true;
        return out;
      }
      case SubgoalKind::PickUp: {
        if (!navigateToObject(environment, agent_id, subgoal.target, out))
            return out;
        out.prims.push_back(interact(PrimOp::Pick, subgoal.target));
        out.feasible = true;
        return out;
      }
      case SubgoalKind::PlaceAt: {
        if (subgoal.dest.x < 0) {
            out.reason = "place without destination cell";
            return out;
        }
        if (!navigate(environment, agent_id, subgoal.dest, out))
            return out;
        Primitive prim = interact(PrimOp::Place, kNoObject);
        prim.dest = subgoal.dest;
        out.prims.push_back(prim);
        out.feasible = true;
        return out;
      }
      case SubgoalKind::PutInto: {
        if (!navigateToObject(environment, agent_id, subgoal.dest_obj, out))
            return out;
        maybeOpen(environment, subgoal.dest_obj, out);
        out.prims.push_back(interact(PrimOp::PutIn, subgoal.dest_obj));
        out.feasible = true;
        return out;
      }
      case SubgoalKind::TakeFrom: {
        if (!navigateToObject(environment, agent_id, subgoal.dest_obj, out))
            return out;
        maybeOpen(environment, subgoal.dest_obj, out);
        out.prims.push_back(interact(PrimOp::TakeOut, subgoal.target));
        out.feasible = true;
        return out;
      }
      case SubgoalKind::OpenObj: {
        if (!navigateToObject(environment, agent_id, subgoal.target, out))
            return out;
        out.prims.push_back(interact(PrimOp::Open, subgoal.target));
        out.feasible = true;
        return out;
      }
      case SubgoalKind::Chop: {
        // Navigate to the processing station when one is given (the
        // ingredient is usually carried), otherwise to the ingredient.
        const ObjectId nav = subgoal.dest_obj != kNoObject ? subgoal.dest_obj
                                                           : subgoal.target;
        if (!navigateToObject(environment, agent_id, nav, out))
            return out;
        out.prims.push_back(interact(PrimOp::Chop, subgoal.target));
        out.feasible = true;
        return out;
      }
      case SubgoalKind::Cook: {
        const ObjectId station = subgoal.dest_obj != kNoObject
                                     ? subgoal.dest_obj
                                     : subgoal.target;
        if (!navigateToObject(environment, agent_id, station, out))
            return out;
        out.prims.push_back(
            interact(PrimOp::Cook, subgoal.target, subgoal.param));
        out.feasible = true;
        return out;
      }
      case SubgoalKind::Craft: {
        const ObjectId station = subgoal.dest_obj != kNoObject
                                     ? subgoal.dest_obj
                                     : subgoal.target;
        if (!navigateToObject(environment, agent_id, station, out))
            return out;
        out.prims.push_back(
            interact(PrimOp::Craft, station, subgoal.param));
        out.feasible = true;
        return out;
      }
      case SubgoalKind::Mine: {
        if (!navigateToObject(environment, agent_id, subgoal.target, out))
            return out;
        out.prims.push_back(interact(PrimOp::Mine, subgoal.target));
        out.feasible = true;
        return out;
      }
      case SubgoalKind::LiftWith: {
        if (!navigateToObject(environment, agent_id, subgoal.target, out))
            return out;
        out.prims.push_back(interact(PrimOp::Lift, subgoal.target));
        out.feasible = true;
        return out;
      }
    }

    out.reason = "unknown subgoal kind";
    return out;
}

} // namespace ebs::plan
