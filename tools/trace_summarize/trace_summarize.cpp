#include <cstdio>
#include <string>
#include <vector>

#include "trace_summarize/summarize_core.h"

/**
 * trace_summarize CLI — inspect the Chrome trace-event JSON the obs
 * subsystem exports (obs::Tracer::writeChromeJson; run_all merges
 * per-suite files into BENCH_trace.json).
 *
 *     trace_summarize FILE            flame-style per-phase rollup
 *     trace_summarize FILE --validate check writer invariants only
 *
 * --validate verifies the file parses as trace JSON, every (pid, tid)
 * track's timestamps are nondecreasing in array order, and begin/end
 * events balance — the invariants Perfetto relies on. Violations go to
 * stderr, one per line. Exit codes: 0 valid, 1 violations or parse
 * failure, 2 usage error.
 */

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s FILE [--validate]\n"
                 "Summarize (or, with --validate, check) a Chrome "
                 "trace-event JSON file\nwritten by the obs subsystem "
                 "(BENCH_trace.json).\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    bool validate_only = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--validate") {
            validate_only = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         arg.c_str());
            return usage(argv[0]);
        } else if (path.empty()) {
            path = arg;
        } else {
            std::fprintf(stderr, "%s: more than one FILE\n", argv[0]);
            return usage(argv[0]);
        }
    }
    if (path.empty())
        return usage(argv[0]);

    const ebs::tracetool::ParseResult parsed =
        ebs::tracetool::parseTraceFile(path);
    if (!parsed.ok) {
        std::fprintf(stderr, "%s: %s\n", argv[0], parsed.error.c_str());
        return 1;
    }

    const std::vector<std::string> issues =
        ebs::tracetool::validate(parsed.events);
    if (validate_only) {
        for (const auto &issue : issues)
            std::fprintf(stderr, "%s\n", issue.c_str());
        if (!issues.empty()) {
            std::fprintf(stderr, "%s: %zu invariant violation(s)\n",
                         path.c_str(), issues.size());
            return 1;
        }
        std::printf("%s: OK (%zu events)\n", path.c_str(),
                    parsed.events.size());
        return 0;
    }

    // Rollup mode still surfaces violations (to stderr) but proceeds:
    // a slightly off trace is still worth eyeballing.
    for (const auto &issue : issues)
        std::fprintf(stderr, "%s\n", issue.c_str());
    const std::string rollup = ebs::tracetool::summarize(parsed.events);
    std::fputs(rollup.c_str(), stdout);
    return 0;
}
