#include "trace_summarize/summarize_core.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace ebs::tracetool {

namespace {

/**
 * Minimal recursive-descent JSON reader. General enough for any JSON,
 * but the caller only keeps the fields an event object carries; unknown
 * keys and value shapes are parsed (so malformed text is still caught)
 * and discarded.
 */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    bool
    parse(std::vector<Event> &events, std::string &error)
    {
        skipWs();
        if (!parseTopLevel(events)) {
            error = error_.empty() ? fail("malformed JSON") : error_;
            return false;
        }
        skipWs();
        if (pos_ != text_.size()) {
            error = fail("trailing content after the top-level object");
            return false;
        }
        return true;
    }

  private:
    std::string
    fail(const std::string &what)
    {
        if (error_.empty())
            error_ = "offset " + std::to_string(pos_) + ": " + what;
        return error_;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(char expected)
    {
        skipWs();
        if (pos_ >= text_.size() || text_[pos_] != expected) {
            fail(std::string("expected '") + expected + "'");
            return false;
        }
        ++pos_;
        return true;
    }

    bool
    peekIs(char c)
    {
        skipWs();
        return pos_ < text_.size() && text_[pos_] == c;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    break;
                const char esc = text_[pos_++];
                switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail("truncated \\u escape");
                        return false;
                    }
                    // Decode into a single byte when it fits (the writer
                    // only emits \u00xx control escapes); wider code
                    // points degrade to '?' — the tool never needs them.
                    unsigned value = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        value <<= 4U;
                        if (h >= '0' && h <= '9')
                            value |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            value |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            value |= static_cast<unsigned>(h - 'A' + 10);
                        else {
                            fail("bad \\u escape digit");
                            return false;
                        }
                    }
                    out.push_back(value < 0x80 ? static_cast<char>(value)
                                               : '?');
                    break;
                }
                default: fail("unknown escape"); return false;
                }
                continue;
            }
            out.push_back(c);
        }
        fail("unterminated string");
        return false;
    }

    bool
    parseNumber(double &out)
    {
        skipWs();
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        out = std::strtod(start, &end);
        if (end == start) {
            fail("expected a number");
            return false;
        }
        pos_ += static_cast<std::size_t>(end - start);
        return true;
    }

    /** Parse and discard any JSON value. */
    bool
    skipValue()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return false;
        }
        const char c = text_[pos_];
        if (c == '"') {
            std::string ignored;
            return parseString(ignored);
        }
        if (c == '{') {
            ++pos_;
            if (peekIs('}')) {
                ++pos_;
                return true;
            }
            for (;;) {
                std::string key;
                if (!parseString(key) || !consume(':') || !skipValue())
                    return false;
                if (peekIs(',')) {
                    ++pos_;
                    continue;
                }
                return consume('}');
            }
        }
        if (c == '[') {
            ++pos_;
            if (peekIs(']')) {
                ++pos_;
                return true;
            }
            for (;;) {
                if (!skipValue())
                    return false;
                if (peekIs(',')) {
                    ++pos_;
                    continue;
                }
                return consume(']');
            }
        }
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            return true;
        }
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return true;
        }
        double ignored = 0.0;
        return parseNumber(ignored);
    }

    bool
    parseArgs(Event &event)
    {
        if (!consume('{'))
            return false;
        if (peekIs('}')) {
            ++pos_;
            return true;
        }
        for (;;) {
            std::string key;
            if (!parseString(key) || !consume(':'))
                return false;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '"') {
                std::string value;
                if (!parseString(value))
                    return false;
                event.str_args.emplace_back(std::move(key),
                                            std::move(value));
            } else if (pos_ < text_.size() &&
                       (text_[pos_] == '-' ||
                        (text_[pos_] >= '0' && text_[pos_] <= '9'))) {
                double value = 0.0;
                if (!parseNumber(value))
                    return false;
                event.num_args.emplace_back(std::move(key), value);
            } else {
                if (!skipValue())
                    return false;
            }
            if (peekIs(',')) {
                ++pos_;
                continue;
            }
            return consume('}');
        }
    }

    bool
    parseEvent(Event &event)
    {
        if (!consume('{'))
            return false;
        if (peekIs('}')) {
            ++pos_;
            return true;
        }
        for (;;) {
            std::string key;
            if (!parseString(key) || !consume(':'))
                return false;
            if (key == "name" || key == "cat" || key == "ph" ||
                key == "s") {
                std::string value;
                if (!parseString(value))
                    return false;
                if (key == "name")
                    event.name = std::move(value);
                else if (key == "cat")
                    event.cat = std::move(value);
                else if (key == "ph")
                    event.ph = value.empty() ? '?' : value[0];
            } else if (key == "ts" || key == "dur" || key == "pid" ||
                       key == "tid") {
                double value = 0.0;
                if (!parseNumber(value))
                    return false;
                if (key == "ts") {
                    event.ts_us = value;
                    event.has_ts = true;
                } else if (key == "dur") {
                    event.dur_us = value;
                    event.has_dur = true;
                } else if (key == "pid") {
                    event.pid = static_cast<long long>(value);
                } else {
                    event.tid = static_cast<long long>(value);
                }
            } else if (key == "args") {
                if (!parseArgs(event))
                    return false;
            } else {
                if (!skipValue())
                    return false;
            }
            if (peekIs(',')) {
                ++pos_;
                continue;
            }
            return consume('}');
        }
    }

    bool
    parseTopLevel(std::vector<Event> &events)
    {
        if (!consume('{'))
            return false;
        bool saw_events = false;
        if (peekIs('}')) {
            fail("top-level object has no \"traceEvents\" array");
            return false;
        }
        for (;;) {
            std::string key;
            if (!parseString(key) || !consume(':'))
                return false;
            if (key == "traceEvents") {
                saw_events = true;
                if (!consume('['))
                    return false;
                if (peekIs(']')) {
                    ++pos_;
                } else {
                    for (;;) {
                        Event event;
                        if (!parseEvent(event))
                            return false;
                        events.push_back(std::move(event));
                        if (peekIs(',')) {
                            ++pos_;
                            continue;
                        }
                        if (!consume(']'))
                            return false;
                        break;
                    }
                }
            } else {
                if (!skipValue())
                    return false;
            }
            if (peekIs(',')) {
                ++pos_;
                continue;
            }
            if (!consume('}'))
                return false;
            break;
        }
        if (!saw_events) {
            fail("top-level object has no \"traceEvents\" array");
            return false;
        }
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string error_;
};

std::string
trackLabel(long long pid, long long tid)
{
    return "pid=" + std::to_string(pid) + " tid=" + std::to_string(tid);
}

void
appendSeconds(std::string &out, double us)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", us / 1e6);
    out += buf;
}

} // namespace

ParseResult
parseTraceText(const std::string &text)
{
    ParseResult result;
    Parser parser(text);
    result.ok = parser.parse(result.events, result.error);
    if (!result.ok)
        result.events.clear();
    return result;
}

ParseResult
parseTraceFile(const std::string &path)
{
    ParseResult result;
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        result.error = path + ": cannot open";
        return result;
    }
    std::string text;
    char buf[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof buf, file)) > 0)
        text.append(buf, got);
    const bool read_ok = std::ferror(file) == 0;
    std::fclose(file);
    if (!read_ok) {
        result.error = path + ": read error";
        return result;
    }
    result = parseTraceText(text);
    if (!result.ok)
        result.error = path + ": " + result.error;
    return result;
}

std::vector<std::string>
validate(const std::vector<Event> &events)
{
    std::vector<std::string> issues;
    struct Track
    {
        bool has_last = false;
        double last_ts_us = 0.0;
        std::vector<std::string> open; ///< B/E name stack
    };
    std::map<std::pair<long long, long long>, Track> tracks;

    for (std::size_t i = 0; i < events.size(); ++i) {
        const Event &event = events[i];
        if (event.ph == 'M')
            continue; // metadata carries no timeline
        Track &track = tracks[{event.pid, event.tid}];
        if (event.has_ts) {
            if (track.has_last && event.ts_us < track.last_ts_us) {
                issues.push_back(
                    trackLabel(event.pid, event.tid) +
                    ": ts goes backwards at event #" + std::to_string(i) +
                    " (\"" + event.name + "\")");
            }
            track.has_last = true;
            track.last_ts_us = event.ts_us;
        } else {
            issues.push_back(trackLabel(event.pid, event.tid) +
                             ": event #" + std::to_string(i) + " (\"" +
                             event.name + "\") has no ts");
        }
        if (event.ph == 'B') {
            track.open.push_back(event.name);
        } else if (event.ph == 'E') {
            if (track.open.empty()) {
                issues.push_back(trackLabel(event.pid, event.tid) +
                                 ": E without an open B at event #" +
                                 std::to_string(i));
            } else {
                track.open.pop_back();
            }
        } else if (event.ph == 'X') {
            if (event.has_dur && event.dur_us < 0.0) {
                issues.push_back(trackLabel(event.pid, event.tid) +
                                 ": X with negative dur at event #" +
                                 std::to_string(i) + " (\"" + event.name +
                                 "\")");
            }
        }
    }

    for (const auto &[key, track] : tracks) {
        for (const auto &name : track.open)
            issues.push_back(trackLabel(key.first, key.second) +
                             ": span \"" + name +
                             "\" is still open at end of trace");
    }
    return issues;
}

std::string
summarize(const std::vector<Event> &events)
{
    // Process labels from process_name metadata, for readable headings.
    std::map<long long, std::string> process_names;
    for (const Event &event : events) {
        if (event.ph == 'M' && event.name == "process_name") {
            for (const auto &[key, value] : event.str_args)
                if (key == "name")
                    process_names[event.pid] = value;
        }
    }
    const auto processLabel = [&process_names](long long pid) {
        const auto it = process_names.find(pid);
        const std::string name =
            it != process_names.end() ? it->second : "pid " +
                                                         std::to_string(pid);
        return name;
    };

    struct SpanStats
    {
        long long count = 0;
        double total_us = 0.0;
    };
    struct InstantStats
    {
        long long count = 0;
        std::map<std::string, double> arg_sums;
    };

    // B/E spans roll up by (process label, full stack path): the
    // flame-style view. Self time is total minus children, which the
    // path ordering below makes easy to eyeball; the tool prints totals.
    std::map<std::pair<std::string, std::string>, SpanStats> spans;
    std::map<std::pair<std::string, std::string>, SpanStats> complete;
    std::map<std::pair<std::string, std::string>, InstantStats> instants;

    struct OpenSpan
    {
        std::string path;
        double begin_us = 0.0;
    };
    std::map<std::pair<long long, long long>, std::vector<OpenSpan>> stacks;

    for (const Event &event : events) {
        if (event.ph == 'M')
            continue;
        const std::string process = processLabel(event.pid);
        auto &stack = stacks[{event.pid, event.tid}];
        if (event.ph == 'B') {
            // Collapse per-episode labels ("CMAS#8919") and per-step
            // brackets ("step 12") to their category so phases aggregate
            // across episodes and steps — the flame view; Perfetto keeps
            // the labeled detail.
            const std::string &component =
                event.cat == "episode" || event.cat == "step"
                    ? event.cat
                    : event.name;
            std::string path =
                stack.empty() ? component
                              : stack.back().path + ";" + component;
            stack.push_back({std::move(path), event.ts_us});
        } else if (event.ph == 'E') {
            if (stack.empty())
                continue; // validate() reports this; keep rolling up
            SpanStats &stats = spans[{process, stack.back().path}];
            ++stats.count;
            stats.total_us += event.ts_us - stack.back().begin_us;
            stack.pop_back();
        } else if (event.ph == 'X') {
            SpanStats &stats = complete[{process, event.name}];
            ++stats.count;
            stats.total_us += event.dur_us;
        } else if (event.ph == 'i') {
            InstantStats &stats =
                instants[{process, event.cat + ";" + event.name}];
            ++stats.count;
            for (const auto &[key, value] : event.num_args)
                stats.arg_sums[key] += value;
        }
    }

    std::string out;
    std::string last_process;
    std::string last_section;
    const auto heading = [&out, &last_process,
                          &last_section](const std::string &process,
                                         const char *section) {
        if (process != last_process) {
            out += "== " + process + " ==\n";
            last_process = process;
            last_section.clear();
        }
        if (section != last_section) {
            out += std::string("  [") + section + "]\n";
            last_section = section;
        }
    };

    for (const auto &[key, stats] : spans) {
        heading(key.first, "spans");
        out += "    " + std::to_string(stats.count) + "x  total_s=";
        appendSeconds(out, stats.total_us);
        out += "  " + key.second + "\n";
    }
    for (const auto &[key, stats] : complete) {
        heading(key.first, "tasks");
        out += "    " + std::to_string(stats.count) + "x  total_s=";
        appendSeconds(out, stats.total_us);
        out += "  " + key.second + "\n";
    }
    for (const auto &[key, stats] : instants) {
        heading(key.first, "instants");
        out += "    " + std::to_string(stats.count) + "x  " + key.second;
        for (const auto &[arg, sum] : stats.arg_sums) {
            char buf[64];
            std::snprintf(buf, sizeof buf, "%.6g", sum);
            out += "  sum(" + arg + ")=" + buf;
        }
        out += "\n";
    }
    if (out.empty())
        out = "(no events)\n";
    return out;
}

} // namespace ebs::tracetool
