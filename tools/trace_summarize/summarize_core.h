#ifndef EBS_TOOLS_TRACE_SUMMARIZE_CORE_H
#define EBS_TOOLS_TRACE_SUMMARIZE_CORE_H

#include <string>
#include <utility>
#include <vector>

/**
 * Core of the trace_summarize CLI (tools/trace_summarize): parse a
 * Chrome trace-event JSON file (the format obs::Tracer::writeChromeJson
 * emits and run_all merges into BENCH_trace.json), check the invariants
 * the writer promises, and print a flame-style per-phase/per-backend
 * rollup.
 *
 * Split out as a library (mirroring tools/ebs_lint) so tests can call
 * the parser/validator directly on Finding-level data instead of
 * scraping CLI output. The parser is deliberately self-contained — a
 * minimal recursive-descent JSON reader — because the repo's other JSON
 * consumer (tools in bench/) is shape-specialized to metric files.
 */
namespace ebs::tracetool {

/** One trace event, with only the fields the tool consumes. */
struct Event
{
    std::string name;
    std::string cat;
    char ph = '?'; ///< B/E/X/i/M (first byte of the "ph" string)
    bool has_ts = false;
    double ts_us = 0.0; ///< Chrome trace timestamps are microseconds
    bool has_dur = false;
    double dur_us = 0.0;
    long long pid = 0;
    long long tid = 0;
    /** Numeric "args" entries (token counts, delays, occupancy...). */
    std::vector<std::pair<std::string, double>> num_args;
    /** String "args" entries (process_name metadata labels). */
    std::vector<std::pair<std::string, std::string>> str_args;
};

struct ParseResult
{
    bool ok = false;
    std::string error; ///< empty when ok
    std::vector<Event> events;
};

/** Parse trace JSON from a string (must be a top-level object with a
 * "traceEvents" array of event objects). */
ParseResult parseTraceText(const std::string &text);

/** Read and parse a trace file. */
ParseResult parseTraceFile(const std::string &path);

/**
 * Check the invariants obs::Tracer::writeChromeJson promises:
 *  - every timestamped event's ts is nondecreasing within its
 *    (pid, tid) track, in array order;
 *  - B/E events balance per track (no E without an open B, nothing
 *    left open at the end);
 *  - X events carry a nonnegative dur.
 * Returns one human-readable line per violation (empty = valid).
 */
std::vector<std::string> validate(const std::vector<Event> &events);

/**
 * Flame-style rollup: B/E spans aggregated by their full stack path
 * (count, total seconds), X spans and instants aggregated by name with
 * summed numeric args. Tracks are labeled with their process_name
 * metadata when present. Deterministic: every section is sorted.
 */
std::string summarize(const std::vector<Event> &events);

} // namespace ebs::tracetool

#endif // EBS_TOOLS_TRACE_SUMMARIZE_CORE_H
