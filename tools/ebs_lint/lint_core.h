#ifndef EBS_TOOLS_EBS_LINT_LINT_CORE_H
#define EBS_TOOLS_EBS_LINT_LINT_CORE_H

#include <string>
#include <vector>

/**
 * @file
 * Core of `ebs_lint`: the project-specific determinism checker.
 *
 * The repo's headline guarantee is that paper metrics are bit-identical
 * at any EBS_JOBS. The dynamic side of that guarantee (determinism
 * gtests, the TSan CI job) only exercises the configurations it runs;
 * this linter makes the underlying *coding invariants* static: it walks
 * every source file token-wise (comments and string literals stripped)
 * and flags the constructs that have historically broken determinism in
 * serving simulators. Each rule names the invariant it protects:
 *
 *  - `unordered-container`: std::unordered_map/set and std::hash —
 *    iteration order is unspecified and varies across libstdc++
 *    versions and pointer layouts, so any fold over one is
 *    machine-dependent. Result-bearing code uses std::map/std::set or
 *    sorted vectors.
 *  - `raw-random`: rand/srand/rand_r/drand48/std::random_device — draws
 *    outside the seeded sim::Rng streams cannot be reproduced from an
 *    episode seed.
 *  - `host-clock`: steady_clock/system_clock/high_resolution_clock,
 *    clock_gettime/gettimeofday/timespec_get, this_thread::get_id —
 *    host time and thread identity leak scheduling into results. The
 *    one sanctioned host-timing site is stats::hostNow()
 *    (src/stats/host_clock.h), which carries the suppression.
 *  - `pointer-keyed-order`: std::map/std::set/std::less keyed on a
 *    pointer type — pointer order is allocation order, which changes
 *    run to run; key on a stable id instead (cf. llm::BackendId).
 *  - `float-accum-unordered`: compound accumulation (`+=`/`-=`) inside
 *    a range-for over an unordered container — float addition is not
 *    associative, so the sum depends on hash-bucket order even when the
 *    element set is deterministic.
 *
 * Legitimate exceptions carry an inline suppression:
 *     // EBS_LINT_ALLOW(<rule>): <reason>
 * which silences `<rule>` on the comment's own line and on the next
 * line. A malformed suppression (unknown rule, or no reason after the
 * colon) is itself reported under the `lint-allow` rule, so the
 * allowlist stays auditable.
 */

namespace ebs::lint {

/** One rule violation at a source location. */
struct Finding
{
    std::string file; ///< path as given to the linter
    int line = 0;     ///< 1-based
    std::string rule;
    std::string detail;

    bool operator==(const Finding &) const = default;
};

/** "file:line: rule: detail" — the exact CLI output format. */
std::string formatFinding(const Finding &finding);

/** The known rule names (sorted), for --list-rules and allow parsing. */
const std::vector<std::string> &ruleNames();

/**
 * Lint one in-memory source. `path` is used only for Finding::file.
 * Findings are ordered by line, then rule name; duplicates of the same
 * (rule, line) are collapsed.
 */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &content);

/** Lint one file on disk (empty result plus a `lint-io` finding when
 * unreadable, so a vanished file cannot pass silently). */
std::vector<Finding> lintFile(const std::string &path);

struct TreeOptions
{
    /** Path substrings to skip. "lint_fixtures" is always skipped —
     * the fixture corpus exists to violate the rules. */
    std::vector<std::string> exclude_substrings;
};

/**
 * Recursively lint every C++ source (.h/.hpp/.cpp/.cc) under the given
 * roots. Files are visited in sorted path order so output is stable.
 * A root may also be a single file.
 */
std::vector<Finding> lintTree(const std::vector<std::string> &roots,
                              const TreeOptions &options = {});

} // namespace ebs::lint

#endif // EBS_TOOLS_EBS_LINT_LINT_CORE_H
