#include <cstdio>
#include <string>
#include <vector>

#include "ebs_lint/lint_core.h"

/**
 * ebs_lint CLI — the determinism checker's command-line face.
 *
 *     ebs_lint [--exclude SUBSTR]... ROOT [ROOT...]
 *     ebs_lint --list-rules
 *
 * Findings go to stdout as "file:line: rule: detail" (one per line, the
 * exact format lint_test.cpp pins down); the summary goes to stderr so a
 * CI artifact of stdout is pure findings. Exit codes: 0 clean, 1 at
 * least one finding, 2 usage error.
 *
 * The tier-1 ctest entry (`ebs_lint_tree`, tools/CMakeLists.txt) runs
 * this over src/, bench/, and tests/.
 */

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--exclude SUBSTR]... ROOT [ROOT...]\n"
                 "       %s --list-rules\n"
                 "Lints C++ sources (.h/.hpp/.cpp/.cc) under each ROOT "
                 "for determinism-breaking constructs.\n"
                 "Suppress a finding with: "
                 "// EBS_LINT_ALLOW(<rule>): <reason>\n",
                 argv0, argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> roots;
    ebs::lint::TreeOptions options;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const auto &rule : ebs::lint::ruleNames())
                std::printf("%s\n", rule.c_str());
            return 0;
        }
        if (arg == "--exclude") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --exclude needs a value\n",
                             argv[0]);
                return usage(argv[0]);
            }
            options.exclude_substrings.push_back(argv[++i]);
            continue;
        }
        if (arg == "--help" || arg == "-h")
            return usage(argv[0]);
        if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         arg.c_str());
            return usage(argv[0]);
        }
        roots.push_back(arg);
    }
    if (roots.empty())
        return usage(argv[0]);

    const auto findings = ebs::lint::lintTree(roots, options);
    for (const auto &finding : findings)
        std::printf("%s\n", ebs::lint::formatFinding(finding).c_str());

    if (findings.empty()) {
        std::fprintf(stderr, "ebs_lint: clean\n");
        return 0;
    }
    std::fprintf(stderr, "ebs_lint: %zu finding(s)\n", findings.size());
    return 1;
}
