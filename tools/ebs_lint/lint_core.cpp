#include "ebs_lint/lint_core.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace ebs::lint {

namespace {

namespace fs = std::filesystem;

/** One lexical token of the comment- and string-stripped source. */
struct Token
{
    std::string text;
    int line = 0;
};

/** Per-line suppressions parsed from EBS_LINT_ALLOW comments. */
using AllowMap = std::map<int, std::set<std::string>>;

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string
trimmed(const std::string &s)
{
    std::size_t begin = 0;
    std::size_t end = s.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return s.substr(begin, end - begin);
}

/**
 * Parse every EBS_LINT_ALLOW occurrence in one comment line. Well-formed
 * allows (known rule, non-empty reason after the colon) populate
 * `allows`; malformed ones become `lint-allow` findings so a typo'd
 * suppression cannot silently disable nothing.
 */
void
processCommentLine(const std::string &text, int line,
                   const std::string &path, AllowMap &allows,
                   std::vector<Finding> &findings)
{
    static const std::string kMarker = "EBS_LINT_ALLOW";
    std::size_t pos = 0;
    while ((pos = text.find(kMarker, pos)) != std::string::npos) {
        pos += kMarker.size();
        const auto malformed = [&](const std::string &why) {
            findings.push_back(
                {path, line, "lint-allow",
                 "malformed suppression (" + why +
                     "); want: EBS_LINT_ALLOW(<rule>): <reason>"});
        };
        if (pos >= text.size() || text[pos] != '(') {
            malformed("missing '(<rule>)'");
            continue;
        }
        const std::size_t close = text.find(')', pos);
        if (close == std::string::npos) {
            malformed("unterminated '('");
            continue;
        }
        const std::string rule = trimmed(text.substr(pos + 1, close - pos - 1));
        pos = close + 1;
        const auto &rules = ruleNames();
        if (std::find(rules.begin(), rules.end(), rule) == rules.end()) {
            malformed("unknown rule '" + rule + "'");
            continue;
        }
        if (pos >= text.size() || text[pos] != ':') {
            malformed("missing ': <reason>' after rule '" + rule + "'");
            continue;
        }
        if (trimmed(text.substr(pos + 1,
                                text.find(kMarker, pos) - pos - 1))
                .empty()) {
            malformed("empty reason for rule '" + rule + "'");
            continue;
        }
        allows[line].insert(rule);
    }
}

/**
 * Strip comments, string literals, and character literals, keeping line
 * structure; tokenize the remainder; parse EBS_LINT_ALLOW suppressions
 * out of the stripped comments.
 */
void
lexSource(const std::string &path, const std::string &content,
          std::vector<Token> &tokens, AllowMap &allows,
          std::vector<Finding> &findings)
{
    // Pass 1: comment/string stripping into (char, line) pairs.
    std::vector<std::pair<char, int>> code;
    code.reserve(content.size());
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = content.size();
    std::string comment; // current comment line's text
    int comment_line = 0;

    const auto flushComment = [&] {
        if (!comment.empty() || comment_line != 0)
            processCommentLine(comment, comment_line, path, allows,
                               findings);
        comment.clear();
        comment_line = 0;
    };

    while (i < n) {
        const char c = content[i];
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
            comment_line = line;
            i += 2;
            while (i < n && content[i] != '\n')
                comment += content[i++];
            flushComment();
            continue;
        }
        if (c == '/' && i + 1 < n && content[i + 1] == '*') {
            comment_line = line;
            i += 2;
            while (i + 1 < n &&
                   !(content[i] == '*' && content[i + 1] == '/')) {
                if (content[i] == '\n') {
                    flushComment();
                    ++line;
                    comment_line = line;
                } else {
                    comment += content[i];
                }
                ++i;
            }
            flushComment();
            i = i + 1 < n ? i + 2 : n;
            code.emplace_back(' ', line);
            continue;
        }
        if (c == '"') {
            // Raw string literal? (R"delim( ... )delim")
            const bool raw = !code.empty() && code.back().first == 'R' &&
                             (code.size() < 2 ||
                              !isIdentChar(code[code.size() - 2].first));
            ++i;
            if (raw) {
                std::string delim;
                while (i < n && content[i] != '(')
                    delim += content[i++];
                const std::string closer = ")" + delim + "\"";
                const std::size_t end = content.find(closer, i);
                const std::size_t stop =
                    end == std::string::npos ? n : end + closer.size();
                for (; i < stop; ++i)
                    if (content[i] == '\n')
                        ++line;
            } else {
                while (i < n && content[i] != '"') {
                    if (content[i] == '\\' && i + 1 < n)
                        ++i;
                    if (content[i] == '\n')
                        ++line;
                    ++i;
                }
                if (i < n)
                    ++i; // closing quote
            }
            code.emplace_back(' ', line);
            continue;
        }
        if (c == '\'' &&
            (code.empty() || !isIdentChar(code.back().first))) {
            // A quote after an identifier/number char is a digit
            // separator (1'000'000) or literal suffix, not a character
            // literal — scanning for its mate would swallow real code.
            ++i;
            while (i < n && content[i] != '\'') {
                if (content[i] == '\\' && i + 1 < n)
                    ++i;
                ++i;
            }
            if (i < n)
                ++i;
            code.emplace_back(' ', line);
            continue;
        }
        if (c == '\n') {
            ++line;
            code.emplace_back('\n', line);
            ++i;
            continue;
        }
        code.emplace_back(c, line);
        ++i;
    }

    // Pass 2: tokenize.
    static const std::set<std::string> kTwoCharOps = {
        "::", "+=", "-=", "->", "<<", ">>", "<=", ">=", "==", "!=",
        "&&", "||"};
    std::size_t k = 0;
    const std::size_t m = code.size();
    while (k < m) {
        const char c = code[k].first;
        const int at = code[k].second;
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++k;
            continue;
        }
        if (isIdentStart(c)) {
            std::string word;
            while (k < m && isIdentChar(code[k].first))
                word += code[k++].first;
            tokens.push_back({std::move(word), at});
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            // pp-number: swallow the whole literal (1e6, 0x1f, 1.5e-3)
            // so its exponent letters never look like identifiers.
            std::string num;
            while (k < m &&
                   (isIdentChar(code[k].first) || code[k].first == '.' ||
                    code[k].first == '\'' ||
                    ((code[k].first == '+' || code[k].first == '-') &&
                     !num.empty() &&
                     (num.back() == 'e' || num.back() == 'E' ||
                      num.back() == 'p' || num.back() == 'P'))))
                num += code[k++].first;
            tokens.push_back({std::move(num), at});
            continue;
        }
        if (k + 1 < m) {
            const std::string two{c, code[k + 1].first};
            if (kTwoCharOps.count(two)) {
                tokens.push_back({two, at});
                k += 2;
                continue;
            }
        }
        tokens.push_back({std::string(1, c), at});
        ++k;
    }
}

/** Template-argument depth bump for one token ('<' family). */
int
angleDelta(const std::string &t)
{
    if (t == "<")
        return 1;
    if (t == ">")
        return -1;
    if (t == ">>")
        return -2;
    return 0;
}

/** Matching-close scan for parens/braces starting at the opener. */
std::size_t
matchDelim(const std::vector<Token> &toks, std::size_t open,
           const std::string &opener, const std::string &closer)
{
    int depth = 0;
    for (std::size_t j = open; j < toks.size(); ++j) {
        if (toks[j].text == opener)
            ++depth;
        else if (toks[j].text == closer && --depth == 0)
            return j;
    }
    return toks.size();
}

/**
 * Files the suite-io rule applies to: the benchmark suites themselves
 * (bench_*.cpp / bench_*.h anywhere) plus the SuiteContext
 * implementation and the standalone wrapper. The fleet driver
 * (run_all.cpp), diff_metrics, and fleet_plan are drivers, not suites —
 * their stdout is not captured per-suite, so they stay out of scope.
 */
bool
suiteIoScope(const std::string &path)
{
    const std::string name = fs::path(path).filename().string();
    return name.rfind("bench_", 0) == 0 || name == "suite.h" ||
           name == "suite.cpp" || name == "suite_main.cpp";
}

struct RuleSink
{
    const std::string &path;
    std::set<std::pair<int, std::string>> seen;
    std::vector<Finding> out;

    void hit(int line, std::string rule, std::string detail)
    {
        if (seen.emplace(line, rule).second)
            out.push_back(
                {path, line, std::move(rule), std::move(detail)});
    }
};

void
runTokenRules(const std::vector<Token> &toks, RuleSink &sink)
{
    static const std::set<std::string> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    static const std::set<std::string> kRandom = {
        "rand", "srand", "rand_r", "drand48", "random_device"};
    static const std::set<std::string> kHostClock = {
        "steady_clock", "system_clock", "high_resolution_clock",
        "clock_gettime", "gettimeofday", "timespec_get", "get_id"};
    static const std::set<std::string> kOrderedAssoc = {
        "map", "set", "multimap", "multiset", "less"};
    static const std::set<std::string> kPrintfFamily = {
        "printf", "fprintf", "vprintf", "vfprintf", "puts",
        "fputs",  "putchar", "fputc",   "putc",     "fwrite"};
    static const std::set<std::string> kProcessStreams = {
        "cout", "cerr", "clog", "stdout", "stderr"};

    const bool suite_scope = suiteIoScope(sink.path);

    const auto prev = [&](std::size_t i) -> const std::string & {
        static const std::string empty;
        return i > 0 ? toks[i - 1].text : empty;
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const std::string &t = toks[i].text;
        const int line = toks[i].line;

        if (kUnordered.count(t)) {
            sink.hit(line, "unordered-container",
                     "'" + t +
                         "': iteration order is unspecified and varies "
                         "across standard libraries — result-bearing "
                         "folds must use std::map/std::set or sorted "
                         "vectors");
        }
        if (t == "hash" && prev(i) == "::" && i >= 2 &&
            toks[i - 2].text == "std") {
            sink.hit(line, "unordered-container",
                     "'std::hash': hash values are "
                     "implementation-defined; derive stable ids "
                     "explicitly (cf. llm::BackendId's FNV-1a)");
        }
        if (kRandom.count(t)) {
            sink.hit(line, "raw-random",
                     "'" + t +
                         "': randomness outside sim::Rng cannot be "
                         "reproduced from an episode seed — fork a "
                         "seeded stream instead");
        }
        // Direct process-stream I/O inside a benchmark suite bypasses
        // the SuiteContext sink, so the bytes escape the per-suite log
        // the in-process fleet captures (and byte-compares against the
        // spawned oracle). Member calls (ctx.printf, stream.fputs) are
        // the sanctioned sinks and don't fire; std::printf does (its
        // previous token is '::').
        if (suite_scope) {
            if (kPrintfFamily.count(t) && prev(i) != "." &&
                prev(i) != "->" && i + 1 < toks.size() &&
                toks[i + 1].text == "(") {
                sink.hit(line, "suite-io",
                         "'" + t +
                             "': direct stdio write in a suite escapes "
                             "the per-suite capture — route output "
                             "through SuiteContext (ctx.printf / "
                             "ctx.eprintf / ctx.write)");
            }
            if (kProcessStreams.count(t) && prev(i) != "." &&
                prev(i) != "->") {
                sink.hit(line, "suite-io",
                         "'" + t +
                             "': process-global stream in a suite "
                             "escapes the per-suite capture — use the "
                             "SuiteContext sinks (ctx.out() / "
                             "ctx.err())");
            }
        }

        if (kHostClock.count(t)) {
            sink.hit(line, "host-clock",
                     "'" + t +
                         "': host time/thread identity leaks scheduling "
                         "into results — simulated paths use the episode "
                         "clock; host diagnostics go through "
                         "stats::hostNow() (src/stats/host_clock.h)");
        }

        // std::map</set</less< with a pointer-typed first argument.
        if (kOrderedAssoc.count(t) && prev(i) == "::" &&
            i + 1 < toks.size() && toks[i + 1].text == "<") {
            int depth = 1;
            for (std::size_t j = i + 2;
                 j < toks.size() && depth > 0; ++j) {
                const std::string &a = toks[j].text;
                if (depth == 1 && a == ",")
                    break; // key type ends; value type may hold pointers
                if (depth == 1 && a == "*") {
                    sink.hit(line, "pointer-keyed-order",
                             "'std::" + t +
                                 "' keyed on a pointer: pointer order is "
                                 "allocation order and changes run to "
                                 "run — key on a stable id instead");
                    break;
                }
                depth += angleDelta(a);
                if (a == "(" || a == "[")
                    break; // not a template argument list after all
            }
        }

        // Compound accumulation inside a range-for over an unordered
        // container: even a deterministic element set sums in
        // bucket order, and float addition is not associative.
        if (t == "for" && i + 1 < toks.size() &&
            toks[i + 1].text == "(") {
            const std::size_t close = matchDelim(toks, i + 1, "(", ")");
            std::size_t colon = toks.size();
            int depth = 0;
            for (std::size_t j = i + 1; j < close; ++j) {
                if (toks[j].text == "(")
                    ++depth;
                else if (toks[j].text == ")")
                    --depth;
                else if (toks[j].text == ":" && depth == 1) {
                    colon = j;
                    break;
                }
            }
            if (colon == toks.size())
                continue; // not a range-for
            bool unordered_range = false;
            for (std::size_t j = colon + 1; j < close; ++j)
                if (toks[j].text.rfind("unordered_", 0) == 0)
                    unordered_range = true;
            if (!unordered_range || close + 1 >= toks.size())
                continue;
            std::size_t body_end;
            if (toks[close + 1].text == "{") {
                body_end = matchDelim(toks, close + 1, "{", "}");
            } else {
                body_end = close + 1;
                while (body_end < toks.size() &&
                       toks[body_end].text != ";")
                    ++body_end;
            }
            for (std::size_t j = close + 1;
                 j < body_end && j < toks.size(); ++j) {
                if (toks[j].text == "+=" || toks[j].text == "-=")
                    sink.hit(toks[j].line, "float-accum-unordered",
                             "accumulation inside a range-for over an "
                             "unordered container: the sum depends on "
                             "hash-bucket order — iterate a "
                             "deterministic container");
            }
        }
    }
}

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

} // namespace

std::string
formatFinding(const Finding &finding)
{
    std::ostringstream out;
    out << finding.file << ":" << finding.line << ": " << finding.rule
        << ": " << finding.detail;
    return out.str();
}

const std::vector<std::string> &
ruleNames()
{
    static const std::vector<std::string> names = {
        "float-accum-unordered", "host-clock", "pointer-keyed-order",
        "raw-random", "suite-io", "unordered-container"};
    return names;
}

std::vector<Finding>
lintSource(const std::string &path, const std::string &content)
{
    std::vector<Token> tokens;
    AllowMap allows;
    std::vector<Finding> malformed;
    lexSource(path, content, tokens, allows, malformed);

    RuleSink sink{path, {}, {}};
    runTokenRules(tokens, sink);

    std::vector<Finding> findings = std::move(malformed);
    const auto suppressed = [&](const Finding &f) {
        for (const int at : {f.line, f.line - 1}) {
            const auto it = allows.find(at);
            if (it != allows.end() && it->second.count(f.rule))
                return true;
        }
        return false;
    };
    for (auto &f : sink.out)
        if (!suppressed(f))
            findings.push_back(std::move(f));

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
              });
    return findings;
}

std::vector<Finding>
lintFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {{path, 0, "lint-io", "cannot read file"}};
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return lintSource(path, buffer.str());
}

std::vector<Finding>
lintTree(const std::vector<std::string> &roots, const TreeOptions &options)
{
    std::vector<std::string> excludes = options.exclude_substrings;
    excludes.push_back("lint_fixtures");

    const auto excluded = [&](const std::string &path) {
        for (const auto &sub : excludes)
            if (path.find(sub) != std::string::npos)
                return true;
        return false;
    };

    std::vector<Finding> findings;
    std::vector<std::string> files;
    for (const auto &root : roots) {
        std::error_code ec;
        if (excluded(root))
            continue;
        if (fs::is_regular_file(root, ec)) {
            if (!excluded(root))
                files.push_back(root);
            continue;
        }
        if (!fs::is_directory(root, ec)) {
            // A vanished root must not lint vacuously clean.
            findings.push_back(
                {root, 0, "lint-io", "root is not a file or directory"});
            continue;
        }
        for (auto it = fs::recursive_directory_iterator(root, ec);
             !ec && it != fs::recursive_directory_iterator(); ++it) {
            if (it->is_regular_file(ec) && isSourceFile(it->path())) {
                const std::string path = it->path().string();
                if (!excluded(path))
                    files.push_back(path);
            }
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    for (const auto &file : files) {
        auto file_findings = lintFile(file);
        findings.insert(findings.end(),
                        std::make_move_iterator(file_findings.begin()),
                        std::make_move_iterator(file_findings.end()));
    }
    return findings;
}

} // namespace ebs::lint
