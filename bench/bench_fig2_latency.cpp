/**
 * @file
 * Reproduces paper Fig. 2: (a) average per-step latency share contributed
 * by each module, and (b) total end-to-end task runtime, across the
 * 14-workload suite. Also reports the headline aggregates quoted in
 * Sec. IV-A: LLM-based modules ~70% of latency, reflection ~8.6%, CoELA's
 * 36.5%/16.1%/10.3% plan/message/action-selection split.
 */

#include "stats/table.h"
#include "suite.h"

namespace {

int
run(ebs::bench::SuiteContext &ctx)
{
    using namespace ebs;
    const int kSeeds = ctx.seedCount(12);
    const auto difficulty = env::Difficulty::Medium;

    ctx.printf("=== Fig. 2a: per-step latency breakdown by module ===\n\n");
    stats::Table fig2a({"workload", "s/step", "Sense%", "Plan%", "Comm%",
                        "Mem%", "Refl%", "Exec%"});
    stats::Table fig2b({"workload", "success", "steps", "total (min)"});

    // One batch: every workload's seed fan-out shares the thread pool.
    std::vector<runner::RunVariant> variants;
    for (const auto &spec : workloads::suite()) {
        runner::RunVariant v;
        v.workload = &spec;
        v.config = spec.config;
        v.difficulty = difficulty;
        v.seeds = kSeeds;
        variants.push_back(std::move(v));
    }
    const auto results = ctx.runAveragedMany(variants);

    double llm_share_sum = 0.0;
    double refl_share_sum = 0.0;

    for (std::size_t i = 0; i < variants.size(); ++i) {
        const auto &spec = *variants[i].workload;
        const auto &r = results[i];
        const auto &lat = r.latency;
        fig2a.addRow({spec.name,
                      stats::Table::num(r.avg_step_latency_s, 1),
                      stats::Table::pct(lat.fraction(stats::ModuleKind::Sensing)),
                      stats::Table::pct(lat.fraction(stats::ModuleKind::Planning)),
                      stats::Table::pct(lat.fraction(stats::ModuleKind::Communication)),
                      stats::Table::pct(lat.fraction(stats::ModuleKind::Memory)),
                      stats::Table::pct(lat.fraction(stats::ModuleKind::Reflection)),
                      stats::Table::pct(lat.fraction(stats::ModuleKind::Execution))});
        fig2b.addRow({spec.name, stats::Table::pct(r.success_rate, 0),
                      stats::Table::num(r.avg_steps, 0),
                      stats::Table::num(r.avg_runtime_min, 1)});
        ctx.emitMetric(spec.name, r);

        llm_share_sum += lat.fraction(stats::ModuleKind::Planning) +
                         lat.fraction(stats::ModuleKind::Communication) +
                         lat.fraction(stats::ModuleKind::Reflection);
        refl_share_sum += lat.fraction(stats::ModuleKind::Reflection);
    }

    ctx.printf("%s\n", fig2a.render().c_str());
    ctx.printf("=== Fig. 2b: total runtime per task ===\n\n%s\n",
                fig2b.render().c_str());

    const double n = static_cast<double>(workloads::suite().size());
    ctx.printf("Aggregate: LLM-based modules account for %.1f%% of step\n"
                "latency on average (paper: 70.2%%); reflection accounts\n"
                "for %.2f%% (paper: 8.61%%).\n",
                llm_share_sum / n * 100.0, refl_share_sum / n * 100.0);
    ctx.emitScalarMetric("aggregate", "llm_latency_share",
                            llm_share_sum / n);
    ctx.emitScalarMetric("aggregate", "reflection_latency_share",
                            refl_share_sum / n);

    // Rec. 1 end-to-end: the same suite with batch_llm_calls charging
    // jointBatchTime per (phase, backend) batch to the simulated clock.
    // Responses and step counts are identical — only s/step moves, by
    // the cross-agent batching each workload's team actually exposes
    // (single-agent pipelines batch nothing and stay put). The re-run
    // gets a private service so the shared fleet summary below keeps
    // measuring exactly the main suite's traffic.
    llm::LlmEngineService charged_service;
    std::vector<runner::RunVariant> charged_variants = variants;
    for (auto &v : charged_variants) {
        v.pipeline.batch_llm_calls = true;
        v.engine_service = &charged_service;
    }
    const auto charged = ctx.runAveragedMany(charged_variants);

    ctx.printf("=== Fig. 2 ablation: batched inference charged to the "
                "clock (Rec. 1) ===\n\n");
    stats::Table batched_table(
        {"workload", "s/step", "s/step charged", "saved"});
    double saved_sum = 0.0;
    for (std::size_t i = 0; i < variants.size(); ++i) {
        const auto &spec = *variants[i].workload;
        const auto &seq = results[i];
        const auto &chg = charged[i];
        const double saved = ctx.emitChargedMetrics(
            spec.name, seq.avg_step_latency_s, chg.avg_step_latency_s);
        saved_sum += saved;
        batched_table.addRow(
            {spec.name, stats::Table::num(seq.avg_step_latency_s, 1),
             stats::Table::num(chg.avg_step_latency_s, 1),
             stats::Table::pct(saved, 0)});
    }
    ctx.printf("%s\n", batched_table.render().c_str());
    ctx.printf("Average charged-batching step-latency saving across the "
                "suite: %.1f%%\n",
                saved_sum / n * 100.0);
    ctx.emitScalarMetric("aggregate", "batch_charge_saved_pct",
                            saved_sum / n * 100.0);

    ctx.emitSharedServiceSummary("fig2 suite fleet");
    return 0;
}

} // namespace

EBS_BENCH_SUITE("bench_fig2_latency",
                "Fig. 2: per-step latency share by module and end-to-end "
                "runtime across the 14-workload suite",
                run);
