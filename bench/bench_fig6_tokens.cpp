/**
 * @file
 * Reproduces paper Fig. 6 (prompt token length over time): per-agent plan
 * and message token consumption as the task progresses, for RoCo,
 * MindAgent, and CoELA. The expected shape: token length grows with the
 * time step as retrieved memory and concatenated dialogue accumulate.
 */

#include <algorithm>
#include <map>
#include <vector>

#include "stats/table.h"
#include "suite.h"

namespace {

int
run(ebs::bench::SuiteContext &ctx)
{
    using namespace ebs;
    const char *systems[] = {"RoCo", "MindAgent", "CoELA"};

    ctx.printf("=== Fig. 6: prompt token length over time steps ===\n\n");

    // One token-recorded episode per system, run as a single batch.
    std::vector<runner::EpisodeJob> jobs;
    for (const char *name : systems) {
        const auto &spec = workloads::workload(name);
        runner::EpisodeJob job;
        job.workload = &spec;
        // Generous memory so history accumulates like the paper's runs.
        job.config = spec.config;
        job.config.memory.capacity_steps = 0; // unlimited
        job.difficulty = env::Difficulty::Medium;
        job.seed = 17;
        job.record_tokens = true;
        jobs.push_back(std::move(job));
    }
    const auto episodes = ctx.run(jobs);

    for (std::size_t i = 0; i < std::size(systems); ++i) {
        const char *name = systems[i];
        const auto &r = episodes[i];

        // Bucket the series: per step, per agent, plan and message tokens.
        std::map<int, std::map<int, std::pair<int, int>>> series;
        for (const auto &sample : r.token_series) {
            auto &cell = series[sample.step][sample.agent];
            cell.first = std::max(cell.first, sample.plan_tokens);
            cell.second = std::max(cell.second, sample.message_tokens);
        }

        ctx.printf("--- %s (%d steps, success=%s) ---\n", name, r.steps,
                    r.success ? "yes" : "no");
        stats::Table table({"step", "agent", "plan tokens", "msg tokens"});
        const int stride = std::max(1, r.steps / 12);
        for (const auto &[step, agents] : series) {
            if (step % stride != 0)
                continue;
            for (const auto &[agent, tokens] : agents) {
                table.addRow({std::to_string(step),
                              agent < 0 ? std::string("central")
                                        : std::to_string(agent),
                              std::to_string(tokens.first),
                              std::to_string(tokens.second)});
            }
        }
        ctx.printf("%s\n", table.render().c_str());

        ctx.emitMetric(name, runner::foldEpisodes({&r, 1}));

        // Growth summary: first vs last quartile of plan tokens.
        double early = 0.0, late = 0.0;
        int early_n = 0, late_n = 0;
        for (const auto &sample : r.token_series) {
            if (sample.plan_tokens == 0)
                continue;
            if (sample.step < r.steps / 4) {
                early += sample.plan_tokens;
                ++early_n;
            } else if (sample.step >= 3 * r.steps / 4) {
                late += sample.plan_tokens;
                ++late_n;
            }
        }
        if (early_n > 0 && late_n > 0) {
            ctx.printf("plan-prompt growth: %.0f -> %.0f tokens "
                        "(%.1fx) over the task\n\n",
                        early / early_n, late / late_n,
                        (late / late_n) / (early / early_n));
            ctx.emitScalarMetric(name, "plan_prompt_growth_ratio",
                                    (late / late_n) / (early / early_n));
        }
    }

    ctx.printf("Expected shape: token consumption increases with the time\n"
                "step, dominated by input tokens from retrieved memory and\n"
                "concatenated multi-agent dialogue (paper Takeaway 5).\n");
    return 0;
}

} // namespace

EBS_BENCH_SUITE("bench_fig6_tokens",
                "Fig. 6: prompt token growth over time steps for RoCo, "
                "MindAgent, and CoELA",
                run);
