/**
 * @file
 * Reproduces the paper's Sec. V-D pipeline-efficiency analysis on CoELA:
 * the fraction of pre-generated messages that actually matter (~20%),
 * sequential vs. parallel per-step latency, and the two inter-module
 * optimizations the paper recommends — planning-guided multi-step
 * execution (Rec. 7) and planning-then-communication (Rec. 8).
 */

#include <cstdio>

#include "bench_util.h"
#include "stats/table.h"

int
main()
{
    using namespace ebs;
    const int kSeeds = bench::seedCount(10);
    const auto &spec = workloads::workload("CoELA");
    const auto difficulty = env::Difficulty::Medium;

    std::printf("=== Sec. V-D: modular pipeline efficiency (CoELA, "
                "%d seeds) ===\n\n",
                kSeeds);

    const auto base =
        bench::runAveraged(spec, spec.config, difficulty, kSeeds);

    std::printf("Message utility: %.0f of %.0f generated messages per task "
                "carried information (%.1f%%; paper: ~20%%)\n\n",
                base.msgs_useful, base.msgs_generated,
                base.msgs_useful / base.msgs_generated * 100.0);

    stats::Table table({"pipeline variant", "success", "steps", "s/step",
                        "runtime (min)", "msgs/task"});
    auto add = [&](const char *label, const bench::RunStats &r) {
        table.addRow({label, stats::Table::pct(r.success_rate, 0),
                      stats::Table::num(r.avg_steps, 1),
                      stats::Table::num(r.avg_step_latency_s, 1),
                      stats::Table::num(r.avg_runtime_min, 1),
                      stats::Table::num(r.msgs_generated, 0)});
    };
    add("sequential baseline", base);

    core::PipelineOptions parallel;
    parallel.parallel_agents = true;
    add("parallel agent pipelines",
        bench::runAveraged(spec, spec.config, difficulty, kSeeds, -1,
                           parallel));

    core::PipelineOptions guided;
    guided.plan_every_k = 3;
    add("plan-guided multi-step (Rec. 7, k=3)",
        bench::runAveraged(spec, spec.config, difficulty, kSeeds, -1,
                           guided));

    core::PipelineOptions on_demand;
    on_demand.comm_on_demand = true;
    add("planning-then-communication (Rec. 8)",
        bench::runAveraged(spec, spec.config, difficulty, kSeeds, -1,
                           on_demand));

    core::PipelineOptions combined;
    combined.plan_every_k = 3;
    combined.comm_on_demand = true;
    combined.parallel_agents = true;
    add("all three combined",
        bench::runAveraged(spec, spec.config, difficulty, kSeeds, -1,
                           combined));

    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape: parallel pipelines cut wall-clock without\n"
                "changing work; Rec. 7 removes per-action replanning; Rec. 8\n"
                "eliminates most pre-generated messages — all with success\n"
                "held roughly constant (paper Takeaway 6).\n");
    return 0;
}
