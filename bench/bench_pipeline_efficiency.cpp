/**
 * @file
 * Reproduces the paper's Sec. V-D pipeline-efficiency analysis on CoELA:
 * the fraction of pre-generated messages that actually matter (~20%),
 * sequential vs. parallel per-step latency, and the two inter-module
 * optimizations the paper recommends — planning-guided multi-step
 * execution (Rec. 7) and planning-then-communication (Rec. 8).
 */

#include <vector>

#include "stats/table.h"
#include "suite.h"

namespace {

int
run(ebs::bench::SuiteContext &ctx)
{
    using namespace ebs;
    const int kSeeds = ctx.seedCount(20);
    const auto &spec = workloads::workload("CoELA");
    const auto difficulty = env::Difficulty::Medium;

    ctx.printf("=== Sec. V-D: modular pipeline efficiency (CoELA, "
                "%d seeds) ===\n\n",
                kSeeds);

    // All five pipeline variants fan out as one batch.
    struct Case
    {
        const char *label;
        core::PipelineOptions pipeline;
    };
    std::vector<Case> cases;
    cases.push_back({"sequential baseline", {}});
    {
        core::PipelineOptions parallel;
        parallel.parallel_agents = true;
        cases.push_back({"parallel agent pipelines", parallel});
    }
    {
        core::PipelineOptions guided;
        guided.plan_every_k = 3;
        cases.push_back({"plan-guided multi-step (Rec. 7, k=3)", guided});
    }
    {
        core::PipelineOptions on_demand;
        on_demand.comm_on_demand = true;
        cases.push_back({"planning-then-communication (Rec. 8)", on_demand});
    }
    {
        core::PipelineOptions combined;
        combined.plan_every_k = 3;
        combined.comm_on_demand = true;
        combined.parallel_agents = true;
        cases.push_back({"all three combined", combined});
    }
    {
        core::PipelineOptions speculative;
        speculative.speculative_execute = true;
        cases.push_back({"speculative execute", speculative});
    }

    std::vector<runner::RunVariant> variants;
    for (const auto &c : cases) {
        runner::RunVariant v;
        v.workload = &spec;
        v.config = spec.config;
        v.difficulty = difficulty;
        v.seeds = kSeeds;
        v.pipeline = c.pipeline;
        variants.push_back(std::move(v));
    }
    const auto results = ctx.runAveragedMany(variants);

    const auto &base = results.front();
    ctx.printf("Message utility: %.0f of %.0f generated messages per task "
                "carried information (%.1f%%; paper: ~20%%)\n\n",
                base.msgs_useful, base.msgs_generated,
                base.msgs_useful / base.msgs_generated * 100.0);
    ctx.emitScalarMetric("sequential baseline", "message_utility",
                            base.msgs_useful / base.msgs_generated);

    stats::Table table({"pipeline variant", "success", "steps", "s/step",
                        "runtime (min)", "msgs/task"});
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const auto &r = results[i];
        table.addRow({cases[i].label, stats::Table::pct(r.success_rate, 0),
                      stats::Table::num(r.avg_steps, 1),
                      stats::Table::num(r.avg_step_latency_s, 1),
                      stats::Table::num(r.avg_runtime_min, 1),
                      stats::Table::num(r.msgs_generated, 0)});
        ctx.emitMetric(cases[i].label, r);
    }

    // Speculation must not perturb paper metrics: the speculative variant
    // is the sequential baseline with a different execute-phase engine,
    // so any drift is a determinism bug, not a measurement.
    const auto &spec_case = results.back();
    if (spec_case.success_rate != base.success_rate ||
        spec_case.avg_steps != base.avg_steps ||
        spec_case.avg_step_latency_s != base.avg_step_latency_s) {
        ctx.eprintf("pipeline efficiency: speculative execute diverged "
                    "from the sequential baseline\n");
        return 1;
    }
    ctx.emitSpeculativeMetrics("speculative execute", spec_case);

    ctx.printf("%s\n", table.render().c_str());
    ctx.printf("Expected shape: parallel pipelines cut wall-clock without\n"
                "changing work; Rec. 7 removes per-action replanning; Rec. 8\n"
                "eliminates most pre-generated messages — all with success\n"
                "held roughly constant (paper Takeaway 6).\n");

    // Host-side check that parallel_agents is real concurrency now, not
    // just a latency model: re-run the baseline and the parallel variant
    // and time the actual wall-clock. Host timings vary with EBS_JOBS and
    // core count, so this goes to stderr (stdout stays byte-identical
    // across worker counts for the metric gate).
    const auto time_variant = [&](const core::PipelineOptions &pipeline) {
        runner::RunVariant v;
        v.workload = &spec;
        v.config = spec.config;
        v.difficulty = difficulty;
        v.seeds = kSeeds;
        v.pipeline = pipeline;
        return bench::hostSeconds([&] { ctx.runAveraged(v); });
    };
    const double serial_s = time_variant(cases[0].pipeline);
    const double parallel_s = time_variant(cases[1].pipeline);
    ctx.eprintf("host wall-clock: sequential %.3fs, parallel agent "
                "pipelines %.3fs (%.2fx, %d workers)\n",
                serial_s, parallel_s,
                parallel_s > 0.0 ? serial_s / parallel_s : 0.0,
                ctx.scheduler().workers());

    // Same host-side check for speculative execute, isolated to the
    // execute-phase bucket: serial episodes on a one-job runner so the
    // pool serves the speculative fan-out, measured via the process-wide
    // phase wall clock rather than end-to-end suite time (compute phases
    // dominate the latter).
    {
        runner::EpisodeRunner timing_runner(1, &ctx.scheduler(),
                                            &ctx.tracer());
        runner::RunVariant v;
        v.workload = &spec;
        v.config = spec.config;
        v.difficulty = difficulty;
        v.seeds = kSeeds;
        const auto wall_start = ctx.phaseWall().snapshot();
        runner::runAveraged(timing_runner, ctx.stamped(v));
        const auto wall_mid = ctx.phaseWall().snapshot();
        v.pipeline.speculative_execute = true;
        runner::runAveraged(timing_runner, ctx.stamped(v));
        const auto wall_end = ctx.phaseWall().snapshot();
        const double serial_exec_s =
            wall_mid.execute_s - wall_start.execute_s;
        const double spec_exec_s = wall_end.execute_s - wall_mid.execute_s;
        ctx.eprintf("execute-phase host wall: serial %.3fs, speculative "
                    "%.3fs (%.2fx measured, %.2fx modeled)\n",
                    serial_exec_s, spec_exec_s,
                    spec_exec_s > 0.0 ? serial_exec_s / spec_exec_s : 0.0,
                    spec_case.specExecSpeedup());
    }
    ctx.emitPhaseWallSummary();
    return 0;
}

} // namespace

EBS_BENCH_SUITE("bench_pipeline_efficiency",
                "Sec. V-D: CoELA pipeline-efficiency variants (parallel, "
                "plan-guided, comm-on-demand, speculative)",
                run);
