/**
 * @file
 * Benchmark fleet driver: discovers every `bench_*` binary sitting next to
 * this executable, runs each one with stdout/stderr captured to a per-suite
 * log, and consolidates the per-suite performance counters into one
 * `BENCH_results.json` (suite -> metric -> value) so successive PRs have a
 * perf trajectory to compare against.
 *
 * Besides runtime counters, every suite's captured stdout is scanned for
 * `EBS_METRIC {...}` lines (emitted by the benches via bench_util.h) and
 * the JSON objects are folded into the suite's `paper_metrics` array, so
 * the trajectory tracks the paper's headline metrics (success rate,
 * s/step, token volume) and not just wall-clock.
 *
 * Flags:
 *   --smoke        run each suite with tiny iteration counts (sets
 *                  EBS_BENCH_SMOKE=1, honored by bench_util.h)
 *   --jobs N       episode-runner threads per suite (sets EBS_JOBS for
 *                  the children; default: inherit the environment)
 *   --out PATH     output JSON path (default: BENCH_results.json in cwd)
 *   --logs DIR     per-suite stdout logs (default: BENCH_logs in cwd)
 *   --filter STR   only run suites whose name contains STR
 *   --list         print discovered suite names and exit
 */

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

namespace {

namespace fs = std::filesystem;

struct SuiteResult
{
    std::string name;
    int exit_code = -1;
    double wall_seconds = 0.0;
    double user_seconds = 0.0;
    double sys_seconds = 0.0;
    long max_rss_kb = 0;
    std::vector<std::string> paper_metrics; ///< raw EBS_METRIC objects
};

/**
 * Collect the JSON objects of `EBS_METRIC {...}` lines from a suite's
 * captured stdout. The objects are emitted by bench_util.h and embedded
 * verbatim, so run_all needs no JSON parser — only a sanity check that
 * the payload looks like a single-line object.
 */
std::vector<std::string>
collectMetricLines(const fs::path &log_path)
{
    static const std::string kPrefix = "EBS_METRIC ";
    std::vector<std::string> metrics;
    std::ifstream log(log_path);
    std::string line;
    while (std::getline(log, line)) {
        if (line.rfind(kPrefix, 0) != 0)
            continue;
        std::string payload = line.substr(kPrefix.size());
        if (!payload.empty() && payload.back() == '\r')
            payload.pop_back();
        if (payload.size() >= 2 && payload.front() == '{' &&
            payload.back() == '}')
            metrics.push_back(std::move(payload));
    }
    return metrics;
}

/** Directory containing this executable (where the bench binaries live). */
fs::path
selfDirectory(const char *argv0)
{
    std::error_code ec;
    const fs::path self = fs::read_symlink("/proc/self/exe", ec);
    if (!ec)
        return self.parent_path();
    const fs::path fallback = fs::absolute(argv0, ec);
    return ec ? fs::current_path() : fallback.parent_path();
}

bool
isExecutableFile(const fs::path &p)
{
    std::error_code ec;
    return fs::is_regular_file(p, ec) &&
           ::access(p.c_str(), X_OK) == 0;
}

/** Run one benchmark binary, capturing output and resource usage. */
SuiteResult
runSuite(const fs::path &binary, const fs::path &log_path, bool smoke,
         const std::string &jobs)
{
    SuiteResult result;
    result.name = binary.filename().string();

    const auto start = std::chrono::steady_clock::now();
    const pid_t pid = ::fork();
    if (pid < 0) {
        std::fprintf(stderr, "run_all: fork failed: %s\n",
                     std::strerror(errno));
        return result;
    }
    if (pid == 0) {
        const int fd = ::open(log_path.c_str(),
                              O_CREAT | O_WRONLY | O_TRUNC, 0644);
        if (fd >= 0) {
            ::dup2(fd, STDOUT_FILENO);
            ::dup2(fd, STDERR_FILENO);
            ::close(fd);
        }
        if (smoke)
            ::setenv("EBS_BENCH_SMOKE", "1", 1);
        else
            ::unsetenv("EBS_BENCH_SMOKE"); // a stale value would silently
                                           // clamp a full baseline run
        if (!jobs.empty())
            ::setenv("EBS_JOBS", jobs.c_str(), 1);
        ::execl(binary.c_str(), binary.c_str(),
                static_cast<char *>(nullptr));
        std::fprintf(stderr, "run_all: exec %s failed: %s\n",
                     binary.c_str(), std::strerror(errno));
        ::_exit(127);
    }

    int status = 0;
    struct rusage usage{};
    if (::wait4(pid, &status, 0, &usage) < 0) {
        std::fprintf(stderr, "run_all: wait4 failed: %s\n",
                     std::strerror(errno));
        return result;
    }
    const auto end = std::chrono::steady_clock::now();

    result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status)
                       : WIFSIGNALED(status)
                           ? 128 + WTERMSIG(status)
                           : -1;
    result.wall_seconds =
        std::chrono::duration<double>(end - start).count();
    result.user_seconds = static_cast<double>(usage.ru_utime.tv_sec) +
                          usage.ru_utime.tv_usec / 1e6;
    result.sys_seconds = static_cast<double>(usage.ru_stime.tv_sec) +
                         usage.ru_stime.tv_usec / 1e6;
    result.max_rss_kb = usage.ru_maxrss;
    result.paper_metrics = collectMetricLines(log_path);
    return result;
}

void
writeJson(const fs::path &out_path, const std::vector<SuiteResult> &results,
          bool smoke)
{
    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "run_all: cannot write %s: %s\n",
                     out_path.c_str(), std::strerror(errno));
        std::exit(1);
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema_version\": 2,\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"suites\": {\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SuiteResult &r = results[i];
        std::fprintf(f,
                     "    \"%s\": {\n"
                     "      \"exit_code\": %d,\n"
                     "      \"wall_seconds\": %.6f,\n"
                     "      \"user_seconds\": %.6f,\n"
                     "      \"sys_seconds\": %.6f,\n"
                     "      \"max_rss_kb\": %ld,\n"
                     "      \"paper_metrics\": [",
                     r.name.c_str(), r.exit_code, r.wall_seconds,
                     r.user_seconds, r.sys_seconds, r.max_rss_kb);
        for (std::size_t m = 0; m < r.paper_metrics.size(); ++m)
            std::fprintf(f, "\n        %s%s", r.paper_metrics[m].c_str(),
                         m + 1 < r.paper_metrics.size() ? "," : "\n      ");
        std::fprintf(f, "]\n    }%s\n",
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool list_only = false;
    std::string filter;
    std::string jobs;
    fs::path out_path = "BENCH_results.json";
    fs::path log_dir = "BENCH_logs";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--list") {
            list_only = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--logs" && i + 1 < argc) {
            log_dir = argv[++i];
        } else if (arg == "--filter" && i + 1 < argc) {
            filter = argv[++i];
        } else if (arg == "--jobs" && i + 1 < argc) {
            jobs = argv[++i];
            char *end = nullptr;
            const long parsed = std::strtol(jobs.c_str(), &end, 10);
            if (end == jobs.c_str() || *end != '\0' || parsed <= 0 ||
                parsed > 1024) {
                std::fprintf(stderr,
                             "run_all: --jobs wants an integer in "
                             "1..1024, got '%s'\n",
                             jobs.c_str());
                return 2;
            }
        } else {
            std::fprintf(stderr,
                         "usage: run_all [--smoke] [--list] [--out PATH] "
                         "[--logs DIR] [--filter STR] [--jobs N]\n");
            return arg == "--help" || arg == "-h" ? 0 : 2;
        }
    }

    const fs::path bench_dir = selfDirectory(argv[0]);
    std::vector<fs::path> binaries;
    std::size_t discovered = 0;
    for (const auto &entry : fs::directory_iterator(bench_dir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("bench_", 0) != 0 || !isExecutableFile(entry.path()))
            continue;
        ++discovered;
        if (!filter.empty() && name.find(filter) == std::string::npos)
            continue;
        binaries.push_back(entry.path());
    }
    std::sort(binaries.begin(), binaries.end());

    if (binaries.empty()) {
        if (discovered > 0)
            std::fprintf(stderr,
                         "run_all: --filter '%s' matched none of the %zu "
                         "bench_* binaries in %s\n",
                         filter.c_str(), discovered, bench_dir.c_str());
        else
            std::fprintf(stderr,
                         "run_all: no bench_* binaries found in %s\n",
                         bench_dir.c_str());
        return 1;
    }
    if (list_only) {
        for (const auto &b : binaries)
            std::printf("%s\n", b.filename().c_str());
        return 0;
    }

    std::error_code ec;
    fs::create_directories(log_dir, ec);
    if (ec || !fs::is_directory(log_dir)) {
        std::fprintf(stderr, "run_all: cannot create log dir %s: %s\n",
                     log_dir.c_str(),
                     ec ? ec.message().c_str() : "not a directory");
        return 1;
    }

    std::vector<SuiteResult> results;
    int failures = 0;
    for (const auto &binary : binaries) {
        const fs::path log_path =
            log_dir / (binary.filename().string() + ".log");
        std::printf("[run_all] %-32s ... ", binary.filename().c_str());
        std::fflush(stdout);
        const SuiteResult r = runSuite(binary, log_path, smoke, jobs);
        std::printf("exit=%d wall=%.2fs rss=%ldKB\n", r.exit_code,
                    r.wall_seconds, r.max_rss_kb);
        failures += r.exit_code != 0;
        results.push_back(r);
    }

    writeJson(out_path, results, smoke);
    std::printf("[run_all] wrote %s (%zu suites, %d failed)\n",
                out_path.c_str(), results.size(), failures);
    return failures == 0 ? 0 : 1;
}
