/**
 * @file
 * Benchmark fleet driver: discovers every `bench_*` binary sitting next to
 * this executable, runs each one with stdout/stderr captured to a per-suite
 * log, and consolidates the per-suite performance counters into one
 * `BENCH_results.json` (suite -> metric -> value) so successive PRs have a
 * perf trajectory to compare against.
 *
 * Suites are submitted as one sched::TaskGraph onto a FleetScheduler pool,
 * so several suites run concurrently under a single global `EBS_JOBS`
 * budget: with budget J the driver runs `C = min(J, suites)` suite
 * processes at once and hands each child `EBS_JOBS = max(1, J / C)` for
 * its internal episode fan-out — episodes from different suites interleave
 * in time while the total in-flight episode count stays within the budget.
 * Per-episode results are bit-identical at any worker split (the episode
 * runner's determinism contract), so only wall-clock changes. The
 * scheduler's task timeline becomes the per-suite wall-clock / straggler
 * summary, printed at the end and written to `BENCH_timeline.json`.
 *
 * Besides runtime counters, every suite's captured stdout is scanned for
 * `EBS_METRIC {...}` lines (emitted by the benches via bench_util.h) and
 * the JSON objects are folded into the suite's `paper_metrics` array, so
 * the trajectory tracks the paper's headline metrics (success rate,
 * s/step, token volume) and not just wall-clock.
 *
 * Flags:
 *   --smoke        run each suite with tiny iteration counts (sets
 *                  EBS_BENCH_SMOKE=1, honored by bench_util.h)
 *   --jobs N       global worker budget (default: EBS_JOBS, else the
 *                  hardware concurrency)
 *   --serial       legacy schedule: suites one at a time, each child
 *                  getting the whole budget (the pre-scheduler baseline
 *                  for wall-clock comparisons)
 *   --out PATH     output JSON path (default: BENCH_results.json in cwd)
 *   --logs DIR     per-suite stdout logs (default: BENCH_logs in cwd)
 *   --timeline P   scheduler timeline JSON (default: BENCH_timeline.json)
 *   --filter STR   only run suites whose name contains STR
 *   --suites LIST  comma-separated suite names to run (with or without
 *                  the bench_ prefix; substrings accepted when unique)
 *   --list         print discovered suite names and exit
 */

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <spawn.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/sync.h"
#include "obs/trace.h"
#include "sched/fleet_scheduler.h"
#include "stats/host_clock.h"

extern char **environ;

namespace {

namespace fs = std::filesystem;

struct SuiteResult
{
    std::string name;
    int exit_code = -1;
    double wall_seconds = 0.0;
    double user_seconds = 0.0;
    double sys_seconds = 0.0;
    long max_rss_kb = 0;
    std::vector<std::string> paper_metrics; ///< raw EBS_METRIC objects

    /** Host compute/execute phase split reported by the suite's last
     * `EBS_PHASE_WALL` stderr line (see bench_util.h); absent when the
     * suite does not run episodes or predates the reporting. */
    bool has_phase_wall = false;
    double phase_compute_s = 0.0;
    double phase_execute_s = 0.0;
    long long phase_episodes = 0;
};

/**
 * Collect the JSON objects of `EBS_METRIC {...}` lines from a suite's
 * captured stdout. The objects are emitted by bench_util.h and embedded
 * verbatim, so run_all needs no JSON parser — only a sanity check that
 * the payload looks like a single-line object.
 */
std::vector<std::string>
collectMetricLines(const fs::path &log_path)
{
    static const std::string kPrefix = "EBS_METRIC ";
    std::vector<std::string> metrics;
    std::ifstream log(log_path);
    std::string line;
    while (std::getline(log, line)) {
        if (line.rfind(kPrefix, 0) != 0)
            continue;
        std::string payload = line.substr(kPrefix.size());
        if (!payload.empty() && payload.back() == '\r')
            payload.pop_back();
        if (payload.size() >= 2 && payload.front() == '{' &&
            payload.back() == '}')
            metrics.push_back(std::move(payload));
    }
    return metrics;
}

/**
 * Parse the *last* `EBS_PHASE_WALL {...}` line of a suite's captured
 * output into the result's phase split (stderr shares the log file via
 * dup2, so the line lands in the same capture as EBS_METRIC). The clock
 * is process-wide and monotone, so the last line is the suite total.
 *
 * Anchored on the *whole line*, not a substring scan: a candidate line
 * must start with the prefix and the remainder must be exactly one flat
 * balanced `{...}` object with nothing after it (modulo a trailing CR).
 * stderr is unbuffered, so a child thread racing the summary write can
 * fuse two lines into one ("EBS_PHASE_WALL {..}warning: ..."); the old
 * substring scan would happily pull values out of the wreckage, while a
 * fused or truncated line must simply not count.
 */
void
readPhaseWall(const fs::path &log_path, SuiteResult &result)
{
    static const std::string kPrefix = "EBS_PHASE_WALL ";
    std::ifstream log(log_path);
    std::string line, last;
    while (std::getline(log, line)) {
        if (line.rfind(kPrefix, 0) != 0)
            continue;
        std::string payload = line.substr(kPrefix.size());
        if (!payload.empty() && payload.back() == '\r')
            payload.pop_back();
        const bool whole_flat_object =
            payload.size() >= 2 && payload.front() == '{' &&
            payload.find('{', 1) == std::string::npos &&
            payload.find('}') == payload.size() - 1;
        if (whole_flat_object)
            last = std::move(payload);
    }
    if (last.empty())
        return;
    const auto field = [&last](const char *key, double &out) {
        const std::size_t at = last.find(key);
        if (at == std::string::npos)
            return false;
        // A key with a malformed value ("compute_s":oops) must report
        // "absent", not silently 0.0: strtod has to consume at least one
        // character and stop at a JSON delimiter.
        const char *start = last.c_str() + at + std::strlen(key);
        char *end = nullptr;
        const double value = std::strtod(start, &end);
        if (end == start ||
            (*end != '\0' && *end != ',' && *end != '}' && *end != ' '))
            return false;
        out = value;
        return true;
    };
    double episodes = 0.0;
    result.has_phase_wall =
        field("\"compute_s\":", result.phase_compute_s) &&
        field("\"execute_s\":", result.phase_execute_s) &&
        field("\"episodes\":", episodes);
    result.phase_episodes = static_cast<long long>(episodes);
}

/** Directory containing this executable (where the bench binaries live). */
fs::path
selfDirectory(const char *argv0)
{
    std::error_code ec;
    const fs::path self = fs::read_symlink("/proc/self/exe", ec);
    if (!ec)
        return self.parent_path();
    const fs::path fallback = fs::absolute(argv0, ec);
    return ec ? fs::current_path() : fallback.parent_path();
}

bool
isExecutableFile(const fs::path &p)
{
    std::error_code ec;
    return fs::is_regular_file(p, ec) &&
           ::access(p.c_str(), X_OK) == 0;
}

/**
 * The environment block every suite child receives: the parent's
 * environment minus the fleet knobs, plus the driver-chosen values.
 * Built once before scheduling — with suite tasks running on scheduler
 * threads, children must not mutate the (non-thread-safe) parent
 * environment between fork and exec; posix_spawn with an explicit envp
 * sidesteps the problem entirely.
 */
class ChildEnvironment
{
  public:
    /** `extra` entries ("KEY=value") are appended after the driver's
     * own knobs — per-suite trace routing (EBS_TRACE_OUT and friends)
     * travels through here. */
    ChildEnvironment(bool smoke, int child_jobs,
                     std::vector<std::string> extra = {})
    {
        for (char **e = environ; *e != nullptr; ++e) {
            const std::string entry(*e);
            if (entry.rfind("EBS_BENCH_SMOKE=", 0) == 0 ||
                entry.rfind("EBS_JOBS=", 0) == 0 ||
                entry.rfind("EBS_TRACE_OUT=", 0) == 0 ||
                entry.rfind("EBS_TRACE_NAME=", 0) == 0 ||
                entry.rfind("EBS_TRACE_PID_BASE=", 0) == 0)
                continue; // a stale value would silently override ours
            storage_.push_back(entry);
        }
        if (smoke)
            storage_.push_back("EBS_BENCH_SMOKE=1");
        storage_.push_back("EBS_JOBS=" + std::to_string(child_jobs));
        for (auto &entry : extra)
            storage_.push_back(std::move(entry));
        for (auto &entry : storage_)
            pointers_.push_back(entry.data());
        pointers_.push_back(nullptr);
    }

    ChildEnvironment(const ChildEnvironment &) = delete;
    ChildEnvironment &operator=(const ChildEnvironment &) = delete;

    char *const *envp() const { return pointers_.data(); }

  private:
    std::vector<std::string> storage_;
    std::vector<char *> pointers_;
};

/** Run one benchmark binary, capturing output and resource usage. */
SuiteResult
runSuite(const fs::path &binary, const fs::path &log_path,
         const ChildEnvironment &env)
{
    SuiteResult result;
    result.name = binary.filename().string();

    posix_spawn_file_actions_t actions;
    posix_spawn_file_actions_init(&actions);
    posix_spawn_file_actions_addopen(&actions, STDOUT_FILENO,
                                     log_path.c_str(),
                                     O_CREAT | O_WRONLY | O_TRUNC, 0644);
    posix_spawn_file_actions_adddup2(&actions, STDOUT_FILENO,
                                     STDERR_FILENO);

    char *const argv[] = {const_cast<char *>(binary.c_str()), nullptr};
    pid_t pid = -1;
    const double start = ebs::stats::hostNow();
    const int rc = ::posix_spawn(&pid, binary.c_str(), &actions, nullptr,
                                 argv, env.envp());
    posix_spawn_file_actions_destroy(&actions);
    if (rc != 0) {
        std::fprintf(stderr, "run_all: spawn %s failed: %s\n",
                     binary.c_str(), std::strerror(rc));
        return result;
    }

    int status = 0;
    struct rusage usage{};
    if (::wait4(pid, &status, 0, &usage) < 0) {
        std::fprintf(stderr, "run_all: wait4 failed: %s\n",
                     std::strerror(errno));
        return result;
    }
    const double end = ebs::stats::hostNow();

    result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status)
                       : WIFSIGNALED(status)
                           ? 128 + WTERMSIG(status)
                           : -1;
    result.wall_seconds = end - start;
    result.user_seconds = static_cast<double>(usage.ru_utime.tv_sec) +
                          usage.ru_utime.tv_usec / 1e6;
    result.sys_seconds = static_cast<double>(usage.ru_stime.tv_sec) +
                         usage.ru_stime.tv_usec / 1e6;
    result.max_rss_kb = usage.ru_maxrss;
    result.paper_metrics = collectMetricLines(log_path);
    readPhaseWall(log_path, result);
    return result;
}

void
writeJson(const fs::path &out_path, const std::vector<SuiteResult> &results,
          bool smoke)
{
    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "run_all: cannot write %s: %s\n",
                     out_path.c_str(), std::strerror(errno));
        std::exit(1);
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema_version\": 2,\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"suites\": {\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SuiteResult &r = results[i];
        std::fprintf(f,
                     "    \"%s\": {\n"
                     "      \"exit_code\": %d,\n"
                     "      \"wall_seconds\": %.6f,\n"
                     "      \"user_seconds\": %.6f,\n"
                     "      \"sys_seconds\": %.6f,\n"
                     "      \"max_rss_kb\": %ld,\n"
                     "      \"paper_metrics\": [",
                     r.name.c_str(), r.exit_code, r.wall_seconds,
                     r.user_seconds, r.sys_seconds, r.max_rss_kb);
        for (std::size_t m = 0; m < r.paper_metrics.size(); ++m)
            std::fprintf(f, "\n        %s%s", r.paper_metrics[m].c_str(),
                         m + 1 < r.paper_metrics.size() ? "," : "\n      ");
        std::fprintf(f, "]\n    }%s\n",
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
}

/**
 * The scheduler-side view of the fleet run: how the suite tasks packed
 * onto the pool, who the straggler was, and how busy the budget stayed.
 */
struct FleetSummary
{
    int budget = 1;
    int concurrent_suites = 1;
    int jobs_per_child = 1;
    double makespan_s = 0.0;
    double busy_s = 0.0; ///< summed per-suite wall inside the schedule
    double utilization = 0.0;
    std::size_t straggler = 0; ///< index into the timings/results
};

FleetSummary
summarize(const std::vector<ebs::sched::TaskTiming> &timings, int budget,
          int concurrent, int child_jobs)
{
    FleetSummary s;
    s.budget = budget;
    s.concurrent_suites = concurrent;
    s.jobs_per_child = child_jobs;
    if (timings.empty())
        return s;
    double first_start = timings[0].start_s;
    double last_end = timings[0].end_s;
    for (std::size_t i = 0; i < timings.size(); ++i) {
        const auto &t = timings[i];
        first_start = std::min(first_start, t.start_s);
        last_end = std::max(last_end, t.end_s);
        s.busy_s += t.duration();
        if (t.duration() > timings[s.straggler].duration())
            s.straggler = i;
    }
    s.makespan_s = last_end - first_start;
    const double capacity = s.makespan_s * s.concurrent_suites;
    s.utilization = capacity > 0.0 ? s.busy_s / capacity : 0.0;
    return s;
}

void
writeTimeline(const fs::path &path,
              const std::vector<ebs::sched::TaskTiming> &timings,
              const std::vector<SuiteResult> &results,
              const FleetSummary &s,
              const std::vector<std::size_t> &order)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "run_all: cannot write %s: %s\n",
                     path.c_str(), std::strerror(errno));
        return;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"budget\": %d,\n"
                 "  \"concurrent_suites\": %d,\n"
                 "  \"jobs_per_child\": %d,\n"
                 "  \"makespan_seconds\": %.6f,\n"
                 "  \"busy_seconds\": %.6f,\n"
                 "  \"utilization\": %.4f,\n"
                 "  \"straggler\": \"%s\",\n"
                 "  \"suites\": [",
                 s.budget, s.concurrent_suites, s.jobs_per_child,
                 s.makespan_s, s.busy_s, s.utilization,
                 timings.empty() ? "" : timings[s.straggler].label.c_str());
    for (std::size_t i = 0; i < timings.size(); ++i) {
        // Timings are in submission (schedule) order; map each back to
        // its suite's result slot.
        const SuiteResult &result = results[order[i]];
        std::fprintf(f,
                     "%s\n    {\"name\": \"%s\", \"start_s\": %.6f, "
                     "\"end_s\": %.6f, \"wall_seconds\": %.6f, "
                     "\"exit_code\": %d, \"max_rss_kb\": %ld",
                     i > 0 ? "," : "", timings[i].label.c_str(),
                     timings[i].start_s, timings[i].end_s,
                     timings[i].duration(), result.exit_code,
                     result.max_rss_kb);
        if (result.has_phase_wall)
            std::fprintf(f,
                         ", \"phase_compute_s\": %.6f, "
                         "\"phase_execute_s\": %.6f, \"episodes\": %lld",
                         result.phase_compute_s, result.phase_execute_s,
                         result.phase_episodes);
        std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
}

/**
 * Merge the per-suite Chrome trace files the children exported (each
 * suite ran with EBS_TRACE_OUT=<logs>/<suite>.trace.json and a disjoint
 * EBS_TRACE_PID_BASE, see obs/trace.h) into one Perfetto-loadable
 * BENCH_trace.json, and add run_all's own fleet-level view: one 'X'
 * slice per suite on pid 1 (tid = the pool worker that babysat the
 * child, -1 = the help-executing main thread). The writer emits one
 * event per line between a fixed header and footer, so the merge is a
 * pure line concatenation — no JSON parser in the driver.
 */
void
writeMergedTrace(const fs::path &trace_path,
                 const std::vector<fs::path> &suite_traces,
                 const std::vector<ebs::sched::TaskTiming> &timings,
                 const std::vector<SuiteResult> &results,
                 const std::vector<std::size_t> &order)
{
    std::vector<std::string> lines;
    lines.push_back("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,"
                    "\"name\":\"process_name\","
                    "\"args\":{\"name\":\"run_all fleet\"}}");
    // Suite slices in submission order: tasks of one worker are claimed
    // in submission order, so each (pid 1, tid) track's timestamps come
    // out nondecreasing — the invariant trace_summarize --validate pins.
    for (std::size_t i = 0; i < timings.size(); ++i) {
        const SuiteResult &result = results[order[i]];
        char buf[512];
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,"
                      "\"dur\":%.3f,\"cat\":\"suite\",\"name\":\"%s\","
                      "\"args\":{\"exit_code\":%d,\"max_rss_kb\":%ld}}",
                      timings[i].worker, timings[i].start_s * 1e6,
                      timings[i].duration() * 1e6,
                      timings[i].label.c_str(), result.exit_code,
                      result.max_rss_kb);
        lines.push_back(buf);
    }
    for (const fs::path &child : suite_traces) {
        std::ifstream in(child);
        if (!in) {
            std::fprintf(stderr,
                         "run_all: no trace from %s (suite crashed before "
                         "its atexit exporter?)\n",
                         child.c_str());
            continue;
        }
        std::string line;
        while (std::getline(in, line)) {
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            // Keep only event lines: skip the header/footer brackets.
            if (line.empty() || line[0] != '{' ||
                line.rfind("{ \"traceEvents\"", 0) == 0)
                continue;
            if (line.back() == ',')
                line.pop_back();
            lines.push_back(std::move(line));
        }
    }

    std::FILE *f = std::fopen(trace_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "run_all: cannot write %s: %s\n",
                     trace_path.c_str(), std::strerror(errno));
        return;
    }
    std::fputs("{ \"traceEvents\": [\n", f);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        std::fputs(lines[i].c_str(), f);
        std::fputs(i + 1 < lines.size() ? ",\n" : "\n", f);
    }
    std::fputs("] }\n", f);
    std::fclose(f);
}

/**
 * Per-suite wall-clock of a previous fleet run, read back from the
 * BENCH_timeline.json the run wrote. Used to seed the schedule order:
 * submitting the longest suites first shaves the straggler tail versus
 * the default alphabetical order (a long suite started last overhangs
 * the makespan by almost its whole duration). The parser is a minimal
 * scan over the file this binary itself writes — on any mismatch it
 * returns an empty map and the schedule falls back to list order.
 */
std::map<std::string, double>
readTimelineDurations(const fs::path &path)
{
    std::map<std::string, double> durations;
    std::ifstream in(path);
    if (!in)
        return durations;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    static const std::string kName = "\"name\": \"";
    static const std::string kWall = "\"wall_seconds\": ";
    std::size_t pos = 0;
    while ((pos = text.find(kName, pos)) != std::string::npos) {
        pos += kName.size();
        const std::size_t name_end = text.find('"', pos);
        if (name_end == std::string::npos)
            break;
        const std::string name = text.substr(pos, name_end - pos);
        const std::size_t wall_at = text.find(kWall, name_end);
        const std::size_t next_name = text.find(kName, name_end);
        // The wall_seconds must belong to this entry, not a later one.
        if (wall_at == std::string::npos ||
            (next_name != std::string::npos && wall_at > next_name)) {
            pos = name_end;
            continue;
        }
        // Skip entries whose wall_seconds doesn't parse as a clean
        // number (strtod consuming nothing, or a non-JSON tail): a
        // corrupt timeline entry should fall back to "unknown duration"
        // rather than feed garbage into the schedule.
        const char *wall_start = text.c_str() + wall_at + kWall.size();
        char *wall_end = nullptr;
        const double wall = std::strtod(wall_start, &wall_end);
        const bool clean_tail =
            wall_end != wall_start &&
            (*wall_end == ',' || *wall_end == '}' || *wall_end == '\n' ||
             *wall_end == '\r' || *wall_end == ' ' || *wall_end == '\0');
        if (clean_tail && wall > 0.0)
            durations[name] = wall;
        pos = name_end;
    }
    return durations;
}

/**
 * The order suite tasks are submitted to the scheduler: previous-run
 * longest first (suites absent from the previous timeline are treated
 * as unknown-and-possibly-long and go first, keeping their relative
 * order), or plain list order when no usable timeline exists.
 */
std::vector<std::size_t>
scheduleOrder(const std::vector<fs::path> &binaries,
              const std::map<std::string, double> &durations)
{
    std::vector<std::size_t> order(binaries.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    if (durations.empty())
        return order;
    const auto duration_of = [&](std::size_t i) {
        const auto it = durations.find(binaries[i].filename().string());
        return it == durations.end()
                   ? std::numeric_limits<double>::infinity()
                   : it->second;
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return duration_of(a) > duration_of(b);
                     });
    return order;
}

/** Split a comma-separated list, dropping empty items. */
std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t begin = 0;
    while (begin <= list.size()) {
        const std::size_t comma = list.find(',', begin);
        const std::size_t end =
            comma == std::string::npos ? list.size() : comma;
        if (end > begin)
            out.push_back(list.substr(begin, end - begin));
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    return out;
}

/**
 * Resolve one --suites entry against the discovered binaries: exact name
 * first (with or without the bench_ prefix), then unique substring.
 * Returns npos and prints the candidates when nothing (or too much)
 * matches, so a typo'd suite name fails loudly instead of silently
 * shrinking the fleet.
 */
std::size_t
resolveSuite(const std::string &entry,
             const std::vector<fs::path> &binaries)
{
    std::vector<std::size_t> substring_hits;
    for (std::size_t i = 0; i < binaries.size(); ++i) {
        const std::string name = binaries[i].filename().string();
        if (name == entry || name == "bench_" + entry)
            return i;
        if (name.find(entry) != std::string::npos)
            substring_hits.push_back(i);
    }
    if (substring_hits.size() == 1)
        return substring_hits[0];
    std::fprintf(stderr, "run_all: --suites entry '%s' %s\n", entry.c_str(),
                 substring_hits.empty() ? "matches no suite"
                                        : "is ambiguous");
    for (const std::size_t i : substring_hits)
        std::fprintf(stderr, "run_all:   candidate: %s\n",
                     binaries[i].filename().c_str());
    return static_cast<std::size_t>(-1);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool list_only = false;
    bool serial = false;
    std::string filter;
    std::string suites_arg;
    int budget = 0; // 0 = EBS_JOBS / hardware default
    fs::path out_path = "BENCH_results.json";
    fs::path log_dir = "BENCH_logs";
    fs::path timeline_path = "BENCH_timeline.json";
    fs::path trace_path = "BENCH_trace.json";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--list") {
            list_only = true;
        } else if (arg == "--serial") {
            serial = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--logs" && i + 1 < argc) {
            log_dir = argv[++i];
        } else if (arg == "--timeline" && i + 1 < argc) {
            timeline_path = argv[++i];
        } else if (arg == "--trace-out" && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (arg == "--filter" && i + 1 < argc) {
            filter = argv[++i];
        } else if (arg == "--suites" && i + 1 < argc) {
            suites_arg = argv[++i];
        } else if (arg == "--jobs" && i + 1 < argc) {
            const std::string jobs = argv[++i];
            char *end = nullptr;
            const long parsed = std::strtol(jobs.c_str(), &end, 10);
            if (end == jobs.c_str() || *end != '\0' || parsed <= 0 ||
                parsed > 1024) {
                std::fprintf(stderr,
                             "run_all: --jobs wants an integer in "
                             "1..1024, got '%s'\n",
                             jobs.c_str());
                return 2;
            }
            budget = static_cast<int>(parsed);
        } else {
            std::fprintf(stderr,
                         "usage: run_all [--smoke] [--list] [--serial] "
                         "[--out PATH] [--logs DIR] [--timeline PATH] "
                         "[--trace-out PATH] [--filter STR] "
                         "[--suites a,b,c] [--jobs N]\n");
            return arg == "--help" || arg == "-h" ? 0 : 2;
        }
    }
    if (budget <= 0)
        budget = ebs::sched::FleetScheduler::defaultWorkers();

    const fs::path bench_dir = selfDirectory(argv[0]);
    std::vector<fs::path> discovered;
    for (const auto &entry : fs::directory_iterator(bench_dir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("bench_", 0) == 0 && isExecutableFile(entry.path()))
            discovered.push_back(entry.path());
    }
    std::sort(discovered.begin(), discovered.end());

    if (discovered.empty()) {
        std::fprintf(stderr, "run_all: no bench_* binaries found in %s\n",
                     bench_dir.c_str());
        return 1;
    }

    std::vector<fs::path> binaries;
    if (!suites_arg.empty()) {
        // --suites: an explicit, validated selection in list order.
        for (const auto &entry : splitList(suites_arg)) {
            const std::size_t found = resolveSuite(entry, discovered);
            if (found == static_cast<std::size_t>(-1))
                return 2;
            if (std::find(binaries.begin(), binaries.end(),
                          discovered[found]) == binaries.end())
                binaries.push_back(discovered[found]);
        }
    } else {
        binaries = discovered;
    }
    if (!filter.empty()) {
        std::erase_if(binaries, [&](const fs::path &p) {
            return p.filename().string().find(filter) == std::string::npos;
        });
        if (binaries.empty()) {
            std::fprintf(stderr,
                         "run_all: --filter '%s' matched none of the %zu "
                         "selected bench_* binaries in %s\n",
                         filter.c_str(), discovered.size(),
                         bench_dir.c_str());
            return 1;
        }
    }
    if (list_only) {
        for (const auto &b : binaries)
            std::printf("%s\n", b.filename().c_str());
        return 0;
    }

    std::error_code ec;
    fs::create_directories(log_dir, ec);
    if (ec || !fs::is_directory(log_dir)) {
        std::fprintf(stderr, "run_all: cannot create log dir %s: %s\n",
                     log_dir.c_str(),
                     ec ? ec.message().c_str() : "not a directory");
        return 1;
    }

    // Split the global budget: run `concurrent` suite processes at once,
    // each fanning its episodes across `child_jobs` workers, so the
    // in-flight episode count stays within `budget`. --serial restores
    // the legacy schedule (one suite at a time owning the whole budget).
    const int n_suites = static_cast<int>(binaries.size());
    const int concurrent = serial ? 1 : std::min(budget, n_suites);
    const int child_jobs = std::max(1, budget / concurrent);

    std::printf("[run_all] fleet: %d suites, budget %d "
                "(%d concurrent x %d jobs/child%s)\n",
                n_suites, budget, concurrent, child_jobs,
                serial ? ", --serial" : "");

    // Tracing (EBS_TRACE truthy in the driver's own environment): each
    // child exports its trace to a per-suite file in the log dir, under
    // a disjoint pid block, and the driver merges them after the fleet
    // drains. Off (the default): the EBS_TRACE_* knobs are stripped from
    // every child and no trace machinery runs anywhere.
    const bool tracing = ebs::obs::traceEnabled();
    std::vector<fs::path> suite_traces;
    std::vector<std::unique_ptr<ChildEnvironment>> child_envs;
    child_envs.reserve(binaries.size());
    for (std::size_t i = 0; i < binaries.size(); ++i) {
        std::vector<std::string> extra;
        if (tracing) {
            const std::string suite = binaries[i].filename().string();
            const fs::path child_trace =
                log_dir / (suite + ".trace.json");
            suite_traces.push_back(child_trace);
            extra.push_back("EBS_TRACE_OUT=" + child_trace.string());
            extra.push_back("EBS_TRACE_NAME=" + suite);
            extra.push_back("EBS_TRACE_PID_BASE=" +
                            std::to_string(10 + 10 * i));
        }
        child_envs.push_back(std::make_unique<ChildEnvironment>(
            smoke, child_jobs, std::move(extra)));
    }

    std::vector<SuiteResult> results(binaries.size());
    ebs::core::Mutex print_mutex;

    // Seed the submission order from the previous run's timeline
    // (longest suite first): the scheduler starts tasks in submission
    // order, so known stragglers begin immediately instead of last.
    const auto previous_durations = readTimelineDurations(timeline_path);
    const std::vector<std::size_t> order =
        scheduleOrder(binaries, previous_durations);
    if (!previous_durations.empty())
        std::printf("[run_all] schedule seeded from %s "
                    "(longest suite first)\n",
                    timeline_path.c_str());

    // One work-graph for the whole fleet: a node per suite, no edges —
    // the scheduler packs them onto `concurrent` pool threads and its
    // timings become the straggler report. (Each node blocks in wait4
    // while the child burns the actual CPU, so pool threads are cheap
    // placeholders for the child's budget share.)
    ebs::sched::FleetScheduler scheduler(concurrent);
    ebs::sched::TaskGraph graph;
    for (const std::size_t i : order) {
        const fs::path &binary = binaries[i];
        const fs::path log_path =
            log_dir / (binary.filename().string() + ".log");
        graph.add(
            [&, i, log_path] {
                results[i] = runSuite(binaries[i], log_path,
                                      *child_envs[i]);
                ebs::core::MutexLock lock(print_mutex);
                std::printf("[run_all] %-32s exit=%d wall=%.2fs rss=%ldKB\n",
                            results[i].name.c_str(), results[i].exit_code,
                            results[i].wall_seconds, results[i].max_rss_kb);
                std::fflush(stdout);
            },
            binary.filename().string());
    }
    // The cap matters even with a right-sized pool: the run() caller
    // help-executes while waiting, which would otherwise add a
    // budget-breaching (concurrent+1)-th suite.
    const auto timings = scheduler.run(std::move(graph), concurrent);

    int failures = 0;
    for (const auto &r : results)
        failures += r.exit_code != 0;

    const FleetSummary summary =
        summarize(timings, budget, concurrent, child_jobs);
    std::printf("[run_all] schedule: makespan %.2fs, suite wall sum %.2fs, "
                "pool busy %.0f%%\n",
                summary.makespan_s, summary.busy_s,
                100.0 * summary.utilization);
    if (!timings.empty()) {
        const auto &straggler = timings[summary.straggler];
        std::printf("[run_all] straggler: %s (%.2fs, %.0f%% of makespan)\n",
                    straggler.label.c_str(), straggler.duration(),
                    summary.makespan_s > 0.0
                        ? 100.0 * straggler.duration() / summary.makespan_s
                        : 0.0);
    }
    // Memory high-water mark of the fleet: each suite is its own
    // process, so the per-suite getrusage peaks are independent and the
    // fleet peak is the max (suites also carry their own value in
    // BENCH_results.json and BENCH_timeline.json).
    if (!results.empty()) {
        std::size_t peak = 0;
        for (std::size_t i = 1; i < results.size(); ++i)
            if (results[i].max_rss_kb > results[peak].max_rss_kb)
                peak = i;
        std::printf("[run_all] peak rss: %s (%ld KB)\n",
                    results[peak].name.c_str(), results[peak].max_rss_kb);
    }
    // Per-episode compute/execute host split across the suites that
    // report one (EBS_PHASE_WALL): makes the speculative execute-phase
    // win visible at fleet level and in BENCH_timeline.json.
    {
        double compute_s = 0.0, execute_s = 0.0;
        long long episodes = 0;
        int reporting = 0;
        for (const auto &r : results) {
            if (!r.has_phase_wall)
                continue;
            compute_s += r.phase_compute_s;
            execute_s += r.phase_execute_s;
            episodes += r.phase_episodes;
            ++reporting;
        }
        if (episodes > 0)
            std::printf("[run_all] phase wall (%d suites, %lld episodes): "
                        "compute %.2fs + execute %.2fs "
                        "(%.1fms + %.1fms per episode)\n",
                        reporting, episodes, compute_s, execute_s,
                        1000.0 * compute_s / episodes,
                        1000.0 * execute_s / episodes);
    }
    writeTimeline(timeline_path, timings, results, summary, order);
    if (tracing) {
        writeMergedTrace(trace_path, suite_traces, timings, results,
                         order);
        std::printf("[run_all] wrote %s (merged %zu suite traces)\n",
                    trace_path.c_str(), suite_traces.size());
    }

    writeJson(out_path, results, smoke);
    std::printf("[run_all] wrote %s (%zu suites, %d failed)\n",
                out_path.c_str(), results.size(), failures);
    return failures == 0 ? 0 : 1;
}
