/**
 * @file
 * Benchmark fleet driver. Default mode runs every suite **in-process**:
 * suites are library functions registered in bench::SuiteRegistry (see
 * suite.h), and the driver submits the whole fleet as one dependency-free
 * sched::TaskGraph onto a single FleetScheduler pool of `--jobs` workers.
 * There is no static budget split any more — a suite's episodes fan onto
 * the same shared pool its siblings run on, so when a short suite drains,
 * its workers immediately start absorbing the straggler's episodes.
 *
 * Each suite writes its stdout sink to `<logs>/<suite>.log` and its
 * stderr sink to `<logs>/<suite>.err.log`; the logs are byte-identical
 * to what the suite's standalone binary would have printed (the
 * SuiteContext contract, pinned by the fleet equivalence test). The
 * captured stdout is scanned for `EBS_METRIC {...}` lines and folded
 * into `BENCH_results.json` (suite -> paper_metrics) so successive PRs
 * have a perf trajectory; the scheduler's task timeline becomes the
 * per-suite wall-clock / straggler summary and `BENCH_timeline.json`.
 *
 * `--spawn` keeps the legacy posix_spawn fleet as a transition oracle:
 * each `bench_*` binary next to this executable runs as a child process
 * under the old static budget split (C = min(J, suites) children x
 * EBS_JOBS = max(1, J / C) each), with the same per-suite log layout so
 * `diff_metrics` and byte-comparison can pin in-process == spawned.
 *
 * Flags:
 *   --smoke        run each suite with tiny iteration counts
 *   --jobs N       global worker budget (default: EBS_JOBS, else the
 *                  hardware concurrency)
 *   --serial       suites one at a time (each still using the whole
 *                  pool for its own episodes)
 *   --spawn        legacy mode: run each suite as a child process
 *   --out PATH     output JSON path (default: BENCH_results.json in cwd)
 *   --logs DIR     per-suite logs (default: BENCH_logs in cwd)
 *   --timeline P   scheduler timeline JSON (default: BENCH_timeline.json)
 *   --trace-out P  merged Chrome trace path (with EBS_TRACE=1)
 *   --filter STR   only run suites whose name contains STR
 *   --suites LIST  comma-separated suite names to run (with or without
 *                  the bench_ prefix; substrings accepted when unique;
 *                  misses fail with near-miss suggestions)
 *   --list         print the selected suite names and exit
 *   --list-suites  print every registered suite with its description
 */

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <fcntl.h>
#include <spawn.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/sync.h"
#include "fleet_plan.h"
#include "obs/trace.h"
#include "sched/fleet_scheduler.h"
#include "stats/host_clock.h"
#include "suite.h"

extern char **environ;

namespace {

namespace fs = std::filesystem;

struct SuiteResult
{
    std::string name;
    int exit_code = -1;
    double wall_seconds = 0.0;
    double user_seconds = 0.0;
    double sys_seconds = 0.0;
    long max_rss_kb = 0;
    std::vector<std::string> paper_metrics; ///< raw EBS_METRIC objects

    /** Host compute/execute phase split reported by the suite's last
     * `EBS_PHASE_WALL` stderr line (see suite.h); absent when the
     * suite does not run episodes or predates the reporting. */
    bool has_phase_wall = false;
    double phase_compute_s = 0.0;
    double phase_execute_s = 0.0;
    long long phase_episodes = 0;
};

/**
 * Collect the JSON objects of `EBS_METRIC {...}` lines from a suite's
 * captured stdout. The objects are emitted by SuiteContext and embedded
 * verbatim, so run_all needs no JSON parser — only a sanity check that
 * the payload looks like a single-line object.
 */
std::vector<std::string>
collectMetricLines(const fs::path &log_path)
{
    static const std::string kPrefix = "EBS_METRIC ";
    std::vector<std::string> metrics;
    std::ifstream log(log_path);
    std::string line;
    while (std::getline(log, line)) {
        if (line.rfind(kPrefix, 0) != 0)
            continue;
        std::string payload = line.substr(kPrefix.size());
        if (!payload.empty() && payload.back() == '\r')
            payload.pop_back();
        if (payload.size() >= 2 && payload.front() == '{' &&
            payload.back() == '}')
            metrics.push_back(std::move(payload));
    }
    return metrics;
}

/**
 * Parse the *last* `EBS_PHASE_WALL {...}` line of a suite's captured
 * stderr log into the result's phase split. The clock accumulates
 * monotonically over the suite, so the last line is the suite total.
 *
 * Anchored on the *whole line*, not a substring scan: a candidate line
 * must start with the prefix and the remainder must be exactly one flat
 * balanced `{...}` object with nothing after it (modulo a trailing CR).
 * stderr is unbuffered, so a child thread racing the summary write can
 * fuse two lines into one ("EBS_PHASE_WALL {..}warning: ..."); the old
 * substring scan would happily pull values out of the wreckage, while a
 * fused or truncated line must simply not count.
 */
void
readPhaseWall(const fs::path &err_path, SuiteResult &result)
{
    static const std::string kPrefix = "EBS_PHASE_WALL ";
    std::ifstream log(err_path);
    std::string line, last;
    while (std::getline(log, line)) {
        if (line.rfind(kPrefix, 0) != 0)
            continue;
        std::string payload = line.substr(kPrefix.size());
        if (!payload.empty() && payload.back() == '\r')
            payload.pop_back();
        const bool whole_flat_object =
            payload.size() >= 2 && payload.front() == '{' &&
            payload.find('{', 1) == std::string::npos &&
            payload.find('}') == payload.size() - 1;
        if (whole_flat_object)
            last = std::move(payload);
    }
    if (last.empty())
        return;
    const auto field = [&last](const char *key, double &out) {
        const std::size_t at = last.find(key);
        if (at == std::string::npos)
            return false;
        // A key with a malformed value ("compute_s":oops) must report
        // "absent", not silently 0.0: strtod has to consume at least one
        // character and stop at a JSON delimiter.
        const char *start = last.c_str() + at + std::strlen(key);
        char *end = nullptr;
        const double value = std::strtod(start, &end);
        if (end == start ||
            (*end != '\0' && *end != ',' && *end != '}' && *end != ' '))
            return false;
        out = value;
        return true;
    };
    double episodes = 0.0;
    result.has_phase_wall =
        field("\"compute_s\":", result.phase_compute_s) &&
        field("\"execute_s\":", result.phase_execute_s) &&
        field("\"episodes\":", episodes);
    result.phase_episodes = static_cast<long long>(episodes);
}

/** Directory containing this executable (where the bench binaries live). */
fs::path
selfDirectory(const char *argv0)
{
    std::error_code ec;
    const fs::path self = fs::read_symlink("/proc/self/exe", ec);
    if (!ec)
        return self.parent_path();
    const fs::path fallback = fs::absolute(argv0, ec);
    return ec ? fs::current_path() : fallback.parent_path();
}

bool
isExecutableFile(const fs::path &p)
{
    std::error_code ec;
    return fs::is_regular_file(p, ec) &&
           ::access(p.c_str(), X_OK) == 0;
}

/**
 * The environment block every `--spawn` suite child receives: the
 * parent's environment minus the fleet knobs, plus the driver-chosen
 * values. Built once before scheduling — with suite tasks running on
 * scheduler threads, children must not mutate the (non-thread-safe)
 * parent environment between fork and exec; posix_spawn with an
 * explicit envp sidesteps the problem entirely.
 */
class ChildEnvironment
{
  public:
    /** `extra` entries ("KEY=value") are appended after the driver's
     * own knobs — per-suite trace routing (EBS_TRACE_OUT and friends)
     * travels through here. */
    ChildEnvironment(bool smoke, int child_jobs,
                     std::vector<std::string> extra = {})
    {
        for (char **e = environ; *e != nullptr; ++e) {
            const std::string entry(*e);
            if (entry.rfind("EBS_BENCH_SMOKE=", 0) == 0 ||
                entry.rfind("EBS_JOBS=", 0) == 0 ||
                entry.rfind("EBS_TRACE_OUT=", 0) == 0 ||
                entry.rfind("EBS_TRACE_NAME=", 0) == 0 ||
                entry.rfind("EBS_TRACE_PID_BASE=", 0) == 0)
                continue; // a stale value would silently override ours
            storage_.push_back(entry);
        }
        if (smoke)
            storage_.push_back("EBS_BENCH_SMOKE=1");
        storage_.push_back("EBS_JOBS=" + std::to_string(child_jobs));
        for (auto &entry : extra)
            storage_.push_back(std::move(entry));
        for (auto &entry : storage_)
            pointers_.push_back(entry.data());
        pointers_.push_back(nullptr);
    }

    ChildEnvironment(const ChildEnvironment &) = delete;
    ChildEnvironment &operator=(const ChildEnvironment &) = delete;

    char *const *envp() const { return pointers_.data(); }

  private:
    std::vector<std::string> storage_;
    std::vector<char *> pointers_;
};

/** Run one benchmark binary as a child process (`--spawn`), capturing
 * stdout/stderr to separate per-suite logs and resource usage from
 * wait4 — the transition oracle the in-process path is compared to. */
SuiteResult
runSuiteSpawned(const fs::path &binary, const fs::path &log_path,
                const fs::path &err_path, const ChildEnvironment &env)
{
    SuiteResult result;
    result.name = binary.filename().string();

    posix_spawn_file_actions_t actions;
    posix_spawn_file_actions_init(&actions);
    posix_spawn_file_actions_addopen(&actions, STDOUT_FILENO,
                                     log_path.c_str(),
                                     O_CREAT | O_WRONLY | O_TRUNC, 0644);
    // stderr gets its own capture: stdout must stay byte-comparable to
    // the in-process sink, and host-timing diagnostics interleaved by
    // dup2 would break that.
    posix_spawn_file_actions_addopen(&actions, STDERR_FILENO,
                                     err_path.c_str(),
                                     O_CREAT | O_WRONLY | O_TRUNC, 0644);

    char *const argv[] = {const_cast<char *>(binary.c_str()), nullptr};
    pid_t pid = -1;
    const double start = ebs::stats::hostNow();
    const int rc = ::posix_spawn(&pid, binary.c_str(), &actions, nullptr,
                                 argv, env.envp());
    posix_spawn_file_actions_destroy(&actions);
    if (rc != 0) {
        std::fprintf(stderr, "run_all: spawn %s failed: %s\n",
                     binary.c_str(), std::strerror(rc));
        return result;
    }

    int status = 0;
    struct rusage usage{};
    if (::wait4(pid, &status, 0, &usage) < 0) {
        std::fprintf(stderr, "run_all: wait4 failed: %s\n",
                     std::strerror(errno));
        return result;
    }
    const double end = ebs::stats::hostNow();

    result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status)
                       : WIFSIGNALED(status)
                           ? 128 + WTERMSIG(status)
                           : -1;
    result.wall_seconds = end - start;
    result.user_seconds = static_cast<double>(usage.ru_utime.tv_sec) +
                          usage.ru_utime.tv_usec / 1e6;
    result.sys_seconds = static_cast<double>(usage.ru_stime.tv_sec) +
                         usage.ru_stime.tv_usec / 1e6;
    result.max_rss_kb = usage.ru_maxrss;
    return result;
}

/**
 * Run one registered suite in-process through its SuiteContext. The
 * suite function's sinks are already bound to the per-suite log files;
 * this wrapper adds what the process boundary used to provide: wall
 * clock, CPU accounting, an RSS reading, and exception containment (a
 * throwing suite must report a failing exit code, not kill the fleet).
 */
SuiteResult
runSuiteInProcess(const ebs::bench::SuiteInfo &suite,
                  ebs::bench::SuiteContext &context)
{
    SuiteResult result;
    result.name = suite.name;

    struct rusage before{};
    ::getrusage(RUSAGE_SELF, &before);
    const double start = ebs::stats::hostNow();
    try {
        result.exit_code = suite.fn(context);
    } catch (const std::exception &e) {
        context.eprintf("run_all: suite %s threw: %s\n",
                        suite.name.c_str(), e.what());
        result.exit_code = 1;
    } catch (...) {
        context.eprintf("run_all: suite %s threw a non-std exception\n",
                        suite.name.c_str());
        result.exit_code = 1;
    }
    result.wall_seconds = ebs::stats::hostNow() - start;
    struct rusage after{};
    ::getrusage(RUSAGE_SELF, &after);
    // CPU time is a process-wide delta over the suite's window:
    // concurrently running suites overlap, so per-suite user/sys can
    // sum to more than the fleet total. Wall and paper metrics are the
    // comparable numbers; these stay for rough cost attribution.
    result.user_seconds =
        static_cast<double>(after.ru_utime.tv_sec -
                            before.ru_utime.tv_sec) +
        (after.ru_utime.tv_usec - before.ru_utime.tv_usec) / 1e6;
    result.sys_seconds =
        static_cast<double>(after.ru_stime.tv_sec -
                            before.ru_stime.tv_sec) +
        (after.ru_stime.tv_usec - before.ru_stime.tv_usec) / 1e6;
    // ru_maxrss is the process high-water mark — monotone, so this is
    // "fleet peak as of this suite's completion", not a per-suite peak.
    result.max_rss_kb = after.ru_maxrss;
    return result;
}

void
writeJson(const fs::path &out_path, const std::vector<SuiteResult> &results,
          bool smoke)
{
    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "run_all: cannot write %s: %s\n",
                     out_path.c_str(), std::strerror(errno));
        std::exit(1);
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema_version\": 2,\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"suites\": {\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SuiteResult &r = results[i];
        std::fprintf(f,
                     "    \"%s\": {\n"
                     "      \"exit_code\": %d,\n"
                     "      \"wall_seconds\": %.6f,\n"
                     "      \"user_seconds\": %.6f,\n"
                     "      \"sys_seconds\": %.6f,\n"
                     "      \"max_rss_kb\": %ld,\n"
                     "      \"paper_metrics\": [",
                     r.name.c_str(), r.exit_code, r.wall_seconds,
                     r.user_seconds, r.sys_seconds, r.max_rss_kb);
        for (std::size_t m = 0; m < r.paper_metrics.size(); ++m)
            std::fprintf(f, "\n        %s%s", r.paper_metrics[m].c_str(),
                         m + 1 < r.paper_metrics.size() ? "," : "\n      ");
        std::fprintf(f, "]\n    }%s\n",
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
}

/**
 * The scheduler-side view of the fleet run: how the suite tasks packed
 * onto the pool, who the straggler was, and how busy the capacity
 * stayed. In-process the capacity is the single shared pool (`budget`
 * workers); under --spawn it is the legacy static split (`concurrent`
 * child processes).
 */
struct FleetSummary
{
    int budget = 1;
    bool spawn = false;
    int concurrent_suites = 1; ///< spawn only: the static C
    int jobs_per_child = 1;    ///< spawn only: EBS_JOBS per child
    double makespan_s = 0.0;
    double busy_s = 0.0; ///< summed per-suite wall inside the schedule
    double utilization = 0.0;
    std::size_t straggler = 0; ///< index into the timings
};

FleetSummary
summarize(const std::vector<ebs::sched::TaskTiming> &timings, int budget,
          bool spawn, int concurrent, int child_jobs)
{
    FleetSummary s;
    s.budget = budget;
    s.spawn = spawn;
    s.concurrent_suites = concurrent;
    s.jobs_per_child = child_jobs;
    if (timings.empty())
        return s;
    double first_start = timings[0].start_s;
    double last_end = timings[0].end_s;
    for (std::size_t i = 0; i < timings.size(); ++i) {
        const auto &t = timings[i];
        first_start = std::min(first_start, t.start_s);
        last_end = std::max(last_end, t.end_s);
        s.busy_s += t.duration();
        if (t.duration() > timings[s.straggler].duration())
            s.straggler = i;
    }
    s.makespan_s = last_end - first_start;
    // Capacity: spawn children own disjoint worker shares, so suite
    // walls against C slots is exact; in-process suites share one pool
    // and their episodes interleave, so "suite wall over budget slots"
    // is a lower bound on pool business.
    const double slots =
        spawn ? double(s.concurrent_suites) : double(budget);
    const double capacity = s.makespan_s * slots;
    s.utilization = capacity > 0.0 ? s.busy_s / capacity : 0.0;
    return s;
}

void
writeTimeline(const fs::path &path,
              const std::vector<ebs::sched::TaskTiming> &timings,
              const std::vector<SuiteResult> &results,
              const FleetSummary &s,
              const std::vector<std::size_t> &order)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "run_all: cannot write %s: %s\n",
                     path.c_str(), std::strerror(errno));
        return;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"budget\": %d,\n"
                 "  \"mode\": \"%s\",\n",
                 s.budget, s.spawn ? "spawn" : "in-process");
    if (s.spawn)
        std::fprintf(f,
                     "  \"concurrent_suites\": %d,\n"
                     "  \"jobs_per_child\": %d,\n",
                     s.concurrent_suites, s.jobs_per_child);
    else
        std::fprintf(f, "  \"pool_workers\": %d,\n", s.budget);
    std::fprintf(f,
                 "  \"makespan_seconds\": %.6f,\n"
                 "  \"busy_seconds\": %.6f,\n"
                 "  \"utilization\": %.4f,\n"
                 "  \"straggler\": \"%s\",\n"
                 "  \"suites\": [",
                 s.makespan_s, s.busy_s, s.utilization,
                 timings.empty() ? "" : timings[s.straggler].label.c_str());
    for (std::size_t i = 0; i < timings.size(); ++i) {
        // Timings are in submission (schedule) order; map each back to
        // its suite's result slot.
        const SuiteResult &result = results[order[i]];
        std::fprintf(f,
                     "%s\n    {\"name\": \"%s\", \"start_s\": %.6f, "
                     "\"end_s\": %.6f, \"wall_seconds\": %.6f, "
                     "\"exit_code\": %d, \"max_rss_kb\": %ld",
                     i > 0 ? "," : "", timings[i].label.c_str(),
                     timings[i].start_s, timings[i].end_s,
                     timings[i].duration(), result.exit_code,
                     result.max_rss_kb);
        if (result.has_phase_wall)
            std::fprintf(f,
                         ", \"phase_compute_s\": %.6f, "
                         "\"phase_execute_s\": %.6f, \"episodes\": %lld",
                         result.phase_compute_s, result.phase_execute_s,
                         result.phase_episodes);
        std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
}

/** The driver's own fleet-level trace lines: a process-name metadata
 * record and one 'X' slice per suite on pid 1 (tid = the pool worker
 * that ran, or babysat, the suite). */
std::vector<std::string>
fleetTraceLines(const std::vector<ebs::sched::TaskTiming> &timings,
                const std::vector<SuiteResult> &results,
                const std::vector<std::size_t> &order)
{
    std::vector<std::string> lines;
    lines.push_back("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,"
                    "\"name\":\"process_name\","
                    "\"args\":{\"name\":\"run_all fleet\"}}");
    // Suite slices in submission order: tasks of one worker are claimed
    // in submission order, so each (pid 1, tid) track's timestamps come
    // out nondecreasing — the invariant trace_summarize --validate pins.
    for (std::size_t i = 0; i < timings.size(); ++i) {
        const SuiteResult &result = results[order[i]];
        char buf[512];
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,"
                      "\"dur\":%.3f,\"cat\":\"suite\",\"name\":\"%s\","
                      "\"args\":{\"exit_code\":%d,\"max_rss_kb\":%ld}}",
                      timings[i].worker, timings[i].start_s * 1e6,
                      timings[i].duration() * 1e6,
                      timings[i].label.c_str(), result.exit_code,
                      result.max_rss_kb);
        lines.push_back(buf);
    }
    return lines;
}

void
writeTraceFile(const fs::path &trace_path,
               const std::vector<std::string> &lines)
{
    std::FILE *f = std::fopen(trace_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "run_all: cannot write %s: %s\n",
                     trace_path.c_str(), std::strerror(errno));
        return;
    }
    std::fputs("{ \"traceEvents\": [\n", f);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        std::fputs(lines[i].c_str(), f);
        std::fputs(i + 1 < lines.size() ? ",\n" : "\n", f);
    }
    std::fputs("] }\n", f);
    std::fclose(f);
}

/**
 * Merge the per-suite Chrome trace files `--spawn` children exported
 * (each suite ran with EBS_TRACE_OUT=<logs>/<suite>.trace.json and a
 * disjoint EBS_TRACE_PID_BASE, see obs/trace.h) into one
 * Perfetto-loadable BENCH_trace.json, plus the driver's fleet-level
 * view. The child writer emits one event per line between a fixed
 * header and footer, so the merge is a pure line concatenation — no
 * JSON parser in the driver.
 */
void
writeMergedTraceSpawn(const fs::path &trace_path,
                      const std::vector<fs::path> &suite_traces,
                      const std::vector<ebs::sched::TaskTiming> &timings,
                      const std::vector<SuiteResult> &results,
                      const std::vector<std::size_t> &order)
{
    std::vector<std::string> lines =
        fleetTraceLines(timings, results, order);
    for (const fs::path &child : suite_traces) {
        std::ifstream in(child);
        if (!in) {
            std::fprintf(stderr,
                         "run_all: no trace from %s (suite crashed before "
                         "its atexit exporter?)\n",
                         child.c_str());
            continue;
        }
        std::string line;
        while (std::getline(in, line)) {
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            // Keep only event lines: skip the header/footer brackets.
            if (line.empty() || line[0] != '{' ||
                line.rfind("{ \"traceEvents\"", 0) == 0)
                continue;
            if (line.back() == ',')
                line.pop_back();
            lines.push_back(std::move(line));
        }
    }
    writeTraceFile(trace_path, lines);
}

/**
 * The in-process replacement for stitching child trace files: every
 * suite's private Tracer renders its lines in memory (same disjoint
 * 10 + 10*i pid block a spawned child would have exported under), and
 * the shared Tracer contributes the scheduler's host-task track — the
 * single pool every suite's episodes actually ran on.
 */
void
writeMergedTraceInProcess(
    const fs::path &trace_path,
    const std::vector<ebs::sched::TaskTiming> &timings,
    const std::vector<SuiteResult> &results,
    const std::vector<std::size_t> &order,
    const std::vector<std::string> &names,
    const std::vector<std::unique_ptr<ebs::bench::SuiteContext>> &contexts)
{
    std::vector<std::string> lines =
        fleetTraceLines(timings, results, order);
    for (const auto &line : ebs::obs::Tracer::shared().chromeLines(
             "run_all scheduler", /*pid_base=*/4))
        lines.push_back(line);
    for (std::size_t i = 0; i < contexts.size(); ++i)
        for (const auto &line : contexts[i]->tracer().chromeLines(
                 names[i], /*pid_base=*/static_cast<int>(10 + 10 * i)))
            lines.push_back(line);
    writeTraceFile(trace_path, lines);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool list_only = false;
    bool list_suites = false;
    bool serial = false;
    bool spawn = false;
    std::string filter;
    std::string suites_arg;
    int budget = 0; // 0 = EBS_JOBS / hardware default
    fs::path out_path = "BENCH_results.json";
    fs::path log_dir = "BENCH_logs";
    fs::path timeline_path = "BENCH_timeline.json";
    fs::path trace_path = "BENCH_trace.json";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--list") {
            list_only = true;
        } else if (arg == "--list-suites") {
            list_suites = true;
        } else if (arg == "--serial") {
            serial = true;
        } else if (arg == "--spawn") {
            spawn = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--logs" && i + 1 < argc) {
            log_dir = argv[++i];
        } else if (arg == "--timeline" && i + 1 < argc) {
            timeline_path = argv[++i];
        } else if (arg == "--trace-out" && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (arg == "--filter" && i + 1 < argc) {
            filter = argv[++i];
        } else if (arg == "--suites" && i + 1 < argc) {
            suites_arg = argv[++i];
        } else if (arg == "--jobs" && i + 1 < argc) {
            const std::string jobs = argv[++i];
            char *end = nullptr;
            const long parsed = std::strtol(jobs.c_str(), &end, 10);
            if (end == jobs.c_str() || *end != '\0' || parsed <= 0 ||
                parsed > 1024) {
                std::fprintf(stderr,
                             "run_all: --jobs wants an integer in "
                             "1..1024, got '%s'\n",
                             jobs.c_str());
                return 2;
            }
            budget = static_cast<int>(parsed);
        } else {
            std::fprintf(stderr,
                         "usage: run_all [--smoke] [--list] "
                         "[--list-suites] [--serial] [--spawn] "
                         "[--out PATH] [--logs DIR] [--timeline PATH] "
                         "[--trace-out PATH] [--filter STR] "
                         "[--suites a,b,c] [--jobs N]\n");
            return arg == "--help" || arg == "-h" ? 0 : 2;
        }
    }
    if (budget <= 0)
        budget = ebs::sched::FleetScheduler::defaultWorkers();

    const auto &registry = ebs::bench::SuiteRegistry::instance();
    if (list_suites) {
        for (const auto &suite : registry.suites())
            std::printf("%-28s %s\n", suite.name.c_str(),
                        suite.description.c_str());
        return 0;
    }

    // The suite universe: the linked registry (in-process, the default)
    // or the bench_* binaries next to this executable (--spawn).
    std::vector<std::string> names;
    std::vector<fs::path> spawn_binaries;
    const fs::path bench_dir = selfDirectory(argv[0]);
    if (spawn) {
        for (const auto &entry : fs::directory_iterator(bench_dir)) {
            const std::string name = entry.path().filename().string();
            if (name.rfind("bench_", 0) == 0 &&
                isExecutableFile(entry.path()))
                spawn_binaries.push_back(entry.path());
        }
        std::sort(spawn_binaries.begin(), spawn_binaries.end());
        for (const auto &binary : spawn_binaries)
            names.push_back(binary.filename().string());
        if (names.empty()) {
            std::fprintf(stderr,
                         "run_all: no bench_* binaries found in %s\n",
                         bench_dir.c_str());
            return 1;
        }
    } else {
        for (const auto &suite : registry.suites())
            names.push_back(suite.name);
        if (names.empty()) {
            std::fprintf(stderr, "run_all: no suites registered\n");
            return 1;
        }
    }

    // --suites: an explicit, validated selection in list order; a miss
    // fails loudly with near-miss suggestions instead of silently
    // shrinking the fleet.
    std::vector<std::size_t> selected;
    if (!suites_arg.empty()) {
        for (const auto &entry : ebs::bench::splitList(suites_arg)) {
            const auto resolution = ebs::bench::resolveSuite(entry, names);
            if (!resolution.ok()) {
                std::fprintf(stderr, "run_all: --suites entry '%s' %s\n",
                             entry.c_str(),
                             resolution.ambiguous ? "is ambiguous"
                                                  : "matches no suite");
                for (const auto &candidate : resolution.candidates)
                    std::fprintf(stderr, "run_all:   %s %s\n",
                                 resolution.ambiguous ? "candidate:"
                                                      : "did you mean:",
                                 candidate.c_str());
                return 2;
            }
            if (std::find(selected.begin(), selected.end(),
                          resolution.index) == selected.end())
                selected.push_back(resolution.index);
        }
    } else {
        selected.resize(names.size());
        for (std::size_t i = 0; i < names.size(); ++i)
            selected[i] = i;
    }
    if (!filter.empty()) {
        std::erase_if(selected, [&](std::size_t i) {
            return names[i].find(filter) == std::string::npos;
        });
        if (selected.empty()) {
            std::fprintf(stderr,
                         "run_all: --filter '%s' matched none of the %zu "
                         "known suites\n",
                         filter.c_str(), names.size());
            return 1;
        }
    }
    if (list_only) {
        for (const std::size_t i : selected)
            std::printf("%s\n", names[i].c_str());
        return 0;
    }

    std::error_code ec;
    fs::create_directories(log_dir, ec);
    if (ec || !fs::is_directory(log_dir)) {
        std::fprintf(stderr, "run_all: cannot create log dir %s: %s\n",
                     log_dir.c_str(),
                     ec ? ec.message().c_str() : "not a directory");
        return 1;
    }

    const std::size_t n_suites = selected.size();
    std::vector<std::string> sel_names;
    std::vector<fs::path> log_paths, err_paths;
    for (const std::size_t i : selected) {
        sel_names.push_back(names[i]);
        log_paths.push_back(log_dir / (names[i] + ".log"));
        err_paths.push_back(log_dir / (names[i] + ".err.log"));
    }

    // Seed the submission order from the previous run's timeline
    // (longest suite first): the scheduler starts tasks in submission
    // order, so known stragglers begin immediately instead of last.
    const auto previous_durations =
        ebs::bench::readTimelineDurations(timeline_path.string());
    const std::vector<std::size_t> order =
        ebs::bench::scheduleOrder(sel_names, previous_durations);

    const bool tracing = ebs::obs::traceEnabled();
    std::vector<SuiteResult> results(n_suites);
    std::vector<ebs::sched::TaskTiming> timings;
    ebs::core::Mutex print_mutex;

    if (spawn) {
        // Legacy static split: C children at once, each child's episode
        // fan-out capped by its own EBS_JOBS share.
        const int concurrent =
            serial ? 1 : std::min<int>(budget, int(n_suites));
        const int child_jobs = std::max(1, budget / concurrent);
        std::printf("[run_all] fleet: %zu suites, budget %d "
                    "(--spawn: %d concurrent x %d jobs/child%s)\n",
                    n_suites, budget, concurrent, child_jobs,
                    serial ? ", --serial" : "");
        if (!previous_durations.empty())
            std::printf("[run_all] schedule seeded from %s "
                        "(longest suite first)\n",
                        timeline_path.c_str());

        // Tracing: each child exports its trace to a per-suite file in
        // the log dir, under a disjoint pid block, and the driver
        // merges them after the fleet drains.
        std::vector<fs::path> suite_traces;
        std::vector<std::unique_ptr<ChildEnvironment>> child_envs;
        child_envs.reserve(n_suites);
        for (std::size_t i = 0; i < n_suites; ++i) {
            std::vector<std::string> extra;
            if (tracing) {
                const fs::path child_trace =
                    log_dir / (sel_names[i] + ".trace.json");
                suite_traces.push_back(child_trace);
                extra.push_back("EBS_TRACE_OUT=" + child_trace.string());
                extra.push_back("EBS_TRACE_NAME=" + sel_names[i]);
                extra.push_back("EBS_TRACE_PID_BASE=" +
                                std::to_string(10 + 10 * i));
            }
            child_envs.push_back(std::make_unique<ChildEnvironment>(
                smoke, child_jobs, std::move(extra)));
        }

        // A node per suite, no edges: each node blocks in wait4 while
        // the child burns the actual CPU, so pool threads are cheap
        // placeholders for the child's budget share.
        ebs::sched::FleetScheduler scheduler(concurrent);
        ebs::sched::TaskGraph graph;
        for (const std::size_t i : order) {
            graph.add(
                [&, i] {
                    results[i] = runSuiteSpawned(
                        spawn_binaries[selected[i]], log_paths[i],
                        err_paths[i], *child_envs[i]);
                    results[i].paper_metrics =
                        collectMetricLines(log_paths[i]);
                    readPhaseWall(err_paths[i], results[i]);
                    ebs::core::MutexLock lock(print_mutex);
                    std::printf(
                        "[run_all] %-32s exit=%d wall=%.2fs rss=%ldKB\n",
                        results[i].name.c_str(), results[i].exit_code,
                        results[i].wall_seconds, results[i].max_rss_kb);
                    std::fflush(stdout);
                },
                sel_names[i]);
        }
        // The cap matters even with a right-sized pool: the run()
        // caller help-executes while waiting, which would otherwise add
        // a budget-breaching (concurrent+1)-th suite.
        timings = scheduler.run(std::move(graph), concurrent);

        const FleetSummary summary =
            summarize(timings, budget, true, concurrent, child_jobs);
        std::printf("[run_all] schedule: makespan %.2fs, suite wall sum "
                    "%.2fs, pool busy %.0f%%\n",
                    summary.makespan_s, summary.busy_s,
                    100.0 * summary.utilization);
        if (!timings.empty()) {
            const auto &straggler = timings[summary.straggler];
            std::printf(
                "[run_all] straggler: %s (%.2fs, %.0f%% of makespan)\n",
                straggler.label.c_str(), straggler.duration(),
                summary.makespan_s > 0.0
                    ? 100.0 * straggler.duration() / summary.makespan_s
                    : 0.0);
        }
        writeTimeline(timeline_path, timings, results, summary, order);
        if (tracing) {
            writeMergedTraceSpawn(trace_path, suite_traces, timings,
                                  results, order);
            std::printf("[run_all] wrote %s (merged %zu suite traces)\n",
                        trace_path.c_str(), suite_traces.size());
        }
    } else {
        // In-process fleet: one shared FleetScheduler pool for the suite
        // tasks AND every suite's episode fan-out. The pool is built
        // here (not FleetScheduler::shared()) so --jobs sizes it
        // regardless of when EBS_JOBS was read. No budget split: a
        // draining suite's workers immediately absorb the straggler's
        // episodes.
        std::printf("[run_all] fleet: %zu suites, budget %d "
                    "(in-process, one shared pool%s)\n",
                    n_suites, budget, serial ? ", --serial" : "");
        if (!previous_durations.empty())
            std::printf("[run_all] schedule seeded from %s "
                        "(longest suite first)\n",
                        timeline_path.c_str());

        ebs::sched::FleetScheduler scheduler(budget);
        std::vector<const ebs::bench::SuiteInfo *> infos;
        std::vector<std::FILE *> outs(n_suites, nullptr);
        std::vector<std::FILE *> errs(n_suites, nullptr);
        std::vector<std::unique_ptr<ebs::bench::SuiteContext>> contexts;
        for (std::size_t i = 0; i < n_suites; ++i) {
            const auto *info = registry.find(sel_names[i]);
            if (info == nullptr) { // unreachable: names came from it
                std::fprintf(stderr, "run_all: suite %s vanished from "
                                     "the registry\n",
                             sel_names[i].c_str());
                return 1;
            }
            infos.push_back(info);
            outs[i] = std::fopen(log_paths[i].c_str(), "w");
            errs[i] = std::fopen(err_paths[i].c_str(), "w");
            if (outs[i] == nullptr || errs[i] == nullptr) {
                std::fprintf(stderr,
                             "run_all: cannot open logs for %s: %s\n",
                             sel_names[i].c_str(), std::strerror(errno));
                return 1;
            }
            ebs::bench::SuiteContext::Config config;
            config.out = outs[i];
            config.err = errs[i];
            config.smoke = smoke;
            config.scheduler = &scheduler;
            config.jobs = budget;
            // config.tracer stays null: each context owns a private
            // Tracer, so episode ids and trace tracks are per-suite —
            // exactly what a spawned child's process-wide tracer was.
            contexts.push_back(std::make_unique<ebs::bench::SuiteContext>(
                config));
        }

        ebs::sched::TaskGraph graph;
        for (const std::size_t i : order) {
            graph.add(
                [&, i] {
                    results[i] =
                        runSuiteInProcess(*infos[i], *contexts[i]);
                    std::fflush(outs[i]);
                    std::fflush(errs[i]);
                    ebs::core::MutexLock lock(print_mutex);
                    std::printf(
                        "[run_all] %-32s exit=%d wall=%.2fs rss=%ldKB\n",
                        results[i].name.c_str(), results[i].exit_code,
                        results[i].wall_seconds, results[i].max_rss_kb);
                    std::fflush(stdout);
                },
                sel_names[i]);
        }
        // Cap at the pool width so the help-executing run() caller
        // cannot add a (budget+1)-th in-flight suite; --serial runs
        // suites one at a time, each still fanning episodes across the
        // whole pool.
        timings = scheduler.run(std::move(graph), serial ? 1 : budget);

        for (std::size_t i = 0; i < n_suites; ++i) {
            std::fclose(outs[i]);
            std::fclose(errs[i]);
            results[i].paper_metrics = collectMetricLines(log_paths[i]);
            readPhaseWall(err_paths[i], results[i]);
        }

        const FleetSummary summary =
            summarize(timings, budget, false, 1, 0);
        std::printf("[run_all] schedule: makespan %.2fs, suite wall sum "
                    "%.2fs, single shared pool (%d workers)\n",
                    summary.makespan_s, summary.busy_s, budget);
        if (!timings.empty()) {
            const auto &straggler = timings[summary.straggler];
            std::printf(
                "[run_all] straggler: %s (%.2fs, %.0f%% of makespan)\n",
                straggler.label.c_str(), straggler.duration(),
                summary.makespan_s > 0.0
                    ? 100.0 * straggler.duration() / summary.makespan_s
                    : 0.0);
        }
        writeTimeline(timeline_path, timings, results, summary, order);
        if (tracing) {
            writeMergedTraceInProcess(trace_path, timings, results,
                                      order, sel_names, contexts);
            std::printf("[run_all] wrote %s (merged %zu suite tracks)\n",
                        trace_path.c_str(), contexts.size());
        }
    }

    int failures = 0;
    for (const auto &r : results)
        failures += r.exit_code != 0;

    // Memory high-water mark of the fleet. Spawn children are separate
    // processes, so the per-suite peaks are independent and the fleet
    // peak is the max; in-process every value is the one process's
    // monotone high-water mark, so the max is simply the final reading.
    if (!results.empty()) {
        std::size_t peak = 0;
        for (std::size_t i = 1; i < results.size(); ++i)
            if (results[i].max_rss_kb > results[peak].max_rss_kb)
                peak = i;
        if (spawn)
            std::printf("[run_all] peak rss: %s (%ld KB)\n",
                        results[peak].name.c_str(),
                        results[peak].max_rss_kb);
        else
            std::printf("[run_all] peak rss: %ld KB (process high-water; "
                        "last reader %s)\n",
                        results[peak].max_rss_kb,
                        results[peak].name.c_str());
    }
    // Per-episode compute/execute host split across the suites that
    // report one (EBS_PHASE_WALL): makes the speculative execute-phase
    // win visible at fleet level and in BENCH_timeline.json.
    {
        double compute_s = 0.0, execute_s = 0.0;
        long long episodes = 0;
        int reporting = 0;
        for (const auto &r : results) {
            if (!r.has_phase_wall)
                continue;
            compute_s += r.phase_compute_s;
            execute_s += r.phase_execute_s;
            episodes += r.phase_episodes;
            ++reporting;
        }
        if (episodes > 0)
            std::printf("[run_all] phase wall (%d suites, %lld episodes): "
                        "compute %.2fs + execute %.2fs "
                        "(%.1fms + %.1fms per episode)\n",
                        reporting, episodes, compute_s, execute_s,
                        1000.0 * compute_s / episodes,
                        1000.0 * execute_s / episodes);
    }

    writeJson(out_path, results, smoke);
    std::printf("[run_all] wrote %s (%zu suites, %d failed)\n",
                out_path.c_str(), results.size(), failures);
    return failures == 0 ? 0 : 1;
}
