#ifndef EBS_BENCH_FLEET_PLAN_H
#define EBS_BENCH_FLEET_PLAN_H

#include <cstddef>
#include <map>
#include <string>
#include <vector>

/**
 * Pure fleet-planning helpers behind `run_all`, extracted so the
 * schedule-seeding and suite-selection logic is unit-testable without
 * spawning anything: previous-run timeline parsing, longest-first
 * schedule ordering, --suites list splitting, and suite-name resolution
 * with near-miss suggestions. Everything here is a pure function of its
 * inputs (the one file reader takes a path and degrades to "empty" on
 * any mismatch).
 */
namespace ebs::bench {

/**
 * Per-suite wall-clock of a previous fleet run, read back from the
 * BENCH_timeline.json that run wrote. Used to seed the schedule order:
 * submitting the longest suites first shaves the straggler tail versus
 * the default alphabetical order (a long suite started last overhangs
 * the makespan by almost its whole duration). The parser is a minimal
 * scan over the file run_all itself writes — on any mismatch it returns
 * an empty map and the schedule falls back to list order.
 */
std::map<std::string, double>
readTimelineDurations(const std::string &path);

/**
 * The order suite tasks are submitted to the scheduler: previous-run
 * longest first (suites absent from the previous timeline are treated
 * as unknown-and-possibly-long and go first, keeping their relative
 * order), or plain list order when no usable timeline exists. Returns
 * indices into `names`.
 */
std::vector<std::size_t>
scheduleOrder(const std::vector<std::string> &names,
              const std::map<std::string, double> &durations);

/** Split a comma-separated list, dropping empty items. */
std::vector<std::string>
splitList(const std::string &list);

/** Levenshtein edit distance (insert/delete/substitute, unit cost). */
std::size_t editDistance(const std::string &a, const std::string &b);

/**
 * Suite names ranked as near-misses of a failed --suites entry: every
 * name (also matched without its "bench_" prefix) whose edit distance
 * to the entry is within max(2, entry length / 3), closest first, ties
 * in list order, capped at `limit`. Powers run_all's "did you mean"
 * diagnostics so a typo'd suite name fails with the fix in hand.
 */
std::vector<std::string>
nearMissCandidates(const std::string &entry,
                   const std::vector<std::string> &names,
                   std::size_t limit = 3);

/** Outcome of resolving one --suites entry against the suite list. */
struct SuiteResolution
{
    static constexpr std::size_t kNotFound =
        static_cast<std::size_t>(-1);

    std::size_t index = kNotFound; ///< resolved index into the names
    bool ambiguous = false;        ///< multiple substring matches
    /** On failure: the ambiguous substring matches, or (when nothing
     * matched at all) the near-miss suggestions. */
    std::vector<std::string> candidates;

    bool ok() const { return index != kNotFound; }
};

/**
 * Resolve one --suites entry: exact name first (with or without the
 * bench_ prefix), then unique substring. A failed resolution carries
 * candidates — the ambiguous matches, or near-miss suggestions for a
 * name that matched nothing — so the caller can fail loudly with the
 * correction instead of silently shrinking the fleet.
 */
SuiteResolution resolveSuite(const std::string &entry,
                             const std::vector<std::string> &names);

} // namespace ebs::bench

#endif // EBS_BENCH_FLEET_PLAN_H
