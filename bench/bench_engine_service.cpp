/**
 * @file
 * Engine-service batching bench (Recommendation 1 at system scope): runs
 * multi-agent workloads through the shared LlmEngineService with batch
 * assembly on and reports what cross-agent batching buys — batch
 * occupancy (completions per assembled batch) and the modeled latency of
 * batched versus sequential inference — plus the additional occupancy
 * available when concurrently running episodes on the EpisodeRunner pool
 * merge their per-step batches (the deterministic post-join fold).
 *
 * The service changes no simulated result (responses are sampled from
 * the same per-agent streams either way), so the rows quantify pure
 * scheduling headroom: occupancy > 1 with batched latency <= baseline
 * means the fleet's inference bill shrinks at zero accuracy cost.
 *
 * Two refinements on top of the modeled numbers:
 *  - the *charged* ablation re-runs each workload with
 *    `PipelineOptions::batch_llm_calls` on, where the episode clock
 *    pays `llm::jointBatchTime` per (phase, backend) batch instead of
 *    sequential sampled latencies — Rec. 1 end-to-end, visible in
 *    s/step (`batched_s_per_step`, `batch_charge_saved_pct`);
 *  - the cross-episode fold is additionally reported under a finite
 *    admission window (episodes drift apart as steps diverge; only
 *    batches whose modeled arrival instants fall within the window can
 *    really share one joint inference), a conservative counterpoint to
 *    the lockstep-optimistic merge.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "llm/engine_service.h"
#include "stats/table.h"

int
main()
{
    using namespace ebs;
    const int kSeeds = bench::seedCount(12);
    const auto difficulty = env::Difficulty::Medium;
    const auto &shared_runner = runner::EpisodeRunner::shared();

    std::printf("=== Shared LLM engine service: cross-agent and "
                "cross-episode batching ===\n\n");
    std::printf("%d seeds per workload, %d runner threads\n\n", kSeeds,
                shared_runner.jobs());

    const char *names[] = {"EmbodiedGPT", "CoELA", "MindAgent", "CMAS",
                           "DMAS"};

    /**
     * Backend admission window (simulated seconds) of the conservative
     * cross-episode merge: how long a batch may wait for co-batching
     * arrivals from other episodes. Steps run tens of simulated seconds,
     * so 15 s admits roughly same-phase neighbors of episodes that are
     * still loosely aligned while refusing lockstep-optimistic merges of
     * episodes that have drifted a step apart.
     */
    constexpr double kMergeWindowS = 15.0;

    stats::Table table({"workload", "agents", "success", "batches/ep",
                        "occupancy", "x-ep occ", "x-ep occ@15s",
                        "LLM s/ep (seq)", "LLM s/ep (batched)", "saved",
                        "s/step", "s/step charged", "chg saved"});

    for (const char *name : names) {
        const auto &spec = workloads::workload(name);

        // Fresh service per workload so occupancy and usage are
        // attributable; the suite default would fold every row together.
        llm::LlmEngineService service;

        std::vector<runner::EpisodeJob> jobs;
        for (int seed = 1; seed <= kSeeds; ++seed) {
            runner::EpisodeJob job;
            job.workload = &spec;
            job.config = spec.config;
            job.difficulty = difficulty;
            job.seed = runner::episodeSeed(seed);
            job.engine_service = &service;
            jobs.push_back(std::move(job));
        }
        const auto episodes = shared_runner.run(jobs);
        const auto run_stats = runner::foldEpisodes(episodes);

        // The charged ablation: same seeds, same responses, but the
        // episode clock pays jointBatchTime per batch (Rec. 1
        // end-to-end). Only sim_seconds — and thus s/step — moves.
        llm::LlmEngineService charged_service;
        std::vector<runner::EpisodeJob> charged_jobs = jobs;
        for (auto &job : charged_jobs) {
            job.engine_service = &charged_service;
            job.pipeline.batch_llm_calls = true;
        }
        const auto charged_episodes = shared_runner.run(charged_jobs);
        const auto charged_stats = runner::foldEpisodes(charged_episodes);

        // Within-episode (cross-agent) batching: fold per-episode logs.
        llm::BatchStats per_episode;
        std::vector<std::vector<llm::BatchRecord>> logs;
        logs.reserve(episodes.size());
        for (const auto &episode : episodes) {
            per_episode.merge(llm::foldBatchLog(episode.llm_batches));
            logs.push_back(episode.llm_batches);
        }

        // Cross-episode merge of the fan-out's concurrent seeds:
        // lockstep (same step+phase merge unconditionally) and windowed
        // (only arrivals within the admission window co-batch).
        const auto cross = llm::foldCrossEpisodeBatches(logs);
        const auto windowed =
            llm::foldCrossEpisodeBatches(logs, kMergeWindowS);

        const double n = episodes.empty() ? 1.0 : double(episodes.size());
        const double charge_saved = bench::emitChargedMetrics(
            "engine-service " + spec.name, run_stats.avg_step_latency_s,
            charged_stats.avg_step_latency_s);
        table.addRow(
            {spec.name, std::to_string(spec.default_agents),
             stats::Table::pct(run_stats.success_rate, 0),
             stats::Table::num(double(per_episode.batches) / n, 1),
             stats::Table::num(per_episode.occupancy(), 2),
             stats::Table::num(cross.occupancy(), 2),
             stats::Table::num(windowed.occupancy(), 2),
             stats::Table::num(per_episode.baseline_s / n, 1),
             stats::Table::num(per_episode.batched_s / n, 1),
             stats::Table::pct(per_episode.savedFraction(), 0),
             stats::Table::num(run_stats.avg_step_latency_s, 1),
             stats::Table::num(charged_stats.avg_step_latency_s, 1),
             stats::Table::pct(charge_saved, 0)});

        bench::emitMetric("engine-service " + spec.name, run_stats);
        bench::emitScalarMetric("engine-service " + spec.name,
                                "batch_occupancy", per_episode.occupancy());
        bench::emitScalarMetric("engine-service " + spec.name,
                                "cross_episode_occupancy",
                                cross.occupancy());
        bench::emitScalarMetric("engine-service " + spec.name,
                                "latency_saved_pct",
                                100.0 * per_episode.savedFraction());
        bench::emitScalarMetric("engine-service " + spec.name,
                                "cross_episode_saved_pct",
                                100.0 * cross.savedFraction());
        bench::emitScalarMetric("engine-service " + spec.name,
                                "cross_episode_windowed_occupancy",
                                windowed.occupancy());
        bench::emitScalarMetric("engine-service " + spec.name,
                                "cross_episode_windowed_saved_pct",
                                100.0 * windowed.savedFraction());

        // The service's own tally must agree with the per-episode fold —
        // a cheap standing check that the mutex-guarded accounting loses
        // nothing under the worker pool.
        const auto svc = service.stats();
        if (svc.batches != per_episode.batches ||
            svc.requests != per_episode.requests) {
            std::fprintf(stderr,
                         "engine service tally mismatch on %s: "
                         "%lld/%lld batches, %lld/%lld requests\n",
                         spec.name.c_str(), svc.batches,
                         per_episode.batches, svc.requests,
                         per_episode.requests);
            return 1;
        }

        // Charging never perturbs behavior: same steps, same responses,
        // never a slower clock.
        for (std::size_t i = 0; i < episodes.size(); ++i) {
            if (charged_episodes[i].steps != episodes[i].steps ||
                charged_episodes[i].success != episodes[i].success ||
                charged_episodes[i].sim_seconds >
                    episodes[i].sim_seconds * (1.0 + 1e-12)) {
                std::fprintf(stderr,
                             "charged batching perturbed %s episode %zu\n",
                             spec.name.c_str(), i);
                return 1;
            }
        }
    }

    std::printf("%s\n", table.render().c_str());
    std::printf(
        "occupancy      completions per assembled batch (same step+phase,\n"
        "               same backend, across the team's agents)\n"
        "x-ep occ       occupancy when the concurrently running episodes\n"
        "               of the fan-out merge their per-step batches in\n"
        "               lockstep; @15s admits only arrivals within a 15 s\n"
        "               simulated admission window (conservative)\n"
        "LLM s/ep       modeled inference seconds per episode, sequential\n"
        "               vs. batched (joint prefill + longest decode + one\n"
        "               RTT; never worse than sequential)\n"
        "s/step charged episode s/step with batch_llm_calls charging\n"
        "               jointBatchTime to the simulated clock (Rec. 1\n"
        "               end-to-end, not just modeled)\n");
    return 0;
}
