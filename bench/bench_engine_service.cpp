/**
 * @file
 * Engine-service batching bench (Recommendation 1 at system scope): runs
 * multi-agent workloads through the shared LlmEngineService with batch
 * assembly on and reports what cross-agent batching buys — batch
 * occupancy (completions per assembled batch) and the modeled latency of
 * batched versus sequential inference — plus the additional occupancy
 * available when concurrently running episodes on the EpisodeRunner pool
 * merge their per-step batches (the deterministic post-join fold).
 *
 * The service changes no simulated result (responses are sampled from
 * the same per-agent streams either way), so the rows quantify pure
 * scheduling headroom: occupancy > 1 with batched latency <= baseline
 * means the fleet's inference bill shrinks at zero accuracy cost.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "llm/engine_service.h"
#include "stats/table.h"

int
main()
{
    using namespace ebs;
    const int kSeeds = bench::seedCount(12);
    const auto difficulty = env::Difficulty::Medium;
    const auto &shared_runner = runner::EpisodeRunner::shared();

    std::printf("=== Shared LLM engine service: cross-agent and "
                "cross-episode batching ===\n\n");
    std::printf("%d seeds per workload, %d runner threads\n\n", kSeeds,
                shared_runner.jobs());

    const char *names[] = {"EmbodiedGPT", "CoELA", "MindAgent", "CMAS",
                           "DMAS"};
    stats::Table table({"workload", "agents", "success", "batches/ep",
                        "occupancy", "x-episode occ", "LLM s/ep (seq)",
                        "LLM s/ep (batched)", "saved"});

    for (const char *name : names) {
        const auto &spec = workloads::workload(name);

        // Fresh service per workload so occupancy and usage are
        // attributable; the suite default would fold every row together.
        llm::LlmEngineService service;

        std::vector<runner::EpisodeJob> jobs;
        for (int seed = 1; seed <= kSeeds; ++seed) {
            runner::EpisodeJob job;
            job.workload = &spec;
            job.config = spec.config;
            job.difficulty = difficulty;
            job.seed = runner::episodeSeed(seed);
            job.engine_service = &service;
            jobs.push_back(std::move(job));
        }
        const auto episodes = shared_runner.run(jobs);
        const auto run_stats = runner::foldEpisodes(episodes);

        // Within-episode (cross-agent) batching: fold per-episode logs.
        llm::BatchStats per_episode;
        std::vector<std::vector<llm::BatchRecord>> logs;
        logs.reserve(episodes.size());
        for (const auto &episode : episodes) {
            per_episode.merge(llm::foldBatchLog(episode.llm_batches));
            logs.push_back(episode.llm_batches);
        }

        // Cross-episode merge: the concurrent seeds of this fan-out.
        const auto cross = llm::foldCrossEpisodeBatches(logs);

        const double n = episodes.empty() ? 1.0 : double(episodes.size());
        table.addRow(
            {spec.name, std::to_string(spec.default_agents),
             stats::Table::pct(run_stats.success_rate, 0),
             stats::Table::num(double(per_episode.batches) / n, 1),
             stats::Table::num(per_episode.occupancy(), 2),
             stats::Table::num(cross.occupancy(), 2),
             stats::Table::num(per_episode.baseline_s / n, 1),
             stats::Table::num(per_episode.batched_s / n, 1),
             stats::Table::pct(per_episode.savedFraction(), 0)});

        bench::emitMetric("engine-service " + spec.name, run_stats);
        bench::emitScalarMetric("engine-service " + spec.name,
                                "batch_occupancy", per_episode.occupancy());
        bench::emitScalarMetric("engine-service " + spec.name,
                                "cross_episode_occupancy",
                                cross.occupancy());
        bench::emitScalarMetric("engine-service " + spec.name,
                                "latency_saved_pct",
                                100.0 * per_episode.savedFraction());
        bench::emitScalarMetric("engine-service " + spec.name,
                                "cross_episode_saved_pct",
                                100.0 * cross.savedFraction());

        // The service's own tally must agree with the per-episode fold —
        // a cheap standing check that the mutex-guarded accounting loses
        // nothing under the worker pool.
        const auto svc = service.stats();
        if (svc.batches != per_episode.batches ||
            svc.requests != per_episode.requests) {
            std::fprintf(stderr,
                         "engine service tally mismatch on %s: "
                         "%lld/%lld batches, %lld/%lld requests\n",
                         spec.name.c_str(), svc.batches,
                         per_episode.batches, svc.requests,
                         per_episode.requests);
            return 1;
        }
    }

    std::printf("%s\n", table.render().c_str());
    std::printf(
        "occupancy     completions per assembled batch (same step+phase,\n"
        "              same backend, across the team's agents)\n"
        "x-episode occ occupancy when the concurrently running episodes\n"
        "              of the fan-out merge their per-step batches\n"
        "LLM s/ep      modeled inference seconds per episode, sequential\n"
        "              vs. batched (joint prefill + longest decode + one\n"
        "              RTT; never worse than sequential)\n");
    return 0;
}
