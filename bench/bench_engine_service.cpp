/**
 * @file
 * Engine-service batching + serving bench (Recommendation 1 at system
 * scope): runs multi-agent workloads through the shared LlmEngineService
 * with batch assembly on and reports what cross-agent batching buys —
 * batch occupancy (completions per assembled batch) and the modeled
 * latency of batched versus sequential inference — plus the additional
 * occupancy available when concurrently running episodes on the
 * EpisodeRunner pool merge their per-step batches (the deterministic
 * post-join fold).
 *
 * The open-loop service changes no simulated result (responses are
 * sampled from the same per-agent streams either way), so those rows
 * quantify pure scheduling headroom: occupancy > 1 with batched latency
 * <= baseline means the fleet's inference bill shrinks at zero accuracy
 * cost.
 *
 * Refinements on top of the open-loop modeled numbers:
 *  - the *charged* ablation re-runs each workload with
 *    `PipelineOptions::batch_llm_calls` on, where the episode clock
 *    pays `llm::jointBatchTime` per (phase, backend) batch instead of
 *    sequential sampled latencies — Rec. 1 end-to-end, visible in
 *    s/step (`batched_s_per_step`, `batch_charge_saved_pct`);
 *  - the *queued* ablation additionally runs closed-loop: the service
 *    simulates finite-capacity backends (llm/backend_queue.h) and
 *    charges FIFO queueing + iteration-boundary admission delay back to
 *    the episode clock (`queue_delay_share`);
 *  - the cross-episode fold is additionally reported under a finite
 *    admission window derived from each workload's measured batch
 *    arrival rate (override with --window <seconds>), a conservative
 *    counterpoint to the lockstep-optimistic merge;
 *  - a multi-tenant offered-load sweep replays every episode's batch
 *    log through one shared fleet of finite-capacity backend queues at
 *    several episode arrival rates around the analytic saturation rate,
 *    reporting p50/p99 episode latency (base episode time + charged
 *    queueing delay), queue-delay share, and backend occupancy per
 *    level. The replay is a pure post-join fold over per-episode logs
 *    sorted by (arrival instant, backend id, submission index), so —
 *    like every number this bench prints — it is bit-identical at any
 *    EBS_JOBS.
 */

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "llm/backend_queue.h"
#include "llm/engine_service.h"
#include "stats/aggregate.h"
#include "stats/table.h"
#include "suite.h"

namespace {

using namespace ebs;

/** Outcome of replaying the pooled logs at one offered-load level. */
struct SweepPoint
{
    double level = 0.0;        ///< offered load as a multiple of lambda*
    double rate_eps = 0.0;     ///< episode arrival rate (episodes/s)
    std::size_t tenants = 0;   ///< replayed episode arrivals
    double total_delay_s = 0.0;
    double mean_delay_s = 0.0; ///< charged delay per tenant episode
    double p50_latency_s = 0.0;
    double p99_latency_s = 0.0;
    double delay_share = 0.0;  ///< delay / (base + delay) episode time
    double occupancy = 0.0;    ///< busy slot-s / available slot-s
};

/**
 * Replay the pooled per-episode batch logs through a fresh fleet of
 * finite-capacity backend queues at a sustained episode arrival rate:
 * tenant t arrives at t / rate and replays pooled episode t mod N, with
 * enough tenants (rate x horizon) that the offered load is sustained
 * over the whole horizon — a handful of episodes alone could never
 * saturate a many-slot backend, no matter the rate.
 *
 * Pure function of its inputs: submissions run in (arrival instant,
 * backend id, pooled submission index) order, so the schedule never
 * depends on worker count or host timing.
 */
SweepPoint
replayAtRate(double level, double rate_eps, double horizon_s,
             const std::vector<std::vector<llm::BatchRecord>> &pool_logs,
             const std::vector<double> &pool_sim_s,
             const std::map<llm::BackendId, llm::ModelProfile> &profiles)
{
    SweepPoint point;
    point.level = level;
    point.rate_eps = rate_eps;
    const std::size_t pool_n = pool_logs.size();
    std::size_t tenants =
        static_cast<std::size_t>(std::ceil(rate_eps * horizon_s));
    tenants = std::max(tenants, pool_n);
    // Runaway guard: the replay is cheap but not free; 4000 episode
    // arrivals are plenty to show saturation at any realistic rate.
    tenants = std::min<std::size_t>(tenants, 4000);
    point.tenants = tenants;

    struct Submission
    {
        double arrival_s = 0.0;
        llm::BackendId backend = 0;
        std::size_t order = 0; ///< pooled submission index (tie-break)
        std::size_t tenant = 0;
        const llm::BatchRecord *record = nullptr;
    };
    std::vector<Submission> submissions;
    for (std::size_t t = 0; t < tenants; ++t) {
        const double start_s = static_cast<double>(t) / rate_eps;
        for (const auto &record : pool_logs[t % pool_n]) {
            Submission s;
            s.arrival_s = start_s + record.sim_time_s;
            s.backend = record.backend;
            s.order = submissions.size();
            s.tenant = t;
            s.record = &record;
            submissions.push_back(s);
        }
    }
    std::sort(submissions.begin(), submissions.end(),
              [](const Submission &a, const Submission &b) {
                  if (a.arrival_s != b.arrival_s)
                      return a.arrival_s < b.arrival_s;
                  if (a.backend != b.backend)
                      return a.backend < b.backend;
                  return a.order < b.order;
              });

    llm::BackendQueueModel model;
    for (const auto &[backend, profile] : profiles)
        model.ensureBackend(backend, profile);

    std::vector<double> tenant_delay_s(tenants, 0.0);
    for (const auto &s : submissions) {
        llm::BatchRecord shifted = *s.record;
        shifted.sim_time_s = s.arrival_s;
        const auto admission = model.submit(shifted);
        tenant_delay_s[s.tenant] += admission.queue_delay_s;
        point.total_delay_s += admission.queue_delay_s;
    }
    point.mean_delay_s = point.total_delay_s / double(tenants);

    std::vector<double> latencies;
    latencies.reserve(tenants);
    double base_total = 0.0;
    for (std::size_t t = 0; t < tenants; ++t) {
        latencies.push_back(pool_sim_s[t % pool_n] + tenant_delay_s[t]);
        base_total += pool_sim_s[t % pool_n];
    }
    point.p50_latency_s = stats::percentile(latencies, 50.0);
    point.p99_latency_s = stats::percentile(latencies, 99.0);
    const double total = base_total + point.total_delay_s;
    point.delay_share = total > 0.0 ? point.total_delay_s / total : 0.0;

    double busy_s = 0.0, capacity_s = 0.0;
    for (const auto &[backend, queue] : model.queues()) {
        const auto &qs = queue.stats();
        if (qs.requests == 0)
            continue;
        busy_s += qs.busy_slot_s;
        capacity_s += queue.config().slots *
                      (qs.last_complete_s - qs.first_arrival_s);
    }
    point.occupancy = capacity_s > 0.0 ? busy_s / capacity_s : 0.0;
    return point;
}

/**
 * Parse the one CLI flag: --window <seconds> (or --window=<seconds>)
 * replaces the per-workload derived admission window. Leaves *out at 0
 * when absent; returns false (after printing usage to the suite's
 * stderr sink) on malformed input — the suite exits 2, where the
 * standalone binary used to call std::exit(2).
 */
bool
parseWindowOverride(ebs::bench::SuiteContext &ctx, double *out)
{
    *out = 0.0;
    const auto &args = ctx.args();
    const auto parse = [&](const std::string &text) {
        char *end = nullptr;
        const double v = std::strtod(text.c_str(), &end);
        if (end == text.c_str() || *end != '\0' || !(v > 0.0)) {
            ctx.eprintf("bench_engine_service: --window expects a "
                        "positive number of simulated seconds, got "
                        "'%s'\n",
                        text.c_str());
            return -1.0;
        }
        return v;
    };
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        double v = 0.0;
        if (arg.rfind("--window=", 0) == 0) {
            v = parse(arg.substr(9));
        } else if (arg == "--window") {
            if (i + 1 >= args.size()) {
                ctx.eprintf("bench_engine_service: --window requires a "
                            "value\n");
                return false;
            }
            v = parse(args[i + 1]);
        } else {
            continue;
        }
        if (v < 0.0)
            return false;
        *out = v;
        return true;
    }
    return true;
}

int
run(ebs::bench::SuiteContext &ctx)
{
    double window_override = 0.0;
    if (!parseWindowOverride(ctx, &window_override))
        return 2;
    const int kSeeds = ctx.seedCount(12);
    const auto difficulty = env::Difficulty::Medium;

    ctx.printf("=== Shared LLM engine service: cross-agent batching and "
               "closed-loop serving ===\n\n");
    // Seed count is part of the deterministic configuration; the runner
    // thread count is host state and must stay off the gated stdout so
    // the output is byte-identical at any EBS_JOBS.
    ctx.printf("%d seeds per workload\n\n", kSeeds);
    ctx.eprintf("%d runner threads\n", ctx.runner().jobs());

    const char *names[] = {"EmbodiedGPT", "CoELA", "MindAgent", "CMAS",
                           "DMAS"};

    stats::Table table({"workload", "agents", "success", "batches/ep",
                        "occupancy", "x-ep occ", "x-ep occ@W",
                        "LLM s/ep (seq)", "LLM s/ep (batched)", "saved",
                        "s/step", "s/step charged", "chg saved",
                        "q-share"});

    // Pooled per-episode material of the multi-tenant offered-load
    // sweep: base episode durations, batch logs, and the profile of
    // every backend the logs reference (to rebuild queue configs).
    std::vector<double> pooled_sim_s;
    std::vector<std::vector<llm::BatchRecord>> pooled_logs;
    std::map<llm::BackendId, llm::ModelProfile> profiles;

    for (const char *name : names) {
        const auto &spec = workloads::workload(name);

        // Fresh service per workload so occupancy and usage are
        // attributable; the suite default would fold every row together.
        llm::LlmEngineService service;

        std::vector<runner::EpisodeJob> jobs;
        for (int seed = 1; seed <= kSeeds; ++seed) {
            runner::EpisodeJob job;
            job.workload = &spec;
            job.config = spec.config;
            job.difficulty = difficulty;
            job.seed = runner::episodeSeed(seed);
            job.engine_service = &service;
            jobs.push_back(std::move(job));
        }
        const auto episodes = ctx.run(jobs);
        const auto run_stats = runner::foldEpisodes(episodes);

        // The charged ablation: same seeds, same responses, but the
        // episode clock pays jointBatchTime per batch (Rec. 1
        // end-to-end). Only sim_seconds — and thus s/step — moves.
        llm::LlmEngineService charged_service;
        std::vector<runner::EpisodeJob> charged_jobs = jobs;
        for (auto &job : charged_jobs) {
            job.engine_service = &charged_service;
            job.pipeline.batch_llm_calls = true;
        }
        const auto charged_episodes = ctx.run(std::move(charged_jobs));
        const auto charged_stats = runner::foldEpisodes(charged_episodes);

        // The queued (closed-loop) ablation: finite-capacity backends
        // with profile-derived slot counts and KV budgets; the clock
        // additionally pays FIFO queueing + iteration-boundary
        // admission delay per flushed batch group.
        llm::LlmEngineService queued_service(llm::ServiceConfig{
            .batching = true, .queue = {.enabled = true}});
        std::vector<runner::EpisodeJob> queued_jobs = jobs;
        for (auto &job : queued_jobs) {
            job.engine_service = &queued_service;
            job.pipeline.batch_llm_calls = true;
        }
        const auto queued_episodes = ctx.run(std::move(queued_jobs));
        const auto queued_stats = runner::foldEpisodes(queued_episodes);

        // Within-episode (cross-agent) batching: fold per-episode logs.
        llm::BatchStats per_episode;
        std::vector<std::vector<llm::BatchRecord>> logs;
        logs.reserve(episodes.size());
        for (const auto &episode : episodes) {
            per_episode.merge(llm::foldBatchLog(episode.llm_batches));
            logs.push_back(episode.llm_batches);
        }

        /*
         * Backend admission window of the conservative cross-episode
         * merge: how long a batch may wait for co-batching arrivals
         * from other episodes. Derived from the workload's own measured
         * traffic — the mean within-episode gap between flushed batches
         * (total simulated seconds / batch count); a batch waits at
         * most two mean inter-arrival gaps, long enough to admit
         * same-phase neighbors of loosely aligned episodes, short
         * enough to refuse lockstep-optimistic merges of episodes a
         * step apart. --window replaces the derived value.
         */
        const double mean_gap_s =
            per_episode.batches > 0
                ? run_stats.sim_seconds / double(per_episode.batches)
                : 0.0;
        const double derived_window_s = 2.0 * mean_gap_s;
        const double window_s =
            window_override > 0.0 ? window_override : derived_window_s;
        ctx.printf("%s admission window: %lld batches over %.1f sim-s "
                   "-> mean gap %.2f s; window = %s%.2f s\n",
                   spec.name.c_str(), per_episode.batches,
                   run_stats.sim_seconds, mean_gap_s,
                   window_override > 0.0 ? "override " : "2 x gap = ",
                   window_s);

        // Cross-episode merge of the fan-out's concurrent seeds:
        // lockstep (same step+phase merge unconditionally) and windowed
        // (only arrivals within the admission window co-batch).
        const auto cross = llm::foldCrossEpisodeBatches(logs);
        const auto windowed =
            llm::foldCrossEpisodeBatches(logs, window_s);

        const double n = episodes.empty() ? 1.0 : double(episodes.size());
        const double charge_saved = ctx.emitChargedMetrics(
            "engine-service " + spec.name, run_stats.avg_step_latency_s,
            charged_stats.avg_step_latency_s);
        table.addRow(
            {spec.name, std::to_string(spec.default_agents),
             stats::Table::pct(run_stats.success_rate, 0),
             stats::Table::num(double(per_episode.batches) / n, 1),
             stats::Table::num(per_episode.occupancy(), 2),
             stats::Table::num(cross.occupancy(), 2),
             stats::Table::num(windowed.occupancy(), 2),
             stats::Table::num(per_episode.baseline_s / n, 1),
             stats::Table::num(per_episode.batched_s / n, 1),
             stats::Table::pct(per_episode.savedFraction(), 0),
             stats::Table::num(run_stats.avg_step_latency_s, 1),
             stats::Table::num(charged_stats.avg_step_latency_s, 1),
             stats::Table::pct(charge_saved, 0),
             stats::Table::pct(queued_stats.queueDelayShare(), 1)});

        ctx.emitMetric("engine-service " + spec.name, run_stats);
        ctx.emitScalarMetric("engine-service " + spec.name,
                             "batch_occupancy", per_episode.occupancy());
        ctx.emitScalarMetric("engine-service " + spec.name,
                             "cross_episode_occupancy",
                             cross.occupancy());
        ctx.emitScalarMetric("engine-service " + spec.name,
                             "latency_saved_pct",
                             100.0 * per_episode.savedFraction());
        ctx.emitScalarMetric("engine-service " + spec.name,
                             "cross_episode_saved_pct",
                             100.0 * cross.savedFraction());
        ctx.emitScalarMetric("engine-service " + spec.name,
                             "cross_episode_windowed_occupancy",
                             windowed.occupancy());
        ctx.emitScalarMetric("engine-service " + spec.name,
                             "cross_episode_windowed_saved_pct",
                             100.0 * windowed.savedFraction());
        ctx.emitScalarMetric("engine-service " + spec.name,
                             "queue_delay_share",
                             queued_stats.queueDelayShare());

        // The service's own tally must agree with the per-episode fold —
        // a cheap standing check that the mutex-guarded accounting loses
        // nothing under the worker pool.
        const auto svc = service.stats();
        if (svc.batches != per_episode.batches ||
            svc.requests != per_episode.requests) {
            ctx.eprintf("engine service tally mismatch on %s: "
                        "%lld/%lld batches, %lld/%lld requests\n",
                        spec.name.c_str(), svc.batches,
                        per_episode.batches, svc.requests,
                        per_episode.requests);
            return 1;
        }

        // Charging never perturbs behavior: same steps, same responses,
        // never a slower clock.
        for (std::size_t i = 0; i < episodes.size(); ++i) {
            if (charged_episodes[i].steps != episodes[i].steps ||
                charged_episodes[i].success != episodes[i].success ||
                charged_episodes[i].sim_seconds >
                    episodes[i].sim_seconds * (1.0 + 1e-12)) {
                ctx.eprintf("charged batching perturbed %s episode %zu\n",
                            spec.name.c_str(), i);
                return 1;
            }
        }

        // Queueing charges delay — a slower clock than the charged run
        // is expected — but must never change steps or outcomes, and
        // the charged delay can never be negative.
        for (std::size_t i = 0; i < episodes.size(); ++i) {
            if (queued_episodes[i].steps != episodes[i].steps ||
                queued_episodes[i].success != episodes[i].success ||
                queued_episodes[i].sim_seconds <
                    charged_episodes[i].sim_seconds * (1.0 - 1e-12)) {
                ctx.eprintf("queued serving perturbed %s episode %zu\n",
                            spec.name.c_str(), i);
                return 1;
            }
        }

        // Pool this workload's open-loop episodes as sweep tenants.
        for (const auto &episode : episodes) {
            pooled_sim_s.push_back(episode.sim_seconds);
            pooled_logs.push_back(episode.llm_batches);
            for (const auto &record : episode.llm_batches)
                if (profiles.count(record.backend) == 0)
                    profiles.emplace(record.backend,
                                     service.backendProfile(record.backend));
        }
    }

    ctx.printf("\n%s\n", table.render().c_str());
    ctx.printf(
        "occupancy      completions per assembled batch (same step+phase,\n"
        "               same backend, across the team's agents)\n"
        "x-ep occ       occupancy when the concurrently running episodes\n"
        "               of the fan-out merge their per-step batches in\n"
        "               lockstep; @W admits only arrivals within the\n"
        "               derived (or --window) admission window printed\n"
        "               above (conservative)\n"
        "LLM s/ep       modeled inference seconds per episode, sequential\n"
        "               vs. batched (joint prefill + longest decode + one\n"
        "               RTT; never worse than sequential)\n"
        "s/step charged episode s/step with batch_llm_calls charging\n"
        "               jointBatchTime to the simulated clock (Rec. 1\n"
        "               end-to-end, not just modeled)\n"
        "q-share        charged queueing + admission delay as a share of\n"
        "               simulated episode time in the closed-loop run\n"
        "               (finite slots + KV budget per backend)\n\n");

    // ---- Multi-tenant offered-load sweep over the pooled logs ----
    //
    // Analytic saturation: a backend serving its share of one average
    // episode's traffic occupies `busy` slot-seconds; it can sustain at
    // most slots / busy episode arrivals per second. The fleet
    // saturates at the bottleneck backend's rate (lambda*).
    const double n_eps = double(pooled_sim_s.size());
    std::map<llm::BackendId, double> busy_per_episode;
    for (const auto &log : pooled_logs)
        for (const auto &record : log)
            busy_per_episode[record.backend] +=
                record.requests * record.batched_s / n_eps;
    double lambda_star = 0.0;
    llm::BackendId bottleneck = 0;
    for (const auto &[backend, busy] : busy_per_episode) {
        if (busy <= 0.0)
            continue;
        const auto config = llm::defaultQueueConfig(profiles[backend]);
        const double rate = config.slots / busy;
        if (lambda_star == 0.0 || rate < lambda_star) {
            lambda_star = rate;
            bottleneck = backend;
        }
    }
    if (lambda_star <= 0.0) {
        ctx.eprintf("no backend traffic to sweep\n");
        return 1;
    }
    // Sustained-load horizon: arrivals keep coming for several times
    // the longest pooled episode, so every level reaches steady state
    // instead of measuring the startup transient of a handful of
    // episodes.
    double max_sim_s = 0.0;
    for (const double s : pooled_sim_s)
        max_sim_s = std::max(max_sim_s, s);
    const double horizon_s = 3.0 * max_sim_s;

    ctx.printf("=== Offered-load sweep: %zu pooled episodes tiled over "
               "a %.0f sim-s horizon vs finite-capacity backends "
               "===\n\n",
               pooled_sim_s.size(), horizon_s);
    ctx.printf("bottleneck backend sustains %.4f episodes/s "
               "(%.0f busy slot-s per episode over %d slots); tenant t "
               "arrives at t / rate and replays pooled episode t mod "
               "%zu\n\n",
               lambda_star, busy_per_episode[bottleneck],
               llm::defaultQueueConfig(profiles[bottleneck]).slots,
               pooled_sim_s.size());

    const double levels[] = {0.5, 1.0, 2.0, 4.0};
    stats::Table sweep_table({"offered load", "episodes/s", "tenants",
                              "delay/ep", "p50 ep lat", "p99 ep lat",
                              "q-delay share", "occupancy"});
    std::vector<SweepPoint> points;
    for (const double level : levels)
        points.push_back(replayAtRate(level, level * lambda_star,
                                      horizon_s, pooled_logs,
                                      pooled_sim_s, profiles));

    bool monotone = true;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &p = points[i];
        char level_label[32];
        std::snprintf(level_label, sizeof(level_label), "%.2fx sat",
                      p.level);
        sweep_table.addRow({level_label,
                            stats::Table::num(p.rate_eps, 4),
                            std::to_string(p.tenants),
                            stats::Table::num(p.mean_delay_s, 1),
                            stats::Table::num(p.p50_latency_s, 1),
                            stats::Table::num(p.p99_latency_s, 1),
                            stats::Table::pct(p.delay_share, 1),
                            stats::Table::pct(p.occupancy, 1)});
        const std::string bench_case =
            "engine-service serving " + std::string(level_label);
        ctx.emitScalarMetric(bench_case, "p50_episode_latency_s",
                             p.p50_latency_s);
        ctx.emitScalarMetric(bench_case, "p99_episode_latency_s",
                             p.p99_latency_s);
        ctx.emitScalarMetric(bench_case, "queue_delay_share",
                             p.delay_share);
        ctx.emitScalarMetric(bench_case, "backend_occupancy",
                             p.occupancy);
        if (i > 0 && p.mean_delay_s <= points[i - 1].mean_delay_s)
            monotone = false;
    }
    ctx.printf("%s\n", sweep_table.render().c_str());
    ctx.printf("delay/ep        charged queueing + admission delay per\n"
               "                tenant episode (simulated s)\n"
               "p50/p99 ep lat  episode latency percentile (simulated s):\n"
               "                base episode time + charged queueing and\n"
               "                admission delay at that arrival rate\n"
               "q-delay share   summed queueing delay over summed episode\n"
               "                latency\n"
               "occupancy       busy slot-seconds over available\n"
               "                slot-seconds across backends\n");

    // Max sustainable throughput: the highest swept rate at which the
    // queue stays subcritical (delay share below half); at least the
    // analytic bottleneck rate when every swept level saturates.
    double max_sustainable = 0.0;
    for (const auto &p : points)
        if (p.delay_share < 0.5 && p.rate_eps > max_sustainable)
            max_sustainable = p.rate_eps;
    if (max_sustainable == 0.0)
        max_sustainable = points.front().rate_eps;
    ctx.emitScalarMetric("engine-service serving", "max_sustainable_eps",
                         max_sustainable);
    ctx.printf("max sustainable rate (delay share < 50%%): %.4f "
               "episodes/s\n",
               max_sustainable);

    // Queueing delay must grow strictly with offered load — the
    // closed-loop model's defining property. A flat or shrinking delay
    // means the queue is not actually contended.
    if (!monotone) {
        std::string detail;
        for (const auto &p : points) {
            char buf[48];
            std::snprintf(buf, sizeof(buf), " %.2fx=%.3fs", p.level,
                          p.mean_delay_s);
            detail += buf;
        }
        ctx.eprintf("charged queueing delay per episode is not "
                    "strictly increasing in offered load:%s\n",
                    detail.c_str());
        return 1;
    }
    return 0;
}

} // namespace

EBS_BENCH_SUITE("bench_engine_service",
                "Rec. 1 at system scope: cross-agent batching, charged "
                "and closed-loop queued ablations, and a multi-tenant "
                "offered-load sweep",
                run);
