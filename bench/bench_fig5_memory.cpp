/**
 * @file
 * Reproduces paper Fig. 5 (memory capacity analysis): success rate and
 * average steps for JARVIS-1 (single-agent), MindAgent (centralized), and
 * CoELA (decentralized) across memory windows and task difficulties, plus
 * the retrieval-latency growth and the full-history inconsistency dip.
 */

#include <fstream>
#include <memory>
#include <vector>

#include "stats/csv.h"
#include "stats/table.h"
#include "suite.h"

namespace {

/** Usage: bench_fig5_memory [csv_output_dir] */
int
run(ebs::bench::SuiteContext &ctx)
{
    using namespace ebs;
    std::ofstream csv_file;
    std::unique_ptr<stats::CsvWriter> csv;
    if (!ctx.args().empty()) {
        csv_file.open(ctx.args()[0] + "/fig5_memory.csv");
        csv = std::make_unique<stats::CsvWriter>(
            csv_file, std::vector<std::string>{
                          "system", "difficulty", "capacity", "success",
                          "avg_steps", "retrieval_s_per_step"});
    }
    const int kSeeds = ctx.seedCount(20);
    const char *systems[] = {"JARVIS-1", "MindAgent", "CoELA"};
    const int capacities[] = {5, 10, 20, 30, 40, 60};
    const env::Difficulty difficulties[] = {env::Difficulty::Easy,
                                            env::Difficulty::Medium,
                                            env::Difficulty::Hard};

    ctx.printf("=== Fig. 5: memory capacity vs success/steps "
                "(%d seeds) ===\n\n",
                kSeeds);

    // The full system × difficulty × capacity grid fans out as one batch.
    std::vector<runner::RunVariant> variants;
    for (const char *name : systems) {
        const auto &spec = workloads::workload(name);
        for (const auto difficulty : difficulties) {
            for (const int capacity : capacities) {
                runner::RunVariant v;
                v.workload = &spec;
                v.config = spec.config;
                v.config.memory.capacity_steps = capacity;
                v.difficulty = difficulty;
                v.seeds = kSeeds;
                variants.push_back(std::move(v));
            }
        }
    }
    const auto results = ctx.runAveragedMany(variants);

    std::size_t idx = 0;
    for (const char *name : systems) {
        ctx.printf("--- %s ---\n", name);
        stats::Table table({"difficulty", "capacity (steps)", "success",
                            "avg steps", "retrieval s/step"});
        for (const auto difficulty : difficulties) {
            for (const int capacity : capacities) {
                const auto &r = results[idx++];
                const double retrieval_per_step =
                    r.avg_steps > 0
                        ? r.latency.total(stats::ModuleKind::Memory) /
                              (kSeeds * r.avg_steps)
                        : 0.0;
                table.addRow({env::difficultyName(difficulty),
                              std::to_string(capacity),
                              stats::Table::pct(r.success_rate, 0),
                              stats::Table::num(r.avg_steps, 1),
                              stats::Table::num(retrieval_per_step, 3)});
                if (difficulty == env::Difficulty::Medium)
                    ctx.emitMetric(std::string(name) + " cap=" +
                                          std::to_string(capacity),
                                      r);
                if (csv)
                    csv->row({name, env::difficultyName(difficulty),
                              std::to_string(capacity),
                              stats::Table::num(r.success_rate, 3),
                              stats::Table::num(r.avg_steps, 2),
                              stats::Table::num(retrieval_per_step, 4)});
            }
        }
        ctx.printf("%s\n", table.render().c_str());
    }
    if (idx != results.size()) {
        ctx.eprintf("fig5: consumed %zu of %zu results — the print loops "
                    "fell out of sync with the variant grid\n",
                    idx, results.size());
        return 1;
    }

    ctx.printf(
        "Expected shape: success rises (and steps fall) with capacity;\n"
        "easy tasks saturate at small windows; retrieval latency grows\n"
        "with capacity; unbounded history shows a slight quality dip from\n"
        "memory inconsistency (paper Takeaway 4).\n");
    return 0;
}

} // namespace

EBS_BENCH_SUITE("bench_fig5_memory",
                "Fig. 5: memory capacity vs success/steps across three "
                "systems and difficulties",
                run);
