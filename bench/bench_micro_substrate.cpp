/**
 * @file
 * Google-benchmark microbenchmarks of the substrate components whose
 * compute cost backs the execution-module latency story: A* grid search,
 * RRT motion planning, memory retrieval, the token counter, and the LLM
 * engine's sampling path.
 *
 * Honors smoke mode (ctx.smoke(), set by `run_all --smoke` or
 * EBS_BENCH_SMOKE standalone) by clamping --benchmark_min_time to a few
 * milliseconds so the suite stops dominating smoke runs. Full runs use
 * a 0.05 s window instead of Google Benchmark's 0.5 s default — every
 * op here is ns-to-µs scale, so that still means 1e4-1e7 iterations per
 * measurement while keeping `run_all` wall-clock dominated by the
 * episode suites the runner can actually parallelize.
 *
 * The console report is rendered into a string and forwarded to the
 * suite's stdout sink in one write. The numbers are host timings, so
 * this is the one suite whose stdout is *not* byte-stable across runs —
 * the fleet equivalence gate skips it (it emits no EBS_METRIC lines).
 */

#include <benchmark/benchmark.h>

#include <sstream>
#include <string>
#include <vector>

#include "suite.h"

#include "core/coordinator.h"
#include "envs/transport_env.h"
#include "llm/engine.h"
#include "llm/token.h"
#include "memory/memory.h"
#include "plan/astar.h"
#include "plan/rrt.h"

namespace {

using namespace ebs;

void
BM_AStarOpenGrid(benchmark::State &state)
{
    const int side = static_cast<int>(state.range(0));
    env::GridMap grid(side, side);
    for (auto _ : state) {
        auto path = plan::aStar(grid, {0, 0}, {side - 1, side - 1});
        benchmark::DoNotOptimize(path);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AStarOpenGrid)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void
BM_AStarApartment(benchmark::State &state)
{
    const env::GridMap grid = env::GridMap::apartment(3, 3, 8, 8);
    for (auto _ : state) {
        auto path = plan::aStar(grid, {1, 1},
                                {grid.width() - 2, grid.height() - 2});
        benchmark::DoNotOptimize(path);
    }
}
BENCHMARK(BM_AStarApartment);

void
BM_RrtCluttered(benchmark::State &state)
{
    plan::Workspace ws;
    ws.max_x = 20.0;
    ws.max_y = 20.0;
    ws.obstacles = {{{7.0, 7.0}, 2.0}, {{13.0, 13.0}, 2.0},
                    {{7.0, 13.0}, 1.5}, {{13.0, 7.0}, 1.5}};
    sim::Rng rng(5);
    plan::RrtParams params;
    params.step_size = 0.8;
    for (auto _ : state) {
        auto path = plan::rrtPlan(ws, {1.0, 1.0}, {19.0, 19.0}, rng, params);
        benchmark::DoNotOptimize(path);
    }
}
BENCHMARK(BM_RrtCluttered);

void
BM_MemoryRetrieve(benchmark::State &state)
{
    memory::MemoryModule::Config cfg;
    cfg.capacity_steps = 0;
    memory::MemoryModule mem(cfg, sim::Rng(7));
    const int records = static_cast<int>(state.range(0));
    for (int step = 0; step < records; ++step) {
        env::Observation obs;
        obs.step = step;
        obs.room = step % 6;
        env::ObservedObject seen;
        seen.id = step % 40;
        seen.pos = {step % 13, step % 11};
        obs.objects.push_back(seen);
        mem.recordObservation(obs);
    }
    for (auto _ : state) {
        auto ctx = mem.retrieve(records);
        benchmark::DoNotOptimize(ctx);
    }
}
BENCHMARK(BM_MemoryRetrieve)->Arg(64)->Arg(512)->Arg(4096);

void
BM_TokenCounter(benchmark::State &state)
{
    const std::string text(static_cast<std::size_t>(state.range(0)), 'a');
    for (auto _ : state)
        benchmark::DoNotOptimize(llm::approxTokens(text));
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TokenCounter)->Arg(256)->Arg(4096)->Arg(65536);

void
BM_LlmEngineComplete(benchmark::State &state)
{
    llm::LlmEngine engine(llm::ModelProfile::gpt4Api(), sim::Rng(9));
    llm::LlmRequest req;
    req.tokens_in = 1500;
    req.tokens_out_mean = 100;
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.complete(req));
}
BENCHMARK(BM_LlmEngineComplete);

void
BM_EpisodeTransportEasy(benchmark::State &state)
{
    for (auto _ : state) {
        envs::TransportEnv environment(env::Difficulty::Easy, 1,
                                       sim::Rng(3));
        core::AgentConfig config;
        core::EpisodeOptions options;
        options.seed = 3;
        auto result =
            core::runSingleAgent(environment, config, options);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_EpisodeTransportEasy);

int
run(ebs::bench::SuiteContext &ctx)
{
    // Rebuild an argv for Google Benchmark from the suite arguments.
    // Our min-time clamp (hard in smoke mode, mild in full mode) is
    // inserted before any caller flags, and Google Benchmark lets the
    // last occurrence win, so an explicit --benchmark_min_time on the
    // command line still takes precedence.
    std::vector<std::string> arg_storage;
    arg_storage.emplace_back("bench_micro_substrate");
    arg_storage.emplace_back(ctx.smoke() ? "--benchmark_min_time=0.005"
                                         : "--benchmark_min_time=0.05");
    for (const auto &arg : ctx.args())
        arg_storage.push_back(arg);
    std::vector<char *> args;
    args.reserve(arg_storage.size());
    for (auto &arg : arg_storage)
        args.push_back(arg.data());

    int args_count = static_cast<int>(args.size());
    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
        return 1;

    // Render the console report into strings and hand them to the
    // suite's sinks, so the fleet captures this suite's output the same
    // way it captures every other suite's.
    std::ostringstream report;
    std::ostringstream errors;
    benchmark::ConsoleReporter reporter;
    reporter.SetOutputStream(&report);
    reporter.SetErrorStream(&errors);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    ctx.write(report.str());
    if (!errors.str().empty())
        ctx.eprintf("%s", errors.str().c_str());
    return 0;
}

} // namespace

EBS_BENCH_SUITE("bench_micro_substrate",
                "Google-benchmark micro timings of the substrate: A*, "
                "RRT, memory retrieval, token counting, LLM sampling",
                run);
