/**
 * @file
 * Reproduces paper Table I: the categorization of recent embodied AI agent
 * systems into four paradigms with their computing-module compositions.
 * The 14 systems of the executable workload suite are printed from their
 * live configurations; the remaining systems of Table I are catalogued as
 * static rows (they are categorization data, not executable workloads).
 */

#include "stats/table.h"
#include "suite.h"
#include "workloads/workload.h"

namespace {

/** Static rows of Table I that are outside the executable suite. */
struct CatalogRow
{
    const char *paradigm;
    const char *name;
    const char *sense, *plan, *comm, *mem, *refl, *exec;
    const char *type;
};

const CatalogRow kCatalog[] = {
    {"Single/Modularized", "Mobile-Agent", "y", "y", "-", "-", "y", "y",
     "Device Control (T)"},
    {"Single/Modularized", "AppAgent", "y", "y", "-", "-", "-", "y",
     "Device Control (T)"},
    {"Single/Modularized", "PDDL", "-", "y", "-", "-", "y", "-",
     "Simulation (V)"},
    {"Single/Modularized", "RoboGPT", "y", "y", "-", "-", "-", "y",
     "Simulation (V)"},
    {"Single/Modularized", "VOYAGER", "-", "y", "-", "y", "y", "y",
     "Simulation (V)"},
    {"Single/Modularized", "RILA", "y", "y", "-", "y", "y", "y",
     "Navigation (V)"},
    {"Single/Modularized", "CRADLE", "y", "y", "-", "y", "y", "y",
     "Device Control (T)"},
    {"Single/Modularized", "STEVE", "y", "y", "-", "-", "-", "y",
     "Simulation (V)"},
    {"Single/Modularized", "FILM", "y", "y", "-", "-", "-", "y",
     "Simulation (V)"},
    {"Single/Modularized", "LLM-Planner", "-", "y", "-", "-", "y", "y",
     "Simulation (V)"},
    {"Single/Modularized", "MINEDOJO", "y", "y", "-", "y", "-", "y",
     "Simulation (V)"},
    {"Single/Modularized", "Luban", "y", "y", "-", "y", "y", "y",
     "Simulation (V)"},
    {"Single/Modularized", "MetaGPT", "-", "y", "y", "y", "y", "y",
     "Programming (T)"},
    {"Single/Modularized", "Mobile-Agent-V2", "y", "y", "-", "y", "y", "y",
     "Device Control (T)"},
    {"Single/End-to-End", "RT-2", "", "", "", "", "", "",
     "Robot Control (E), VLA model"},
    {"Single/End-to-End", "RoboVLMs", "", "", "", "", "", "",
     "Robot Control (E), VLA model"},
    {"Single/End-to-End", "GAIA-1", "", "", "", "", "", "",
     "Autonomous Driving (E), world model"},
    {"Single/End-to-End", "3D-VLA", "", "", "", "", "", "",
     "Robot Control (E), 3D VLA model"},
    {"Single/End-to-End", "Octo", "", "", "", "", "", "",
     "Robot Control (E), VLM + policy"},
    {"Single/End-to-End", "Diffusion Policy", "", "", "", "", "", "",
     "Robot Control (E), diffusion policy"},
    {"Multi/Centralized", "LLaMAC", "-", "y", "y", "y", "-", "y",
     "Simulation (V)"},
    {"Multi/Centralized", "ALGPT", "y", "y", "y", "y", "-", "y",
     "Navigation (V)"},
    {"Multi/Centralized", "ReAd", "-", "y", "y", "-", "y", "y",
     "Simulation (V)"},
    {"Multi/Centralized", "Co-NavGPT", "y", "y", "y", "-", "-", "y",
     "Navigation (V)"},
    {"Multi/Decentralized", "AGA", "y", "y", "y", "y", "y", "y",
     "Simulation (V)"},
    {"Multi/Decentralized", "FMA", "-", "y", "y", "y", "y", "y",
     "Programming (T)"},
    {"Multi/Decentralized", "AgentVerse", "-", "y", "y", "-", "-", "y",
     "Simulation (V)"},
    {"Multi/Decentralized", "KoMA", "-", "y", "y", "y", "y", "y",
     "Simulation (V)"},
};

int
run(ebs::bench::SuiteContext &ctx)
{
    using namespace ebs;
    ctx.printf("=== Table I: embodied AI agent systems by paradigm and "
                "module composition ===\n\n");
    ctx.printf("-- Executable workload suite (live configurations) --\n\n");

    stats::Table live({"paradigm", "system", "Sense", "Plan", "Comm", "Mem",
                       "Refl", "Exec", "environment"});
    for (const auto &spec : workloads::suite()) {
        const auto &c = spec.config;
        auto mark = [](bool on) { return on ? "y" : "-"; };
        live.addRow({workloads::paradigmName(spec.paradigm), spec.name,
                     mark(c.has_sensing), mark(c.has_planning),
                     mark(c.has_communication), mark(c.has_memory),
                     mark(c.has_reflection), mark(c.has_execution),
                     spec.env_name});
    }
    ctx.printf("%s\n", live.render().c_str());

    ctx.printf("-- Catalogued systems (Table I rows outside the "
                "suite) --\n\n");
    stats::Table catalog({"paradigm", "system", "Sense", "Plan", "Comm",
                          "Mem", "Refl", "Exec", "embodied type"});
    for (const auto &row : kCatalog)
        catalog.addRow({row.paradigm, row.name, row.sense, row.plan,
                        row.comm, row.mem, row.refl, row.exec, row.type});
    ctx.printf("%s", catalog.render().c_str());
    return 0;
}

} // namespace

EBS_BENCH_SUITE("bench_table1_paradigms",
                "Table I: embodied AI agent systems by paradigm and "
                "module composition",
                run);
