#include "suite.h"

#include <algorithm>
#include <cstdarg>

namespace ebs::bench {

SuiteContext::SuiteContext(const Config &config)
    : out_(config.out), err_(config.err), smoke_(config.smoke),
      args_(config.args),
      scheduler_(config.scheduler != nullptr
                     ? config.scheduler
                     : &sched::FleetScheduler::shared()),
      tracer_(config.tracer != nullptr ? config.tracer : &own_tracer_),
      runner_(config.jobs, scheduler_, tracer_)
{
}

void
// EBS_LINT_ALLOW(suite-io): the sink's own definition
SuiteContext::printf(const char *format, ...)
{
    std::va_list args;
    va_start(args, format);
    // EBS_LINT_ALLOW(suite-io): the SuiteContext sink itself
    std::vfprintf(out_, format, args);
    va_end(args);
}

void
SuiteContext::eprintf(const char *format, ...)
{
    std::va_list args;
    va_start(args, format);
    // EBS_LINT_ALLOW(suite-io): the SuiteContext sink itself
    std::vfprintf(err_, format, args);
    va_end(args);
}

void
SuiteContext::write(const std::string &text)
{
    // EBS_LINT_ALLOW(suite-io): the SuiteContext sink itself
    std::fwrite(text.data(), 1, text.size(), out_);
}

runner::EpisodeJob
SuiteContext::stamped(runner::EpisodeJob job)
{
    if (job.engine_service == &llm::LlmEngineService::shared())
        job.engine_service = &service_;
    if (job.phase_wall == &stats::PhaseWallClock::shared())
        job.phase_wall = &phase_wall_;
    if (job.tracer == nullptr)
        job.tracer = tracer_;
    return job;
}

runner::RunVariant
SuiteContext::stamped(runner::RunVariant variant)
{
    if (variant.engine_service == &llm::LlmEngineService::shared())
        variant.engine_service = &service_;
    if (variant.phase_wall == &stats::PhaseWallClock::shared())
        variant.phase_wall = &phase_wall_;
    return variant;
}

std::vector<RunStats>
SuiteContext::runAveragedMany(std::vector<runner::RunVariant> variants)
{
    for (auto &variant : variants)
        variant = stamped(std::move(variant));
    return runner::runAveragedMany(runner_, variants);
}

RunStats
SuiteContext::runAveraged(runner::RunVariant variant)
{
    return runAveragedMany({std::move(variant)}).front();
}

RunStats
SuiteContext::runAveraged(const workloads::WorkloadSpec &spec,
                          const core::AgentConfig &config,
                          env::Difficulty difficulty, int seeds,
                          int n_agents, const core::PipelineOptions &pipeline)
{
    runner::RunVariant variant;
    variant.workload = &spec;
    variant.config = config;
    variant.difficulty = difficulty;
    variant.seeds = seeds;
    variant.n_agents = n_agents;
    variant.pipeline = pipeline;
    return runAveraged(std::move(variant));
}

std::vector<core::EpisodeResult>
SuiteContext::run(std::vector<runner::EpisodeJob> jobs)
{
    return run(runner_, std::move(jobs));
}

std::vector<core::EpisodeResult>
SuiteContext::run(const runner::EpisodeRunner &custom_runner,
                  std::vector<runner::EpisodeJob> jobs)
{
    for (auto &job : jobs)
        job = stamped(std::move(job));
    return custom_runner.run(jobs);
}

void
SuiteContext::emitMetric(const std::string &bench_case, const RunStats &r)
{
    this->printf("EBS_METRIC {\"case\":\"%s\",\"episodes\":%d,"
           "\"success_rate\":%s,\"avg_steps\":%s,"
           "\"s_per_step\":%s,\"runtime_min\":%s,"
           "\"llm_calls_per_episode\":%s,"
           "\"tokens_per_episode\":%s}\n",
           jsonEscape(bench_case).c_str(), r.episodes,
           jsonNum(r.success_rate, 4).c_str(),
           jsonNum(r.avg_steps, 2).c_str(),
           jsonNum(r.avg_step_latency_s, 3).c_str(),
           jsonNum(r.avg_runtime_min, 3).c_str(),
           jsonNum(r.llmCallsPerEpisode(), 1).c_str(),
           jsonNum(r.tokensPerEpisode(), 0).c_str());
}

void
SuiteContext::emitScalarMetric(const std::string &bench_case,
                               const std::string &name, double value)
{
    this->printf("EBS_METRIC {\"case\":\"%s\",\"%s\":%s}\n",
           jsonEscape(bench_case).c_str(), jsonEscape(name).c_str(),
           jsonNum(value, 6).c_str());
}

double
SuiteContext::emitChargedMetrics(const std::string &bench_case,
                                 double sequential_s_per_step,
                                 double charged_s_per_step)
{
    const double saved =
        chargedSavedFraction(sequential_s_per_step, charged_s_per_step);
    emitScalarMetric(bench_case, "batched_s_per_step", charged_s_per_step);
    emitScalarMetric(bench_case, "batch_charge_saved_pct", 100.0 * saved);
    return saved;
}

void
SuiteContext::emitSpeculativeMetrics(const std::string &bench_case,
                                     const RunStats &r)
{
    emitScalarMetric(bench_case, "spec_exec_speedup", r.specExecSpeedup());
    emitScalarMetric(bench_case, "spec_conflict_rate",
                     r.specConflictRate());
    emitScalarMetric(bench_case, "spec_reexec_fraction",
                     r.specReexecFraction());
}

void
SuiteContext::emitSharedServiceSummary(const std::string &bench_case)
{
    const auto usage = service_.totalUsage();
    const auto stats = service_.stats();
    this->printf("shared engine service: %zu calls, %lld batches "
           "(%lld cross-agent), occupancy %.2f\n",
           usage.calls, stats.batches, stats.cross_agent_batches,
           stats.occupancy());
    emitScalarMetric(bench_case, "batch_occupancy", stats.occupancy());
}

void
SuiteContext::emitPhaseWallSummary()
{
    const auto wall = phase_wall_.snapshot();
    eprintf("EBS_PHASE_WALL {\"compute_s\":%s,\"execute_s\":%s,"
            "\"episodes\":%lld}\n",
            jsonNum(wall.compute_s, 3).c_str(),
            jsonNum(wall.execute_s, 3).c_str(), wall.episodes);
}

SuiteRegistry &
SuiteRegistry::instance()
{
    static SuiteRegistry registry;
    return registry;
}

void
SuiteRegistry::add(SuiteInfo info)
{
    suites_.push_back(std::move(info));
    sorted_ = false;
}

const std::vector<SuiteInfo> &
SuiteRegistry::suites() const
{
    if (!sorted_) {
        std::sort(suites_.begin(), suites_.end(),
                  [](const SuiteInfo &a, const SuiteInfo &b) {
                      return a.name < b.name;
                  });
        sorted_ = true;
    }
    return suites_;
}

const SuiteInfo *
SuiteRegistry::find(const std::string &name) const
{
    for (const SuiteInfo &suite : suites())
        if (suite.name == name)
            return &suite;
    return nullptr;
}

SuiteRegistrar::SuiteRegistrar(const char *name, const char *description,
                               int (*fn)(SuiteContext &))
{
    SuiteRegistry::instance().add(SuiteInfo{name, description, fn});
}

} // namespace ebs::bench
