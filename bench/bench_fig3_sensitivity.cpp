/**
 * @file
 * Reproduces paper Fig. 3 (module sensitivity): success rate and average
 * steps for six systems with each module ablated in turn. Modules a system
 * was not designed with are reported N/A, matching the figure. Also prints
 * the cross-system aggregates quoted in Sec. IV-B: memory off -> 1.61x
 * steps / -27.7% success; reflection off -> 1.88x steps / -33.3% success.
 */

#include <cstdio>

#include "bench_util.h"
#include "stats/table.h"

int
main()
{
    using namespace ebs;
    const int kSeeds = bench::seedCount(10);
    const auto difficulty = env::Difficulty::Medium;
    const char *systems[] = {"JARVIS-1", "CoELA",    "COMBO",
                             "COHERENT", "RoCo",     "HMAS"};

    std::printf("=== Fig. 3: module sensitivity (medium tasks, %d seeds) "
                "===\n\n",
                kSeeds);
    stats::Table table({"workload", "variant", "success", "avg steps"});

    double mem_steps_ratio = 0.0, mem_sr_drop = 0.0;
    int mem_n = 0;
    double refl_steps_ratio = 0.0, refl_sr_drop = 0.0;
    int refl_n = 0;

    for (const char *name : systems) {
        const auto &spec = workloads::workload(name);
        const auto base = bench::runAveraged(spec, spec.config, difficulty,
                                             kSeeds);
        table.addRow({spec.name, "full agent",
                      stats::Table::pct(base.success_rate, 0),
                      stats::Table::num(base.avg_steps, 1)});

        struct Ablation
        {
            const char *label;
            bool present;
            void (*apply)(core::AgentConfig &);
        };
        const Ablation ablations[] = {
            {"w/o Communication", spec.config.has_communication,
             [](core::AgentConfig &c) { c.has_communication = false; }},
            {"w/o Memory", spec.config.has_memory,
             [](core::AgentConfig &c) { c.has_memory = false; }},
            {"w/o Reflection", spec.config.has_reflection,
             [](core::AgentConfig &c) {
                 c.has_reflection = false;
                 // Ablating the module also removes its curated feedback
                 // loop; raw environment feedback remains.
             }},
            {"w/o Execution", spec.config.has_execution,
             [](core::AgentConfig &c) { c.has_execution = false; }},
        };

        for (const auto &ablation : ablations) {
            if (!ablation.present) {
                table.addRow({spec.name, ablation.label, "N/A", "N/A"});
                continue;
            }
            core::AgentConfig config = spec.config;
            ablation.apply(config);
            const auto r = bench::runAveraged(spec, config, difficulty,
                                              kSeeds);
            table.addRow({spec.name, ablation.label,
                          stats::Table::pct(r.success_rate, 0),
                          stats::Table::num(r.avg_steps, 1)});

            if (std::string(ablation.label) == "w/o Memory") {
                mem_steps_ratio += r.avg_steps / base.avg_steps;
                mem_sr_drop += base.success_rate - r.success_rate;
                ++mem_n;
            }
            if (std::string(ablation.label) == "w/o Reflection") {
                refl_steps_ratio += r.avg_steps / base.avg_steps;
                refl_sr_drop += base.success_rate - r.success_rate;
                ++refl_n;
            }
        }
    }

    std::printf("%s\n", table.render().c_str());
    if (mem_n > 0)
        std::printf("Memory ablation aggregate:     %.2fx steps, "
                    "-%.1f%% success (paper: 1.61x, -27.7%%)\n",
                    mem_steps_ratio / mem_n, mem_sr_drop / mem_n * 100.0);
    if (refl_n > 0)
        std::printf("Reflection ablation aggregate: %.2fx steps, "
                    "-%.1f%% success (paper: 1.88x, -33.3%%)\n",
                    refl_steps_ratio / refl_n,
                    refl_sr_drop / refl_n * 100.0);
    return 0;
}
