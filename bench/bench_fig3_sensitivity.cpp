/**
 * @file
 * Reproduces paper Fig. 3 (module sensitivity): success rate and average
 * steps for six systems with each module ablated in turn. Modules a system
 * was not designed with are reported N/A, matching the figure. Also prints
 * the cross-system aggregates quoted in Sec. IV-B: memory off -> 1.61x
 * steps / -27.7% success; reflection off -> 1.88x steps / -33.3% success.
 */

#include <string>
#include <vector>

#include "stats/table.h"
#include "suite.h"

namespace {

int
run(ebs::bench::SuiteContext &ctx)
{
    using namespace ebs;
    const int kSeeds = ctx.seedCount(20);
    const auto difficulty = env::Difficulty::Medium;
    const char *systems[] = {"JARVIS-1", "CoELA",    "COMBO",
                             "COHERENT", "RoCo",     "HMAS"};

    ctx.printf("=== Fig. 3: module sensitivity (medium tasks, %d seeds) "
                "===\n\n",
                kSeeds);
    stats::Table table({"workload", "variant", "success", "avg steps"});

    struct Ablation
    {
        const char *label;
        bool core::AgentConfig::*flag;
    };
    const Ablation ablations[] = {
        {"w/o Communication", &core::AgentConfig::has_communication},
        {"w/o Memory", &core::AgentConfig::has_memory},
        // Ablating reflection also removes its curated feedback loop;
        // raw environment feedback remains.
        {"w/o Reflection", &core::AgentConfig::has_reflection},
        {"w/o Execution", &core::AgentConfig::has_execution},
    };

    // The whole grid — per system, the full agent plus every applicable
    // ablation — fans out as one runner batch.
    struct Row
    {
        const workloads::WorkloadSpec *spec;
        std::string label;
        std::size_t variant = SIZE_MAX; ///< SIZE_MAX = N/A row
        std::size_t base_variant = 0;
    };
    std::vector<runner::RunVariant> variants;
    std::vector<Row> rows;

    for (const char *name : systems) {
        const auto &spec = workloads::workload(name);
        const std::size_t base_idx = variants.size();
        runner::RunVariant base;
        base.workload = &spec;
        base.config = spec.config;
        base.difficulty = difficulty;
        base.seeds = kSeeds;
        variants.push_back(std::move(base));
        rows.push_back({&spec, "full agent", base_idx, base_idx});

        for (const auto &ablation : ablations) {
            if (!(spec.config.*ablation.flag)) {
                rows.push_back({&spec, ablation.label, SIZE_MAX, base_idx});
                continue;
            }
            runner::RunVariant v;
            v.workload = &spec;
            v.config = spec.config;
            v.config.*ablation.flag = false;
            v.difficulty = difficulty;
            v.seeds = kSeeds;
            rows.push_back({&spec, ablation.label, variants.size(),
                            base_idx});
            variants.push_back(std::move(v));
        }
    }

    const auto results = ctx.runAveragedMany(variants);

    double mem_steps_ratio = 0.0, mem_sr_drop = 0.0;
    int mem_n = 0;
    double refl_steps_ratio = 0.0, refl_sr_drop = 0.0;
    int refl_n = 0;

    for (const auto &row : rows) {
        if (row.variant == SIZE_MAX) {
            table.addRow({row.spec->name, row.label, "N/A", "N/A"});
            continue;
        }
        const auto &r = results[row.variant];
        table.addRow({row.spec->name, row.label,
                      stats::Table::pct(r.success_rate, 0),
                      stats::Table::num(r.avg_steps, 1)});
        ctx.emitMetric(row.spec->name + " " + row.label, r);

        const auto &base = results[row.base_variant];
        if (row.label == "w/o Memory") {
            mem_steps_ratio += r.avg_steps / base.avg_steps;
            mem_sr_drop += base.success_rate - r.success_rate;
            ++mem_n;
        }
        if (row.label == "w/o Reflection") {
            refl_steps_ratio += r.avg_steps / base.avg_steps;
            refl_sr_drop += base.success_rate - r.success_rate;
            ++refl_n;
        }
    }

    ctx.printf("%s\n", table.render().c_str());
    if (mem_n > 0) {
        ctx.printf("Memory ablation aggregate:     %.2fx steps, "
                    "-%.1f%% success (paper: 1.61x, -27.7%%)\n",
                    mem_steps_ratio / mem_n, mem_sr_drop / mem_n * 100.0);
        ctx.emitScalarMetric("aggregate", "memory_ablation_steps_ratio",
                                mem_steps_ratio / mem_n);
    }
    if (refl_n > 0) {
        ctx.printf("Reflection ablation aggregate: %.2fx steps, "
                    "-%.1f%% success (paper: 1.88x, -33.3%%)\n",
                    refl_steps_ratio / refl_n,
                    refl_sr_drop / refl_n * 100.0);
        ctx.emitScalarMetric("aggregate",
                                "reflection_ablation_steps_ratio",
                                refl_steps_ratio / refl_n);
    }
    return 0;
}

} // namespace

EBS_BENCH_SUITE("bench_fig3_sensitivity",
                "Fig. 3: module-ablation sensitivity for six systems "
                "(success rate and steps)",
                run);
