/**
 * @file
 * Extension bench: the end-to-end paradigm (paper Fig. 1c, Sec. II-C).
 * The paper categorizes VLA-style systems (RT-2, Octo, Diffusion Policy)
 * as the fourth paradigm — suited to short-horizon tasks — but does not
 * profile them. This bench closes that gap: it compares a modularized
 * GPT-4 agent against three end-to-end profiles on a short-horizon
 * manipulation task and a long-horizon crafting task.
 *
 * Expected shape: end-to-end control achieves far lower per-tick latency
 * and competitive success on the short-horizon task, but collapses on the
 * long-horizon one, where the modular system's explicit planning pays off.
 */

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/vla.h"
#include "envs/craft_env.h"
#include "envs/manipulation_env.h"
#include "stats/table.h"

namespace {

using namespace ebs;

struct TaskCase
{
    const char *label;
    std::unique_ptr<env::Environment> (*make)(sim::Rng);
};

std::unique_ptr<env::Environment>
makeShortHorizon(sim::Rng rng)
{
    return std::make_unique<envs::ManipulationEnv>(env::Difficulty::Easy, 1,
                                                   rng);
}

std::unique_ptr<env::Environment>
makeLongHorizon(sim::Rng rng)
{
    return std::make_unique<envs::CraftEnv>(env::Difficulty::Medium, 1, rng);
}

} // namespace

int
main()
{
    const int kSeeds = ebs::bench::seedCount(10);
    const TaskCase cases[] = {
        {"short-horizon (manipulation, easy)", &makeShortHorizon},
        {"long-horizon (craft, medium)", &makeLongHorizon},
    };

    for (const auto &task_case : cases) {
        std::printf("=== %s ===\n\n", task_case.label);
        stats::Table table(
            {"system", "success", "runtime (min)", "s/decision"});

        // Modularized baseline: GPT-4 planner, full module set.
        {
            double ok = 0, runtime = 0, per_step = 0;
            for (int seed = 1; seed <= kSeeds; ++seed) {
                auto environment =
                    task_case.make(sim::Rng(seed * 31ULL).fork(7));
                core::AgentConfig config;
                core::EpisodeOptions options;
                options.seed = static_cast<std::uint64_t>(seed) * 31;
                const auto r = core::runSingleAgent(*environment, config,
                                                    options);
                ok += r.success;
                runtime += r.sim_seconds / 60.0;
                per_step += r.secondsPerStep();
            }
            table.addRow({"Modularized (GPT-4 pipeline)",
                          stats::Table::pct(ok / kSeeds, 0),
                          stats::Table::num(runtime / kSeeds, 1),
                          stats::Table::num(per_step / kSeeds, 2)});
        }

        for (const auto &profile :
             {core::VlaProfile::rt2(), core::VlaProfile::octo(),
              core::VlaProfile::diffusionPolicy()}) {
            double ok = 0, runtime = 0, per_step = 0;
            for (int seed = 1; seed <= kSeeds; ++seed) {
                auto environment =
                    task_case.make(sim::Rng(seed * 31ULL).fork(7));
                core::EpisodeOptions options;
                options.seed = static_cast<std::uint64_t>(seed) * 31;
                const auto r =
                    core::runEndToEnd(*environment, profile, options);
                ok += r.success;
                runtime += r.sim_seconds / 60.0;
                per_step += r.secondsPerStep();
            }
            table.addRow({profile.name, stats::Table::pct(ok / kSeeds, 0),
                          stats::Table::num(runtime / kSeeds, 1),
                          stats::Table::num(per_step / kSeeds, 2)});
        }
        std::printf("%s\n", table.render().c_str());
    }

    std::printf(
        "Expected shape (paper Sec. II-C): end-to-end VLA control runs at\n"
        "orders-of-magnitude lower per-decision latency and holds its own\n"
        "on short-horizon tasks, but cannot sustain long-horizon\n"
        "dependency chains, where the modular paradigm dominates.\n");
    return 0;
}
