/**
 * @file
 * Extension bench: the end-to-end paradigm (paper Fig. 1c, Sec. II-C).
 * The paper categorizes VLA-style systems (RT-2, Octo, Diffusion Policy)
 * as the fourth paradigm — suited to short-horizon tasks — but does not
 * profile them. This bench closes that gap: it compares a modularized
 * GPT-4 agent against three end-to-end profiles on a short-horizon
 * manipulation task and a long-horizon crafting task.
 *
 * Expected shape: end-to-end control achieves far lower per-tick latency
 * and competitive success on the short-horizon task, but collapses on the
 * long-horizon one, where the modular system's explicit planning pays off.
 */

#include <memory>
#include <span>
#include <vector>

#include "core/vla.h"
#include "envs/craft_env.h"
#include "envs/manipulation_env.h"
#include "stats/table.h"
#include "suite.h"

namespace {

using namespace ebs;

struct TaskCase
{
    const char *label;
    std::unique_ptr<env::Environment> (*make)(sim::Rng);
};

std::unique_ptr<env::Environment>
makeShortHorizon(sim::Rng rng)
{
    return std::make_unique<envs::ManipulationEnv>(env::Difficulty::Easy, 1,
                                                   rng);
}

std::unique_ptr<env::Environment>
makeLongHorizon(sim::Rng rng)
{
    return std::make_unique<envs::CraftEnv>(env::Difficulty::Medium, 1, rng);
}

int
run(ebs::bench::SuiteContext &ctx)
{
    const int kSeeds = ctx.seedCount(20);
    const TaskCase cases[] = {
        {"short-horizon (manipulation, easy)", &makeShortHorizon},
        {"long-horizon (craft, medium)", &makeLongHorizon},
    };
    const core::VlaProfile profiles[] = {core::VlaProfile::rt2(),
                                         core::VlaProfile::octo(),
                                         core::VlaProfile::diffusionPolicy()};

    // Every (task, system, seed) episode fans out as one batch. This bench
    // predates the runner's seed ladder and keeps its historical seed*31
    // derivation, so the seed travels in each job explicitly.
    std::vector<runner::EpisodeJob> jobs;
    auto push = [&](const TaskCase &task_case,
                    std::function<core::EpisodeResult(
                        env::Environment &, const core::EpisodeOptions &)>
                        episode) {
        for (int seed = 1; seed <= kSeeds; ++seed) {
            runner::EpisodeJob job;
            job.seed = static_cast<std::uint64_t>(seed) * 31;
            job.custom = [make = task_case.make, episode,
                          seed](const core::EpisodeOptions &options) {
                auto environment = make(sim::Rng(seed * 31ULL).fork(7));
                return episode(*environment, options);
            };
            jobs.push_back(std::move(job));
        }
    };

    for (const auto &task_case : cases) {
        // Modularized baseline: GPT-4 planner, full module set.
        push(task_case, [](env::Environment &environment,
                           const core::EpisodeOptions &options) {
            core::AgentConfig config;
            return core::runSingleAgent(environment, config, options);
        });
        for (const auto &profile : profiles)
            push(task_case, [profile](env::Environment &environment,
                                      const core::EpisodeOptions &options) {
                return core::runEndToEnd(environment, profile, options);
            });
    }

    const auto episodes = ctx.run(std::move(jobs));

    std::size_t offset = 0;
    auto next_stats = [&] {
        const std::span<const core::EpisodeResult> slice(
            episodes.data() + offset, static_cast<std::size_t>(kSeeds));
        offset += static_cast<std::size_t>(kSeeds);
        return runner::foldEpisodes(slice);
    };

    for (const auto &task_case : cases) {
        ctx.printf("=== %s ===\n\n", task_case.label);
        stats::Table table(
            {"system", "success", "runtime (min)", "s/decision"});

        const char *modular_label = "Modularized (GPT-4 pipeline)";
        const auto modular = next_stats();
        table.addRow({modular_label,
                      stats::Table::pct(modular.success_rate, 0),
                      stats::Table::num(modular.avg_runtime_min, 1),
                      stats::Table::num(modular.avg_step_latency_s, 2)});
        ctx.emitMetric(std::string(task_case.label) + " " + modular_label,
                       modular);

        for (const auto &profile : profiles) {
            const auto r = next_stats();
            table.addRow({profile.name,
                          stats::Table::pct(r.success_rate, 0),
                          stats::Table::num(r.avg_runtime_min, 1),
                          stats::Table::num(r.avg_step_latency_s, 2)});
            ctx.emitMetric(std::string(task_case.label) + " " +
                               profile.name,
                           r);
        }
        ctx.printf("%s\n", table.render().c_str());
    }
    if (offset != episodes.size()) {
        ctx.eprintf("paradigm_endtoend: consumed %zu of %zu episodes — "
                    "the print loops fell out of sync with the batch\n",
                    offset, episodes.size());
        return 1;
    }

    ctx.printf(
        "Expected shape (paper Sec. II-C): end-to-end VLA control runs at\n"
        "orders-of-magnitude lower per-decision latency and holds its own\n"
        "on short-horizon tasks, but cannot sustain long-horizon\n"
        "dependency chains, where the modular paradigm dominates.\n");
    return 0;
}

} // namespace

EBS_BENCH_SUITE("bench_paradigm_endtoend",
                "Fig. 1c extension: modular GPT-4 pipeline vs end-to-end "
                "VLA profiles on short- and long-horizon tasks",
                run);
