/**
 * @file
 * Reproduces paper Fig. 4 (local model analysis): task success rate and
 * end-to-end runtime with the GPT-4 API planner versus local Llama-3-8B
 * processing, across ten workloads. The expected shape: smaller local
 * models have faster per-inference latency but worse plans, so success
 * drops and total runtime rises (some workloads fail outright).
 */

#include <vector>

#include "stats/table.h"
#include "suite.h"

namespace {

int
run(ebs::bench::SuiteContext &ctx)
{
    using namespace ebs;
    const int kSeeds = ctx.seedCount(20);
    const auto difficulty = env::Difficulty::Medium;
    const char *systems[] = {"JARVIS-1", "DaDu-E", "MP5",   "DEPS",
                             "MindAgent", "OLA",   "CoELA", "COMBO",
                             "RoCo",      "DMAS"};

    ctx.printf("=== Fig. 4: GPT-4 API vs Llama-3-8B local planning "
                "(medium tasks, %d seeds) ===\n\n",
                kSeeds);
    stats::Table table({"workload", "backend", "success", "steps",
                        "runtime (min)"});

    // Two variants per system (API / local), one shared fan-out.
    std::vector<runner::RunVariant> variants;
    for (const char *name : systems) {
        const auto &spec = workloads::workload(name);

        // GPT-4 configuration: force the planner/comm to the API model
        // even for systems that ship with local planners, matching the
        // paper's controlled comparison.
        runner::RunVariant api;
        api.workload = &spec;
        api.config = spec.config;
        api.config.planner_model = llm::ModelProfile::gpt4Api();
        api.config.comm_model = llm::ModelProfile::gpt4Api();
        api.difficulty = difficulty;
        api.seeds = kSeeds;
        variants.push_back(std::move(api));

        runner::RunVariant local;
        local.workload = &spec;
        local.config = spec.config;
        local.config.planner_model = llm::ModelProfile::llama3_8bLocal();
        local.config.comm_model = llm::ModelProfile::llama3_8bLocal();
        local.difficulty = difficulty;
        local.seeds = kSeeds;
        variants.push_back(std::move(local));
    }

    const auto results = ctx.runAveragedMany(variants);

    for (std::size_t i = 0; i < std::size(systems); ++i) {
        const auto &spec = *variants[2 * i].workload;
        const auto &api = results[2 * i];
        const auto &llama = results[2 * i + 1];
        table.addRow({spec.name, "GPT-4 API",
                      stats::Table::pct(api.success_rate, 0),
                      stats::Table::num(api.avg_steps, 0),
                      stats::Table::num(api.avg_runtime_min, 1)});
        table.addRow({spec.name, "Llama-3-8B",
                      llama.success_rate < 0.05
                          ? std::string("FAIL")
                          : stats::Table::pct(llama.success_rate, 0),
                      stats::Table::num(llama.avg_steps, 0),
                      stats::Table::num(llama.avg_runtime_min, 1)});
        ctx.emitMetric(spec.name + std::string(" gpt4-api"), api);
        ctx.emitMetric(spec.name + std::string(" llama3-8b"), llama);
    }

    ctx.printf("%s\n", table.render().c_str());
    ctx.printf("Expected shape: the local 8B model reduces success rates\n"
                "and, despite faster per-inference time, needs more steps —\n"
                "raising end-to-end runtime (paper Takeaway 3).\n");
    return 0;
}

} // namespace

EBS_BENCH_SUITE("bench_fig4_local_model",
                "Fig. 4: GPT-4 API vs local Llama-3-8B planning across "
                "ten workloads",
                run);
