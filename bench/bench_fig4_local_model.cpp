/**
 * @file
 * Reproduces paper Fig. 4 (local model analysis): task success rate and
 * end-to-end runtime with the GPT-4 API planner versus local Llama-3-8B
 * processing, across ten workloads. The expected shape: smaller local
 * models have faster per-inference latency but worse plans, so success
 * drops and total runtime rises (some workloads fail outright).
 */

#include <cstdio>

#include "bench_util.h"
#include "stats/table.h"

int
main()
{
    using namespace ebs;
    const int kSeeds = bench::seedCount(10);
    const auto difficulty = env::Difficulty::Medium;
    const char *systems[] = {"JARVIS-1", "DaDu-E", "MP5",   "DEPS",
                             "MindAgent", "OLA",   "CoELA", "COMBO",
                             "RoCo",      "DMAS"};

    std::printf("=== Fig. 4: GPT-4 API vs Llama-3-8B local planning "
                "(medium tasks, %d seeds) ===\n\n",
                kSeeds);
    stats::Table table({"workload", "backend", "success", "steps",
                        "runtime (min)"});

    for (const char *name : systems) {
        const auto &spec = workloads::workload(name);

        // GPT-4 configuration: force the planner/comm to the API model
        // even for systems that ship with local planners, matching the
        // paper's controlled comparison.
        core::AgentConfig gpt4 = spec.config;
        gpt4.planner_model = llm::ModelProfile::gpt4Api();
        gpt4.comm_model = llm::ModelProfile::gpt4Api();
        const auto api = bench::runAveraged(spec, gpt4, difficulty, kSeeds);

        core::AgentConfig local = spec.config;
        local.planner_model = llm::ModelProfile::llama3_8bLocal();
        local.comm_model = llm::ModelProfile::llama3_8bLocal();
        const auto llama =
            bench::runAveraged(spec, local, difficulty, kSeeds);

        table.addRow({spec.name, "GPT-4 API",
                      stats::Table::pct(api.success_rate, 0),
                      stats::Table::num(api.avg_steps, 0),
                      stats::Table::num(api.avg_runtime_min, 1)});
        table.addRow({spec.name, "Llama-3-8B",
                      llama.success_rate < 0.05
                          ? std::string("FAIL")
                          : stats::Table::pct(llama.success_rate, 0),
                      stats::Table::num(llama.avg_steps, 0),
                      stats::Table::num(llama.avg_runtime_min, 1)});
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape: the local 8B model reduces success rates\n"
                "and, despite faster per-inference time, needs more steps —\n"
                "raising end-to-end runtime (paper Takeaway 3).\n");
    return 0;
}
