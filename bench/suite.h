#ifndef EBS_BENCH_SUITE_H
#define EBS_BENCH_SUITE_H

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "llm/engine_service.h"
#include "obs/trace.h"
#include "runner/averaged.h"
#include "runner/episode_runner.h"
#include "sched/fleet_scheduler.h"
#include "stats/phase_wall.h"

/**
 * The in-process suite registry (PR 10). Every bench is a library
 * function `int fn(SuiteContext &)` registered under its binary name;
 * `run_all` runs the whole registry as one dependency-free TaskGraph on
 * a single FleetScheduler pool, and a thin generated wrapper
 * (suite_main.cpp) keeps each `bench_*` target runnable standalone.
 *
 * SuiteContext carries everything that used to be process-global when
 * suites were posix_spawn children:
 *
 *  - the **output sinks**: all stdout emission (tables, EBS_METRIC
 *    lines) goes through ctx.printf()/ctx.vprintf() and all stderr
 *    diagnostics (host timings, EBS_PHASE_WALL) through ctx.eprintf(),
 *    so a suite's captured log is byte-identical whether it runs
 *    in-process or spawned (the `suite-io` lint rule bans direct
 *    printf/stdout writes under bench/ to keep it that way);
 *  - **smoke mode** as a flag instead of the EBS_BENCH_SMOKE env read;
 *  - the **scheduler** episodes fan out on (one shared pool for the
 *    whole fleet in-process — stragglers absorb freed capacity);
 *  - a per-suite **LlmEngineService**, **PhaseWallClock**, and
 *    **Tracer**, substituted for the process-wide defaults when a
 *    variant/job left them at `::shared()`, so per-suite service
 *    summaries, phase-wall splits, and trace tracks survive the loss of
 *    process isolation bit-for-bit.
 */
namespace ebs::bench {

class SuiteContext
{
  public:
    struct Config
    {
        // EBS_LINT_ALLOW(suite-io): the sink defaults themselves
        std::FILE *out = stdout; ///< stdout sink (captured log)
        // EBS_LINT_ALLOW(suite-io): the sink defaults themselves
        std::FILE *err = stderr; ///< stderr sink (diagnostics log)
        bool smoke = false;      ///< single-seed CI mode
        /** Suite arguments (argv[1..] standalone; empty under run_all,
         * which never passes per-suite arguments — matching spawn). */
        std::vector<std::string> args;
        /** Pool episodes fan out on; nullptr = FleetScheduler::shared().
         * run_all passes its own budget-sized pool. */
        sched::FleetScheduler *scheduler = nullptr;
        /** Trace sink; nullptr = the context owns a private Tracer (the
         * in-process default). The standalone wrapper passes
         * &obs::Tracer::shared() so the EBS_TRACE_OUT atexit exporter
         * keeps working for the `--spawn` legacy path. */
        obs::Tracer *tracer = nullptr;
        /** In-flight episode cap of the context's runner; <= 0 selects
         * EpisodeRunner::defaultJobs() (EBS_JOBS). */
        int jobs = 0;
    };

    explicit SuiteContext(const Config &config);

    SuiteContext(const SuiteContext &) = delete;
    SuiteContext &operator=(const SuiteContext &) = delete;

    /** Smoke mode: run a single seed per variant (see seedCount). */
    bool smoke() const { return smoke_; }

    /** Requested seed count, clamped to 1 in smoke mode. */
    int seedCount(int requested) const { return smoke_ ? 1 : requested; }

    /** Suite arguments (never includes the program name). */
    const std::vector<std::string> &args() const { return args_; }

    /** The suite's stdout sink — every byte a spawned child would have
     * written to stdout goes here. */
    std::FILE *out() const { return out_; }

    /** The suite's stderr sink (host timings, EBS_PHASE_WALL). */
    std::FILE *err() const { return err_; }

    /** printf to the suite's stdout sink. */
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 2, 3)))
#endif
    // EBS_LINT_ALLOW(suite-io): the sink's own declaration
    void printf(const char *format, ...);

    /** printf to the suite's stderr sink. */
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 2, 3)))
#endif
    void eprintf(const char *format, ...);

    /** Write raw bytes to the suite's stdout sink (pre-rendered text,
     * e.g. Google Benchmark's console report). */
    void write(const std::string &text);

    /** The pool this suite's episodes fan out on (never null). */
    sched::FleetScheduler &scheduler() { return *scheduler_; }

    /** The suite's episode runner: bound to scheduler() and tracer(). */
    const runner::EpisodeRunner &runner() const { return runner_; }

    /** The suite's engine service — what LlmEngineService::shared() was
     * to a spawned child. Variants/jobs left at the shared default are
     * re-pointed here by the stamping runners below. */
    llm::LlmEngineService &engineService() { return service_; }

    /** The suite's phase-wall accumulator (see engineService()). */
    stats::PhaseWallClock &phaseWall() { return phase_wall_; }

    /** The suite's trace sink; run_all merges its chromeLines() into
     * BENCH_trace.json after the fleet completes. */
    obs::Tracer &tracer() { return *tracer_; }

    /**
     * Re-point a job's process-global defaults at this suite's
     * instances: an engine_service left at LlmEngineService::shared()
     * becomes engineService(), a phase_wall left at
     * PhaseWallClock::shared() becomes phaseWall(), and an unset tracer
     * becomes tracer(). Deliberately stamped fields (a bench's private
     * charged/queued service) pass through untouched.
     */
    runner::EpisodeJob stamped(runner::EpisodeJob job);

    /** See stamped(EpisodeJob) — the RunVariant equivalent. */
    runner::RunVariant stamped(runner::RunVariant variant);

    /** Stamp every variant and fan out through the suite's runner. */
    std::vector<RunStats>
    runAveragedMany(std::vector<runner::RunVariant> variants);

    /** Single-variant convenience over runAveragedMany(). */
    RunStats runAveraged(runner::RunVariant variant);

    /** Grid-free convenience: build the variant inline (the historical
     * bench_util runAveraged signature). */
    RunStats runAveraged(const workloads::WorkloadSpec &spec,
                         const core::AgentConfig &config,
                         env::Difficulty difficulty, int seeds,
                         int n_agents = -1,
                         const core::PipelineOptions &pipeline = {});

    /** Stamp every job and run the batch on the suite's runner. */
    std::vector<core::EpisodeResult>
    run(std::vector<runner::EpisodeJob> jobs);

    /** Stamp every job and run the batch on a caller-built runner (the
     * serial timing-measurement paths). */
    std::vector<core::EpisodeResult>
    run(const runner::EpisodeRunner &custom_runner,
        std::vector<runner::EpisodeJob> jobs);

    /** Emit one EBS_METRIC headline line (see bench_util.h history). */
    void emitMetric(const std::string &bench_case, const RunStats &r);

    /** Emit a single named scalar as an EBS_METRIC line. */
    void emitScalarMetric(const std::string &bench_case,
                          const std::string &name, double value);

    /** Emit the charged-batching metric pair; returns the saved
     * fraction for the suite's own table. */
    double emitChargedMetrics(const std::string &bench_case,
                              double sequential_s_per_step,
                              double charged_s_per_step);

    /** Emit the speculative-execute metric triple. */
    void emitSpeculativeMetrics(const std::string &bench_case,
                                const RunStats &r);

    /**
     * Report what this suite's engine service saw (call volume,
     * cross-agent batch occupancy). The printed label predates the
     * in-process registry — a spawned child's "shared" service saw
     * exactly one suite's traffic, which is exactly what engineService()
     * sees here, so the wording (and the bytes) are unchanged.
     */
    void emitSharedServiceSummary(const std::string &bench_case);

    /** Report the suite's compute/execute host wall-clock split to the
     * stderr sink as one EBS_PHASE_WALL line. */
    void emitPhaseWallSummary();

  private:
    std::FILE *out_;
    std::FILE *err_;
    bool smoke_;
    std::vector<std::string> args_;
    sched::FleetScheduler *scheduler_;
    obs::Tracer own_tracer_;
    obs::Tracer *tracer_;
    llm::LlmEngineService service_;
    stats::PhaseWallClock phase_wall_;
    runner::EpisodeRunner runner_;
};

/** A registered suite: its fn plus what --list-suites prints. The name
 * doubles as the standalone binary name (bench/<name> in the build
 * tree). */
struct SuiteInfo
{
    std::string name;
    std::string description;
    int (*fn)(SuiteContext &) = nullptr;
};

/**
 * The process-wide suite registry. Registration happens from static
 * initializers (EBS_BENCH_SUITE), so link order decides insertion
 * order; suites() sorts by name, matching the sorted directory scan the
 * spawn driver used.
 */
class SuiteRegistry
{
  public:
    static SuiteRegistry &instance();

    void add(SuiteInfo info);

    /** Every registered suite, sorted by name. */
    const std::vector<SuiteInfo> &suites() const;

    /** Exact-name lookup; nullptr when absent. */
    const SuiteInfo *find(const std::string &name) const;

  private:
    SuiteRegistry() = default;

    mutable std::vector<SuiteInfo> suites_;
    mutable bool sorted_ = false;
};

/** Registers one suite from a static initializer. */
struct SuiteRegistrar
{
    SuiteRegistrar(const char *name, const char *description,
                   int (*fn)(SuiteContext &));
};

/**
 * Register `fn` (an `int(SuiteContext &)`) under `name`. Use at
 * namespace scope, once per translation unit:
 *
 *     EBS_BENCH_SUITE("bench_fig2_latency", "Fig. 2 ...", suiteMain);
 */
#define EBS_BENCH_SUITE(name, description, fn)                             \
    static const ::ebs::bench::SuiteRegistrar kEbsSuiteRegistrar {         \
        (name), (description), (fn)                                       \
    }

} // namespace ebs::bench

#endif // EBS_BENCH_SUITE_H
