/**
 * @file
 * Reproduces paper Table II: the 14-system workload suite with the model
 * backing each building block (sensing, planning, communication, memory,
 * reflection, execution), the evaluated tasks, and the collaboration
 * paradigm — printed from the live workload registry.
 */

#include "stats/table.h"
#include "suite.h"
#include "workloads/workload.h"

namespace {

int
run(ebs::bench::SuiteContext &ctx)
{
    using namespace ebs;
    ctx.printf("=== Table II: embodied agent systems workload suite "
               "===\n\n");

    stats::Table table({"system", "sensing", "planning", "comm", "memory",
                        "reflection", "execution", "paradigm", "agents"});
    for (const auto &spec : workloads::suite()) {
        table.addRow({spec.name, spec.sensing_desc, spec.planning_desc,
                      spec.comm_desc, spec.memory_desc,
                      spec.reflection_desc, spec.execution_desc,
                      workloads::paradigmName(spec.paradigm),
                      std::to_string(spec.paradigm ==
                                             workloads::Paradigm::
                                                 SingleModular
                                         ? 1
                                         : spec.default_agents)});
    }
    ctx.printf("%s\n", table.render().c_str());

    stats::Table tasks({"system", "environment", "datasets and tasks"});
    for (const auto &spec : workloads::suite())
        tasks.addRow({spec.name, spec.env_name, spec.tasks_desc});
    ctx.printf("%s", tasks.render().c_str());
    return 0;
}

} // namespace

EBS_BENCH_SUITE("bench_table2_suite",
                "Table II: the 14-system workload suite from the live "
                "registry",
                run);
