#include "fleet_plan.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

namespace ebs::bench {

std::map<std::string, double>
readTimelineDurations(const std::string &path)
{
    std::map<std::string, double> durations;
    std::ifstream in(path);
    if (!in)
        return durations;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    static const std::string kName = "\"name\": \"";
    static const std::string kWall = "\"wall_seconds\": ";
    std::size_t pos = 0;
    while ((pos = text.find(kName, pos)) != std::string::npos) {
        pos += kName.size();
        const std::size_t name_end = text.find('"', pos);
        if (name_end == std::string::npos)
            break;
        const std::string name = text.substr(pos, name_end - pos);
        const std::size_t wall_at = text.find(kWall, name_end);
        const std::size_t next_name = text.find(kName, name_end);
        // The wall_seconds must belong to this entry, not a later one.
        if (wall_at == std::string::npos ||
            (next_name != std::string::npos && wall_at > next_name)) {
            pos = name_end;
            continue;
        }
        // Skip entries whose wall_seconds doesn't parse as a clean
        // number (strtod consuming nothing, or a non-JSON tail): a
        // corrupt timeline entry should fall back to "unknown duration"
        // rather than feed garbage into the schedule.
        const char *wall_start = text.c_str() + wall_at + kWall.size();
        char *wall_end = nullptr;
        const double wall = std::strtod(wall_start, &wall_end);
        const bool clean_tail =
            wall_end != wall_start &&
            (*wall_end == ',' || *wall_end == '}' || *wall_end == '\n' ||
             *wall_end == '\r' || *wall_end == ' ' || *wall_end == '\0');
        if (clean_tail && wall > 0.0)
            durations[name] = wall;
        pos = name_end;
    }
    return durations;
}

std::vector<std::size_t>
scheduleOrder(const std::vector<std::string> &names,
              const std::map<std::string, double> &durations)
{
    std::vector<std::size_t> order(names.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    if (durations.empty())
        return order;
    const auto duration_of = [&](std::size_t i) {
        const auto it = durations.find(names[i]);
        return it == durations.end()
                   ? std::numeric_limits<double>::infinity()
                   : it->second;
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return duration_of(a) > duration_of(b);
                     });
    return order;
}

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t begin = 0;
    while (begin <= list.size()) {
        const std::size_t comma = list.find(',', begin);
        const std::size_t end =
            comma == std::string::npos ? list.size() : comma;
        if (end > begin)
            out.push_back(list.substr(begin, end - begin));
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    return out;
}

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    // Single-row Levenshtein: row[j] holds the distance between the
    // first i characters of `a` and the first j of `b`.
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diagonal = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t substitute =
                diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
            diagonal = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitute});
        }
    }
    return row[b.size()];
}

std::vector<std::string>
nearMissCandidates(const std::string &entry,
                   const std::vector<std::string> &names,
                   std::size_t limit)
{
    static const std::string kPrefix = "bench_";
    const std::size_t budget =
        std::max<std::size_t>(2, entry.size() / 3);

    struct Scored
    {
        std::size_t distance;
        std::size_t position; ///< list order tie-break
    };
    std::vector<std::pair<Scored, std::string>> scored;
    for (std::size_t i = 0; i < names.size(); ++i) {
        std::size_t distance = editDistance(entry, names[i]);
        if (names[i].rfind(kPrefix, 0) == 0)
            distance = std::min(
                distance,
                editDistance(entry, names[i].substr(kPrefix.size())));
        if (distance <= budget)
            scored.push_back({{distance, i}, names[i]});
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto &a, const auto &b) {
                  if (a.first.distance != b.first.distance)
                      return a.first.distance < b.first.distance;
                  return a.first.position < b.first.position;
              });
    std::vector<std::string> out;
    for (const auto &[score, name] : scored) {
        if (out.size() >= limit)
            break;
        out.push_back(name);
    }
    return out;
}

SuiteResolution
resolveSuite(const std::string &entry,
             const std::vector<std::string> &names)
{
    SuiteResolution resolution;
    std::vector<std::size_t> substring_hits;
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (names[i] == entry || names[i] == "bench_" + entry) {
            resolution.index = i;
            return resolution;
        }
        if (names[i].find(entry) != std::string::npos)
            substring_hits.push_back(i);
    }
    if (substring_hits.size() == 1) {
        resolution.index = substring_hits[0];
        return resolution;
    }
    if (!substring_hits.empty()) {
        resolution.ambiguous = true;
        for (const std::size_t i : substring_hits)
            resolution.candidates.push_back(names[i]);
        return resolution;
    }
    resolution.candidates = nearMissCandidates(entry, names);
    return resolution;
}

} // namespace ebs::bench
