#include <cstdio>

#include "obs/trace.h"
#include "suite.h"

/**
 * Thin standalone wrapper: each `bench_*` CMake target compiles this TU
 * with -DEBS_SUITE_NAME="<suite name>" and links the suite library, so
 * every registered suite stays runnable as its own binary (and as a
 * `run_all --spawn` child). The wrapper rebuilds the process-global
 * environment a SuiteContext abstracts: real stdout/stderr as the
 * sinks, EBS_BENCH_SMOKE for smoke mode, FleetScheduler::shared() as
 * the pool, and obs::Tracer::shared() so the EBS_TRACE_OUT atexit
 * exporter keeps working for spawned children.
 */
int
main(int argc, char **argv)
{
    using ebs::bench::SuiteContext;
    using ebs::bench::SuiteInfo;
    using ebs::bench::SuiteRegistry;

    const SuiteInfo *suite = SuiteRegistry::instance().find(EBS_SUITE_NAME);
    if (suite == nullptr) {
        // EBS_LINT_ALLOW(suite-io): wrapper failure before any sink exists
        std::fprintf(stderr, "%s: suite \"%s\" is not registered\n",
                     argv[0], EBS_SUITE_NAME);
        return 2;
    }

    SuiteContext::Config config;
    // EBS_LINT_ALLOW(suite-io): the wrapper binds the real process streams
    config.out = stdout;
    // EBS_LINT_ALLOW(suite-io): the wrapper binds the real process streams
    config.err = stderr;
    config.smoke = ebs::bench::smokeMode();
    config.tracer = &ebs::obs::Tracer::shared();
    for (int i = 1; i < argc; ++i)
        config.args.emplace_back(argv[i]);

    SuiteContext context(config);
    return suite->fn(context);
}
