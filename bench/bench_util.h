#ifndef EBS_BENCH_BENCH_UTIL_H
#define EBS_BENCH_BENCH_UTIL_H

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "workloads/workload.h"

namespace ebs::bench {

/**
 * Smoke mode (EBS_BENCH_SMOKE=1 in the environment, set by
 * `run_all --smoke`): run every suite with a single seed so the whole
 * fleet finishes in CI-friendly time. A falsy value ("", "0", "false",
 * "off", "no") leaves smoke mode disabled.
 */
inline bool
smokeMode()
{
    static const bool on = [] {
        const char *v = std::getenv("EBS_BENCH_SMOKE");
        if (!v)
            return false;
        std::string s(v);
        for (char &c : s)
            c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        return !(s.empty() || s == "0" || s == "false" || s == "off" ||
                 s == "no");
    }();
    return on;
}

/**
 * Seed count a suite should use: the requested count, clamped to 1 in
 * smoke mode. Suites must derive their seed constant through this (and
 * normalize by the returned value) so the clamp stays visible to any
 * per-seed arithmetic and printed headers.
 */
inline int
seedCount(int requested)
{
    return smokeMode() ? 1 : requested;
}

/** Averaged episode metrics over several seeds. */
struct RunStats
{
    double success_rate = 0.0;
    double avg_steps = 0.0;
    double avg_runtime_min = 0.0;
    double avg_step_latency_s = 0.0;
    stats::LatencyRecorder latency; ///< merged across episodes
    double msgs_generated = 0.0;
    double msgs_useful = 0.0;
    long long llm_calls = 0;
    long long tokens = 0;
};

/** Run a workload variant over `seeds` seeds and average the results. */
inline RunStats
runAveraged(const workloads::WorkloadSpec &spec,
            const core::AgentConfig &config, env::Difficulty difficulty,
            int seeds, int n_agents = -1,
            const core::PipelineOptions &pipeline = {})
{
    RunStats out;
    for (int seed = 1; seed <= seeds; ++seed) {
        core::EpisodeOptions options;
        options.seed = 1000ULL + static_cast<std::uint64_t>(seed) * 7919ULL;
        options.pipeline = pipeline;
        const auto r =
            spec.runWithConfig(config, difficulty, options, n_agents);
        out.success_rate += r.success;
        out.avg_steps += r.steps;
        out.avg_runtime_min += r.sim_seconds / 60.0;
        out.avg_step_latency_s += r.secondsPerStep();
        out.latency.merge(r.latency);
        out.msgs_generated += r.messages_generated;
        out.msgs_useful += r.messages_useful;
        out.llm_calls += static_cast<long long>(r.llm.calls);
        out.tokens += r.llm.tokens_in + r.llm.tokens_out;
    }
    out.success_rate /= seeds;
    out.avg_steps /= seeds;
    out.avg_runtime_min /= seeds;
    out.avg_step_latency_s /= seeds;
    out.msgs_generated /= seeds;
    out.msgs_useful /= seeds;
    return out;
}

} // namespace ebs::bench

#endif // EBS_BENCH_BENCH_UTIL_H
