#ifndef EBS_BENCH_BENCH_UTIL_H
#define EBS_BENCH_BENCH_UTIL_H

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "runner/run_stats.h"
#include "stats/host_clock.h"

/**
 * Pure bench helpers: formatting, host timing, and the smoke-mode env
 * parse. Everything that *emits* suite output (EBS_METRIC lines,
 * tables, EBS_PHASE_WALL) lives on bench::SuiteContext (suite.h) so all
 * suite I/O flows through the per-suite sinks — the `suite-io` lint
 * rule bans direct stream writes under bench/ to keep it that way.
 */
namespace ebs::bench {

/** Averaged episode metrics (promoted into the library in PR 2). */
using runner::RunStats;

/**
 * Smoke mode from the environment (EBS_BENCH_SMOKE=1, set for children
 * of `run_all --spawn --smoke`): run every suite with a single seed so
 * the whole fleet finishes in CI-friendly time. A falsy value ("", "0",
 * "false", "off", "no") leaves smoke mode disabled. The in-process
 * fleet never reads this — run_all passes smoke through SuiteContext;
 * only the standalone wrapper (suite_main.cpp) consults the env.
 */
inline bool
smokeMode()
{
    static const bool on = [] {
        const char *v = std::getenv("EBS_BENCH_SMOKE");
        if (!v)
            return false;
        std::string s(v);
        for (char &c : s)
            c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        return !(s.empty() || s == "0" || s == "false" || s == "off" ||
                 s == "no");
    }();
    return on;
}

/**
 * Host (not simulated) wall-clock of `fn`, in seconds. Suites print
 * these to the *stderr sink* as scheduling diagnostics — e.g. the real
 * speedup of `parallel_agents` episodes fanning per-agent phases onto
 * the fleet scheduler. Host timings depend on EBS_JOBS and machine
 * load, so they must never reach the stdout sink, which stays
 * byte-identical across worker counts (EBS_METRIC lines feed the
 * regression gate). Reads the host clock only through stats::hostNow(),
 * the repo's single lint-sanctioned host-timing site.
 */
template <typename Fn>
inline double
hostSeconds(Fn &&fn)
{
    const double start = stats::hostNow();
    fn();
    return stats::hostNow() - start;
}

/** Format a double as a JSON number; non-finite values become null so a
 * stray NaN/Inf metric cannot corrupt BENCH_results.json. */
inline std::string
jsonNum(double v, int precision)
{
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

/** Escape a string for embedding in a JSON string literal. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20)
            out += ' ';
        else
            out += c;
    }
    return out;
}

/**
 * Fraction of sequential step latency saved by the charged-batching
 * ablation (`batch_llm_calls`), from the two runs' s/step. Sub-epsilon
 * ratios are float noise from the reassociated clock sums, not a real
 * (anti-)saving, and are reported as exactly zero — the single
 * definition behind every suite's `batch_charge_saved_pct`.
 */
inline double
chargedSavedFraction(double sequential_s_per_step,
                     double charged_s_per_step)
{
    if (sequential_s_per_step <= 0.0)
        return 0.0;
    const double saved = 1.0 - charged_s_per_step / sequential_s_per_step;
    return std::abs(saved) < 1e-9 ? 0.0 : saved;
}

} // namespace ebs::bench

#endif // EBS_BENCH_BENCH_UTIL_H
