#ifndef EBS_BENCH_BENCH_UTIL_H
#define EBS_BENCH_BENCH_UTIL_H

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "llm/engine_service.h"
#include "stats/host_clock.h"
#include "stats/phase_wall.h"
#include "runner/averaged.h"
#include "runner/episode_runner.h"
#include "runner/run_stats.h"
#include "workloads/workload.h"

namespace ebs::bench {

/** Averaged episode metrics (promoted into the library in PR 2). */
using runner::RunStats;

/**
 * Smoke mode (EBS_BENCH_SMOKE=1 in the environment, set by
 * `run_all --smoke`): run every suite with a single seed so the whole
 * fleet finishes in CI-friendly time. A falsy value ("", "0", "false",
 * "off", "no") leaves smoke mode disabled.
 */
inline bool
smokeMode()
{
    static const bool on = [] {
        const char *v = std::getenv("EBS_BENCH_SMOKE");
        if (!v)
            return false;
        std::string s(v);
        for (char &c : s)
            c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        return !(s.empty() || s == "0" || s == "false" || s == "off" ||
                 s == "no");
    }();
    return on;
}

/**
 * Seed count a suite should use: the requested count, clamped to 1 in
 * smoke mode. Suites must derive their seed constant through this (and
 * normalize by the returned value) so the clamp stays visible to any
 * per-seed arithmetic and printed headers.
 */
inline int
seedCount(int requested)
{
    return smokeMode() ? 1 : requested;
}

/**
 * Run a workload variant over `seeds` seeds and average the results,
 * fanning the episodes across the shared EpisodeRunner (EBS_JOBS
 * threads). Benches with a parameter grid should build RunVariant lists
 * and call runner::runAveragedMany directly so the whole grid shares one
 * fan-out.
 */
inline RunStats
runAveraged(const workloads::WorkloadSpec &spec,
            const core::AgentConfig &config, env::Difficulty difficulty,
            int seeds, int n_agents = -1,
            const core::PipelineOptions &pipeline = {})
{
    runner::RunVariant variant;
    variant.workload = &spec;
    variant.config = config;
    variant.difficulty = difficulty;
    variant.seeds = seeds;
    variant.n_agents = n_agents;
    variant.pipeline = pipeline;
    return runner::runAveraged(runner::EpisodeRunner::shared(), variant);
}

/**
 * Host (not simulated) wall-clock of `fn`, in seconds. Suites print
 * these to *stderr* as scheduling diagnostics — e.g. the real speedup of
 * `parallel_agents` episodes fanning per-agent phases onto the fleet
 * scheduler. Host timings depend on EBS_JOBS and machine load, so they
 * must never reach stdout, which stays byte-identical across worker
 * counts (EBS_METRIC lines feed the regression gate). Reads the host
 * clock only through stats::hostNow(), the repo's single lint-sanctioned
 * host-timing site.
 */
template <typename Fn>
inline double
hostSeconds(Fn &&fn)
{
    const double start = stats::hostNow();
    fn();
    return stats::hostNow() - start;
}

/** Format a double as a JSON number; non-finite values become null so a
 * stray NaN/Inf metric cannot corrupt BENCH_results.json. */
inline std::string
jsonNum(double v, int precision)
{
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

/** Escape a string for embedding in a JSON string literal. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20)
            out += ' ';
        else
            out += c;
    }
    return out;
}

/**
 * Emit one machine-readable headline-metrics line for a measured case.
 *
 * `run_all` greps the captured stdout of every suite for "EBS_METRIC "
 * prefixed JSON objects and folds them into BENCH_results.json, giving
 * successive PRs a paper-metric trajectory (success rate, s/step, token
 * volume) alongside the runtime counters.
 */
inline void
emitMetric(const std::string &bench_case, const RunStats &r)
{
    std::printf("EBS_METRIC {\"case\":\"%s\",\"episodes\":%d,"
                "\"success_rate\":%s,\"avg_steps\":%s,"
                "\"s_per_step\":%s,\"runtime_min\":%s,"
                "\"llm_calls_per_episode\":%s,"
                "\"tokens_per_episode\":%s}\n",
                jsonEscape(bench_case).c_str(), r.episodes,
                jsonNum(r.success_rate, 4).c_str(),
                jsonNum(r.avg_steps, 2).c_str(),
                jsonNum(r.avg_step_latency_s, 3).c_str(),
                jsonNum(r.avg_runtime_min, 3).c_str(),
                jsonNum(r.llmCallsPerEpisode(), 1).c_str(),
                jsonNum(r.tokensPerEpisode(), 0).c_str());
}

/** Emit a single named scalar as an EBS_METRIC line. */
inline void
emitScalarMetric(const std::string &bench_case, const std::string &name,
                 double value)
{
    std::printf("EBS_METRIC {\"case\":\"%s\",\"%s\":%s}\n",
                jsonEscape(bench_case).c_str(), jsonEscape(name).c_str(),
                jsonNum(value, 6).c_str());
}

/**
 * Fraction of sequential step latency saved by the charged-batching
 * ablation (`batch_llm_calls`), from the two runs' s/step. Sub-epsilon
 * ratios are float noise from the reassociated clock sums, not a real
 * (anti-)saving, and are reported as exactly zero — the single
 * definition behind every suite's `batch_charge_saved_pct`.
 */
inline double
chargedSavedFraction(double sequential_s_per_step,
                     double charged_s_per_step)
{
    if (sequential_s_per_step <= 0.0)
        return 0.0;
    const double saved = 1.0 - charged_s_per_step / sequential_s_per_step;
    return std::abs(saved) < 1e-9 ? 0.0 : saved;
}

/**
 * Emit the charged-batching metric pair for one case — the charged
 * s/step (`batched_s_per_step`) and its saving versus the sequential
 * run (`batch_charge_saved_pct`), both gated by metricDirection() —
 * and return the saved fraction for the suite's own table. One
 * definition, so every suite reports the ablation identically.
 */
inline double
emitChargedMetrics(const std::string &bench_case,
                   double sequential_s_per_step,
                   double charged_s_per_step)
{
    const double saved =
        chargedSavedFraction(sequential_s_per_step, charged_s_per_step);
    emitScalarMetric(bench_case, "batched_s_per_step",
                     charged_s_per_step);
    emitScalarMetric(bench_case, "batch_charge_saved_pct", 100.0 * saved);
    return saved;
}

/**
 * Report what the process-wide engine service saw over this suite: every
 * episode's LLM traffic routes through LlmEngineService::shared() by
 * default, so after the suite's fan-outs this is a fleet-level view of
 * call volume and cross-agent batch occupancy.
 *
 * Only worker-order-independent values are printed (integer tallies and
 * their ratio): the service's float latency sums accumulate in
 * completion order under the mutex, so printing them would break the
 * byte-identical-stdout-across-EBS_JOBS contract. Modeled latency
 * savings are reported by bench_engine_service from deterministic
 * per-episode folds instead.
 */
inline void
emitSharedServiceSummary(const std::string &bench_case)
{
    auto &service = llm::LlmEngineService::shared();
    const auto usage = service.totalUsage();
    const auto stats = service.stats();
    std::printf("shared engine service: %zu calls, %lld batches "
                "(%lld cross-agent), occupancy %.2f\n",
                usage.calls, stats.batches, stats.cross_agent_batches,
                stats.occupancy());
    emitScalarMetric(bench_case, "batch_occupancy", stats.occupancy());
}

/**
 * Emit the speculative-execute metric triple for one case: the modeled
 * execute-phase speedup (serial latency sum over the speculative
 * critical path), the conflict rate among speculated turns, and the
 * fraction of turns that ended up on the serial lane. All three derive
 * from deterministic read/write-set arithmetic, so they are stdout-safe
 * and gated by metricDirection() (speedup higher-is-better, the other
 * two lower-is-better).
 */
inline void
emitSpeculativeMetrics(const std::string &bench_case, const RunStats &r)
{
    emitScalarMetric(bench_case, "spec_exec_speedup", r.specExecSpeedup());
    emitScalarMetric(bench_case, "spec_conflict_rate",
                     r.specConflictRate());
    emitScalarMetric(bench_case, "spec_reexec_fraction",
                     r.specReexecFraction());
}

/**
 * Report the process-wide compute/execute host wall-clock split to
 * *stderr* as one `EBS_PHASE_WALL {json}` line. run_all scans each
 * suite's captured log for the last such line and folds the split into
 * the straggler summary and BENCH_timeline.json, making the execute-phase
 * win (or loss) of speculation visible per suite. Host time varies with
 * EBS_JOBS and machine load, so this must never reach stdout.
 */
inline void
emitPhaseWallSummary()
{
    const auto wall = stats::PhaseWallClock::shared().snapshot();
    std::fprintf(stderr,
                 "EBS_PHASE_WALL {\"compute_s\":%s,\"execute_s\":%s,"
                 "\"episodes\":%lld}\n",
                 jsonNum(wall.compute_s, 3).c_str(),
                 jsonNum(wall.execute_s, 3).c_str(), wall.episodes);
}

} // namespace ebs::bench

#endif // EBS_BENCH_BENCH_UTIL_H
