/**
 * @file
 * Tolerance-based paper-metric diff between two BENCH_results.json files
 * (the ROADMAP's trajectory guard): compares every (suite, case, metric)
 * the old file carries against the new one and fails loudly when a
 * directional metric — success rate down, s/step up, token volume up —
 * worsens beyond both tolerances. Simulated metrics are deterministic per
 * seed, so a committed baseline makes CI catch paper-metric regressions,
 * not just runtime ones.
 *
 * Usage:
 *   diff_metrics OLD.json NEW.json [--abs-tol X] [--rel-tol Y]
 *                [--fail-on-missing] [--fail-on-improvement] [--quiet]
 *
 * Exit codes: 0 within tolerance, 1 regressions (or missing cases /
 * missing per-case metric keys with --fail-on-missing, or
 * out-of-tolerance improvements with --fail-on-improvement), 2
 * usage/IO/parse errors — including a comparison that covers zero
 * metrics, which would otherwise pass vacuously on a corrupted or
 * empty baseline.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "stats/metric_diff.h"

namespace {

bool
readFile(const char *path, std::string *out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    *out = buffer.str();
    return true;
}

bool
parseDouble(const char *text, double *out)
{
    char *end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0')
        return false;
    *out = v;
    return true;
}

void
printDelta(const char *tag, const ebs::stats::MetricDelta &delta)
{
    std::printf("  %s %s / %s : %s %.4f -> %.4f (%+.4f)\n", tag,
                delta.suite.c_str(), delta.case_name.c_str(),
                delta.key.c_str(), delta.old_value, delta.new_value,
                delta.new_value - delta.old_value);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *old_path = nullptr;
    const char *new_path = nullptr;
    ebs::stats::DiffOptions options;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--abs-tol") == 0 && i + 1 < argc) {
            if (!parseDouble(argv[++i], &options.abs_tol)) {
                std::fprintf(stderr,
                             "diff_metrics: bad --abs-tol '%s'\n", argv[i]);
                return 2;
            }
        } else if (std::strcmp(arg, "--rel-tol") == 0 && i + 1 < argc) {
            if (!parseDouble(argv[++i], &options.rel_tol)) {
                std::fprintf(stderr,
                             "diff_metrics: bad --rel-tol '%s'\n", argv[i]);
                return 2;
            }
        } else if (std::strcmp(arg, "--fail-on-missing") == 0) {
            options.fail_on_missing = true;
        } else if (std::strcmp(arg, "--fail-on-improvement") == 0) {
            options.fail_on_improvement = true;
        } else if (std::strcmp(arg, "--quiet") == 0) {
            quiet = true;
        } else if (arg[0] == '-') {
            std::fprintf(stderr,
                         "usage: diff_metrics OLD.json NEW.json "
                         "[--abs-tol X] [--rel-tol Y] [--fail-on-missing] "
                         "[--fail-on-improvement] [--quiet]\n");
            return std::strcmp(arg, "--help") == 0 ||
                           std::strcmp(arg, "-h") == 0
                       ? 0
                       : 2;
        } else if (old_path == nullptr) {
            old_path = arg;
        } else if (new_path == nullptr) {
            new_path = arg;
        } else {
            std::fprintf(stderr, "diff_metrics: unexpected argument '%s'\n",
                         arg);
            return 2;
        }
    }
    if (old_path == nullptr || new_path == nullptr) {
        std::fprintf(stderr,
                     "diff_metrics: need OLD.json and NEW.json paths\n");
        return 2;
    }

    std::string old_text;
    std::string new_text;
    if (!readFile(old_path, &old_text)) {
        std::fprintf(stderr, "diff_metrics: cannot read %s\n", old_path);
        return 2;
    }
    if (!readFile(new_path, &new_text)) {
        std::fprintf(stderr, "diff_metrics: cannot read %s\n", new_path);
        return 2;
    }

    std::string error;
    const auto old_entries =
        ebs::stats::parseBenchResults(old_text, &error);
    if (!error.empty()) {
        std::fprintf(stderr, "diff_metrics: %s: %s\n", old_path,
                     error.c_str());
        return 2;
    }
    const auto new_entries =
        ebs::stats::parseBenchResults(new_text, &error);
    if (!error.empty()) {
        std::fprintf(stderr, "diff_metrics: %s: %s\n", new_path,
                     error.c_str());
        return 2;
    }

    const auto report =
        ebs::stats::diffMetrics(old_entries, new_entries, options);

    if (report.compared_values == 0) {
        // A gate that compared nothing proves nothing: an empty or
        // structurally mismatched baseline must not read as a pass.
        std::fprintf(stderr,
                     "diff_metrics: no overlapping metric values between "
                     "%s and %s — empty or mismatched baseline?\n",
                     old_path, new_path);
        return 2;
    }

    if (!quiet) {
        std::printf("diff_metrics: %d metric values compared "
                    "(abs tol %.3g, rel tol %.3g)\n",
                    report.compared_values, options.abs_tol,
                    options.rel_tol);
        for (const auto &delta : report.regressions)
            printDelta("REGRESSION", delta);
        for (const auto &delta : report.improvements)
            printDelta("improvement", delta);
        for (const auto &name : report.missing_cases)
            std::printf("  missing in new: %s\n", name.c_str());
        for (const auto &name : report.missing_metrics)
            std::printf("  missing metric in new: %s\n", name.c_str());
        for (const auto &name : report.new_cases)
            std::printf("  new-only case: %s\n", name.c_str());
    }

    if (!report.ok) {
        std::printf("diff_metrics: FAIL (%zu regressions, "
                    "%zu improvements, %zu missing)\n",
                    report.regressions.size(), report.improvements.size(),
                    report.missing_cases.size() +
                        report.missing_metrics.size());
        return 1;
    }
    std::printf("diff_metrics: OK (%zu improvements, %zu new cases)\n",
                report.improvements.size(), report.new_cases.size());
    return 0;
}
