/**
 * @file
 * Ablation bench for the paper's optimization recommendations (Sec. IV-VI
 * and the Discussion):
 *
 *   Rec. 1  — efficient LLM deployment: AWQ-style quantization and
 *             batched inference
 *   Rec. 4  — multiple-choice planning for small local models
 *   Rec. 5  — dual (long/short-term) memory structure
 *   Rec. 6  — context-aware prompt compression
 *   Rec. 7  — planning-guided multi-step execution
 *   Rec. 8  — planning-then-communication
 *   Rec. 9  — hierarchical clustering (approximated via parallel
 *             pipelines + compression at high agent counts)
 *
 * Each row reports success, steps, and runtime against the baseline.
 */

#include <cstdio>

#include <tuple>

#include "bench_util.h"
#include "envs/transport_env.h"
#include "llm/engine.h"
#include "stats/table.h"

int
main()
{
    using namespace ebs;
    const int kSeeds = bench::seedCount(10);
    const auto difficulty = env::Difficulty::Medium;

    // ----- Local-model optimizations on DaDu-E (Llama-8B planner) -----
    {
        const auto &spec = workloads::workload("DaDu-E");
        std::printf("=== Local-model optimizations (DaDu-E, Llama-8B) "
                    "===\n\n");
        stats::Table table({"variant", "success", "steps",
                            "runtime (min)"});
        auto add = [&](const char *label, const bench::RunStats &r) {
            table.addRow({label, stats::Table::pct(r.success_rate, 0),
                          stats::Table::num(r.avg_steps, 1),
                          stats::Table::num(r.avg_runtime_min, 1)});
        };

        add("baseline (multiple-choice planning, Rec. 4)",
            bench::runAveraged(spec, spec.config, difficulty, kSeeds));

        // Without Rec. 4: raw free-form Llama-8B planning.
        core::AgentConfig raw = spec.config;
        raw.planner_model = llm::ModelProfile::llama3_8bLocal();
        add("raw Llama-8B (no multiple-choice prompting)",
            bench::runAveraged(spec, raw, difficulty, kSeeds));

        // Rec. 4: LoRA fine-tuning the raw local model on the task.
        core::AgentConfig lora = spec.config;
        lora.planner_model = llm::ModelProfile::loraTuned(
            llm::ModelProfile::llama3_8bLocal(), 0.5);
        add("LoRA-tuned Llama-8B (Rec. 4)",
            bench::runAveraged(spec, lora, difficulty, kSeeds));

        // Rec. 1: AWQ 4-bit quantization of the planner.
        core::AgentConfig quant = spec.config;
        quant.planner_model =
            llm::ModelProfile::quantized(spec.config.planner_model);
        quant.reflect_model =
            llm::ModelProfile::quantized(spec.config.reflect_model);
        add("AWQ-4bit quantized models (Rec. 1)",
            bench::runAveraged(spec, quant, difficulty, kSeeds));

        std::printf("%s\n", table.render().c_str());
    }

    // ----- Batched inference (Rec. 1) microcomparison -----
    {
        std::printf("=== Batched inference (Rec. 1) ===\n\n");
        llm::LlmEngine seq(llm::ModelProfile::gpt4Api(), sim::Rng(1));
        llm::LlmEngine bat(llm::ModelProfile::gpt4Api(), sim::Rng(1));
        stats::Table table({"batch size", "sequential (s)", "batched (s)",
                            "speedup"});
        for (const int k : {2, 4, 8}) {
            std::vector<llm::LlmRequest> requests(
                static_cast<std::size_t>(k));
            for (auto &r : requests) {
                r.tokens_in = 900;
                r.tokens_out_mean = 90;
            }
            double sequential = 0.0;
            for (const auto &r : requests)
                sequential += seq.complete(r).latency_s;
            const double batched =
                bat.completeBatch(requests).front().latency_s;
            table.addRow({std::to_string(k),
                          stats::Table::num(sequential, 1),
                          stats::Table::num(batched, 1),
                          stats::Table::num(sequential / batched, 2) + "x"});
        }
        std::printf("%s\n", table.render().c_str());
    }

    // ----- Memory and prompt optimizations on CoELA -----
    {
        const auto &spec = workloads::workload("CoELA");
        std::printf("=== Memory & prompt optimizations (CoELA) ===\n\n");
        stats::Table table({"variant", "success", "steps", "s/step",
                            "runtime (min)"});
        auto add = [&](const char *label, const bench::RunStats &r) {
            table.addRow({label, stats::Table::pct(r.success_rate, 0),
                          stats::Table::num(r.avg_steps, 1),
                          stats::Table::num(r.avg_step_latency_s, 1),
                          stats::Table::num(r.avg_runtime_min, 1)});
        };

        add("baseline",
            bench::runAveraged(spec, spec.config, difficulty, kSeeds));

        // Rec. 5: dual memory.
        core::AgentConfig dual = spec.config;
        dual.memory.dual_memory = true;
        add("dual long/short-term memory (Rec. 5)",
            bench::runAveraged(spec, dual, difficulty, kSeeds));

        // Rec. 6: context compression to 40%.
        core::PipelineOptions compressed;
        compressed.context_compression = 0.4;
        add("context compression 0.4 (Rec. 6)",
            bench::runAveraged(spec, spec.config, difficulty, kSeeds, -1,
                               compressed));

        std::printf("%s\n", table.render().c_str());
    }

    // ----- Scalability optimizations at 8 agents (Recs. 8/6 + 9) -----
    {
        const auto &spec = workloads::workload("CoELA");
        std::printf("=== Scalability optimizations (CoELA config, "
                    "8 agents, transport medium) ===\n\n");
        stats::Table table({"variant", "success", "latency (min)",
                            "LLM calls"});
        auto add = [&](const char *label, double ok, double minutes,
                       double calls) {
            table.addRow({label, stats::Table::pct(ok, 0),
                          stats::Table::num(minutes, 1),
                          stats::Table::num(calls, 0)});
        };

        auto run_paradigm = [&](auto &&runner) {
            double ok = 0, minutes = 0, calls = 0;
            for (int seed = 1; seed <= kSeeds; ++seed) {
                core::EpisodeOptions options;
                options.seed = 1000ULL + seed * 7919ULL;
                sim::Rng env_rng = sim::Rng(options.seed).fork(7);
                envs::TransportEnv environment(difficulty, 8, env_rng);
                const auto r = runner(environment, options);
                ok += r.success;
                minutes += r.sim_seconds / 60.0;
                calls += static_cast<double>(r.llm.calls);
            }
            return std::tuple{ok / kSeeds, minutes / kSeeds,
                              calls / kSeeds};
        };

        {
            const auto [ok, minutes, calls] = run_paradigm(
                [&](env::Environment &environment,
                    const core::EpisodeOptions &options) {
                    return core::runDecentralized(environment, spec.config,
                                                  options);
                });
            add("decentralized baseline", ok, minutes, calls);
        }
        {
            const auto [ok, minutes, calls] = run_paradigm(
                [&](env::Environment &environment,
                    const core::EpisodeOptions &options) {
                    core::EpisodeOptions opt = options;
                    opt.pipeline.comm_on_demand = true;
                    opt.pipeline.context_compression = 0.5;
                    return core::runDecentralized(environment, spec.config,
                                                  opt);
                });
            add("on-demand comm + compression (Recs. 8/6)", ok, minutes,
                calls);
        }
        {
            const auto [ok, minutes, calls] = run_paradigm(
                [&](env::Environment &environment,
                    const core::EpisodeOptions &options) {
                    return core::runHierarchical(environment, spec.config,
                                                 options,
                                                 /*cluster_size=*/3);
                });
            add("hierarchical clusters of 3 (Rec. 9)", ok, minutes, calls);
        }
        std::printf("%s\n", table.render().c_str());
        std::printf(
            "Rec. 9's hierarchical paradigm bounds joint-plan complexity\n"
            "by the cluster size and cross-cluster dialogue by the number\n"
            "of clusters, cutting both LLM calls and latency at scale.\n");
    }

    return 0;
}
