/**
 * @file
 * Ablation bench for the paper's optimization recommendations (Sec. IV-VI
 * and the Discussion):
 *
 *   Rec. 1  — efficient LLM deployment: AWQ-style quantization and
 *             batched inference
 *   Rec. 4  — multiple-choice planning for small local models
 *   Rec. 5  — dual (long/short-term) memory structure
 *   Rec. 6  — context-aware prompt compression
 *   Rec. 7  — planning-guided multi-step execution
 *   Rec. 8  — planning-then-communication
 *   Rec. 9  — hierarchical clustering (approximated via parallel
 *             pipelines + compression at high agent counts)
 *
 * Each row reports success, steps, and runtime against the baseline.
 */

#include <vector>

#include "envs/transport_env.h"
#include "llm/engine.h"
#include "stats/table.h"
#include "suite.h"

namespace {

int
run(ebs::bench::SuiteContext &ctx)
{
    using namespace ebs;
    const int kSeeds = ctx.seedCount(20);
    const auto difficulty = env::Difficulty::Medium;

    // ----- Local-model optimizations on DaDu-E (Llama-8B planner) -----
    {
        const auto &spec = workloads::workload("DaDu-E");
        ctx.printf("=== Local-model optimizations (DaDu-E, Llama-8B) "
                   "===\n\n");

        auto variant = [&](core::AgentConfig config) {
            runner::RunVariant v;
            v.workload = &spec;
            v.config = std::move(config);
            v.difficulty = difficulty;
            v.seeds = kSeeds;
            return v;
        };

        // Without Rec. 4: raw free-form Llama-8B planning.
        core::AgentConfig raw = spec.config;
        raw.planner_model = llm::ModelProfile::llama3_8bLocal();

        // Rec. 4: LoRA fine-tuning the raw local model on the task.
        core::AgentConfig lora = spec.config;
        lora.planner_model = llm::ModelProfile::loraTuned(
            llm::ModelProfile::llama3_8bLocal(), 0.5);

        // Rec. 1: AWQ 4-bit quantization of the planner.
        core::AgentConfig quant = spec.config;
        quant.planner_model =
            llm::ModelProfile::quantized(spec.config.planner_model);
        quant.reflect_model =
            llm::ModelProfile::quantized(spec.config.reflect_model);

        const char *labels[] = {
            "baseline (multiple-choice planning, Rec. 4)",
            "raw Llama-8B (no multiple-choice prompting)",
            "LoRA-tuned Llama-8B (Rec. 4)",
            "AWQ-4bit quantized models (Rec. 1)",
        };
        const auto results =
            ctx.runAveragedMany({variant(spec.config), variant(raw),
                                 variant(lora), variant(quant)});

        stats::Table table({"variant", "success", "steps",
                            "runtime (min)"});
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto &r = results[i];
            table.addRow({labels[i], stats::Table::pct(r.success_rate, 0),
                          stats::Table::num(r.avg_steps, 1),
                          stats::Table::num(r.avg_runtime_min, 1)});
            ctx.emitMetric(std::string("dadu-e ") + labels[i], r);
        }
        ctx.printf("%s\n", table.render().c_str());
    }

    // ----- Batched inference (Rec. 1) microcomparison -----
    {
        ctx.printf("=== Batched inference (Rec. 1) ===\n\n");
        llm::LlmEngine seq(llm::ModelProfile::gpt4Api(), sim::Rng(1));
        llm::LlmEngine bat(llm::ModelProfile::gpt4Api(), sim::Rng(1));
        stats::Table table({"batch size", "sequential (s)", "batched (s)",
                            "speedup"});
        for (const int k : {2, 4, 8}) {
            std::vector<llm::LlmRequest> requests(
                static_cast<std::size_t>(k));
            for (auto &r : requests) {
                r.tokens_in = 900;
                r.tokens_out_mean = 90;
            }
            double sequential = 0.0;
            for (const auto &r : requests)
                sequential += seq.complete(r).latency_s;
            const double batched =
                bat.completeBatch(requests).front().latency_s;
            table.addRow({std::to_string(k),
                          stats::Table::num(sequential, 1),
                          stats::Table::num(batched, 1),
                          stats::Table::num(sequential / batched, 2) + "x"});
            ctx.emitScalarMetric("batched inference k=" +
                                     std::to_string(k),
                                 "speedup", sequential / batched);
        }
        ctx.printf("%s\n", table.render().c_str());
    }

    // ----- Memory and prompt optimizations on CoELA -----
    {
        const auto &spec = workloads::workload("CoELA");
        ctx.printf("=== Memory & prompt optimizations (CoELA) ===\n\n");

        runner::RunVariant base;
        base.workload = &spec;
        base.config = spec.config;
        base.difficulty = difficulty;
        base.seeds = kSeeds;

        // Rec. 5: dual memory.
        runner::RunVariant dual = base;
        dual.config.memory.dual_memory = true;

        // Rec. 6: context compression to 40%.
        runner::RunVariant compressed = base;
        compressed.pipeline.context_compression = 0.4;

        const char *labels[] = {
            "baseline",
            "dual long/short-term memory (Rec. 5)",
            "context compression 0.4 (Rec. 6)",
        };
        const auto results = ctx.runAveragedMany({base, dual, compressed});

        stats::Table table({"variant", "success", "steps", "s/step",
                            "runtime (min)"});
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto &r = results[i];
            table.addRow({labels[i], stats::Table::pct(r.success_rate, 0),
                          stats::Table::num(r.avg_steps, 1),
                          stats::Table::num(r.avg_step_latency_s, 1),
                          stats::Table::num(r.avg_runtime_min, 1)});
            ctx.emitMetric(std::string("coela ") + labels[i], r);
        }
        ctx.printf("%s\n", table.render().c_str());
    }

    // ----- Scalability optimizations at 8 agents (Recs. 8/6 + 9) -----
    {
        const auto &spec = workloads::workload("CoELA");
        ctx.printf("=== Scalability optimizations (CoELA config, "
                   "8 agents, transport medium) ===\n\n");

        // These drive paradigm entry points directly (no WorkloadSpec
        // paradigm exists for hierarchical), so they run as custom jobs.
        auto custom = [&](core::EpisodeResult (*episode)(
                              const core::AgentConfig &,
                              const core::EpisodeOptions &)) {
            runner::RunVariant v;
            v.seeds = kSeeds;
            v.custom = [&spec,
                        episode](const core::EpisodeOptions &options) {
                return episode(spec.config, options);
            };
            return v;
        };

        const auto results = ctx.runAveragedMany(
            {custom([](const core::AgentConfig &config,
                       const core::EpisodeOptions &options) {
                 sim::Rng env_rng = sim::Rng(options.seed).fork(7);
                 envs::TransportEnv environment(env::Difficulty::Medium, 8,
                                                env_rng);
                 return core::runDecentralized(environment, config,
                                               options);
             }),
             custom([](const core::AgentConfig &config,
                       const core::EpisodeOptions &options) {
                 sim::Rng env_rng = sim::Rng(options.seed).fork(7);
                 envs::TransportEnv environment(env::Difficulty::Medium, 8,
                                                env_rng);
                 core::EpisodeOptions opt = options;
                 opt.pipeline.comm_on_demand = true;
                 opt.pipeline.context_compression = 0.5;
                 return core::runDecentralized(environment, config, opt);
             }),
             custom([](const core::AgentConfig &config,
                       const core::EpisodeOptions &options) {
                 sim::Rng env_rng = sim::Rng(options.seed).fork(7);
                 envs::TransportEnv environment(env::Difficulty::Medium, 8,
                                                env_rng);
                 return core::runHierarchical(environment, config, options,
                                              /*cluster_size=*/3);
             })});

        const char *labels[] = {
            "decentralized baseline",
            "on-demand comm + compression (Recs. 8/6)",
            "hierarchical clusters of 3 (Rec. 9)",
        };
        stats::Table table({"variant", "success", "latency (min)",
                            "LLM calls"});
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto &r = results[i];
            table.addRow({labels[i], stats::Table::pct(r.success_rate, 0),
                          stats::Table::num(r.avg_runtime_min, 1),
                          stats::Table::num(r.llmCallsPerEpisode(), 0)});
            ctx.emitMetric(std::string("transport8 ") + labels[i], r);
        }
        ctx.printf("%s\n", table.render().c_str());
        ctx.printf(
            "Rec. 9's hierarchical paradigm bounds joint-plan complexity\n"
            "by the cluster size and cross-cluster dialogue by the number\n"
            "of clusters, cutting both LLM calls and latency at scale.\n");
    }

    return 0;
}

} // namespace

EBS_BENCH_SUITE("bench_optimizations",
                "Sec. IV-VI ablations of the paper's optimization "
                "recommendations (quantization, batching, memory, "
                "compression, hierarchy)",
                run);
