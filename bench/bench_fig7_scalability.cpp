/**
 * @file
 * Reproduces paper Fig. 7 (multi-agent scalability): average task success
 * rate and end-to-end latency for a centralized system (MindAgent) and two
 * decentralized systems (CoELA, COMBO) across 2-12 agents and three task
 * difficulties. Also reports LLM-call/token scaling, which the paper
 * describes as linear (centralized) vs. quadratic (decentralized).
 */

#include <fstream>
#include <memory>
#include <vector>

#include "stats/csv.h"
#include "stats/table.h"
#include "suite.h"

namespace {

/** Usage: bench_fig7_scalability [csv_output_dir] */
int
run(ebs::bench::SuiteContext &ctx)
{
    using namespace ebs;
    std::ofstream csv_file;
    std::unique_ptr<stats::CsvWriter> csv;
    if (!ctx.args().empty()) {
        csv_file.open(ctx.args()[0] + "/fig7_scalability.csv");
        csv = std::make_unique<stats::CsvWriter>(
            csv_file, std::vector<std::string>{
                          "system", "paradigm", "difficulty", "agents",
                          "success", "latency_min", "llm_calls",
                          "tokens_k"});
    }
    const int kSeeds = ctx.seedCount(12);
    const char *systems[] = {"MindAgent", "CoELA", "COMBO"};
    const int agent_counts[] = {2, 4, 6, 8, 10, 12};
    const env::Difficulty difficulties[] = {env::Difficulty::Easy,
                                            env::Difficulty::Medium,
                                            env::Difficulty::Hard};

    ctx.printf("=== Fig. 7: scalability across 2-12 agents "
                "(%d seeds) ===\n\n",
                kSeeds);

    // The system × difficulty × team-size grid fans out as one batch.
    std::vector<runner::RunVariant> variants;
    for (const char *name : systems) {
        const auto &spec = workloads::workload(name);
        for (const auto difficulty : difficulties) {
            for (const int n : agent_counts) {
                runner::RunVariant v;
                v.workload = &spec;
                v.config = spec.config;
                v.difficulty = difficulty;
                v.seeds = kSeeds;
                v.n_agents = n;
                variants.push_back(std::move(v));
            }
        }
    }
    const auto results = ctx.runAveragedMany(variants);

    std::size_t idx = 0;
    for (const char *name : systems) {
        const auto &spec = workloads::workload(name);
        ctx.printf("--- %s (%s) ---\n", name,
                    workloads::paradigmName(spec.paradigm));
        stats::Table table({"difficulty", "agents", "success",
                            "latency (min)", "LLM calls", "tokens (k)"});
        for (const auto difficulty : difficulties) {
            for (const int n : agent_counts) {
                const auto &r = results[idx++];
                table.addRow(
                    {env::difficultyName(difficulty), std::to_string(n),
                     stats::Table::pct(r.success_rate, 0),
                     stats::Table::num(r.avg_runtime_min, 1),
                     stats::Table::num(r.llmCallsPerEpisode(), 0),
                     stats::Table::num(r.tokensPerEpisode() / 1000.0, 0)});
                if (difficulty == env::Difficulty::Medium)
                    ctx.emitMetric(std::string(name) + " agents=" +
                                          std::to_string(n),
                                      r);
                if (csv)
                    csv->row({name, workloads::paradigmName(spec.paradigm),
                              env::difficultyName(difficulty),
                              std::to_string(n),
                              stats::Table::num(r.success_rate, 3),
                              stats::Table::num(r.avg_runtime_min, 2),
                              stats::Table::num(r.llmCallsPerEpisode(), 1),
                              stats::Table::num(
                                  r.tokensPerEpisode() / 1000.0, 1)});
            }
        }
        ctx.printf("%s\n", table.render().c_str());
    }
    if (idx != results.size()) {
        ctx.eprintf("fig7: consumed %zu of %zu results — the print loops "
                    "fell out of sync with the variant grid\n",
                    idx, results.size());
        return 1;
    }

    ctx.printf(
        "Expected shape (paper Takeaway 7): the centralized system's\n"
        "success drops sharply with more agents while its latency scales\n"
        "mildly (fewer LLM calls, linear); the decentralized systems'\n"
        "latency and token volume explode (quadratic dialogue) and their\n"
        "success rises then falls as collaboration efficiency degrades.\n");

    // Rec. 1 at scale: the medium-difficulty grid re-run with
    // batch_llm_calls charging jointBatchTime to the clock. Cross-agent
    // batches grow with the team, so the charged saving should widen
    // with the agent count — batching is exactly the lever the paper
    // recommends against the multi-agent latency explosion. The re-run
    // gets a private service so the shared fleet summary below keeps
    // measuring exactly the main grid's traffic.
    llm::LlmEngineService charged_service;
    std::vector<runner::RunVariant> charged_variants;
    for (const char *name : systems) {
        const auto &spec = workloads::workload(name);
        for (const int n : agent_counts) {
            runner::RunVariant v;
            v.workload = &spec;
            v.config = spec.config;
            v.difficulty = env::Difficulty::Medium;
            v.seeds = kSeeds;
            v.n_agents = n;
            v.pipeline.batch_llm_calls = true;
            v.engine_service = &charged_service;
            charged_variants.push_back(std::move(v));
        }
    }
    const auto charged = ctx.runAveragedMany(charged_variants);

    ctx.printf("=== Fig. 7 ablation: batched inference charged to the "
                "clock (Rec. 1, medium difficulty) ===\n\n");
    std::size_t charged_idx = 0;
    for (std::size_t s = 0; s < 3; ++s) {
        const char *name = systems[s];
        stats::Table batched_table(
            {"agents", "s/step", "s/step charged", "saved"});
        for (std::size_t k = 0; k < 6; ++k) {
            // Medium rows of system s in the main grid: the second
            // difficulty block of its 18-variant span.
            const auto &seq = results[s * 18 + 6 + k];
            const auto &chg = charged[charged_idx++];
            const std::string bench_case =
                std::string(name) + " agents=" +
                std::to_string(agent_counts[k]);
            const double saved = ctx.emitChargedMetrics(
                bench_case, seq.avg_step_latency_s,
                chg.avg_step_latency_s);
            batched_table.addRow(
                {std::to_string(agent_counts[k]),
                 stats::Table::num(seq.avg_step_latency_s, 1),
                 stats::Table::num(chg.avg_step_latency_s, 1),
                 stats::Table::pct(saved, 0)});
        }
        ctx.printf("--- %s ---\n%s\n", name,
                    batched_table.render().c_str());
    }

    // Speculative execute-phase ablation: the medium grid re-run with
    // speculative_execute on. The paper metrics must stay bit-identical
    // to the main grid (speculation commits in serial order), so the new
    // EBS_METRIC keys reuse the main grid's case names and merge into the
    // same rows; the guard below turns any drift into a hard failure
    // instead of a silently-merged wrong value. A private service keeps
    // the shared fleet summary scoped to the main grid's traffic.
    llm::LlmEngineService spec_service;
    std::vector<runner::RunVariant> spec_variants;
    for (const char *name : systems) {
        const auto &spec = workloads::workload(name);
        for (const int n : agent_counts) {
            runner::RunVariant v;
            v.workload = &spec;
            v.config = spec.config;
            v.difficulty = env::Difficulty::Medium;
            v.seeds = kSeeds;
            v.n_agents = n;
            v.pipeline.speculative_execute = true;
            v.engine_service = &spec_service;
            spec_variants.push_back(std::move(v));
        }
    }
    const auto speculative = ctx.runAveragedMany(spec_variants);

    ctx.printf("=== Fig. 7 ablation: speculative execute phase "
                "(medium difficulty) ===\n\n");
    std::size_t spec_idx = 0;
    for (std::size_t s = 0; s < 3; ++s) {
        const char *name = systems[s];
        stats::Table spec_table({"agents", "exec speedup", "conflict rate",
                                 "re-exec", "committed"});
        for (std::size_t k = 0; k < 6; ++k) {
            const auto &seq = results[s * 18 + 6 + k];
            const auto &spc = speculative[spec_idx++];
            if (spc.success_rate != seq.success_rate ||
                spc.avg_steps != seq.avg_steps ||
                spc.avg_step_latency_s != seq.avg_step_latency_s) {
                ctx.eprintf("fig7: speculative execute diverged from "
                            "the serial schedule (%s, %d agents)\n",
                            name, agent_counts[k]);
                return 1;
            }
            ctx.emitSpeculativeMetrics(std::string(name) + " agents=" +
                                              std::to_string(
                                                  agent_counts[k]),
                                          spc);
            spec_table.addRow(
                {std::to_string(agent_counts[k]),
                 stats::Table::num(spc.specExecSpeedup(), 2) + "x",
                 stats::Table::pct(spc.specConflictRate(), 0),
                 stats::Table::pct(spc.specReexecFraction(), 0),
                 std::to_string(spc.spec_exec.committed)});
        }
        ctx.printf("--- %s ---\n%s\n", name, spec_table.render().c_str());
    }

    // Measured (host) execute-phase wall-clock at the largest team:
    // serial episodes on a one-job runner so the whole fleet pool serves
    // the speculative fan-out, serial vs speculative execute. Host wall
    // depends on EBS_JOBS and machine load → stderr only.
    {
        runner::EpisodeRunner timing_runner(1, &ctx.scheduler(),
                                            &ctx.tracer());
        llm::LlmEngineService timing_service;
        const auto &timing_spec = workloads::workload("CoELA");
        runner::RunVariant v;
        v.workload = &timing_spec;
        v.config = timing_spec.config;
        v.difficulty = env::Difficulty::Medium;
        v.seeds = kSeeds;
        v.n_agents = 12;
        v.engine_service = &timing_service;
        const auto wall_start = ctx.phaseWall().snapshot();
        runner::runAveraged(timing_runner, ctx.stamped(v));
        const auto wall_mid = ctx.phaseWall().snapshot();
        v.pipeline.speculative_execute = true;
        const auto spec_run =
            runner::runAveraged(timing_runner, ctx.stamped(v));
        const auto wall_end = ctx.phaseWall().snapshot();
        const double serial_exec_s =
            wall_mid.execute_s - wall_start.execute_s;
        const double spec_exec_s = wall_end.execute_s - wall_mid.execute_s;
        ctx.eprintf("fig7 execute-phase host wall @12 agents (%d "
                    "workers): serial %.3fs, speculative %.3fs (%.2fx "
                    "measured, %.2fx modeled)\n",
                    ctx.scheduler().workers(), serial_exec_s, spec_exec_s,
                    spec_exec_s > 0.0 ? serial_exec_s / spec_exec_s : 0.0,
                    spec_run.specExecSpeedup());
    }

    ctx.emitSharedServiceSummary("fig7 scalability fleet");
    ctx.emitPhaseWallSummary();
    return 0;
}

} // namespace

EBS_BENCH_SUITE("bench_fig7_scalability",
                "Fig. 7: multi-agent scalability across 2-12 agents, with "
                "charged-batching and speculative-execute ablations",
                run);
