#include <gtest/gtest.h>

#include <queue>
#include <set>

#include "env/grid.h"

namespace ebs::env {
namespace {

TEST(GridMap, DefaultAllWalkableSingleRoom)
{
    GridMap g(4, 3);
    EXPECT_EQ(g.width(), 4);
    EXPECT_EQ(g.height(), 3);
    EXPECT_EQ(g.roomCount(), 1);
    for (int y = 0; y < 3; ++y)
        for (int x = 0; x < 4; ++x) {
            EXPECT_TRUE(g.walkable({x, y}));
            EXPECT_EQ(g.room({x, y}), 0);
        }
}

TEST(GridMap, BoundsChecks)
{
    GridMap g(4, 3);
    EXPECT_FALSE(g.inBounds({-1, 0}));
    EXPECT_FALSE(g.inBounds({4, 0}));
    EXPECT_FALSE(g.inBounds({0, 3}));
    EXPECT_FALSE(g.walkable({9, 9}));
    EXPECT_EQ(g.room({9, 9}), -1);
}

TEST(GridMap, WallsBlockAndClearRoom)
{
    GridMap g(4, 4);
    g.setWalkable({1, 1}, false);
    EXPECT_FALSE(g.walkable({1, 1}));
    EXPECT_EQ(g.room({1, 1}), -1);
}

TEST(GridMap, NeighborsExcludeWallsAndBounds)
{
    GridMap g(3, 3);
    g.setWalkable({1, 0}, false);
    const auto n = g.neighbors({0, 0});
    // (1,0) is a wall; (0,1) remains; out-of-bounds excluded.
    ASSERT_EQ(n.size(), 1u);
    EXPECT_EQ(n[0], (Vec2i{0, 1}));
}

TEST(GridApartment, DimensionsAndRoomCount)
{
    const GridMap g = GridMap::apartment(3, 2, 5, 4);
    EXPECT_EQ(g.width(), 3 * 6 + 1);
    EXPECT_EQ(g.height(), 2 * 5 + 1);
    EXPECT_EQ(g.roomCount(), 6);
}

TEST(GridApartment, BorderIsWall)
{
    const GridMap g = GridMap::apartment(2, 2, 4, 4);
    for (int x = 0; x < g.width(); ++x) {
        EXPECT_FALSE(g.walkable({x, 0}));
        EXPECT_FALSE(g.walkable({x, g.height() - 1}));
    }
    for (int y = 0; y < g.height(); ++y) {
        EXPECT_FALSE(g.walkable({0, y}));
        EXPECT_FALSE(g.walkable({g.width() - 1, y}));
    }
}

TEST(GridApartment, RoomInteriorsLabeledRowMajor)
{
    const GridMap g = GridMap::apartment(2, 2, 4, 4);
    EXPECT_EQ(g.room({1, 1}), 0);
    EXPECT_EQ(g.room({6, 1}), 1);
    EXPECT_EQ(g.room({1, 6}), 2);
    EXPECT_EQ(g.room({6, 6}), 3);
}

/** Flood fill over walkable cells. */
std::size_t
reachableFrom(const GridMap &g, const Vec2i &start)
{
    std::set<std::pair<int, int>> seen;
    std::queue<Vec2i> queue;
    queue.push(start);
    seen.insert({start.x, start.y});
    while (!queue.empty()) {
        const Vec2i p = queue.front();
        queue.pop();
        for (const auto &q : g.neighbors(p))
            if (seen.insert({q.x, q.y}).second)
                queue.push(q);
    }
    return seen.size();
}

/** Property: every walkable cell of an apartment is mutually reachable —
 * doorways connect all rooms. */
class ApartmentConnectivity
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ApartmentConnectivity, AllRoomsConnected)
{
    const auto [rx, ry] = GetParam();
    const GridMap g = GridMap::apartment(rx, ry, 5, 5);

    std::size_t walkable = 0;
    Vec2i start{-1, -1};
    for (int y = 0; y < g.height(); ++y)
        for (int x = 0; x < g.width(); ++x)
            if (g.walkable({x, y})) {
                ++walkable;
                if (start.x < 0)
                    start = {x, y};
            }
    ASSERT_GT(walkable, 0u);
    EXPECT_EQ(reachableFrom(g, start), walkable);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ApartmentConnectivity,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(1, 2, 3)));

} // namespace
} // namespace ebs::env
