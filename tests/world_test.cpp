#include <gtest/gtest.h>

#include "env/world.h"

namespace ebs::env {
namespace {

/** 7x7 open world with one agent at (1,1). */
class WorldTest : public ::testing::Test
{
  protected:
    WorldTest() : world_(GridMap(7, 7)) { agent_ = world_.addAgent({1, 1}); }

    ObjectId
    addItem(const Vec2i &pos, double weight = 1.0)
    {
        Object obj;
        obj.name = "item";
        obj.cls = ObjectClass::Item;
        obj.pos = pos;
        obj.weight = weight;
        return world_.addObject(obj);
    }

    ObjectId
    addContainer(const Vec2i &pos, bool openable, bool open)
    {
        Object obj;
        obj.name = "box";
        obj.cls = ObjectClass::Container;
        obj.pos = pos;
        obj.openable = openable;
        obj.open = open;
        return world_.addObject(obj);
    }

    Primitive
    prim(PrimOp op, ObjectId target = kNoObject, Vec2i dest = {})
    {
        Primitive p;
        p.op = op;
        p.target = target;
        p.dest = dest;
        return p;
    }

    World world_;
    int agent_;
};

TEST_F(WorldTest, MoveStepValid)
{
    EXPECT_TRUE(world_.applySpatial(agent_, prim(PrimOp::MoveStep,
                                                 kNoObject, {1, 2})).ok);
    EXPECT_EQ(world_.agent(agent_).pos, (Vec2i{1, 2}));
}

TEST_F(WorldTest, MoveStepRejectsJumps)
{
    EXPECT_FALSE(world_.applySpatial(agent_, prim(PrimOp::MoveStep,
                                                  kNoObject, {3, 3})).ok);
}

TEST_F(WorldTest, MoveStepRejectsWalls)
{
    world_.grid().setWalkable({1, 2}, false);
    EXPECT_FALSE(world_.applySpatial(agent_, prim(PrimOp::MoveStep,
                                                  kNoObject, {1, 2})).ok);
}

TEST_F(WorldTest, MoveStepRejectsOccupiedCell)
{
    world_.addAgent({1, 2});
    EXPECT_FALSE(world_.applySpatial(agent_, prim(PrimOp::MoveStep,
                                                  kNoObject, {1, 2})).ok);
}

TEST_F(WorldTest, PickAdjacentItem)
{
    const ObjectId item = addItem({2, 2});
    EXPECT_TRUE(world_.applySpatial(agent_, prim(PrimOp::Pick, item)).ok);
    EXPECT_EQ(world_.agent(agent_).carrying, item);
    EXPECT_EQ(world_.object(item).held_by, agent_);
    EXPECT_FALSE(world_.object(item).loose());
}

TEST_F(WorldTest, PickRejectsFarItem)
{
    const ObjectId item = addItem({5, 5});
    EXPECT_FALSE(world_.applySpatial(agent_, prim(PrimOp::Pick, item)).ok);
}

TEST_F(WorldTest, PickRejectsWhenCarrying)
{
    const ObjectId a = addItem({2, 1});
    const ObjectId b = addItem({1, 2});
    ASSERT_TRUE(world_.applySpatial(agent_, prim(PrimOp::Pick, a)).ok);
    EXPECT_FALSE(world_.applySpatial(agent_, prim(PrimOp::Pick, b)).ok);
}

TEST_F(WorldTest, PickRejectsHeavyObject)
{
    const ObjectId heavy = addItem({2, 1}, 2.0);
    EXPECT_FALSE(world_.applySpatial(agent_, prim(PrimOp::Pick, heavy)).ok);
}

TEST_F(WorldTest, PickRejectsHeldByOther)
{
    const int other = world_.addAgent({3, 2});
    const ObjectId item = addItem({2, 2});
    ASSERT_TRUE(world_.applySpatial(other, prim(PrimOp::Pick, item)).ok);
    EXPECT_FALSE(world_.applySpatial(agent_, prim(PrimOp::Pick, item)).ok);
}

TEST_F(WorldTest, CarriedObjectFollowsAgent)
{
    const ObjectId item = addItem({2, 2});
    ASSERT_TRUE(world_.applySpatial(agent_, prim(PrimOp::Pick, item)).ok);
    ASSERT_TRUE(world_.applySpatial(agent_, prim(PrimOp::MoveStep,
                                                 kNoObject, {1, 2})).ok);
    EXPECT_EQ(world_.effectivePos(item), (Vec2i{1, 2}));
}

TEST_F(WorldTest, PlacePutsObjectDown)
{
    const ObjectId item = addItem({2, 2});
    ASSERT_TRUE(world_.applySpatial(agent_, prim(PrimOp::Pick, item)).ok);
    EXPECT_TRUE(world_.applySpatial(agent_, prim(PrimOp::Place, kNoObject,
                                                 {0, 1})).ok);
    EXPECT_EQ(world_.agent(agent_).carrying, kNoObject);
    EXPECT_TRUE(world_.object(item).loose());
    EXPECT_EQ(world_.object(item).pos, (Vec2i{0, 1}));
}

TEST_F(WorldTest, PlaceRejectsWithoutCarrying)
{
    EXPECT_FALSE(world_.applySpatial(agent_, prim(PrimOp::Place, kNoObject,
                                                  {1, 2})).ok);
}

TEST_F(WorldTest, PutInOpenContainer)
{
    const ObjectId item = addItem({2, 2});
    const ObjectId box = addContainer({1, 2}, false, true);
    ASSERT_TRUE(world_.applySpatial(agent_, prim(PrimOp::Pick, item)).ok);
    EXPECT_TRUE(world_.applySpatial(agent_, prim(PrimOp::PutIn, box)).ok);
    EXPECT_EQ(world_.object(item).inside, box);
    EXPECT_EQ(world_.contents(box).size(), 1u);
}

TEST_F(WorldTest, PutInClosedContainerFails)
{
    const ObjectId item = addItem({2, 2});
    const ObjectId box = addContainer({1, 2}, true, false);
    ASSERT_TRUE(world_.applySpatial(agent_, prim(PrimOp::Pick, item)).ok);
    EXPECT_FALSE(world_.applySpatial(agent_, prim(PrimOp::PutIn, box)).ok);
}

TEST_F(WorldTest, OpenThenPutInSucceeds)
{
    const ObjectId item = addItem({2, 2});
    const ObjectId box = addContainer({1, 2}, true, false);
    ASSERT_TRUE(world_.applySpatial(agent_, prim(PrimOp::Pick, item)).ok);
    EXPECT_TRUE(world_.applySpatial(agent_, prim(PrimOp::Open, box)).ok);
    EXPECT_TRUE(world_.applySpatial(agent_, prim(PrimOp::PutIn, box)).ok);
    EXPECT_TRUE(world_.applySpatial(agent_, prim(PrimOp::Close, box)).ok);
    EXPECT_FALSE(world_.object(box).open);
}

TEST_F(WorldTest, TakeOutReversesPutIn)
{
    const ObjectId item = addItem({2, 2});
    const ObjectId box = addContainer({1, 2}, false, true);
    ASSERT_TRUE(world_.applySpatial(agent_, prim(PrimOp::Pick, item)).ok);
    ASSERT_TRUE(world_.applySpatial(agent_, prim(PrimOp::PutIn, box)).ok);
    EXPECT_TRUE(world_.applySpatial(agent_, prim(PrimOp::TakeOut, item)).ok);
    EXPECT_EQ(world_.agent(agent_).carrying, item);
    EXPECT_EQ(world_.object(item).inside, kNoObject);
}

TEST_F(WorldTest, TakeOutRejectsLooseObject)
{
    const ObjectId item = addItem({2, 2});
    EXPECT_FALSE(world_.applySpatial(agent_,
                                     prim(PrimOp::TakeOut, item)).ok);
}

TEST_F(WorldTest, OpenRejectsNonOpenable)
{
    const ObjectId item = addItem({2, 2});
    EXPECT_FALSE(world_.applySpatial(agent_, prim(PrimOp::Open, item)).ok);
}

TEST_F(WorldTest, CannotPutObjectIntoItself)
{
    const ObjectId box = addContainer({2, 2}, false, true);
    ASSERT_TRUE(world_.applySpatial(agent_, prim(PrimOp::Pick, box)).ok);
    EXPECT_FALSE(world_.applySpatial(agent_, prim(PrimOp::PutIn, box)).ok);
}

TEST_F(WorldTest, DomainOpsRejectedBySpatialLayer)
{
    const ObjectId item = addItem({2, 2});
    EXPECT_FALSE(world_.applySpatial(agent_, prim(PrimOp::Mine, item)).ok);
    EXPECT_FALSE(world_.applySpatial(agent_, prim(PrimOp::Craft, item)).ok);
}

TEST_F(WorldTest, WaitAlwaysSucceeds)
{
    EXPECT_TRUE(world_.applySpatial(agent_, prim(PrimOp::Wait)).ok);
}

TEST_F(WorldTest, ObjectsInRoomListsLooseOnly)
{
    const ObjectId a = addItem({2, 2});
    addItem({3, 3});
    ASSERT_TRUE(world_.applySpatial(agent_, prim(PrimOp::Pick, a)).ok);
    EXPECT_EQ(world_.objectsInRoom(0).size(), 1u);
}

TEST_F(WorldTest, OccupiedByOther)
{
    world_.addAgent({4, 4});
    EXPECT_TRUE(world_.occupiedByOther(agent_, {4, 4}));
    EXPECT_FALSE(world_.occupiedByOther(agent_, {1, 1}));
}

TEST_F(WorldTest, EffectivePosFollowsContainerChain)
{
    const ObjectId item = addItem({2, 2});
    const ObjectId box = addContainer({1, 2}, false, true);
    ASSERT_TRUE(world_.applySpatial(agent_, prim(PrimOp::Pick, item)).ok);
    ASSERT_TRUE(world_.applySpatial(agent_, prim(PrimOp::PutIn, box)).ok);
    EXPECT_EQ(world_.effectivePos(item), world_.object(box).pos);
}

} // namespace
} // namespace ebs::env
