#include <gtest/gtest.h>

#include "core/coordinator.h"
#include "envs/boxlift_env.h"
#include "envs/kitchen_env.h"
#include "envs/transport_env.h"
#include "workloads/workload.h"

namespace ebs {
namespace {

// Regression tests for bugs found by the fuzzers and during calibration.

TEST(Regression, LiftRejectsNonCrateTargets)
{
    // Fuzz finding: Lift(truck) used to put the truck inside itself.
    sim::Rng rng(3);
    envs::BoxLiftEnv env(env::Difficulty::Easy, 2, rng);
    const env::ObjectId truck = env.truck();
    env.world().agent(0).pos = env.world().object(truck).pos;
    env.beginStep();
    env::Primitive lift;
    lift.op = env::PrimOp::Lift;
    lift.target = truck;
    const auto result = env.applyPrimitive(0, lift);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(env.world().object(truck).inside, env::kNoObject);
}

TEST(Regression, ChopRejectsStations)
{
    // Fuzz finding: Chop(cutting board) used to "chop" the station itself.
    sim::Rng rng(5);
    envs::KitchenEnv env(env::Difficulty::Easy, 1, rng);
    env.world().agent(0).pos = env.world().object(env.board()).pos;
    env::Primitive chop;
    chop.op = env::PrimOp::Chop;
    chop.target = env.board();
    EXPECT_FALSE(env.applyPrimitive(0, chop).ok);
    EXPECT_EQ(env.world().object(env.board()).state, 0);
}

TEST(Regression, RoomAnchorIsInteriorCell)
{
    // Calibration finding: anchors on doorway cells caused agents to stop
    // adjacent in the *neighboring* room and explore-loop forever.
    sim::Rng rng(7);
    envs::TransportEnv env(env::Difficulty::Hard, 1, rng);
    const auto &grid = env.world().grid();
    for (int room = 0; room < grid.roomCount(); ++room) {
        const env::Vec2i anchor = env.roomAnchor(room);
        ASSERT_GE(anchor.x, 0) << "room " << room << " has no anchor";
        EXPECT_EQ(grid.room(anchor), room);
        // All walkable neighbors belong to the same room (interior cell).
        static const env::Vec2i kDirs[4] = {{1, 0}, {-1, 0}, {0, 1},
                                            {0, -1}};
        for (const auto &d : kDirs) {
            const int neighbor_room = grid.room(anchor + d);
            if (neighbor_room >= 0) {
                EXPECT_EQ(neighbor_room, room);
            }
        }
    }
}

TEST(Regression, StaleBeliefIsInvalidatedAfterFailedVisit)
{
    // Calibration finding: agents kept returning to a stale remembered
    // location forever; the failed visit must drop the belief.
    sim::Rng rng(9);
    envs::TransportEnv env(env::Difficulty::Easy, 1, rng);
    sim::SimClock clock;
    stats::LatencyRecorder recorder;
    core::AgentConfig config;
    core::Agent agent(0, config, &env, sim::Rng(10), &clock, &recorder,
                      nullptr);

    // Deterministic fixture: stand the agent in a room guaranteed to
    // contain a loose item (the spawn room may be empty), sense it, then
    // teleport the item far away so only the stale memory remains.
    env::ObjectId item = env::kNoObject;
    for (const auto &obj : env.world().objects())
        if (obj.cls == env::ObjectClass::Item && obj.loose())
            item = obj.id;
    ASSERT_NE(item, env::kNoObject) << "layout generated no loose item";
    env.world().agent(0).pos = env.roomAnchor(
        env.world().grid().room(env.world().object(item).pos));
    agent.sense(0);
    ASSERT_TRUE(agent.memory().knowsObject(item));

    const env::Vec2i far = env.roomAnchor(
        (env.world().grid().room(env.world().object(item).pos) + 1) %
        env.world().grid().roomCount());
    env.world().object(item).pos = far;
    env.world().object(item).room = env.world().grid().room(far);

    // Move the agent's percept away so only the stale memory remains.
    env.world().agent(0).pos = env.roomAnchor(
        (env.world().grid().room(far) + 1) %
        env.world().grid().roomCount());
    agent.sense(1);

    env::Subgoal pick;
    pick.kind = env::SubgoalKind::PickUp;
    pick.target = item;
    const auto result = agent.execute(1, pick);
    EXPECT_FALSE(result.success);
    EXPECT_FALSE(agent.memory().knowsObject(item))
        << "stale belief should be dropped after the failed visit";
}

TEST(Regression, StepBudgetFactorCapsEpisodes)
{
    // The workload-level L_max must bind even when the environment's
    // generic budget is generous.
    const auto &spec = workloads::workload("RoCo"); // factor 0.25
    core::AgentConfig broken = spec.config;
    broken.planner_model.plan_quality = 0.0; // wander forever
    broken.hallucination_rate = 0.0;
    core::EpisodeOptions options;
    options.seed = 11;
    const auto r = spec.runWithConfig(broken, env::Difficulty::Medium,
                                      options);
    EXPECT_FALSE(r.success);
    // The generic manipulation budget is 110 at medium; RoCo gets 25%.
    EXPECT_LE(r.steps, 30);
}

TEST(Regression, CentralTokenSeriesUsesSentinelAgent)
{
    const auto &spec = workloads::workload("MindAgent");
    core::EpisodeOptions options;
    options.seed = 13;
    options.record_tokens = true;
    options.max_steps_override = 5;
    const auto r = spec.run(env::Difficulty::Easy, options);
    bool saw_central = false;
    for (const auto &sample : r.token_series)
        saw_central |= sample.agent == -1 && sample.plan_tokens > 0;
    EXPECT_TRUE(saw_central);
}

TEST(Regression, ActionSpaceSizeMatchesValidSubgoals)
{
    sim::Rng rng(15);
    envs::TransportEnv env(env::Difficulty::Medium, 2, rng);
    for (int a = 0; a < 2; ++a)
        EXPECT_EQ(env.actionSpaceSize(a),
                  static_cast<int>(env.validSubgoals(a).size()));
}

TEST(Regression, MessageUtilityModelKeepsUsefulBelowGenerated)
{
    const auto &spec = workloads::workload("DMAS");
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        core::EpisodeOptions options;
        options.seed = seed;
        options.max_steps_override = 10;
        const auto r = spec.run(env::Difficulty::Easy, options);
        EXPECT_LE(r.messages_useful, r.messages_generated);
        EXPECT_GT(r.messages_generated, 0);
    }
}

} // namespace
} // namespace ebs
