#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "sim/clock.h"
#include "sim/distribution.h"
#include "sim/rng.h"
#include "sim/trace.h"

namespace ebs::sim {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(5);
    std::set<int> seen;
    for (int i = 0; i < 1000; ++i) {
        const int v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(5);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(4, 4), 4);
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
        EXPECT_FALSE(rng.bernoulli(-1.0));
        EXPECT_TRUE(rng.bernoulli(2.0));
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(13);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments)
{
    Rng rng(17);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(5.0, 2.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 5.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, LognormalMeanAndPositivity)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.lognormal(3.0, 0.4);
        ASSERT_GT(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, LognormalZeroCvIsDeterministic)
{
    Rng rng(21);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(rng.lognormal(2.5, 0.0), 2.5);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(23);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ForkIsDeterministicAndIndependent)
{
    Rng parent(42);
    Rng a = parent.fork(1);
    Rng b = parent.fork(1);
    Rng c = parent.fork(2);
    EXPECT_EQ(a.next(), b.next());
    // Independent streams should not collide on the next draws.
    int equal = 0;
    for (int i = 0; i < 50; ++i)
        equal += a.next() == c.next();
    EXPECT_LT(equal, 2);
}

TEST(Rng, ForkDoesNotAdvanceParent)
{
    Rng a(42), b(42);
    (void)a.fork(5);
    EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, PickIndexInRange)
{
    Rng rng(31);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.pickIndex(7), 7u);
}

TEST(Rng, PickReturnsElement)
{
    Rng rng(33);
    const std::vector<int> v = {10, 20, 30};
    for (int i = 0; i < 100; ++i) {
        const int x = rng.pick(v);
        EXPECT_TRUE(x == 10 || x == 20 || x == 30);
    }
}

TEST(SimClock, AdvancesMonotonically)
{
    SimClock clock;
    EXPECT_DOUBLE_EQ(clock.now(), 0.0);
    clock.advance(1.5);
    clock.advance(0.0);
    clock.advance(2.5);
    EXPECT_DOUBLE_EQ(clock.now(), 4.0);
    clock.reset();
    EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(LatencyDist, SampleMatchesMean)
{
    Rng rng(37);
    LatencyDist dist{2.0, 0.3};
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += dist.sample(rng);
    EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(LatencyDist, ZeroMeanSamplesZero)
{
    Rng rng(39);
    LatencyDist dist{0.0, 0.5};
    EXPECT_DOUBLE_EQ(dist.sample(rng), 0.0);
}

TEST(LatencyDist, ScaledKeepsSpread)
{
    LatencyDist dist{2.0, 0.3};
    const LatencyDist half = dist.scaled(0.5);
    EXPECT_DOUBLE_EQ(half.mean_s, 1.0);
    EXPECT_DOUBLE_EQ(half.cv, 0.3);
}

TEST(EventTrace, DisabledDropsEvents)
{
    EventTrace trace;
    trace.record(1.0, "llm", "x");
    EXPECT_TRUE(trace.events().empty());
}

TEST(EventTrace, EnabledRecordsAndFilters)
{
    EventTrace trace;
    trace.setEnabled(true);
    trace.record(1.0, "llm", "a");
    trace.record(2.0, "action", "b");
    trace.record(3.0, "llm", "c");
    EXPECT_EQ(trace.events().size(), 3u);
    EXPECT_EQ(trace.byCategory("llm").size(), 2u);
    trace.clear();
    EXPECT_TRUE(trace.events().empty());
}

/** Property sweep: lognormal mean holds across parameter grid. */
class LognormalSweep
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(LognormalSweep, MeanMatches)
{
    const auto [mean, cv] = GetParam();
    Rng rng(101);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.lognormal(mean, cv);
    EXPECT_NEAR(sum / n, mean, mean * 0.03);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LognormalSweep,
    ::testing::Combine(::testing::Values(0.1, 1.0, 10.0, 100.0),
                       ::testing::Values(0.0, 0.2, 0.5, 1.0)));

} // namespace
} // namespace ebs::sim
