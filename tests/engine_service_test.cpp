/**
 * @file
 * Determinism harness for the shared LLM engine service (the tentpole
 * contract): routing every agent module through LlmEngineService — with
 * batching off or on, serial or fanned across EpisodeRunner workers —
 * must be bit-identical to the legacy per-agent-engine path, while the
 * service's usage aggregation stays exact and its batch assembly stays
 * reproducible at any worker count.
 */

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "llm/engine.h"
#include "llm/engine_service.h"
#include "llm/model_profile.h"
#include "runner/averaged.h"
#include "runner/episode_runner.h"
#include "runner/run_stats.h"
#include "test_util.h"
#include "workloads/workload.h"

namespace {

using namespace ebs;

/** A batch covering all three paradigms (single, centralized,
 * decentralized), several seeds each, with multi-agent teams. */
std::vector<runner::EpisodeJob>
paradigmBatch(llm::LlmEngineService *service)
{
    std::vector<runner::EpisodeJob> jobs;
    for (const char *name : {"EmbodiedGPT", "MindAgent", "CoELA"}) {
        const auto &spec = workloads::workload(name);
        for (int seed = 1; seed <= 3; ++seed) {
            runner::EpisodeJob job;
            job.workload = &spec;
            job.config = spec.config;
            job.difficulty = env::Difficulty::Easy;
            job.seed = runner::episodeSeed(seed);
            job.record_tokens = true;
            job.engine_service = service;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

TEST(EngineService, BitIdenticalAcrossEnginePathsAndWorkerCounts)
{
    // Reference: the legacy per-agent-engine path, serial.
    const auto legacy =
        runner::EpisodeRunner(1).run(paradigmBatch(nullptr));

    // The EBS_JOBS sweep of the acceptance contract: serial, a fixed
    // multi-worker count, and the hardware/EBS_JOBS default.
    const int worker_counts[] = {1, 4, runner::EpisodeRunner::defaultJobs()};

    for (const bool batching : {false, true}) {
        for (const int workers : worker_counts) {
            llm::LlmEngineService service(
                llm::ServiceConfig{.batching = batching, .queue = {}});
            const auto routed = runner::EpisodeRunner(workers).run(
                paradigmBatch(&service));
            ASSERT_EQ(routed.size(), legacy.size());
            for (std::size_t i = 0; i < legacy.size(); ++i) {
                SCOPED_TRACE("batching=" + std::to_string(batching) +
                             " workers=" + std::to_string(workers) +
                             " job " + std::to_string(i));
                test::expectEpisodeIdentical(legacy[i], routed[i]);
            }
        }
    }
}

/** paradigmBatch with the charged-batching ablation switched on (and
 * optionally parallel per-agent phases stacked on top). */
std::vector<runner::EpisodeJob>
chargedBatch(llm::LlmEngineService *service, bool parallel_agents = false)
{
    auto jobs = paradigmBatch(service);
    for (auto &job : jobs) {
        job.pipeline.batch_llm_calls = true;
        job.pipeline.parallel_agents = parallel_agents;
    }
    return jobs;
}

TEST(EngineService, ChargedBatchingBitIdenticalAcrossWorkerCounts)
{
    // The acceptance sweep for the charged-batch path: with
    // batch_llm_calls on (alone, and stacked with parallel_agents),
    // results — including the now-batched sim_seconds — are bitwise
    // identical at EBS_JOBS ∈ {1, 4, hw}.
    for (const bool parallel : {false, true}) {
        SCOPED_TRACE("parallel_agents=" + std::to_string(parallel));
        llm::LlmEngineService reference_service;
        const auto reference = runner::EpisodeRunner(1).run(
            chargedBatch(&reference_service, parallel));

        for (const int workers : {4, runner::EpisodeRunner::defaultJobs()}) {
            llm::LlmEngineService service;
            const auto routed = runner::EpisodeRunner(workers).run(
                chargedBatch(&service, parallel));
            ASSERT_EQ(routed.size(), reference.size());
            for (std::size_t i = 0; i < reference.size(); ++i) {
                SCOPED_TRACE("workers=" + std::to_string(workers) +
                             " job " + std::to_string(i));
                test::expectEpisodeIdentical(reference[i], routed[i]);
            }
        }
    }
}

TEST(EngineService, ChargedBatchingOnlyMovesTheClock)
{
    // Charging swaps the clock's LLM cost model, nothing else: every
    // behavioral field matches the uncharged run, and multi-agent
    // workloads get strictly cheaper steps.
    llm::LlmEngineService modeled_service;
    const auto modeled =
        runner::EpisodeRunner(1).run(paradigmBatch(&modeled_service));
    llm::LlmEngineService charged_service;
    const auto charged =
        runner::EpisodeRunner(1).run(chargedBatch(&charged_service));

    ASSERT_EQ(charged.size(), modeled.size());
    bool saw_cheaper = false;
    for (std::size_t i = 0; i < modeled.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        EXPECT_EQ(charged[i].success, modeled[i].success);
        EXPECT_EQ(charged[i].steps, modeled[i].steps);
        EXPECT_EQ(charged[i].llm.calls, modeled[i].llm.calls);
        EXPECT_EQ(charged[i].llm.total_latency_s,
                  modeled[i].llm.total_latency_s);
        EXPECT_EQ(charged[i].latency.grandTotal(),
                  modeled[i].latency.grandTotal());
        EXPECT_LE(charged[i].sim_seconds,
                  modeled[i].sim_seconds * (1.0 + 1e-12));
        saw_cheaper |= charged[i].sim_seconds < modeled[i].sim_seconds;
    }
    EXPECT_TRUE(saw_cheaper);
}

TEST(EngineService, SizeOneBatchesChargeExactlySequentialLatency)
{
    // Single-agent workload: every phase batch has occupancy 1, so the
    // jointBatchTime singleton rule must reproduce the sequential clock
    // — batching cannot invent savings where nothing co-batches.
    const auto &spec = workloads::workload("EmbodiedGPT");
    auto jobs_for = [&](llm::LlmEngineService *service, bool charged) {
        std::vector<runner::EpisodeJob> jobs;
        for (int seed = 1; seed <= 3; ++seed) {
            runner::EpisodeJob job;
            job.workload = &spec;
            job.config = spec.config;
            job.difficulty = env::Difficulty::Easy;
            job.seed = runner::episodeSeed(seed);
            job.engine_service = service;
            job.pipeline.batch_llm_calls = charged;
            jobs.push_back(std::move(job));
        }
        return jobs;
    };
    llm::LlmEngineService off_service;
    const auto off =
        runner::EpisodeRunner(1).run(jobs_for(&off_service, false));
    llm::LlmEngineService on_service;
    const auto on =
        runner::EpisodeRunner(1).run(jobs_for(&on_service, true));

    ASSERT_EQ(on.size(), off.size());
    for (std::size_t i = 0; i < on.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        EXPECT_EQ(on[i].steps, off[i].steps);
        ASSERT_FALSE(on[i].llm_batches.empty());
        for (const auto &record : on[i].llm_batches) {
            EXPECT_EQ(record.requests, 1);
            EXPECT_EQ(record.batched_s, record.baseline_s);
        }
        EXPECT_NEAR(on[i].sim_seconds, off[i].sim_seconds,
                    1e-9 * off[i].sim_seconds);
    }
}

TEST(EngineService, LegacyPathProducesNoBatchLog)
{
    const auto legacy =
        runner::EpisodeRunner(1).run(paradigmBatch(nullptr));
    for (const auto &episode : legacy)
        EXPECT_TRUE(episode.llm_batches.empty());

    llm::LlmEngineService unbatched(
        llm::ServiceConfig{.batching = false, .queue = {}});
    const auto routed =
        runner::EpisodeRunner(1).run(paradigmBatch(&unbatched));
    for (const auto &episode : routed)
        EXPECT_TRUE(episode.llm_batches.empty());
}

TEST(EngineService, BatchAssemblyIsDeterministicAcrossWorkerCounts)
{
    llm::LlmEngineService serial_service;
    const auto serial =
        runner::EpisodeRunner(1).run(paradigmBatch(&serial_service));

    llm::LlmEngineService parallel_service;
    const auto parallel = runner::EpisodeRunner(
        runner::EpisodeRunner::defaultJobs())
                              .run(paradigmBatch(&parallel_service));

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        const auto &a = serial[i].llm_batches;
        const auto &b = parallel[i].llm_batches;
        ASSERT_EQ(a.size(), b.size());
        EXPECT_FALSE(a.empty()); // every episode makes LLM calls
        for (std::size_t r = 0; r < a.size(); ++r) {
            SCOPED_TRACE("record " + std::to_string(r));
            EXPECT_EQ(a[r].step, b[r].step);
            EXPECT_EQ(a[r].phase, b[r].phase);
            EXPECT_EQ(a[r].backend, b[r].backend);
            EXPECT_EQ(a[r].requests, b[r].requests);
            EXPECT_EQ(a[r].remote, b[r].remote);
            EXPECT_EQ(a[r].rtt_mean_s, b[r].rtt_mean_s);
            EXPECT_EQ(a[r].prefill_s, b[r].prefill_s);
            EXPECT_EQ(a[r].max_decode_s, b[r].max_decode_s);
            EXPECT_EQ(a[r].baseline_s, b[r].baseline_s);
            EXPECT_EQ(a[r].batched_s, b[r].batched_s);
            EXPECT_EQ(a[r].sim_time_s, b[r].sim_time_s);
        }
    }

    // The service-side tallies agree with the per-episode logs no matter
    // how the episodes were scheduled.
    const auto serial_stats = serial_service.stats();
    const auto parallel_stats = parallel_service.stats();
    EXPECT_EQ(serial_stats.batches, parallel_stats.batches);
    EXPECT_EQ(serial_stats.requests, parallel_stats.requests);
    EXPECT_EQ(serial_stats.cross_agent_batches,
              parallel_stats.cross_agent_batches);
}

TEST(EngineService, MultiAgentWorkloadsBatchAcrossAgents)
{
    llm::LlmEngineService service;
    std::vector<runner::EpisodeJob> jobs;
    const auto &spec = workloads::workload("CoELA"); // decentralized, 2
    for (int seed = 1; seed <= 2; ++seed) {
        runner::EpisodeJob job;
        job.workload = &spec;
        job.config = spec.config;
        job.difficulty = env::Difficulty::Easy;
        job.seed = runner::episodeSeed(seed);
        job.engine_service = &service;
        jobs.push_back(std::move(job));
    }
    const auto episodes = runner::EpisodeRunner(2).run(jobs);

    llm::BatchStats folded;
    for (const auto &episode : episodes) {
        ASSERT_FALSE(episode.llm_batches.empty());
        for (const auto &record : episode.llm_batches) {
            EXPECT_GE(record.requests, 1);
            // The central batching promise: joint inference never costs
            // more than sequential calls.
            EXPECT_LE(record.batched_s, record.baseline_s);
            EXPECT_GT(record.batched_s, 0.0);
        }
        folded.merge(llm::foldBatchLog(episode.llm_batches));
    }

    // Two agents planning/communicating/reflecting each step must yield
    // real cross-agent batches and strictly positive modeled savings.
    EXPECT_GT(folded.cross_agent_batches, 0);
    EXPECT_GT(folded.occupancy(), 1.0);
    EXPECT_LT(folded.batched_s, folded.baseline_s);
}

TEST(EngineService, ChargedBatchingIsInertOnTheLegacyPath)
{
    // Without an engine-service session there is nothing to batch, so
    // the ablation must not touch the clock (the old code wrongly
    // applied the parallel-pipelines discount here).
    auto flagged = paradigmBatch(nullptr);
    for (auto &job : flagged)
        job.pipeline.batch_llm_calls = true;
    const auto legacy = runner::EpisodeRunner(1).run(paradigmBatch(nullptr));
    const auto inert = runner::EpisodeRunner(1).run(flagged);
    ASSERT_EQ(inert.size(), legacy.size());
    for (std::size_t i = 0; i < legacy.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        test::expectEpisodeIdentical(legacy[i], inert[i]);
    }
}

TEST(EngineService, MergeWindowFoldIsConservative)
{
    llm::LlmEngineService service;
    const auto episodes =
        runner::EpisodeRunner(2).run(paradigmBatch(&service));

    std::vector<std::vector<llm::BatchRecord>> logs;
    llm::BatchStats per_episode;
    for (const auto &episode : episodes) {
        // Arrival stamps are populated and non-decreasing in log order
        // (each flush stamps the episode clock, which only moves
        // forward).
        double last = 0.0;
        for (const auto &record : episode.llm_batches) {
            EXPECT_GE(record.sim_time_s, last);
            last = record.sim_time_s;
        }
        logs.push_back(episode.llm_batches);
        per_episode.merge(llm::foldBatchLog(episode.llm_batches));
    }

    const auto lockstep = llm::foldCrossEpisodeBatches(logs);

    // An infinite window IS the lockstep fold, bitwise.
    const auto infinite = llm::foldCrossEpisodeBatches(
        logs, std::numeric_limits<double>::infinity());
    EXPECT_EQ(infinite.batches, lockstep.batches);
    EXPECT_EQ(infinite.requests, lockstep.requests);
    EXPECT_EQ(infinite.baseline_s, lockstep.baseline_s);
    EXPECT_EQ(infinite.batched_s, lockstep.batched_s);

    // Any finite window refines the lockstep partition: no request is
    // lost, batch count can only grow, and the modeled savings can only
    // shrink — conservative instead of lockstep-optimistic.
    bool saw_refinement = false;
    for (const double window : {0.0, 15.0, 120.0}) {
        SCOPED_TRACE("window=" + std::to_string(window));
        const auto windowed = llm::foldCrossEpisodeBatches(logs, window);
        EXPECT_EQ(windowed.requests, lockstep.requests);
        EXPECT_GE(windowed.batches, lockstep.batches);
        EXPECT_LE(windowed.batches, per_episode.batches);
        EXPECT_NEAR(windowed.baseline_s, lockstep.baseline_s,
                    1e-9 * lockstep.baseline_s);
        EXPECT_LE(windowed.savedSeconds(),
                  lockstep.savedSeconds() * (1.0 + 1e-9) + 1e-9);
        saw_refinement |= windowed.batches > lockstep.batches;
    }
    EXPECT_TRUE(saw_refinement);

    // Arrival stamps are seed-dependent from the very first phase (the
    // sense latency precedes the first LLM flush), so a zero window
    // merges nothing: it degenerates to the per-episode fold, savings
    // included.
    const auto zero = llm::foldCrossEpisodeBatches(logs, 0.0);
    EXPECT_EQ(zero.batches, per_episode.batches);
    EXPECT_EQ(zero.requests, per_episode.requests);
    EXPECT_NEAR(zero.savedSeconds(), per_episode.savedSeconds(),
                1e-9 * per_episode.savedSeconds());
}

TEST(EngineService, CrossEpisodeFoldMergesLockstepBatches)
{
    llm::LlmEngineService service;
    const auto episodes =
        runner::EpisodeRunner(4).run(paradigmBatch(&service));

    std::vector<std::vector<llm::BatchRecord>> logs;
    llm::BatchStats per_episode;
    for (const auto &episode : episodes) {
        logs.push_back(episode.llm_batches);
        per_episode.merge(llm::foldBatchLog(episode.llm_batches));
    }

    const auto cross = llm::foldCrossEpisodeBatches(logs);
    // Merging loses no requests, only batch boundaries.
    EXPECT_EQ(cross.requests, per_episode.requests);
    EXPECT_LT(cross.batches, per_episode.batches);
    EXPECT_GT(cross.occupancy(), per_episode.occupancy());
    // Same baseline work (summation order differs, so compare to relative
    // precision), no worse — and here strictly better — joint time.
    EXPECT_NEAR(cross.baseline_s, per_episode.baseline_s,
                1e-9 * per_episode.baseline_s);
    EXPECT_LT(cross.batched_s, per_episode.batched_s);

    // Pure fold: running it again gives the same numbers bitwise.
    const auto again = llm::foldCrossEpisodeBatches(logs);
    EXPECT_EQ(again.batches, cross.batches);
    EXPECT_EQ(again.requests, cross.requests);
    EXPECT_EQ(again.baseline_s, cross.baseline_s);
    EXPECT_EQ(again.batched_s, cross.batched_s);
}

TEST(EngineService, UsageAccountingIsExactSerial)
{
    llm::LlmEngineService service;
    const auto episodes =
        runner::EpisodeRunner(1).run(paradigmBatch(&service));

    llm::LlmUsage summed;
    for (const auto &episode : episodes) {
        summed.calls += episode.llm.calls;
        summed.tokens_in += episode.llm.tokens_in;
        summed.tokens_out += episode.llm.tokens_out;
        summed.total_latency_s += episode.llm.total_latency_s;
    }

    const auto total = service.totalUsage();
    EXPECT_EQ(total.calls, summed.calls);
    EXPECT_EQ(total.tokens_in, summed.tokens_in);
    EXPECT_EQ(total.tokens_out, summed.tokens_out);
    // Accumulation order differs (per-backend vs. per-episode), so the
    // float sum is compared to relative precision, not bitwise.
    EXPECT_NEAR(total.total_latency_s, summed.total_latency_s,
                1e-9 * summed.total_latency_s);

    service.reset();
    const auto cleared = service.totalUsage();
    EXPECT_EQ(cleared.calls, 0u);
    EXPECT_EQ(cleared.tokens_in, 0);
    EXPECT_EQ(service.stats().batches, 0);
}

TEST(EngineService, UsageAccountingLosesNothingUnderWorkers)
{
    llm::LlmEngineService service;
    const auto episodes =
        runner::EpisodeRunner(4).run(paradigmBatch(&service));

    llm::LlmUsage summed;
    for (const auto &episode : episodes) {
        summed.calls += episode.llm.calls;
        summed.tokens_in += episode.llm.tokens_in;
        summed.tokens_out += episode.llm.tokens_out;
    }
    const auto total = service.totalUsage();
    EXPECT_EQ(total.calls, summed.calls);
    EXPECT_EQ(total.tokens_in, summed.tokens_in);
    EXPECT_EQ(total.tokens_out, summed.tokens_out);
}

TEST(EngineService, BackendsAreSharedPerProfile)
{
    llm::LlmEngineService service;
    const auto gpt4 = llm::ModelProfile::gpt4Api();
    const auto local = llm::ModelProfile::llama3_8bLocal();

    const auto a = service.backendFor(gpt4);
    const auto b = service.backendFor(gpt4);
    const auto c = service.backendFor(local);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(service.backendCount(), 2);
    EXPECT_EQ(service.backendName(a), gpt4.name);

    // A quantized variant is a different endpoint even under one name.
    auto tweaked = gpt4;
    tweaked.decode_tok_per_s *= 2.0;
    EXPECT_NE(service.backendFor(tweaked), a);

    // So is a differently-calibrated one (same name, same latency):
    // workloads tweak quality axes in place, and those must not merge
    // into another backend's usage accounting.
    auto recalibrated = local;
    recalibrated.reflect_quality = 0.99;
    EXPECT_NE(service.backendFor(recalibrated), c);
}

TEST(EngineService, BackendIdsAreRegistrationOrderIndependent)
{
    // Backend ids are pure functions of the profile, so two services
    // that discover the same profiles in opposite orders — the scheduler
    // race when concurrent episodes mix model mixes — agree on every id.
    const auto gpt4 = llm::ModelProfile::gpt4Api();
    const auto local = llm::ModelProfile::llama3_8bLocal();

    llm::LlmEngineService first;
    const auto gpt4_first = first.backendFor(gpt4);
    const auto local_first = first.backendFor(local);

    llm::LlmEngineService second;
    const auto local_second = second.backendFor(local);
    const auto gpt4_second = second.backendFor(gpt4);

    EXPECT_EQ(gpt4_first, gpt4_second);
    EXPECT_EQ(local_first, local_second);
}

TEST(EngineService, DetachedHandleMatchesPrivateEngine)
{
    const auto profile = llm::ModelProfile::gpt4Api();
    llm::LlmEngine engine(profile, sim::Rng(42));
    llm::EngineHandle handle(nullptr, profile, sim::Rng(42));

    llm::LlmRequest request;
    request.tokens_in = 900;
    request.tokens_out_mean = 80;
    for (int i = 0; i < 50; ++i) {
        const auto a = engine.complete(request);
        const auto b = handle.complete(request);
        EXPECT_EQ(a.latency_s, b.latency_s);
        EXPECT_EQ(a.tokens_in, b.tokens_in);
        EXPECT_EQ(a.tokens_out, b.tokens_out);
        EXPECT_EQ(a.parse_ok, b.parse_ok);
        EXPECT_EQ(a.good, b.good);
    }
    EXPECT_EQ(engine.usage().calls, handle.usage().calls);
    EXPECT_EQ(engine.usage().tokens_out, handle.usage().tokens_out);
    EXPECT_EQ(engine.usage().total_latency_s,
              handle.usage().total_latency_s);
}

TEST(EngineService, SharedServiceIsTheDefaultRoute)
{
    const core::EpisodeOptions options;
    EXPECT_EQ(options.engine_service, &llm::LlmEngineService::shared());
    const runner::EpisodeJob job;
    EXPECT_EQ(job.engine_service, &llm::LlmEngineService::shared());
}

} // namespace
