#include <gtest/gtest.h>

#include "core/vla.h"
#include "envs/craft_env.h"
#include "envs/manipulation_env.h"

namespace ebs::core {
namespace {

TEST(VlaProfile, PresetsAreDistinctAndSane)
{
    const auto rt2 = VlaProfile::rt2();
    const auto octo = VlaProfile::octo();
    const auto diffusion = VlaProfile::diffusionPolicy();
    // The 55B model runs slower than the small policies.
    EXPECT_GT(rt2.tick_latency_mean_s, octo.tick_latency_mean_s);
    EXPECT_GT(rt2.tick_latency_mean_s, diffusion.tick_latency_mean_s);
    // ...but generalizes better per primitive.
    EXPECT_GE(rt2.primitive_quality, octo.primitive_quality);
    for (const auto &p : {rt2, octo, diffusion}) {
        EXPECT_GT(p.primitive_quality, 0.0);
        EXPECT_LE(p.primitive_quality, 1.0);
        EXPECT_GT(p.horizon_decay, 0.0);
        EXPECT_LT(p.horizon_decay, 1.0);
        EXPECT_FALSE(p.name.empty());
    }
}

TEST(EndToEnd, SolvesShortHorizonManipulation)
{
    int ok = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        envs::ManipulationEnv environment(env::Difficulty::Easy, 1,
                                          sim::Rng(seed).fork(7));
        EpisodeOptions options;
        options.seed = seed;
        const auto r =
            runEndToEnd(environment, VlaProfile::rt2(), options);
        ok += r.success;
        EXPECT_GT(r.steps, 0);
        EXPECT_GT(r.sim_seconds, 0.0);
    }
    EXPECT_GE(ok, 4);
}

TEST(EndToEnd, FailsLongHorizonCrafting)
{
    int ok = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        envs::CraftEnv environment(env::Difficulty::Medium, 1,
                                   sim::Rng(seed).fork(7));
        EpisodeOptions options;
        options.seed = seed;
        ok += runEndToEnd(environment, VlaProfile::rt2(), options).success;
    }
    // The reactive paradigm cannot sustain the tech-tree dependency chain.
    EXPECT_LE(ok, 1);
}

TEST(EndToEnd, PerDecisionLatencyIsTiny)
{
    envs::ManipulationEnv environment(env::Difficulty::Easy, 1,
                                      sim::Rng(3).fork(7));
    EpisodeOptions options;
    options.seed = 3;
    const auto r = runEndToEnd(environment, VlaProfile::octo(), options);
    ASSERT_GT(r.steps, 0);
    EXPECT_LT(r.secondsPerStep(), 1.0); // vs ~10 s for the modular agent
}

TEST(EndToEnd, DeterministicForSameSeed)
{
    EpisodeOptions options;
    options.seed = 9;
    envs::ManipulationEnv env_a(env::Difficulty::Easy, 1,
                                sim::Rng(9).fork(7));
    envs::ManipulationEnv env_b(env::Difficulty::Easy, 1,
                                sim::Rng(9).fork(7));
    const auto a = runEndToEnd(env_a, VlaProfile::rt2(), options);
    const auto b = runEndToEnd(env_b, VlaProfile::rt2(), options);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);
}

TEST(EndToEnd, RespectsTickBudgetOverride)
{
    envs::CraftEnv environment(env::Difficulty::Hard, 1,
                               sim::Rng(5).fork(7));
    EpisodeOptions options;
    options.seed = 5;
    options.max_steps_override = 20;
    const auto r =
        runEndToEnd(environment, VlaProfile::octo(), options);
    EXPECT_FALSE(r.success);
    EXPECT_EQ(r.steps, 20);
}

TEST(EndToEnd, LatencyChargedToPlanningAndExecution)
{
    envs::ManipulationEnv environment(env::Difficulty::Easy, 1,
                                      sim::Rng(7).fork(7));
    EpisodeOptions options;
    options.seed = 7;
    const auto r = runEndToEnd(environment, VlaProfile::rt2(), options);
    EXPECT_GT(r.latency.total(stats::ModuleKind::Planning), 0.0);
    // No modular machinery ran.
    EXPECT_DOUBLE_EQ(r.latency.total(stats::ModuleKind::Memory), 0.0);
    EXPECT_DOUBLE_EQ(r.latency.total(stats::ModuleKind::Communication),
                     0.0);
    EXPECT_DOUBLE_EQ(r.latency.total(stats::ModuleKind::Reflection), 0.0);
}

} // namespace
} // namespace ebs::core
