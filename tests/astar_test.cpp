#include <gtest/gtest.h>

#include "env/grid.h"
#include "plan/astar.h"

namespace ebs::plan {
namespace {

using env::GridMap;
using env::Vec2i;

TEST(AStar, TrivialSameCell)
{
    GridMap g(5, 5);
    const auto path = aStar(g, {2, 2}, {2, 2});
    ASSERT_TRUE(path.has_value());
    EXPECT_DOUBLE_EQ(path->cost, 0.0);
    EXPECT_EQ(path->cells.size(), 1u);
}

TEST(AStar, StraightLineIsManhattan)
{
    GridMap g(10, 10);
    const auto path = aStar(g, {1, 1}, {6, 1});
    ASSERT_TRUE(path.has_value());
    EXPECT_DOUBLE_EQ(path->cost, 5.0);
    EXPECT_EQ(path->cells.front(), (Vec2i{1, 1}));
    EXPECT_EQ(path->cells.back(), (Vec2i{6, 1}));
}

TEST(AStar, OptimalOnOpenGrid)
{
    GridMap g(20, 20);
    const auto path = aStar(g, {0, 0}, {7, 9});
    ASSERT_TRUE(path.has_value());
    EXPECT_DOUBLE_EQ(path->cost, 16.0); // Manhattan distance, no obstacles
}

TEST(AStar, RoutesAroundWall)
{
    GridMap g(7, 7);
    for (int y = 0; y < 6; ++y)
        g.setWalkable({3, y}, false); // wall with a gap at y=6
    const auto path = aStar(g, {1, 0}, {5, 0});
    ASSERT_TRUE(path.has_value());
    EXPECT_GT(path->cost, 4.0);
    // Every step is unit-length and walkable.
    for (std::size_t i = 1; i < path->cells.size(); ++i) {
        EXPECT_EQ(env::manhattan(path->cells[i - 1], path->cells[i]), 1);
        EXPECT_TRUE(g.walkable(path->cells[i]));
    }
}

TEST(AStar, UnreachableReturnsNullopt)
{
    GridMap g(7, 7);
    for (int y = 0; y < 7; ++y)
        g.setWalkable({3, y}, false); // full wall
    EXPECT_FALSE(aStar(g, {1, 1}, {5, 1}).has_value());
}

TEST(AStar, StartOnWallFails)
{
    GridMap g(5, 5);
    g.setWalkable({1, 1}, false);
    EXPECT_FALSE(aStar(g, {1, 1}, {3, 3}).has_value());
}

TEST(AStar, OutOfBoundsFails)
{
    GridMap g(5, 5);
    EXPECT_FALSE(aStar(g, {0, 0}, {9, 9}).has_value());
    EXPECT_FALSE(aStar(g, {-1, 0}, {2, 2}).has_value());
}

TEST(AStar, AdjacentOkStopsNextToGoal)
{
    GridMap g(8, 8);
    const auto path = aStar(g, {0, 0}, {5, 5}, /*adjacent_ok=*/true);
    ASSERT_TRUE(path.has_value());
    EXPECT_LE(env::chebyshev(path->cells.back(), {5, 5}), 1);
    EXPECT_LT(path->cost, 10.0);
}

TEST(AStar, AdjacentOkReachesUnwalkableGoal)
{
    GridMap g(8, 8);
    g.setWalkable({5, 5}, false); // object on furniture
    EXPECT_FALSE(aStar(g, {0, 0}, {5, 5}).has_value());
    const auto path = aStar(g, {0, 0}, {5, 5}, /*adjacent_ok=*/true);
    ASSERT_TRUE(path.has_value());
    EXPECT_LE(env::chebyshev(path->cells.back(), {5, 5}), 1);
}

TEST(AStar, BlockedCellsAvoided)
{
    GridMap g(5, 3);
    // Corridor at y=1 only.
    for (int x = 0; x < 5; ++x) {
        g.setWalkable({x, 0}, false);
        g.setWalkable({x, 2}, false);
    }
    const std::vector<Vec2i> blocked = {{2, 1}};
    EXPECT_TRUE(aStar(g, {0, 1}, {4, 1}).has_value());
    EXPECT_FALSE(aStar(g, {0, 1}, {4, 1}, false, &blocked).has_value());
}

TEST(AStar, BlockedDetourTaken)
{
    GridMap g(5, 5);
    const std::vector<Vec2i> blocked = {{2, 2}};
    const auto direct = aStar(g, {0, 2}, {4, 2});
    const auto detour = aStar(g, {0, 2}, {4, 2}, false, &blocked);
    ASSERT_TRUE(direct.has_value());
    ASSERT_TRUE(detour.has_value());
    EXPECT_GE(detour->cost, direct->cost);
    for (const auto &cell : detour->cells)
        EXPECT_FALSE(cell == (Vec2i{2, 2}));
}

TEST(AStar, ExpansionCounterPopulated)
{
    GridMap g(30, 30);
    ASSERT_TRUE(aStar(g, {0, 0}, {29, 29}).has_value());
    EXPECT_GT(aStarLastExpanded(), 0u);
}

TEST(AStar, ApartmentCrossRoomPath)
{
    const GridMap g = GridMap::apartment(3, 3, 6, 6);
    const auto path = aStar(g, {1, 1}, {g.width() - 2, g.height() - 2});
    ASSERT_TRUE(path.has_value());
    EXPECT_GT(path->cost, 0.0);
}

/** Property: A* cost equals Manhattan distance on an empty grid, for a
 * sweep of endpoints. */
class AStarManhattanSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(AStarManhattanSweep, CostIsManhattan)
{
    const auto [gx, gy] = GetParam();
    GridMap g(25, 25);
    const auto path = aStar(g, {3, 4}, {gx, gy});
    ASSERT_TRUE(path.has_value());
    EXPECT_DOUBLE_EQ(path->cost, env::manhattan({3, 4}, {gx, gy}));
}

INSTANTIATE_TEST_SUITE_P(Endpoints, AStarManhattanSweep,
                         ::testing::Combine(::testing::Values(0, 7, 12, 24),
                                            ::testing::Values(0, 9, 24)));

} // namespace
} // namespace ebs::plan
