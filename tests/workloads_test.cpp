#include <gtest/gtest.h>

#include <set>

#include "workloads/workload.h"

namespace ebs::workloads {
namespace {

TEST(Suite, HasFourteenWorkloads)
{
    EXPECT_EQ(suite().size(), 14u);
}

TEST(Suite, NamesAreUniqueAndLookupWorks)
{
    std::set<std::string> names;
    for (const auto &spec : suite()) {
        EXPECT_TRUE(names.insert(spec.name).second)
            << "duplicate workload " << spec.name;
        EXPECT_EQ(&workload(spec.name), &spec);
    }
}

TEST(Suite, ParadigmCountsMatchPaper)
{
    int single = 0, central = 0, decentral = 0;
    for (const auto &spec : suite()) {
        switch (spec.paradigm) {
          case Paradigm::SingleModular:
            ++single;
            break;
          case Paradigm::MultiCentralized:
            ++central;
            break;
          case Paradigm::MultiDecentralized:
            ++decentral;
            break;
        }
    }
    EXPECT_EQ(single, 5);    // EmbodiedGPT, JARVIS-1, DaDu-E, MP5, DEPS
    EXPECT_EQ(central, 4);   // MindAgent, OLA, COHERENT, CMAS
    EXPECT_EQ(decentral, 5); // CoELA, COMBO, RoCo, DMAS, HMAS
}

TEST(Suite, TableIiModuleCompositions)
{
    // Spot-check the module composition columns of Table II.
    const auto &coela = workload("CoELA");
    EXPECT_TRUE(coela.config.has_communication);
    EXPECT_FALSE(coela.config.has_reflection);
    EXPECT_TRUE(coela.config.llm_action_selection);

    const auto &jarvis = workload("JARVIS-1");
    EXPECT_FALSE(jarvis.config.has_communication);
    EXPECT_TRUE(jarvis.config.has_memory);
    EXPECT_TRUE(jarvis.config.has_reflection);

    const auto &mp5 = workload("MP5");
    EXPECT_FALSE(mp5.config.has_memory);
    EXPECT_TRUE(mp5.config.has_reflection);

    const auto &mindagent = workload("MindAgent");
    EXPECT_FALSE(mindagent.config.has_sensing);
    EXPECT_FALSE(mindagent.config.has_reflection);

    const auto &embodied_gpt = workload("EmbodiedGPT");
    EXPECT_FALSE(embodied_gpt.config.has_memory);
    EXPECT_FALSE(embodied_gpt.config.has_reflection);
    EXPECT_FALSE(embodied_gpt.config.has_communication);
}

TEST(Suite, BackendsMatchTableIi)
{
    EXPECT_TRUE(workload("JARVIS-1").config.planner_model.remote); // GPT-4
    EXPECT_FALSE(workload("DaDu-E").config.planner_model.remote); // Llama-8B
    EXPECT_FALSE(workload("COMBO").config.planner_model.remote); // LLaVA-7B
    EXPECT_FALSE(
        workload("EmbodiedGPT").config.planner_model.remote); // Llama-7B
    EXPECT_TRUE(workload("RoCo").config.planner_model.remote);
}

TEST(Suite, SingleAgentWorkloadsForceOneAgent)
{
    const auto &spec = workload("JARVIS-1");
    core::EpisodeOptions options;
    options.seed = 1;
    options.max_steps_override = 2;
    // Even if callers request more agents, single-agent systems run one.
    const auto result = spec.run(env::Difficulty::Easy, options, 4);
    EXPECT_GT(result.steps, 0);
}

/** Every workload runs an easy episode without tripping assertions and
 * produces sane accounting. */
class SuiteRunSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SuiteRunSweep, EasyEpisodeIsSane)
{
    const auto &spec = suite()[static_cast<std::size_t>(GetParam())];
    core::EpisodeOptions options;
    options.seed = 42;
    const auto result = spec.run(env::Difficulty::Easy, options);

    EXPECT_GT(result.steps, 0);
    EXPECT_GT(result.sim_seconds, 0.0);
    EXPECT_GT(result.llm.calls, 0u);
    EXPECT_GE(result.final_progress, 0.0);
    EXPECT_LE(result.final_progress, 1.0);
    // LLM-based modules are the dominant latency contributors (paper
    // Takeaway 1: ~70% on average; allow a broad band per system).
    const double llm_share =
        result.latency.fraction(stats::ModuleKind::Planning) +
        result.latency.fraction(stats::ModuleKind::Communication) +
        result.latency.fraction(stats::ModuleKind::Reflection);
    EXPECT_GT(llm_share, 0.2);
    EXPECT_LT(llm_share, 1.0);
}

TEST_P(SuiteRunSweep, EasyMostlySucceedsAcrossSeeds)
{
    const auto &spec = suite()[static_cast<std::size_t>(GetParam())];
    int ok = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        core::EpisodeOptions options;
        options.seed = seed;
        ok += spec.run(env::Difficulty::Easy, options).success;
    }
    // State-of-the-art systems complete their easy benchmark tasks most of
    // the time.
    EXPECT_GE(ok, 3) << spec.name;
}

TEST_P(SuiteRunSweep, DeterministicForSameSeed)
{
    const auto &spec = suite()[static_cast<std::size_t>(GetParam())];
    core::EpisodeOptions options;
    options.seed = 77;
    options.max_steps_override = 6;
    const auto a = spec.run(env::Difficulty::Easy, options);
    const auto b = spec.run(env::Difficulty::Easy, options);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.success, b.success);
    EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);
    EXPECT_EQ(a.llm.tokens_in, b.llm.tokens_in);
}

INSTANTIATE_TEST_SUITE_P(All14, SuiteRunSweep, ::testing::Range(0, 14),
                         [](const auto &info) {
                             std::string name =
                                 suite()[static_cast<std::size_t>(info.param)]
                                     .name;
                             for (auto &ch : name)
                                 if (!std::isalnum(
                                         static_cast<unsigned char>(ch)))
                                     ch = '_';
                             return name;
                         });

} // namespace
} // namespace ebs::workloads
