#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "stats/aggregate.h"
#include "stats/csv.h"
#include "stats/histogram.h"
#include "stats/latency_recorder.h"
#include "stats/phase_wall.h"
#include "stats/table.h"

namespace ebs::stats {
namespace {

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.add(4.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 4.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStat, KnownMoments)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0); // classic population-stddev example
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Percentile, MedianAndExtremes)
{
    std::vector<double> v = {5, 1, 3, 2, 4};
    EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
}

TEST(Percentile, Interpolates)
{
    std::vector<double> v = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
    EXPECT_DOUBLE_EQ(percentile(v, 75), 7.5);
}

TEST(Percentile, SingleSample)
{
    EXPECT_DOUBLE_EQ(percentile({42.0}, 99), 42.0);
}

TEST(Histogram, CountsAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);   // bucket 0
    h.add(9.9);   // bucket 4
    h.add(-3.0);  // clamped to bucket 0
    h.add(100.0); // clamped to bucket 4
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(4), 2u);
    EXPECT_EQ(h.totalCount(), 4u);
}

TEST(Histogram, BucketEdges)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.bucketLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketHi(0), 2.0);
    EXPECT_DOUBLE_EQ(h.bucketLo(4), 8.0);
    EXPECT_DOUBLE_EQ(h.bucketHi(4), 10.0);
}

TEST(Histogram, RenderContainsBars)
{
    Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    h.add(0.6);
    h.add(1.5);
    const std::string out = h.render(10);
    EXPECT_NE(out.find('#'), std::string::npos);
    EXPECT_NE(out.find("2"), std::string::npos);
}

TEST(Table, AlignedRender)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::pct(0.425, 1), "42.5%");
}

TEST(Csv, EscapesSpecialCharacters)
{
    EXPECT_EQ(csvEscape("plain"), "plain");
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows)
{
    std::ostringstream os;
    CsvWriter csv(os, {"x", "y"});
    csv.row({"1", "2"});
    csv.row({"a,b", "3"});
    EXPECT_EQ(os.str(), "x,y\n1,2\n\"a,b\",3\n");
}

TEST(LatencyRecorder, AccumulatesPerModule)
{
    LatencyRecorder rec;
    rec.record(ModuleKind::Planning, 2.0);
    rec.record(ModuleKind::Planning, 3.0);
    rec.record(ModuleKind::Execution, 5.0);
    EXPECT_DOUBLE_EQ(rec.total(ModuleKind::Planning), 5.0);
    EXPECT_EQ(rec.count(ModuleKind::Planning), 2u);
    EXPECT_DOUBLE_EQ(rec.grandTotal(), 10.0);
    EXPECT_DOUBLE_EQ(rec.fraction(ModuleKind::Planning), 0.5);
    EXPECT_DOUBLE_EQ(rec.fraction(ModuleKind::Sensing), 0.0);
}

TEST(LatencyRecorder, EmptyFractionIsZero)
{
    LatencyRecorder rec;
    EXPECT_DOUBLE_EQ(rec.fraction(ModuleKind::Planning), 0.0);
}

TEST(LatencyRecorder, MergeAndReset)
{
    LatencyRecorder a, b;
    a.record(ModuleKind::Memory, 1.0);
    b.record(ModuleKind::Memory, 2.0);
    b.record(ModuleKind::Sensing, 4.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.total(ModuleKind::Memory), 3.0);
    EXPECT_DOUBLE_EQ(a.total(ModuleKind::Sensing), 4.0);
    a.reset();
    EXPECT_DOUBLE_EQ(a.grandTotal(), 0.0);
}

TEST(PhaseWallClock, BucketsAndResetAreExact)
{
    // A private instance, not shared(): the process-wide one is fed by
    // any episode the other tests run, so exact-equality asserts would
    // race. reset()/snapshot() bracket a measured section.
    PhaseWallClock clock;
    clock.addCompute(0.25);
    clock.addCompute(0.25);
    clock.addExecute(0.5);
    clock.addEpisode();
    const auto snap = clock.snapshot();
    EXPECT_EQ(snap.compute_s, 0.5); // 0.25 sums are exact in binary
    EXPECT_EQ(snap.execute_s, 0.5);
    EXPECT_EQ(snap.episodes, 1);

    clock.reset();
    const auto zeroed = clock.snapshot();
    EXPECT_EQ(zeroed.compute_s, 0.0);
    EXPECT_EQ(zeroed.execute_s, 0.0);
    EXPECT_EQ(zeroed.episodes, 0);

    // The buckets keep accumulating after a reset (benches never reset;
    // tests may bracket repeatedly).
    clock.addExecute(0.25);
    EXPECT_EQ(clock.snapshot().execute_s, 0.25);
}

TEST(PhaseWallClock, ConcurrentAddsNeverDropABucket)
{
    // Hammer one instance from several threads with exactly
    // representable increments: the mutex-guarded tallies must come out
    // exact (a lost update would show as a missing multiple of 0.25).
    PhaseWallClock clock;
    constexpr int kThreads = 8;
    constexpr int kAddsPerThread = 1000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&clock] {
            for (int i = 0; i < kAddsPerThread; ++i) {
                clock.addCompute(0.25);
                clock.addExecute(0.25);
            }
            clock.addEpisode();
        });
    }
    for (auto &thread : threads)
        thread.join();
    const auto snap = clock.snapshot();
    EXPECT_EQ(snap.compute_s, 0.25 * kThreads * kAddsPerThread);
    EXPECT_EQ(snap.execute_s, 0.25 * kThreads * kAddsPerThread);
    EXPECT_EQ(snap.episodes, kThreads);
}

TEST(ModuleKind, NamesAndIteration)
{
    EXPECT_EQ(moduleKindName(ModuleKind::Planning), "Planning");
    EXPECT_EQ(moduleKindName(ModuleKind::Communication), "Communication");
    const auto all = allModuleKinds();
    EXPECT_EQ(all.size(), kNumModuleKinds);
    EXPECT_EQ(all.front(), ModuleKind::Sensing);
    EXPECT_EQ(all.back(), ModuleKind::Other);
}

} // namespace
} // namespace ebs::stats
