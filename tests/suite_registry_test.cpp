#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "llm/engine_service.h"
#include "stats/phase_wall.h"
#include "suite.h"

/**
 * Unit tests for the in-process suite registry and SuiteContext
 * (bench/suite.h): registration order vs. sorted listing, sink capture,
 * smoke-mode seed clamping, and the stamping that re-points
 * process-global service/clock/tracer defaults at the per-suite
 * instances.
 */

namespace {

using ebs::bench::SuiteContext;
using ebs::bench::SuiteInfo;
using ebs::bench::SuiteRegistry;

int
dummySuite(SuiteContext &)
{
    return 0;
}

// Registered the way a real suite registers (static initializer).
EBS_BENCH_SUITE("bench_zz_macro", "macro-registered test suite",
                dummySuite);

/** Read everything written to a tmpfile-backed sink. */
std::string
drained(std::FILE *f)
{
    std::fflush(f);
    std::rewind(f);
    std::string text;
    char buf[256];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    return text;
}

TEST(SuiteRegistry, SortedListingAndLookup)
{
    auto &registry = SuiteRegistry::instance();
    registry.add({"bench_aa_added", "added after the macro", dummySuite});

    const auto &suites = registry.suites();
    ASSERT_GE(suites.size(), 2u);
    for (std::size_t i = 1; i < suites.size(); ++i)
        EXPECT_LT(suites[i - 1].name, suites[i].name);

    const SuiteInfo *found = registry.find("bench_zz_macro");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->description, "macro-registered test suite");
    EXPECT_EQ(found->fn, &dummySuite);
    EXPECT_NE(registry.find("bench_aa_added"), nullptr);
    EXPECT_EQ(registry.find("bench_not_registered"), nullptr);
}

TEST(SuiteContext, SinksCaptureEveryWrite)
{
    std::FILE *out = std::tmpfile();
    std::FILE *err = std::tmpfile();
    ASSERT_NE(out, nullptr);
    ASSERT_NE(err, nullptr);
    {
        SuiteContext::Config config;
        config.out = out;
        config.err = err;
        SuiteContext ctx(config);
        ctx.printf("table %d\n", 7);
        ctx.write("raw bytes");
        ctx.eprintf("diag %.1f\n", 0.5);
        EXPECT_EQ(ctx.out(), out);
        EXPECT_EQ(ctx.err(), err);
    }
    EXPECT_EQ(drained(out), "table 7\nraw bytes");
    EXPECT_EQ(drained(err), "diag 0.5\n");
    std::fclose(out);
    std::fclose(err);
}

TEST(SuiteContext, SmokeClampsSeeds)
{
    SuiteContext::Config config;
    config.smoke = true;
    SuiteContext smoke_ctx(config);
    EXPECT_TRUE(smoke_ctx.smoke());
    EXPECT_EQ(smoke_ctx.seedCount(12), 1);

    SuiteContext full_ctx({});
    EXPECT_FALSE(full_ctx.smoke());
    EXPECT_EQ(full_ctx.seedCount(12), 12);
}

TEST(SuiteContext, ArgsPassThrough)
{
    SuiteContext::Config config;
    config.args = {"--window=0.5", "extra"};
    SuiteContext ctx(config);
    EXPECT_EQ(ctx.args(),
              (std::vector<std::string>{"--window=0.5", "extra"}));
}

TEST(SuiteContext, StampingRepointsSharedDefaultsOnly)
{
    SuiteContext ctx({});

    // A job left at the process-global defaults gets the per-suite
    // instances — the substitution that keeps per-suite accounting
    // (service summaries, phase-wall splits, trace tracks) intact
    // without process isolation.
    ebs::runner::EpisodeJob defaulted;
    ASSERT_EQ(defaulted.engine_service,
              &ebs::llm::LlmEngineService::shared());
    const auto stamped = ctx.stamped(defaulted);
    EXPECT_EQ(stamped.engine_service, &ctx.engineService());
    EXPECT_EQ(stamped.phase_wall, &ctx.phaseWall());
    EXPECT_EQ(stamped.tracer, &ctx.tracer());

    // Deliberately-private services pass through untouched (the
    // charged/queued ablation pattern in bench_engine_service).
    ebs::llm::LlmEngineService private_service;
    ebs::runner::EpisodeJob pinned;
    pinned.engine_service = &private_service;
    pinned.tracer = &ctx.tracer();
    const auto kept = ctx.stamped(pinned);
    EXPECT_EQ(kept.engine_service, &private_service);

    // Without a caller-provided tracer the context owns a private one
    // (per-suite trace tracks); a provided tracer is used as-is.
    SuiteContext own_tracer_ctx({});
    EXPECT_NE(&own_tracer_ctx.tracer(), &ebs::obs::Tracer::shared());
    SuiteContext::Config shared_config;
    shared_config.tracer = &ebs::obs::Tracer::shared();
    SuiteContext shared_tracer_ctx(shared_config);
    EXPECT_EQ(&shared_tracer_ctx.tracer(), &ebs::obs::Tracer::shared());
}

TEST(SuiteContext, MetricEmissionFormat)
{
    std::FILE *out = std::tmpfile();
    ASSERT_NE(out, nullptr);
    SuiteContext::Config config;
    config.out = out;
    SuiteContext ctx(config);
    ctx.emitScalarMetric("demo/case", "spec_exec_speedup", 1.25);
    EXPECT_EQ(drained(out),
              "EBS_METRIC {\"case\":\"demo/case\","
              "\"spec_exec_speedup\":1.250000}\n");
    std::fclose(out);
}

} // namespace
