/**
 * @file
 * Tests for the paper-metric regression differ (stats/metric_diff.h):
 * parsing the BENCH_results.json shape run_all emits, tolerance
 * semantics, direction awareness (success down vs. latency up), and
 * missing-case handling. bench/diff_metrics is a thin CLI over this.
 */

#include <string>

#include <gtest/gtest.h>

#include "stats/metric_diff.h"

namespace {

using namespace ebs::stats;

/** A minimal but structurally faithful BENCH_results.json. */
std::string
benchJson(double success, double s_per_step, double tokens)
{
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"schema_version\": 2,\n"
        "  \"smoke\": true,\n"
        "  \"suites\": {\n"
        "    \"bench_x\": {\n"
        "      \"exit_code\": 0,\n"
        "      \"wall_seconds\": 1.25,\n"
        "      \"max_rss_kb\": 9000,\n"
        "      \"paper_metrics\": [\n"
        "        {\"case\":\"alpha\",\"episodes\":4,"
        "\"success_rate\":%.4f,\"s_per_step\":%.4f,"
        "\"tokens_per_episode\":%.1f},\n"
        "        {\"case\":\"beta\",\"success_rate\":0.5000,"
        "\"ignored\":null}\n"
        "      ]\n"
        "    },\n"
        "    \"bench_empty\": {\n"
        "      \"exit_code\": 0,\n"
        "      \"paper_metrics\": []\n"
        "    }\n"
        "  }\n"
        "}\n",
        success, s_per_step, tokens);
    return buf;
}

TEST(MetricDiffParse, ExtractsSuiteCaseAndNumericFields)
{
    std::string error;
    const auto entries =
        parseBenchResults(benchJson(0.75, 12.5, 30000), &error);
    EXPECT_TRUE(error.empty()) << error;
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].suite, "bench_x");
    EXPECT_EQ(entries[0].case_name, "alpha");
    EXPECT_DOUBLE_EQ(entries[0].values.at("success_rate"), 0.75);
    EXPECT_DOUBLE_EQ(entries[0].values.at("s_per_step"), 12.5);
    EXPECT_DOUBLE_EQ(entries[0].values.at("episodes"), 4.0);
    EXPECT_EQ(entries[1].case_name, "beta");
    // null metrics are skipped, not zeroed.
    EXPECT_EQ(entries[1].values.count("ignored"), 0u);
}

TEST(MetricDiffParse, MalformedInputReportsError)
{
    std::string error;
    EXPECT_TRUE(parseBenchResults("{\"suites\": {", &error).empty());
    EXPECT_FALSE(error.empty());

    error.clear();
    EXPECT_TRUE(parseBenchResults("[1,2,3] trailing", &error).empty());
    EXPECT_FALSE(error.empty());
}

TEST(MetricDiffParse, EmptyDocumentHasNoEntries)
{
    std::string error;
    EXPECT_TRUE(parseBenchResults("{}", &error).empty());
    EXPECT_TRUE(error.empty());
}

/** Wrap one paper_metrics object literal in the run_all envelope. */
std::string
wrapMetricObject(const std::string &object_json)
{
    return "{\"suites\":{\"bench_x\":{\"paper_metrics\":[" + object_json +
           "]}}}";
}

TEST(MetricDiffParse, UnicodeEscapesDecodeInsteadOfAliasing)
{
    // Two keys differing only inside a \uXXXX escape used to both decode
    // to "k?" and alias to one metric, comparing against the wrong
    // baseline value. They must stay distinct (decoded to UTF-8).
    std::string error;
    const auto entries = parseBenchResults(
        wrapMetricObject("{\"case\":\"alpha\","
                         "\"k\\u00e9\":1.0,\"k\\u00e8\":2.0}"),
        &error);
    EXPECT_TRUE(error.empty()) << error;
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].values.size(), 2u);
    EXPECT_DOUBLE_EQ(entries[0].values.at("k\xC3\xA9"), 1.0);
    EXPECT_DOUBLE_EQ(entries[0].values.at("k\xC3\xA8"), 2.0);

    // ASCII, multi-byte, and surrogate-pair escapes all decode.
    error.clear();
    const auto decoded = parseBenchResults(
        wrapMetricObject("{\"case\":\"A\\u0042\\u20ac"
                         "\\ud83d\\ude00\",\"v\":1.0}"),
        &error);
    EXPECT_TRUE(error.empty()) << error;
    ASSERT_EQ(decoded.size(), 1u);
    EXPECT_EQ(decoded[0].case_name, "AB\xE2\x82\xAC\xF0\x9F\x98\x80");
}

TEST(MetricDiffParse, MalformedEscapesFailTheParse)
{
    const char *bad[] = {
        "{\"case\":\"x\\u12\",\"v\":1}",       // truncated hex
        "{\"case\":\"x\\u12zq\",\"v\":1}",     // non-hex digit
        "{\"case\":\"x\\ud800\",\"v\":1}",     // unpaired high surrogate
        "{\"case\":\"x\\ud800\\u0041\",\"v\":1}", // bad low surrogate
        "{\"case\":\"x\\udc00\",\"v\":1}",     // unpaired low surrogate
        "{\"case\":\"x\\q\",\"v\":1}",         // unknown escape
    };
    for (const char *object_json : bad) {
        std::string error;
        EXPECT_TRUE(
            parseBenchResults(wrapMetricObject(object_json), &error)
                .empty())
            << object_json;
        EXPECT_FALSE(error.empty()) << object_json;
    }
}

TEST(MetricDiffParse, ControlCharacterEscapesDecode)
{
    std::string error;
    const auto entries = parseBenchResults(
        wrapMetricObject(
            "{\"case\":\"a\\b\\f\\r\\n\\tb\\/c\",\"v\":1.0}"),
        &error);
    EXPECT_TRUE(error.empty()) << error;
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].case_name, "a\b\f\r\n\tb/c");
}

TEST(MetricDiff, IdenticalFilesAreClean)
{
    std::string error;
    const auto entries =
        parseBenchResults(benchJson(0.8, 10.0, 20000), &error);
    const auto report = diffMetrics(entries, entries, DiffOptions{});
    EXPECT_TRUE(report.ok);
    EXPECT_TRUE(report.regressions.empty());
    EXPECT_TRUE(report.improvements.empty());
    EXPECT_TRUE(report.missing_cases.empty());
    EXPECT_GT(report.compared_values, 0);
}

TEST(MetricDiff, DirectionalRegressionsAreFlagged)
{
    std::string error;
    const auto old_entries =
        parseBenchResults(benchJson(0.8, 10.0, 20000), &error);
    // Success collapses, latency doubles, tokens double: 3 regressions.
    const auto new_entries =
        parseBenchResults(benchJson(0.2, 20.0, 40000), &error);
    DiffOptions options;
    options.abs_tol = 0.05;
    options.rel_tol = 0.10;
    const auto report = diffMetrics(old_entries, new_entries, options);
    EXPECT_FALSE(report.ok);
    ASSERT_EQ(report.regressions.size(), 3u);
    for (const auto &delta : report.regressions)
        EXPECT_TRUE(delta.regression);
}

TEST(MetricDiff, ImprovementsAreNotRegressions)
{
    std::string error;
    const auto old_entries =
        parseBenchResults(benchJson(0.5, 20.0, 40000), &error);
    const auto new_entries =
        parseBenchResults(benchJson(0.9, 10.0, 20000), &error);
    const auto report =
        diffMetrics(old_entries, new_entries, DiffOptions{});
    EXPECT_TRUE(report.ok);
    EXPECT_TRUE(report.regressions.empty());
    EXPECT_EQ(report.improvements.size(), 3u);

    // --fail-on-improvement enforces the acknowledged-refresh policy:
    // in a deterministic sim an out-of-tolerance improvement is a real
    // code-driven change, and a stale baseline would mask the reverse
    // regression later.
    DiffOptions strict;
    strict.fail_on_improvement = true;
    EXPECT_FALSE(diffMetrics(old_entries, new_entries, strict).ok);
}

TEST(MetricDiff, AnchoredMetricsFlagDriftInEitherDirection)
{
    // Calibration targets (llm_latency_share ~ paper's 0.70) regress by
    // drifting away from the baseline either way — a "rise" is not an
    // improvement.
    auto entry = [](double share) {
        std::vector<MetricEntry> entries(1);
        entries[0].suite = "bench_fig2";
        entries[0].case_name = "aggregate";
        entries[0].values["llm_latency_share"] = share;
        return entries;
    };

    DiffOptions options;
    options.abs_tol = 0.05;
    options.rel_tol = 0.10;
    for (const double drifted : {0.10, 0.99}) {
        const auto report =
            diffMetrics(entry(0.70), entry(drifted), options);
        EXPECT_FALSE(report.ok) << "drift to " << drifted;
        ASSERT_EQ(report.regressions.size(), 1u);
        EXPECT_TRUE(report.improvements.empty());
    }
    EXPECT_TRUE(diffMetrics(entry(0.70), entry(0.72), options).ok);
}

TEST(MetricDiff, ToleranceSuppressesSmallDrift)
{
    std::string error;
    const auto old_entries =
        parseBenchResults(benchJson(0.80, 10.0, 20000), &error);
    const auto new_entries =
        parseBenchResults(benchJson(0.76, 10.8, 21500), &error);
    DiffOptions options;
    options.abs_tol = 0.05; // covers the 0.04 success drop
    options.rel_tol = 0.10; // covers the 8% latency / token drift
    const auto report = diffMetrics(old_entries, new_entries, options);
    EXPECT_TRUE(report.ok) << report.regressions.size();

    // Tightening both tolerances exposes the same drift.
    options.abs_tol = 0.01;
    options.rel_tol = 0.02;
    EXPECT_FALSE(
        diffMetrics(old_entries, new_entries, options).ok);
}

TEST(MetricDiff, MissingCasesWarnByDefaultFailOnRequest)
{
    std::string error;
    const auto old_entries =
        parseBenchResults(benchJson(0.8, 10.0, 20000), &error);
    std::vector<MetricEntry> new_entries;
    new_entries.push_back(old_entries[0]); // "beta" disappears

    DiffOptions options;
    auto report = diffMetrics(old_entries, new_entries, options);
    EXPECT_TRUE(report.ok);
    ASSERT_EQ(report.missing_cases.size(), 1u);
    EXPECT_EQ(report.missing_cases[0], "bench_x/beta");

    options.fail_on_missing = true;
    report = diffMetrics(old_entries, new_entries, options);
    EXPECT_FALSE(report.ok);
}

TEST(MetricDiff, MissingMetricKeysWarnByDefaultFailOnRequest)
{
    std::string error;
    const auto old_entries =
        parseBenchResults(benchJson(0.8, 10.0, 20000), &error);
    auto new_entries = old_entries;
    // The case stays but one of its metrics vanishes — the gate must not
    // silently pass on the shrunken comparison.
    new_entries[0].values.erase("s_per_step");

    DiffOptions options;
    auto report = diffMetrics(old_entries, new_entries, options);
    EXPECT_TRUE(report.ok);
    EXPECT_TRUE(report.missing_cases.empty());
    ASSERT_EQ(report.missing_metrics.size(), 1u);
    EXPECT_EQ(report.missing_metrics[0], "bench_x/alpha:s_per_step");

    options.fail_on_missing = true;
    report = diffMetrics(old_entries, new_entries, options);
    EXPECT_FALSE(report.ok);
    EXPECT_TRUE(report.regressions.empty());
}

TEST(MetricDiff, NewCasesAreInformational)
{
    std::string error;
    const auto new_entries =
        parseBenchResults(benchJson(0.8, 10.0, 20000), &error);
    std::vector<MetricEntry> old_entries;
    old_entries.push_back(new_entries[0]);

    const auto report =
        diffMetrics(old_entries, new_entries, DiffOptions{});
    EXPECT_TRUE(report.ok);
    ASSERT_EQ(report.new_cases.size(), 1u);
    EXPECT_EQ(report.new_cases[0], "bench_x/beta");
}

TEST(MetricDiff, DuplicateCaseEntriesAreMergedNotShadowed)
{
    // run_all emits one entry per EBS_METRIC line, and benches emit
    // several lines per case (emitMetric + emitScalarMetric): the diff
    // must compare the union of their values, not the last line only.
    auto split = [](double success, double occupancy) {
        std::vector<MetricEntry> entries(2);
        entries[0].suite = "bench_x";
        entries[0].case_name = "alpha";
        entries[0].values["success_rate"] = success;
        entries[1].suite = "bench_x";
        entries[1].case_name = "alpha";
        entries[1].values["batch_occupancy"] = occupancy;
        return entries;
    };

    DiffOptions options;
    options.abs_tol = 0.05;
    options.rel_tol = 0.10;

    // A success_rate collapse in the FIRST duplicate must still flag
    // even though a later entry re-uses the same (suite, case).
    auto report = diffMetrics(split(0.9, 3.0), split(0.1, 3.0), options);
    ASSERT_EQ(report.regressions.size(), 1u);
    EXPECT_EQ(report.regressions[0].key, "success_rate");
    EXPECT_EQ(report.compared_values, 2);
    EXPECT_TRUE(report.new_cases.empty());
    EXPECT_TRUE(report.missing_cases.empty());

    // And an occupancy collapse in the SECOND duplicate flags too.
    report = diffMetrics(split(0.9, 3.0), split(0.9, 1.0), options);
    ASSERT_EQ(report.regressions.size(), 1u);
    EXPECT_EQ(report.regressions[0].key, "batch_occupancy");
}

TEST(MetricDiff, DirectionTable)
{
    EXPECT_EQ(metricDirection("success_rate"),
              MetricDirection::HigherIsBetter);
    EXPECT_EQ(metricDirection("batch_occupancy"),
              MetricDirection::HigherIsBetter);
    EXPECT_EQ(metricDirection("cross_episode_occupancy"),
              MetricDirection::HigherIsBetter);
    EXPECT_EQ(metricDirection("cross_episode_saved_pct"),
              MetricDirection::HigherIsBetter);
    EXPECT_EQ(metricDirection("batch_charge_saved_pct"),
              MetricDirection::HigherIsBetter);
    EXPECT_EQ(metricDirection("cross_episode_windowed_occupancy"),
              MetricDirection::HigherIsBetter);
    EXPECT_EQ(metricDirection("cross_episode_windowed_saved_pct"),
              MetricDirection::HigherIsBetter);
    EXPECT_EQ(metricDirection("backend_occupancy"),
              MetricDirection::HigherIsBetter);
    EXPECT_EQ(metricDirection("max_sustainable_eps"),
              MetricDirection::HigherIsBetter);
    EXPECT_EQ(metricDirection("s_per_step"),
              MetricDirection::LowerIsBetter);
    EXPECT_EQ(metricDirection("queue_delay_share"),
              MetricDirection::LowerIsBetter);
    EXPECT_EQ(metricDirection("p50_episode_latency_s"),
              MetricDirection::LowerIsBetter);
    EXPECT_EQ(metricDirection("p99_episode_latency_s"),
              MetricDirection::LowerIsBetter);
    EXPECT_EQ(metricDirection("batched_s_per_step"),
              MetricDirection::LowerIsBetter);
    EXPECT_EQ(metricDirection("tokens_per_episode"),
              MetricDirection::LowerIsBetter);
    EXPECT_EQ(metricDirection("llm_latency_share"),
              MetricDirection::Anchored);
    EXPECT_EQ(metricDirection("memory_ablation_steps_ratio"),
              MetricDirection::Anchored);
    EXPECT_EQ(metricDirection("message_utility"),
              MetricDirection::Anchored);
    EXPECT_EQ(metricDirection("episodes"),
              MetricDirection::Informational);
    EXPECT_EQ(metricDirection("anything_else"),
              MetricDirection::Informational);
}

} // namespace
