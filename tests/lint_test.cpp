#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ebs_lint/lint_core.h"

/**
 * Tests for tools/ebs_lint: every rule fires on its fixture at the
 * exact (file, line, rule) expected, suppressed variants stay silent,
 * malformed suppressions are themselves findings, and the real source
 * tree lints clean (the same invariant the `ebs_lint_tree` ctest
 * enforces through the CLI).
 *
 * Fixtures live in tests/lint_fixtures/ and are data, not code: the
 * test CMake glob only compiles *_test.cpp, and lintTree() always
 * excludes the fixture directory so the corpus can violate every rule
 * without tripping the tree gate.
 */

namespace {

using ebs::lint::Finding;
using ebs::lint::lintFile;
using ebs::lint::lintSource;
using ebs::lint::lintTree;
using ebs::lint::TreeOptions;

std::string
root(const std::string &relative)
{
    return std::string(EBS_SOURCE_ROOT) + "/" + relative;
}

std::string
fixture(const std::string &name)
{
    return root("tests/lint_fixtures/" + name);
}

/** (line, rule) pairs of a finding list, for compact assertions. */
std::vector<std::pair<int, std::string>>
lineRules(const std::vector<Finding> &findings)
{
    std::vector<std::pair<int, std::string>> out;
    for (const auto &f : findings)
        out.emplace_back(f.line, f.rule);
    return out;
}

std::string
joined(const std::vector<Finding> &findings)
{
    std::string out;
    for (const auto &f : findings)
        out += ebs::lint::formatFinding(f) + "\n";
    return out;
}

using LineRules = std::vector<std::pair<int, std::string>>;

TEST(LintFormat, FileLineRuleDetail)
{
    const Finding f{"src/a.cpp", 12, "raw-random", "no dice"};
    EXPECT_EQ(ebs::lint::formatFinding(f),
              "src/a.cpp:12: raw-random: no dice");
}

TEST(LintFormat, RuleNamesAreSortedAndComplete)
{
    const std::vector<std::string> expected = {
        "float-accum-unordered", "host-clock", "pointer-keyed-order",
        "raw-random", "suite-io", "unordered-container"};
    EXPECT_EQ(ebs::lint::ruleNames(), expected);
}

TEST(LintFixtures, UnorderedContainerAndStdHash)
{
    const auto findings = lintFile(fixture("unordered.cpp"));
    EXPECT_EQ(lineRules(findings),
              (LineRules{{3, "unordered-container"},
                         {6, "unordered-container"},
                         {7, "unordered-container"}}))
        << joined(findings);
    for (const auto &f : findings)
        EXPECT_EQ(f.file, fixture("unordered.cpp"));
}

TEST(LintFixtures, RawRandom)
{
    const auto findings = lintFile(fixture("raw_random.cpp"));
    EXPECT_EQ(lineRules(findings), (LineRules{{6, "raw-random"},
                                              {7, "raw-random"},
                                              {8, "raw-random"}}))
        << joined(findings);
}

TEST(LintFixtures, HostClock)
{
    const auto findings = lintFile(fixture("host_clock.cpp"));
    EXPECT_EQ(lineRules(findings),
              (LineRules{{6, "host-clock"}, {7, "host-clock"}}))
        << joined(findings);
}

TEST(LintFixtures, ObsHostStamps)
{
    // The obs-layer shape: reading a clock inside a trace sink is the
    // violation; receiving the stamp as an argument is clean.
    const auto findings = lintFile(fixture("obs_stamp.cpp"));
    EXPECT_EQ(lineRules(findings), (LineRules{{8, "host-clock"}}))
        << joined(findings);
}

TEST(LintFixtures, PointerKeyedMapOnly)
{
    // Line 8 keys a map on a pointer; line 9's map merely *holds*
    // pointers behind a string key and must not be flagged.
    const auto findings = lintFile(fixture("pointer_key.cpp"));
    EXPECT_EQ(lineRules(findings),
              (LineRules{{8, "pointer-keyed-order"}}))
        << joined(findings);
}

TEST(LintFixtures, FloatAccumulationInUnorderedRangeFor)
{
    // The container hits on lines 4 and 9 are suppressed in the
    // fixture; only the `+=` inside the range-for body remains.
    const auto findings = lintFile(fixture("float_accum.cpp"));
    EXPECT_EQ(lineRules(findings),
              (LineRules{{10, "float-accum-unordered"}}))
        << joined(findings);
}

TEST(LintFixtures, SuiteIoInBenchScope)
{
    // Lines 8-11 write to the process streams directly; the ctx.printf
    // member call on line 15 and the suppressed std::puts on line 17
    // stay silent.
    const auto findings = lintFile(fixture("bench_suite_io.cpp"));
    EXPECT_EQ(lineRules(findings),
              (LineRules{{8, "suite-io"},
                         {9, "suite-io"},
                         {10, "suite-io"},
                         {11, "suite-io"}}))
        << joined(findings);
}

TEST(LintSource, SuiteIoScopedByFileName)
{
    // The same bytes fire only under a suite basename: the fleet
    // driver and the library tree keep their own stdio.
    const std::string src = "int f() { return std::printf(\"x\"); }\n";
    EXPECT_EQ(lineRules(lintSource("bench/bench_x.cpp", src)),
              (LineRules{{1, "suite-io"}}));
    EXPECT_EQ(lineRules(lintSource("bench/suite.cpp", src)),
              (LineRules{{1, "suite-io"}}));
    EXPECT_TRUE(lintSource("bench/run_all.cpp", src).empty());
    EXPECT_TRUE(lintSource("bench/fleet_plan.cpp", src).empty());
    EXPECT_TRUE(lintSource("src/core/coordinator.cpp", src).empty());
}

TEST(LintFixtures, SuppressedVariantsAreClean)
{
    const auto findings = lintFile(fixture("suppressed.cpp"));
    EXPECT_TRUE(findings.empty()) << joined(findings);
}

TEST(LintFixtures, MalformedAllowsAreFindings)
{
    const auto findings = lintFile(fixture("bad_allow.cpp"));
    EXPECT_EQ(lineRules(findings),
              (LineRules{{2, "lint-allow"}, {3, "lint-allow"}}))
        << joined(findings);
}

TEST(LintFixtures, CleanFixtureIsClean)
{
    const auto findings = lintFile(fixture("clean.cpp"));
    EXPECT_TRUE(findings.empty()) << joined(findings);
}

TEST(LintSource, StringsAndCommentsAreStripped)
{
    EXPECT_TRUE(lintSource("s.cpp",
                           "const char *s = \"std::unordered_map\";\n")
                    .empty());
    EXPECT_TRUE(lintSource("s.cpp", "// calls rand() and srand()\n")
                    .empty());
    EXPECT_TRUE(lintSource("s.cpp",
                           "/* steady_clock\n * system_clock */ int x;\n")
                    .empty());
}

TEST(LintSource, SameLineAndNextLineSuppression)
{
    EXPECT_TRUE(
        lintSource("s.cpp",
                   "int r = rand(); // EBS_LINT_ALLOW(raw-random): demo\n")
            .empty());
    EXPECT_TRUE(
        lintSource("s.cpp", "// EBS_LINT_ALLOW(raw-random): demo\n"
                            "int r = rand();\n")
            .empty());
}

TEST(LintSource, SuppressionDoesNotReachTwoLinesDown)
{
    const auto findings =
        lintSource("s.cpp", "// EBS_LINT_ALLOW(raw-random): demo\n"
                            "int a = 0;\n"
                            "int r = rand();\n");
    EXPECT_EQ(lineRules(findings), (LineRules{{3, "raw-random"}}))
        << joined(findings);
}

TEST(LintSource, SuppressionIsPerRule)
{
    // An allow for one rule must not silence a different rule on the
    // same line.
    const auto findings = lintSource(
        "s.cpp",
        "int r = rand(); // EBS_LINT_ALLOW(host-clock): wrong rule\n");
    EXPECT_EQ(lineRules(findings), (LineRules{{1, "raw-random"}}))
        << joined(findings);
}

TEST(LintSource, DuplicateHitsOnOneLineCollapse)
{
    const auto findings =
        lintSource("s.cpp", "int r = rand() + rand();\n");
    EXPECT_EQ(lineRules(findings), (LineRules{{1, "raw-random"}}))
        << joined(findings);
}

TEST(LintIo, UnreadableFileIsAFinding)
{
    const auto findings = lintFile(root("tests/no_such_file.cpp"));
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "lint-io");
    EXPECT_EQ(findings[0].line, 0);
}

TEST(LintIo, MissingRootIsAFinding)
{
    const auto findings = lintTree({root("no_such_dir")});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "lint-io");
}

TEST(LintTree, ExcludeSubstringSkipsRoot)
{
    TreeOptions options;
    options.exclude_substrings.push_back("no_such_dir");
    EXPECT_TRUE(lintTree({root("no_such_dir")}, options).empty());
}

TEST(LintTree, FixtureDirectoryIsAlwaysExcluded)
{
    // The fixture corpus violates every rule, yet linting tests/ (or
    // the fixture directory itself) reports nothing from it.
    EXPECT_TRUE(lintTree({root("tests/lint_fixtures")}).empty());
}

TEST(LintTree, ObsSubsystemNeedsNoAllows)
{
    // src/obs receives host stamps from its callers, so it must lint
    // clean with zero suppressions of its own — the one sanctioned
    // host-clock allow line stays in stats/host_clock.h.
    EXPECT_TRUE(lintTree({root("src/obs")}).empty());
    for (const char *name :
         {"src/obs/trace.h", "src/obs/trace.cpp", "src/obs/metrics.h",
          "src/obs/metrics.cpp"}) {
        std::ifstream in(root(name));
        ASSERT_TRUE(in.good()) << name;
        std::stringstream buffer;
        buffer << in.rdbuf();
        EXPECT_EQ(buffer.str().find("EBS_LINT_ALLOW"), std::string::npos)
            << name << " must not carry lint suppressions";
    }
}

TEST(LintTree, ShippedTreeLintsClean)
{
    // The same gate the `ebs_lint_tree` ctest applies via the CLI: the
    // real sources carry no unsuppressed determinism violations.
    const auto findings =
        lintTree({root("src"), root("bench"), root("tests")});
    EXPECT_TRUE(findings.empty()) << joined(findings);
}

} // namespace
