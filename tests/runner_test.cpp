/**
 * @file
 * Tests for the src/runner episode fan-out subsystem: parallel execution
 * must be bit-identical to serial execution, results must come back in
 * submission order, the RunStats fold must reproduce the historical
 * serial averaging, and EBS_JOBS must be parsed defensively.
 */

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runner/averaged.h"
#include "runner/episode_runner.h"
#include "runner/run_stats.h"
#include "stats/module_kind.h"
#include "test_util.h"
#include "workloads/workload.h"

namespace {

using namespace ebs;
using test::expectEpisodeIdentical;

/** Bitwise comparison shared with engine_service_test (test_util.h). */
void
expectIdentical(const core::EpisodeResult &a, const core::EpisodeResult &b)
{
    expectEpisodeIdentical(a, b);
}

/** A batch covering all three paradigms, several seeds each. */
std::vector<runner::EpisodeJob>
mixedBatch()
{
    std::vector<runner::EpisodeJob> jobs;
    for (const char *name : {"EmbodiedGPT", "MindAgent", "RoCo"}) {
        const auto &spec = workloads::workload(name);
        for (int seed = 1; seed <= 3; ++seed) {
            runner::EpisodeJob job;
            job.workload = &spec;
            job.config = spec.config;
            job.difficulty = env::Difficulty::Easy;
            job.seed = runner::episodeSeed(seed);
            job.record_tokens = true;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

TEST(EpisodeRunner, ParallelIsBitIdenticalToSerial)
{
    const auto jobs = mixedBatch();
    const auto serial = runner::EpisodeRunner(1).run(jobs);
    const auto parallel = runner::EpisodeRunner(8).run(jobs);
    ASSERT_EQ(serial.size(), jobs.size());
    ASSERT_EQ(parallel.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        expectIdentical(serial[i], parallel[i]);
    }
}

TEST(EpisodeRunner, ResultsComeBackInSubmissionOrder)
{
    const auto jobs = mixedBatch();
    const auto batched = runner::EpisodeRunner(4).run(jobs);
    ASSERT_EQ(batched.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        expectIdentical(runner::runEpisode(jobs[i]), batched[i]);
    }
}

TEST(EpisodeRunner, CustomJobsRunAndKeepOrder)
{
    std::vector<runner::EpisodeJob> jobs;
    for (int i = 0; i < 16; ++i) {
        runner::EpisodeJob job;
        job.seed = static_cast<std::uint64_t>(100 + i);
        job.custom = [](const core::EpisodeOptions &options) {
            core::EpisodeResult r;
            r.steps = static_cast<int>(options.seed);
            return r;
        };
        jobs.push_back(std::move(job));
    }
    const auto results = runner::EpisodeRunner(8).run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(results[static_cast<std::size_t>(i)].steps, 100 + i);
}

TEST(EpisodeRunner, EmptyBatchYieldsEmptyResults)
{
    EXPECT_TRUE(runner::EpisodeRunner(8).run({}).empty());
}

TEST(EpisodeRunner, PropagatesWorkerExceptions)
{
    std::vector<runner::EpisodeJob> jobs(8);
    for (auto &job : jobs)
        job.custom = [](const core::EpisodeOptions &) -> core::EpisodeResult {
            throw std::runtime_error("episode exploded");
        };
    EXPECT_THROW(runner::EpisodeRunner(4).run(jobs), std::runtime_error);
}

TEST(EpisodeRunner, DefaultJobsParsesEnvDefensively)
{
    const char *saved = std::getenv("EBS_JOBS");
    const std::string saved_value = saved ? saved : "";

    ::setenv("EBS_JOBS", "3", 1);
    EXPECT_EQ(runner::EpisodeRunner::defaultJobs(), 3);
    EXPECT_EQ(runner::EpisodeRunner().jobs(), 3);
    EXPECT_EQ(runner::EpisodeRunner(5).jobs(), 5); // explicit wins

    // Garbage, zero, and negatives fall back to hardware concurrency.
    for (const char *bad : {"abc", "0", "-2", "4x", ""}) {
        ::setenv("EBS_JOBS", bad, 1);
        EXPECT_GE(runner::EpisodeRunner::defaultJobs(), 1) << bad;
    }
    ::unsetenv("EBS_JOBS");
    EXPECT_GE(runner::EpisodeRunner::defaultJobs(), 1);

    if (saved)
        ::setenv("EBS_JOBS", saved_value.c_str(), 1);
}

TEST(RunStats, FoldReproducesSerialAveraging)
{
    const auto &spec = workloads::workload("EmbodiedGPT");
    std::vector<runner::EpisodeJob> jobs;
    for (int seed = 1; seed <= 4; ++seed) {
        runner::EpisodeJob job;
        job.workload = &spec;
        job.config = spec.config;
        job.difficulty = env::Difficulty::Easy;
        job.seed = runner::episodeSeed(seed);
        jobs.push_back(std::move(job));
    }
    const auto episodes = runner::EpisodeRunner(1).run(jobs);
    const auto folded = runner::foldEpisodes(episodes);

    // The historical bench_util.h accumulation, verbatim.
    double success = 0, steps = 0, runtime = 0, latency = 0;
    long long calls = 0, tokens = 0;
    for (const auto &r : episodes) {
        success += r.success;
        steps += r.steps;
        runtime += r.sim_seconds / 60.0;
        latency += r.secondsPerStep();
        calls += static_cast<long long>(r.llm.calls);
        tokens += r.llm.tokens_in + r.llm.tokens_out;
    }
    const double n = 4.0;
    EXPECT_EQ(folded.episodes, 4);
    EXPECT_EQ(folded.success_rate, success / n);
    EXPECT_EQ(folded.avg_steps, steps / n);
    EXPECT_EQ(folded.avg_runtime_min, runtime / n);
    EXPECT_EQ(folded.avg_step_latency_s, latency / n);
    EXPECT_EQ(folded.llm_calls, calls);
    EXPECT_EQ(folded.tokens, tokens);
    EXPECT_EQ(folded.llmCallsPerEpisode(), calls / n);
    EXPECT_EQ(folded.tokensPerEpisode(), tokens / n);
}

TEST(RunStats, AveragedManySlicesPerVariant)
{
    const auto &a = workloads::workload("EmbodiedGPT");
    const auto &b = workloads::workload("RoCo");

    runner::RunVariant va;
    va.workload = &a;
    va.config = a.config;
    va.difficulty = env::Difficulty::Easy;
    va.seeds = 2;
    runner::RunVariant vb;
    vb.workload = &b;
    vb.config = b.config;
    vb.difficulty = env::Difficulty::Easy;
    vb.seeds = 3;

    const runner::EpisodeRunner parallel(8);
    const auto many = runner::runAveragedMany(parallel, {va, vb});
    ASSERT_EQ(many.size(), 2u);
    EXPECT_EQ(many[0].episodes, 2);
    EXPECT_EQ(many[1].episodes, 3);

    // Each variant's stats match an isolated serial run of that variant.
    const runner::EpisodeRunner serial(1);
    EXPECT_EQ(many[0].success_rate,
              runner::runAveraged(serial, va).success_rate);
    EXPECT_EQ(many[1].avg_steps, runner::runAveraged(serial, vb).avg_steps);
    EXPECT_EQ(many[1].tokens, runner::runAveraged(serial, vb).tokens);
}

} // namespace
